//! # UltraPrecise (reproduction) — GPU-based arbitrary-precision decimal
//! arithmetic for database systems
//!
//! A from-scratch Rust reproduction of *UltraPrecise: A GPU-Based
//! Framework for Arbitrary-Precision Arithmetic in Database Systems*
//! (ICDE 2024). The workspace provides:
//!
//! * [`up_num`] — the arbitrary-precision fixed-point numeric core;
//! * [`up_gpusim`] — the simulated SIMT GPU substrate (PTX-like ISA,
//!   functional executor, cost model, CGBN-style thread groups,
//!   multi-pass aggregation);
//! * [`up_jit`] — the JIT expression compiler with alignment scheduling
//!   and constant optimization;
//! * [`up_baselines`] — the comparator systems (PostgreSQL-style numeric,
//!   limited-precision engines, DOUBLE, the alternative representation);
//! * [`up_engine`] — the column-store SQL engine with per-system
//!   execution profiles;
//! * [`up_server`] — the concurrent query service (sessions, admission
//!   control, shared JIT cache, simulated GPU stream scheduling,
//!   metrics);
//! * [`up_net`] — the framed TCP wire protocol in front of the service,
//!   with per-tenant quotas and a blocking client;
//! * [`up_workloads`] — TPC-H, RSA-in-SQL, Taylor trigonometry, and
//!   compression workload generators.
//!
//! ```
//! use ultraprecise::prelude::*;
//!
//! let mut db = Database::new(Profile::UltraPrecise);
//! db.create_table("r", Schema::new(vec![
//!     ("c1", ColumnType::Decimal(DecimalType::new(17, 5).unwrap())),
//! ]));
//! db.insert("r", vec![Value::Decimal(
//!     UpDecimal::parse("123456789012.34567", DecimalType::new(17, 5).unwrap()).unwrap(),
//! )]).unwrap();
//! let result = db.query("SELECT c1 + c1 FROM r").unwrap();
//! assert_eq!(result.rows[0][0].render(), "246913578024.69134");
//! ```

pub use up_baselines;
pub use up_engine;
pub use up_gpusim;
pub use up_jit;
pub use up_net;
pub use up_num;
pub use up_server;
pub use up_workloads;

/// Convenient re-exports for applications.
pub mod prelude {
    pub use up_engine::{ColumnType, Database, Profile, QueryError, QueryResult, Schema, Value};
    pub use up_gpusim::{PipelineMode, SimParallelism};
    pub use up_net::{Client, NetConfig, TenantQuota, TenantRegistry, WireServer};
    pub use up_num::{DecimalType, UpDecimal};
    pub use up_server::{ServerConfig, SessionId, UpServer};
}
