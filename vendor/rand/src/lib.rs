//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! This environment has no registry access, so the workspace vendors the
//! exact surface it uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen_bool}` over integer and float ranges. The
//! generator is SplitMix64 — statistically fine for test-data synthesis,
//! deterministic for a given seed, and *not* cryptographic.

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the workspace only seeds from `u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every core rng.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to sample a value of `T` from an rng.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word to `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> uniform double in [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough bounded sample (widening multiply; bias is < 2^-64
/// per draw, far below what test-data generation can observe).
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut rng = StdRng { state };
            // Burn a couple of outputs so small seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }
    }
}

/// `use rand::prelude::*;` compatibility.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(1..=9u32);
            assert!((1..=9).contains(&v));
            let w = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = r.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}
