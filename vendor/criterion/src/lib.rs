//! Offline stand-in for the `criterion` crate.
//!
//! This environment has no registry access, so the workspace vendors the
//! subset of the criterion 0.5 API its benches use: `Criterion` with
//! `benchmark_group`/`bench_function`, groups with `bench_with_input`,
//! `throughput`, `sample_size`, `finish`, `BenchmarkId`, `Throughput`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: per benchmark it warms up, then
//! times batches until the measurement budget elapses and reports the
//! median batch ns/iter (plus throughput when configured). There are no
//! statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

/// Benchmark harness entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Hook for CLI configuration; accepted and ignored by this shim.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = self.clone();
        run_one(&cfg, &name.into(), &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the work per iteration, enabling rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut cfg = self.criterion.clone();
        if let Some(n) = self.sample_size {
            cfg.sample_size = n;
        }
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one_with_throughput(&cfg, &label, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion into [`BenchmarkId`] (strings or explicit ids).
pub trait IntoBenchmarkId {
    /// Converts into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Times closures passed to `iter`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the requested number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, f: &mut F) {
    run_one_with_throughput(cfg, label, None, f)
}

fn run_one_with_throughput<F: FnMut(&mut Bencher)>(
    cfg: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm up and size the batch so one batch is ~1/sample_size of the
    // measurement budget.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_micros(1);
    loop {
        let t = time_batch(f, iters);
        if !t.is_zero() {
            per_iter = t / iters as u32;
        }
        if warm_start.elapsed() >= cfg.warm_up_time || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let budget = cfg.measurement_time.max(Duration::from_millis(1));
    let per_sample = budget / cfg.sample_size as u32;
    let batch = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    let measure_start = Instant::now();
    for _ in 0..cfg.sample_size {
        let t = time_batch(f, batch);
        samples.push(t.as_nanos() as f64 / batch as f64);
        if measure_start.elapsed() > budget.saturating_mul(4) {
            break; // Budget blown (slow benchmark); keep what we have.
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / median),
        Throughput::Bytes(n) => format!("  {:>12.0} B/s", n as f64 * 1e9 / median),
    });
    println!(
        "bench {label:<48} {:>14} ns/iter{}",
        format_ns(median),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.0}", ns)
    } else if ns >= 100.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.2}", ns)
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }
}
