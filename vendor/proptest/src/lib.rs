//! Offline stand-in for the `proptest` crate.
//!
//! This environment has no registry access, so the workspace vendors the
//! subset of the proptest 1.x API its tests use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`prop_recursive`/`boxed`,
//! [`prop_oneof!`], `any::<T>()`, range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for a vendored test shim:
//! generation is seeded deterministically from the test's file/line (every
//! run exercises the same cases, like a fixed `--seed`), and failing cases
//! are reported but **not shrunk**.

pub mod test_runner {
    //! Case driver: configuration, error type, deterministic RNG.

    /// Run configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — try another input.
        Reject(String),
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator from a seed.
        pub fn new(seed: u64) -> Self {
            let mut rng = TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D };
            rng.next_u64();
            rng
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Executes cases until `cfg.cases` succeed; panics on the first
    /// failing case, echoing the generated inputs (no shrinking).
    pub fn run_cases(
        cfg: &ProptestConfig,
        file: &str,
        line: u32,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        // Deterministic per-test seed: same inputs every run, like a
        // pinned proptest seed file.
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ (line as u64).wrapping_mul(0x100_0000_01b3);
        for b in file.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = (cfg.cases as u64).saturating_mul(32).max(4096);
        let mut attempt: u64 = 0;
        while passed < cfg.cases {
            let mut rng = TestRng::new(seed.wrapping_add(attempt.wrapping_mul(0x9E37_79B9)));
            attempt += 1;
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest: too many rejected cases ({rejected}); last prop_assume!: {why}"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case failed: {msg}\n    inputs: {inputs}")
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, and
        /// `branch` lifts a strategy for depth-`d` trees to depth-`d+1`
        /// trees. `depth` bounds nesting; the size hints are accepted for
        /// API compatibility but unused by this shim.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let base = self.boxed();
            let mut tree = base.clone();
            for _ in 0..depth {
                let deeper = branch(tree).boxed();
                // Two branch arms to one leaf arm so generated trees
                // actually use the available depth.
                tree = Union::new(vec![base.clone(), deeper.clone(), deeper]).boxed();
            }
            tree
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn dyn_new_value(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            self.0.dyn_new_value(rng)
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V: Debug> Union<V> {
        /// Builds a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws a value, biased toward boundary cases.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // ~1/8 of draws hit a boundary value, like real
                    // proptest's edge bias.
                    if rng.below(8) == 0 {
                        const EDGES: [$t; 5] =
                            [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX / 2];
                        EDGES[rng.below(EDGES.len() as u64) as usize]
                    } else {
                        let lo = rng.next_u64() as u128;
                        let hi = (rng.next_u64() as u128) << 64;
                        (hi | lo) as $t
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn` runs until the configured number of
/// generated cases pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(clippy::redundant_closure_call)]
            $crate::test_runner::run_cases(&($cfg), file!(), line!(), |__rng| {
                let __vals = ($($crate::strategy::Strategy::new_value(&($strat), __rng),)+);
                let __inputs = format!("{:?}", __vals);
                let ($($arg,)+) = __vals;
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __outcome)
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::stringify!($cond).to_string(),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "assertion failed: {:?} == {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, $($fmt)+);
    }};
}

/// Builds a [`strategy::Union`] choosing uniformly among the arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    //! `use proptest::prelude::*;`

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tuples_ranges_and_vecs_generate_in_bounds(
            x in 1u32..=9,
            (a, b) in (-50i64..50, 0u8..4),
            v in prop::collection::vec(any::<i32>(), 2..10),
        ) {
            prop_assert!((1..=9).contains(&x));
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[derive(Clone, Debug)]
    enum Tree {
        Leaf(u8),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn recursive_strategies_nest_but_stay_bounded(
            t in (0u8..10).prop_map(Tree::Leaf).prop_recursive(3, 12, 2, |inner| {
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            })
        ) {
            prop_assert!(depth(&t) <= 3, "depth {} of {:?}", depth(&t), t);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(n in 0u32..10) {
                prop_assert!(n > 100, "n was {}", n);
            }
        }
        inner();
    }
}
