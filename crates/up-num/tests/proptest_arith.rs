//! Property-based tests for the numeric core: all division algorithms
//! agree, ring axioms hold for `BigInt`, fixed-point arithmetic matches an
//! independent i128 model at small precision, and representations
//! round-trip.

use proptest::prelude::*;
use up_num::bigint::BigInt;
use up_num::compact;
use up_num::decimal::UpDecimal;
use up_num::div;
use up_num::dtype::DecimalType;
use up_num::limbs;
use up_num::mul;

fn limb_vec(max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn division_algorithms_agree(a in limb_vec(12), b in limb_vec(6)) {
        prop_assume!(!limbs::is_zero(&b));
        let (q0, r0) = div::div_rem_knuth(&a, &b);
        for f in [div::div_rem, div::div_rem_binary_search, div::div_rem_newton, div::div_rem_goldschmidt] {
            let (q, r) = f(&a, &b);
            prop_assert_eq!(&q, &q0);
            prop_assert_eq!(&r, &r0);
        }
        // Reconstruction: a == q*b + r and r < b.
        let mut recon = mul::mul(&q0, &b);
        recon.resize(recon.len().max(a.len()) + 1, 0);
        prop_assert!(!limbs::add_assign(&mut recon, &r0));
        prop_assert_eq!(limbs::cmp(&recon, &a), std::cmp::Ordering::Equal);
        prop_assert_eq!(limbs::cmp(&r0, &b), std::cmp::Ordering::Less);
    }

    #[test]
    fn mul_is_commutative_and_matches_schoolbook(a in limb_vec(50), b in limb_vec(50)) {
        let ab = mul::mul(&a, &b);
        let ba = mul::mul(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(&ab, &mul::mul_schoolbook(&a, &b));
        prop_assert_eq!(&ab, &mul::mul_karatsuba(&a, &b));
    }

    #[test]
    fn bigint_ring_axioms(x in any::<i128>(), y in any::<i128>(), z in any::<i128>()) {
        // Work at half range to avoid i128 overflow in the model.
        let (x, y, z) = (x >> 2, y >> 2, z >> 2);
        let (bx, by, bz) = (BigInt::from(x), BigInt::from(y), BigInt::from(z));
        prop_assert_eq!(bx.add(&by), by.add(&bx));
        prop_assert_eq!(bx.add(&by).add(&bz), bx.add(&by.add(&bz)));
        prop_assert_eq!(bx.sub(&by), by.sub(&bx).neg());
        prop_assert_eq!(bx.add(&by), BigInt::from(x + y));
        // Distributivity at small magnitudes (product must fit the model).
        let (sx, sy, sz) = (x >> 40, y >> 40, z >> 40);
        let (bsx, bsy, bsz) = (BigInt::from(sx), BigInt::from(sy), BigInt::from(sz));
        prop_assert_eq!(
            bsx.mul(&bsy.add(&bsz)),
            bsx.mul(&bsy).add(&bsx.mul(&bsz))
        );
    }

    #[test]
    fn bigint_div_rem_matches_i128(a in any::<i128>(), b in any::<i128>()) {
        prop_assume!(b != 0);
        let (q, r) = BigInt::from(a).div_rem(&BigInt::from(b));
        prop_assert_eq!(q, BigInt::from(a / b));
        prop_assert_eq!(r, BigInt::from(a % b));
    }

    #[test]
    fn bigint_string_round_trip(a in any::<i128>()) {
        let b = BigInt::from(a);
        prop_assert_eq!(BigInt::parse_dec(&b.to_string()).unwrap(), b);
    }

    #[test]
    fn decimal_add_matches_i128_model(
        ua in -99_999_999_999i64..=99_999_999_999i64,
        ub in -99_999_999_999i64..=99_999_999_999i64,
        s1 in 0u32..=5,
        s2 in 0u32..=5,
    ) {
        let t1 = DecimalType::new(11, s1).unwrap();
        let t2 = DecimalType::new(11, s2).unwrap();
        let a = UpDecimal::from_scaled_i64(ua, t1).unwrap();
        let b = UpDecimal::from_scaled_i64(ub, t2).unwrap();
        let sum = a.add(&b);
        // Model: align both to max scale in i128.
        let sm = s1.max(s2);
        let ma = ua as i128 * 10i128.pow(sm - s1);
        let mb = ub as i128 * 10i128.pow(sm - s2);
        prop_assert_eq!(sum.unscaled(), &BigInt::from(ma + mb));
        prop_assert_eq!(sum.dtype().scale, sm);
        // The inferred result type always admits the value (§III-B3 claim).
        prop_assert!(sum.unscaled().dec_digits() <= sum.dtype().precision);
    }

    #[test]
    fn decimal_mul_matches_i128_model(
        ua in -999_999i64..=999_999i64,
        ub in -999_999i64..=999_999i64,
        s1 in 0u32..=4,
        s2 in 0u32..=4,
    ) {
        let t1 = DecimalType::new(6, s1).unwrap();
        let t2 = DecimalType::new(6, s2).unwrap();
        let a = UpDecimal::from_scaled_i64(ua, t1).unwrap();
        let b = UpDecimal::from_scaled_i64(ub, t2).unwrap();
        let p = a.mul(&b);
        prop_assert_eq!(p.unscaled(), &BigInt::from(ua as i128 * ub as i128));
        prop_assert_eq!(p.dtype().scale, s1 + s2);
        prop_assert!(p.unscaled().dec_digits() <= p.dtype().precision);
    }

    #[test]
    fn decimal_div_never_overflows_inferred_type(
        ua in -99_999_999i64..=99_999_999i64,
        ub in -99_999i64..=99_999i64,
        s1 in 0u32..=4,
        s2 in 0u32..=3,
    ) {
        prop_assume!(ub != 0);
        let t1 = DecimalType::new(8, s1).unwrap();
        // The §III-B3 quotient bound `(p1-s1)-(p2-s2)+1` integer digits only
        // holds when the divisor uses its declared integer width (dividing
        // by 1 declared DECIMAL(5,0) escapes it), so declare the divisor's
        // type by its actual digit count — what the JIT does for literals.
        let digits = BigInt::from(ub).dec_digits();
        let t2 = DecimalType::new(digits.max(s2 + 1), s2).unwrap();
        let a = UpDecimal::from_scaled_i64(ua, t1).unwrap();
        let b = UpDecimal::from_scaled_i64(ub, t2).unwrap();
        prop_assume!(digits > s2); // divisor magnitude ≥ 1 unscaled digit wide
        let q = a.div(&b).unwrap();
        prop_assert_eq!(q.dtype().scale, s1 + 4);
        prop_assert!(q.unscaled().dec_digits() <= q.dtype().precision,
            "quotient {} digits exceed {}", q.unscaled().dec_digits(), q.dtype());
        // Check against the f64 value within truncation error.
        let approx = (ua as f64 / 10f64.powi(s1 as i32)) / (ub as f64 / 10f64.powi(s2 as i32));
        let got = q.to_f64();
        let tol = 10f64.powi(-(s1 as i32 + 4)) + approx.abs() * 1e-9;
        prop_assert!((got - approx).abs() <= tol + tol, "{got} vs {approx}");
    }

    #[test]
    fn compact_round_trip(
        u in any::<i64>(),
        p in 1u32..=60,
        sfrac in 0u32..=100,
    ) {
        let s = sfrac * p / 101; // scale < p
        let ty = DecimalType::new(p, s).unwrap();
        // Clamp the value to the precision.
        let v = BigInt::from(u);
        let v = if v.dec_digits() > p {
            v.div_pow10_trunc(v.dec_digits() - p)
        } else { v };
        let d = UpDecimal::from_parts(v, ty).unwrap();
        let bytes = compact::encode_compact(&d, ty).unwrap();
        prop_assert_eq!(bytes.len(), ty.lb());
        prop_assert_eq!(compact::decode_compact(&bytes, ty), d.clone());
        let w = compact::expand_compact(&bytes, ty);
        prop_assert_eq!(w.words.len(), ty.lw());
        prop_assert_eq!(w.to_decimal(ty), d);
    }

    #[test]
    fn decimal_display_parse_round_trip(
        u in -9_999_999_999i64..=9_999_999_999i64,
        s in 0u32..=9,
    ) {
        let ty = DecimalType::new(10, s).unwrap();
        let d = UpDecimal::from_scaled_i64(u, ty).unwrap();
        let text = d.to_string();
        prop_assert_eq!(UpDecimal::parse(&text, ty).unwrap(), d);
    }

    #[test]
    fn cmp_value_consistent_with_f64(
        ua in -1_000_000i64..=1_000_000i64,
        ub in -1_000_000i64..=1_000_000i64,
        s1 in 0u32..=3,
        s2 in 0u32..=3,
    ) {
        let a = UpDecimal::from_scaled_i64(ua, DecimalType::new(7, s1).unwrap()).unwrap();
        let b = UpDecimal::from_scaled_i64(ub, DecimalType::new(7, s2).unwrap()).unwrap();
        let fa = ua as f64 / 10f64.powi(s1 as i32);
        let fb = ub as f64 / 10f64.powi(s2 as i32);
        // f64 holds these exactly (≤ 2^53), so orderings must agree.
        prop_assert_eq!(a.cmp_value(&b), fa.partial_cmp(&fb).unwrap());
    }
}
