//! Low-level multi-word ("limb") integer primitives.
//!
//! UltraPrecise stores a `DECIMAL` magnitude as an array of 32-bit words,
//! least-significant word first (paper §III-B, Fig. 4). Every routine here
//! mirrors an operation the paper implements with PTX on the GPU:
//!
//! * [`add_carry`] / [`sub_borrow`] are the software equivalents of
//!   `add.cc.u32`/`addc.cc.u32` and `sub.cc.u32`/`subc.cc.u32` (Listing 2);
//! * [`bit_len`] is the `bfind.u32` analogue used to bracket the quotient
//!   range in the division algorithm (§III-C2);
//! * [`cmp`] compares most-significant word first, returning as soon as two
//!   words differ (§II-B).
//!
//! All slices are little-endian limb order and may carry leading (i.e.
//! high-order) zero limbs; [`sig_limbs`] strips them logically.

use core::cmp::Ordering;

/// A single 32-bit machine word of a multi-word integer.
pub type Limb = u32;

/// Bits per limb.
pub const LIMB_BITS: u32 = 32;

/// Adds `a + b + carry_in`, returning the low word and updating the carry
/// flag — the software twin of PTX `addc.cc.u32`.
#[inline(always)]
pub fn add_carry(a: Limb, b: Limb, carry: &mut bool) -> Limb {
    let (s1, c1) = a.overflowing_add(b);
    let (s2, c2) = s1.overflowing_add(*carry as Limb);
    *carry = c1 | c2;
    s2
}

/// Subtracts `a - b - borrow_in`, returning the low word and updating the
/// borrow flag — the software twin of PTX `subc.cc.u32`.
#[inline(always)]
pub fn sub_borrow(a: Limb, b: Limb, borrow: &mut bool) -> Limb {
    let (d1, b1) = a.overflowing_sub(b);
    let (d2, b2) = d1.overflowing_sub(*borrow as Limb);
    *borrow = b1 | b2;
    d2
}

/// Number of significant limbs in `a` (ignoring high-order zeros).
#[inline]
pub fn sig_limbs(a: &[Limb]) -> usize {
    let mut n = a.len();
    while n > 0 && a[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// True iff every limb is zero.
#[inline]
pub fn is_zero(a: &[Limb]) -> bool {
    a.iter().all(|&w| w == 0)
}

/// Bit length of the magnitude: position of the most significant set bit
/// plus one, or 0 for zero. This is what the paper derives with `bfind`.
#[inline]
pub fn bit_len(a: &[Limb]) -> u64 {
    let n = sig_limbs(a);
    if n == 0 {
        return 0;
    }
    (n as u64 - 1) * LIMB_BITS as u64 + (LIMB_BITS - a[n - 1].leading_zeros()) as u64
}

/// Returns whether bit `i` (0-based from the least significant bit) is set.
#[inline]
pub fn get_bit(a: &[Limb], i: u64) -> bool {
    let limb = (i / LIMB_BITS as u64) as usize;
    if limb >= a.len() {
        return false;
    }
    (a[limb] >> (i % LIMB_BITS as u64)) & 1 == 1
}

/// Compares two magnitudes, most significant word first (§II-B): the result
/// is derived as soon as two words differ.
pub fn cmp(a: &[Limb], b: &[Limb]) -> Ordering {
    let (na, nb) = (sig_limbs(a), sig_limbs(b));
    if na != nb {
        return na.cmp(&nb);
    }
    for i in (0..na).rev() {
        if a[i] != b[i] {
            return a[i].cmp(&b[i]);
        }
    }
    Ordering::Equal
}

/// `acc += rhs`, propagating carries across the whole of `acc`; returns the
/// final carry-out. `rhs` must not be longer (in significant limbs) than
/// `acc`.
pub fn add_assign(acc: &mut [Limb], rhs: &[Limb]) -> bool {
    debug_assert!(sig_limbs(rhs) <= acc.len());
    let mut carry = false;
    for (i, slot) in acc.iter_mut().enumerate() {
        let r = if i < rhs.len() { rhs[i] } else { 0 };
        if r == 0 && !carry {
            continue;
        }
        *slot = add_carry(*slot, r, &mut carry);
    }
    carry
}

/// `acc -= rhs`; returns the final borrow-out (true iff `rhs > acc`).
pub fn sub_assign(acc: &mut [Limb], rhs: &[Limb]) -> bool {
    debug_assert!(rhs.len() <= acc.len() || sig_limbs(rhs) <= acc.len());
    let mut borrow = false;
    for (i, slot) in acc.iter_mut().enumerate() {
        let r = if i < rhs.len() { rhs[i] } else { 0 };
        if r == 0 && !borrow {
            continue;
        }
        *slot = sub_borrow(*slot, r, &mut borrow);
    }
    borrow
}

/// Sum of two magnitudes as a fresh vector (always large enough for the
/// carry-out).
pub fn add(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = false;
    for i in 0..long.len() {
        let s = if i < short.len() { short[i] } else { 0 };
        out.push(add_carry(long[i], s, &mut carry));
    }
    if carry {
        out.push(1);
    }
    out
}

/// Difference `a - b` as a fresh vector. Requires `a >= b` (checked via
/// debug assertion); the caller decides minuend/subtrahend by comparing
/// first, exactly as the paper's addition function does (§II-B).
pub fn sub(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(cmp(a, b) != Ordering::Less, "sub requires a >= b");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = false;
    for i in 0..a.len() {
        let r = if i < b.len() { b[i] } else { 0 };
        out.push(sub_borrow(a[i], r, &mut borrow));
    }
    debug_assert!(!borrow);
    out
}

/// Shift left by `n` whole limbs (multiply by 2^(32 n)).
pub fn shl_limbs(a: &[Limb], n: usize) -> Vec<Limb> {
    if is_zero(a) {
        return Vec::new();
    }
    let mut out = vec![0; n + a.len()];
    out[n..].copy_from_slice(a);
    out
}

/// Shift left by an arbitrary bit count.
pub fn shl_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limbs = (bits / LIMB_BITS as u64) as usize;
    let rem = (bits % LIMB_BITS as u64) as u32;
    let mut out = shl_limbs(a, limbs);
    if rem == 0 || out.is_empty() {
        return out;
    }
    let mut carry = 0u32;
    for w in out.iter_mut().skip(limbs) {
        let nw = (*w << rem) | carry;
        carry = *w >> (LIMB_BITS - rem);
        *w = nw;
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// Shift right by an arbitrary bit count (discarding shifted-out bits).
pub fn shr_bits(a: &[Limb], bits: u64) -> Vec<Limb> {
    let limbs = (bits / LIMB_BITS as u64) as usize;
    if limbs >= sig_limbs(a) {
        return Vec::new();
    }
    let rem = (bits % LIMB_BITS as u64) as u32;
    let src = &a[limbs..sig_limbs(a)];
    let mut out = src.to_vec();
    if rem != 0 {
        let mut carry = 0u32;
        for w in out.iter_mut().rev() {
            let nw = (*w >> rem) | carry;
            carry = *w << (LIMB_BITS - rem);
            *w = nw;
        }
    }
    trim(&mut out);
    out
}

/// Drops high-order zero limbs in place.
#[inline]
pub fn trim(a: &mut Vec<Limb>) {
    let n = sig_limbs(a);
    a.truncate(n);
}

/// `acc[k..] += a * b` where `b` is a single limb — one row of the
/// elementary-school multiplication (§II-B). `acc` must be long enough to
/// absorb the product and the trailing carry.
pub fn mul_limb_add(acc: &mut [Limb], a: &[Limb], b: Limb, k: usize) {
    if b == 0 {
        return;
    }
    let mut carry: u64 = 0;
    for (i, &ai) in a.iter().enumerate() {
        let t = ai as u64 * b as u64 + acc[k + i] as u64 + carry;
        acc[k + i] = t as Limb;
        carry = t >> 32;
    }
    let mut j = k + a.len();
    while carry != 0 {
        let t = acc[j] as u64 + carry;
        acc[j] = t as Limb;
        carry = t >> 32;
        j += 1;
    }
}

/// Multiplies a magnitude by a single limb, returning a fresh vector.
pub fn mul_limb(a: &[Limb], b: Limb) -> Vec<Limb> {
    if b == 0 || is_zero(a) {
        return Vec::new();
    }
    let mut out = vec![0; a.len() + 1];
    mul_limb_add(&mut out, a, b, 0);
    trim(&mut out);
    out
}

/// Divides a magnitude by a single limb in place, returning the remainder.
/// This is the paper's §III-C2 fast path "if the divisor is only a 32-bit
/// word, divide the dividend from the most significant word to the least".
pub fn div_limb_in_place(a: &mut [Limb], d: Limb) -> Limb {
    debug_assert!(d != 0);
    let mut rem: u64 = 0;
    for w in a.iter_mut().rev() {
        let cur = (rem << 32) | *w as u64;
        *w = (cur / d as u64) as Limb;
        rem = cur % d as u64;
    }
    rem as Limb
}

/// Converts up to two significant limbs to a `u64`, or `None` if the value
/// does not fit. Used for the paper's "both operands fit in a 64-bit word →
/// use the `div` instruction directly" fast path.
pub fn to_u64(a: &[Limb]) -> Option<u64> {
    match sig_limbs(a) {
        0 => Some(0),
        1 => Some(a[0] as u64),
        2 => Some(a[0] as u64 | (a[1] as u64) << 32),
        _ => None,
    }
}

/// Builds a limb vector from a `u64`.
pub fn from_u64(v: u64) -> Vec<Limb> {
    if v == 0 {
        Vec::new()
    } else if v >> 32 == 0 {
        vec![v as Limb]
    } else {
        vec![v as Limb, (v >> 32) as Limb]
    }
}

/// Builds a limb vector from a `u128`.
pub fn from_u128(v: u128) -> Vec<Limb> {
    let mut out = Vec::with_capacity(4);
    let mut v = v;
    while v != 0 {
        out.push(v as Limb);
        v >>= 32;
    }
    out
}

/// Converts significant limbs to `u128` if they fit.
pub fn to_u128(a: &[Limb]) -> Option<u128> {
    if sig_limbs(a) > 4 {
        return None;
    }
    let mut v: u128 = 0;
    for (i, &w) in a.iter().enumerate().take(4) {
        v |= (w as u128) << (32 * i);
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_carry_chains_like_addc() {
        let mut c = false;
        assert_eq!(add_carry(u32::MAX, 1, &mut c), 0);
        assert!(c);
        assert_eq!(add_carry(0, 0, &mut c), 1); // carry-in consumed
        assert!(!c);
    }

    #[test]
    fn sub_borrow_chains_like_subc() {
        let mut b = false;
        assert_eq!(sub_borrow(0, 1, &mut b), u32::MAX);
        assert!(b);
        assert_eq!(sub_borrow(5, 2, &mut b), 2); // borrow-in consumed
        assert!(!b);
    }

    #[test]
    fn add_and_sub_round_trip() {
        let a = vec![u32::MAX, u32::MAX, 3];
        let b = vec![1, 0, 7];
        let s = add(&a, &b);
        assert_eq!(to_u128(&s).unwrap(), to_u128(&a).unwrap() + to_u128(&b).unwrap());
        let d = sub(&s, &b);
        assert_eq!(cmp(&d, &a), Ordering::Equal);
    }

    #[test]
    fn cmp_most_significant_first() {
        assert_eq!(cmp(&[0, 1], &[u32::MAX]), Ordering::Greater);
        assert_eq!(cmp(&[5, 0, 0], &[5]), Ordering::Equal);
        assert_eq!(cmp(&[1, 2], &[2, 2]), Ordering::Less);
    }

    #[test]
    fn bit_len_matches_bfind_semantics() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&[0, 0]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[0b1000]), 4);
        assert_eq!(bit_len(&[0, 1]), 33);
    }

    #[test]
    fn shifts_round_trip() {
        let a = vec![0xdead_beef, 0x1234_5678];
        for bits in [0u64, 1, 31, 32, 33, 64, 65] {
            let l = shl_bits(&a, bits);
            let back = shr_bits(&l, bits);
            assert_eq!(cmp(&back, &a), Ordering::Equal, "bits={bits}");
        }
    }

    #[test]
    fn mul_limb_matches_u128() {
        let a = vec![u32::MAX, 17, 0x8000_0000];
        let p = mul_limb(&a, 12345);
        assert_eq!(to_u128(&p).unwrap(), to_u128(&a).unwrap() * 12345);
    }

    #[test]
    fn div_limb_most_significant_first() {
        let mut a = from_u128(123_456_789_012_345_678_901_234_567u128);
        let r = div_limb_in_place(&mut a, 1_000_000_007);
        let q = to_u128(&a).unwrap();
        assert_eq!(
            q * 1_000_000_007u128 + r as u128,
            123_456_789_012_345_678_901_234_567u128
        );
    }

    #[test]
    fn u64_round_trip() {
        for v in [0u64, 1, u32::MAX as u64, u64::MAX, 0x1_0000_0000] {
            assert_eq!(to_u64(&from_u64(v)), Some(v));
        }
        assert_eq!(to_u64(&[1, 2, 3]), None);
    }
}
