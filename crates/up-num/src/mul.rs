//! Multi-word multiplication.
//!
//! The paper (§II-B) uses the elementary-school O(N²) algorithm on the GPU
//! because, for the word counts databases see (N ≤ 32), it beats Karatsuba.
//! We implement both — [`mul_schoolbook`] as the default and
//! [`mul_karatsuba`] for large operands — and expose [`mul`] which picks by
//! the measured crossover, mirroring the paper's observation that "the
//! Karatsuba algorithm is not as fast as the basic one for a small N".

use crate::limbs::{self, Limb};

/// Operand size (in limbs) above which Karatsuba takes over from the
/// schoolbook algorithm. Databases rarely cross this (LEN ≤ 32 in the whole
/// evaluation), matching the paper's choice of the basic algorithm.
pub const KARATSUBA_THRESHOLD: usize = 40;

/// Product of two magnitudes using the elementary-school algorithm: the
/// k-th output word accumulates `a[i] * b[j]` for all `i + j = k`, with the
/// carry-out pushed into word `k + 1` (§II-B).
pub fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (na, nb) = (limbs::sig_limbs(a), limbs::sig_limbs(b));
    if na == 0 || nb == 0 {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; na + nb];
    for (j, &bj) in b[..nb].iter().enumerate() {
        limbs::mul_limb_add(&mut out, &a[..na], bj, j);
    }
    limbs::trim(&mut out);
    out
}

/// Karatsuba multiplication: splits both operands around the half-width of
/// the longer one and recombines three half-size products, O(N^log2 3).
pub fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (na, nb) = (limbs::sig_limbs(a), limbs::sig_limbs(b));
    if na.min(nb) < KARATSUBA_THRESHOLD {
        return mul_schoolbook(&a[..na], &b[..nb]);
    }
    let half = na.max(nb) / 2;
    let (a0, a1) = split(&a[..na], half);
    let (b0, b1) = split(&b[..nb], half);

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let sa = limbs::add(a0, a1);
    let sb = limbs::add(b0, b1);
    let mut z1 = mul_karatsuba(&sa, &sb);
    // z1 = (a0+a1)(b0+b1) - z0 - z2
    grow(&mut z1, z0.len().max(z2.len()));
    let bz0 = limbs::sub_assign(&mut z1, &z0);
    let bz2 = limbs::sub_assign(&mut z1, &z2);
    debug_assert!(!bz0 && !bz2, "karatsuba middle term underflow");

    // out = z0 + z1 << (32 half) + z2 << (64 half)
    let mut out = vec![0 as Limb; na + nb + 1];
    out[..z0.len()].copy_from_slice(&z0);
    let c1 = limbs::add_assign(&mut out[half..], &z1);
    let c2 = limbs::add_assign(&mut out[2 * half..], &z2);
    debug_assert!(!c1 && !c2);
    limbs::trim(&mut out);
    out
}

/// Product of two magnitudes; picks schoolbook or Karatsuba by operand size.
pub fn mul(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if limbs::sig_limbs(a).min(limbs::sig_limbs(b)) >= KARATSUBA_THRESHOLD {
        mul_karatsuba(a, b)
    } else {
        mul_schoolbook(a, b)
    }
}

/// Squares a magnitude (no specialization beyond `mul` — the paper does not
/// special-case squares, and RSA with e = 3 squares once per tuple).
pub fn square(a: &[Limb]) -> Vec<Limb> {
    mul(a, a)
}

fn split(a: &[Limb], at: usize) -> (&[Limb], &[Limb]) {
    if at >= a.len() {
        (a, &[])
    } else {
        (&a[..at], &a[at..])
    }
}

fn grow(v: &mut Vec<Limb>, at_least: usize) {
    if v.len() < at_least + 1 {
        v.resize(at_least + 1, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limbs::{from_u128, to_u128};

    #[test]
    fn schoolbook_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (0, 12345),
            (1, u64::MAX as u128),
            (u64::MAX as u128, u64::MAX as u128),
            (0xffff_ffff_ffff_ffff, 2),
            (123_456_789_123_456_789, 987_654_321_987_654_321),
            (u32::MAX as u128, u32::MAX as u128),
        ];
        for (x, y) in cases {
            let p = mul_schoolbook(&from_u128(x), &from_u128(y));
            assert_eq!(to_u128(&p).unwrap(), x * y, "{x} * {y}");
        }
    }

    #[test]
    fn karatsuba_matches_schoolbook_on_large_operands() {
        // Deterministic pseudo-random limbs, sized well above the threshold.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state as u32
        };
        for (na, nb) in [(80, 80), (81, 80), (120, 45), (41, 200)] {
            let a: Vec<u32> = (0..na).map(|_| next()).collect();
            let b: Vec<u32> = (0..nb).map(|_| next()).collect();
            let expect = mul_schoolbook(&a, &b);
            let got = mul_karatsuba(&a, &b);
            assert_eq!(got, expect, "na={na} nb={nb}");
        }
    }

    #[test]
    fn karatsuba_handles_unbalanced_and_zero() {
        assert!(mul_karatsuba(&[], &[1, 2, 3]).is_empty());
        let a = vec![7u32; 100];
        let b = vec![3u32];
        assert_eq!(mul_karatsuba(&a, &b), mul_schoolbook(&a, &b));
    }

    #[test]
    fn product_width_is_2n(
    ) {
        // Two N-word operands yield a product of at most 2N words (§II-B).
        let a = vec![u32::MAX; 8];
        let p = mul(&a, &a);
        assert!(p.len() <= 16);
        assert_eq!(p.len(), 16); // max values actually reach 2N
    }
}
