//! The fixed-point decimal value: an unscaled [`BigInt`] plus a
//! [`DecimalType`].
//!
//! `1.23` in `DECIMAL(4, 2)` is stored as the integer `123` (§III-B); all
//! arithmetic is integer arithmetic after scale alignment (§II-B). The
//! operations here implement the exact semantics the JIT-generated kernels
//! compute on the GPU, and serve as the host-side reference the simulator
//! is validated against.

use crate::bigint::{BigInt, Sign};
use crate::dtype::{DecimalType, DIV_EXTRA_SCALE};
use crate::NumError;
use core::cmp::Ordering;
use core::fmt;

/// An arbitrary-precision fixed-point decimal value.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct UpDecimal {
    ty: DecimalType,
    /// The unscaled integer: value = int · 10^(−scale).
    int: BigInt,
}

impl UpDecimal {
    /// Wraps an unscaled integer as `DECIMAL(p, s)`.
    ///
    /// Returns [`NumError::Overflow`] if the integer needs more than `p`
    /// digits.
    pub fn from_parts(int: BigInt, ty: DecimalType) -> Result<Self, NumError> {
        if !int.is_zero() && int.dec_digits() > ty.precision {
            return Err(NumError::Overflow {
                ty,
                digits: int.dec_digits(),
            });
        }
        Ok(UpDecimal { ty, int })
    }

    /// Wraps an unscaled integer without the precision check (for values
    /// produced by operations whose result type was inferred — the §III-B3
    /// rules guarantee fit).
    pub fn from_parts_unchecked(int: BigInt, ty: DecimalType) -> Self {
        UpDecimal { ty, int }
    }

    /// Zero of the given type.
    pub fn zero(ty: DecimalType) -> Self {
        UpDecimal { ty, int: BigInt::zero() }
    }

    /// Parses a decimal literal like `-12.345` into the given type,
    /// right-padding or rounding (half away from zero) the fraction to the
    /// type's scale.
    pub fn parse(s: &str, ty: DecimalType) -> Result<Self, NumError> {
        let (int, digits_after) = parse_unscaled(s)?;
        let int = rescale_int(&int, digits_after, ty.scale);
        Self::from_parts(int, ty)
    }

    /// Parses a literal and infers the smallest type holding it — the rule
    /// the JIT applies to constants: "1.23 is DECIMAL(3, 2) and 10 is
    /// DECIMAL(2, 0)" (§III-D2).
    pub fn parse_literal(s: &str) -> Result<Self, NumError> {
        let (int, digits_after) = parse_unscaled(s)?;
        let digits = int.dec_digits();
        let scale = digits_after;
        let precision = digits.max(scale.max(1)).max(scale + digits.saturating_sub(scale));
        // precision = total significant digits, at least enough to carry the scale.
        let precision = precision.max(digits).max(scale.max(1));
        let ty = DecimalType::new(precision, scale)?;
        Self::from_parts(int, ty)
    }

    /// Builds from an `i64` at scale 0 with the smallest sufficient type.
    pub fn from_i64(v: i64) -> Self {
        let int = BigInt::from(v);
        let ty = DecimalType::new_unchecked(int.dec_digits(), 0);
        UpDecimal { ty, int }
    }

    /// Builds from an integer count of scaled units, e.g.
    /// `from_scaled_i64(123, DECIMAL(4,2))` is `1.23`.
    pub fn from_scaled_i64(unscaled: i64, ty: DecimalType) -> Result<Self, NumError> {
        Self::from_parts(BigInt::from(unscaled), ty)
    }

    /// The type.
    pub fn dtype(&self) -> DecimalType {
        self.ty
    }

    /// The unscaled integer.
    pub fn unscaled(&self) -> &BigInt {
        &self.int
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.int.is_zero()
    }

    /// Sign of the value.
    pub fn sign(&self) -> Sign {
        self.int.sign()
    }

    /// Aligns the unscaled integer to a (greater or equal) scale by
    /// multiplying by `10^(s₂−s₁)` — the §II-B alignment. Aligning *down*
    /// is deliberately a different method ([`UpDecimal::cast`]) because it
    /// loses precision.
    pub fn align_up(&self, scale: u32) -> BigInt {
        debug_assert!(scale >= self.ty.scale, "align_up cannot reduce scale");
        self.int.mul_pow10(scale - self.ty.scale)
    }

    /// Addition with the §III-B3 result type.
    pub fn add(&self, other: &UpDecimal) -> UpDecimal {
        let ty = self.ty.add_result(&other.ty);
        let a = self.align_up(ty.scale);
        let b = other.align_up(ty.scale);
        UpDecimal { ty, int: a.add(&b) }
    }

    /// Subtraction with the §III-B3 result type.
    pub fn sub(&self, other: &UpDecimal) -> UpDecimal {
        let ty = self.ty.add_result(&other.ty);
        let a = self.align_up(ty.scale);
        let b = other.align_up(ty.scale);
        UpDecimal { ty, int: a.sub(&b) }
    }

    /// Unary negation (type unchanged).
    pub fn neg(&self) -> UpDecimal {
        UpDecimal { ty: self.ty, int: self.int.neg() }
    }

    /// Multiplication with the §III-B3 result type (no alignment needed).
    pub fn mul(&self, other: &UpDecimal) -> UpDecimal {
        UpDecimal {
            ty: self.ty.mul_result(&other.ty),
            int: self.int.mul(&other.int),
        }
    }

    /// Division per §III-B3: the dividend is multiplied by `10^(s₂+4)`
    /// first, the quotient truncates, and the result scale is `s₁ + 4`.
    ///
    /// The inferred precision bounds the quotient only when the divisor
    /// uses its declared integer width (`|b| ≥ 10^(p₂−s₂−1)` unscaled);
    /// the paper inherits the same caveat, and Fig. 15 discusses the dual
    /// problem (underflow) this rule causes for tiny dividends.
    ///
    /// Returns [`NumError::DivisionByZero`] on a zero divisor.
    pub fn div(&self, other: &UpDecimal) -> Result<UpDecimal, NumError> {
        if other.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        let ty = self.ty.div_result(&other.ty);
        let boosted = self.int.mul_pow10(other.ty.scale + DIV_EXTRA_SCALE);
        let q = boosted.div(&other.int);
        Ok(UpDecimal { ty, int: q })
    }

    /// Integer modulo per §III-B3 (scale-0 result). Fractional digits of
    /// either operand are truncated first, matching "only the integer
    /// modulo is supported".
    pub fn rem(&self, other: &UpDecimal) -> Result<UpDecimal, NumError> {
        let a = self.int.div_pow10_trunc(self.ty.scale);
        let b = other.int.div_pow10_trunc(other.ty.scale);
        if b.is_zero() {
            return Err(NumError::DivisionByZero);
        }
        let ty = self.ty.mod_result(&other.ty);
        Ok(UpDecimal { ty, int: a.rem(&b) })
    }

    /// Casts to another type: aligns up exactly, or rounds half away from
    /// zero when the target scale is smaller. Errors if the value does not
    /// fit the target precision.
    pub fn cast(&self, ty: DecimalType) -> Result<UpDecimal, NumError> {
        let int = rescale_int(&self.int, self.ty.scale, ty.scale);
        Self::from_parts(int, ty)
    }

    /// Value comparison across types: aligns scales (up, never losing
    /// digits) and compares the signed integers — the GROUP BY / ORDER BY
    /// comparator of §III-A.
    pub fn cmp_value(&self, other: &UpDecimal) -> Ordering {
        let s = self.ty.scale.max(other.ty.scale);
        self.align_up(s).cmp_signed(&other.align_up(s))
    }

    /// Lossy `f64` view, for the DOUBLE baseline and error reporting.
    pub fn to_f64(&self) -> f64 {
        self.int.to_f64() / 10f64.powi(self.ty.scale as i32)
    }

    /// Builds from an `f64` by formatting at the target scale — the lossy
    /// conversion CPU databases apply when a DOUBLE literal meets DECIMAL.
    pub fn from_f64(v: f64, ty: DecimalType) -> Result<Self, NumError> {
        if !v.is_finite() {
            return Err(NumError::Parse(format!("non-finite double {v}")));
        }
        let s = format!("{v:.*}", ty.scale as usize);
        Self::parse(&s, ty)
    }

    /// Absolute difference as f64 — used by the Fig. 15 MAE computation.
    /// Computed from the difference's decimal digits so scales far beyond
    /// f64's exponent range (the 300-digit ground truths) stay finite.
    pub fn abs_diff_f64(&self, other: &UpDecimal) -> f64 {
        let s = self.ty.scale.max(other.ty.scale);
        let d = self.align_up(s).sub(&other.align_up(s));
        if d.is_zero() {
            return 0.0;
        }
        let digits = d.mag_to_dec_string();
        let take = digits.len().min(17);
        let mantissa: f64 = digits[..take].parse().expect("decimal digits");
        // |d| ≈ mantissa · 10^(len−take) at scale s.
        let exp = digits.len() as i32 - take as i32 - s as i32;
        mantissa * pow10_f64(exp)
    }
}

/// 10^exp as f64 without intermediate overflow for very negative
/// exponents (splits the exponent so each factor stays in range).
fn pow10_f64(exp: i32) -> f64 {
    if (-300..=300).contains(&exp) {
        10f64.powi(exp)
    } else if exp < 0 {
        let mut v = 1.0f64;
        let mut e = exp;
        while e < -300 {
            v *= 1e-300;
            e += 300;
        }
        v * 10f64.powi(e)
    } else {
        f64::INFINITY
    }
}

/// Parses a literal into (unscaled integer, digits after the point).
fn parse_unscaled(s: &str) -> Result<(BigInt, u32), NumError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(NumError::Parse("empty literal".into()));
    }
    let (body, neg) = match s.as_bytes()[0] {
        b'-' => (&s[1..], true),
        b'+' => (&s[1..], false),
        _ => (s, false),
    };
    let (int_part, frac_part) = match body.split_once('.') {
        Some((i, f)) => (i, f),
        None => (body, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return Err(NumError::Parse(format!("invalid literal {s:?}")));
    }
    if !int_part.bytes().all(|b| b.is_ascii_digit()) || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
        return Err(NumError::Parse(format!("invalid literal {s:?}")));
    }
    let joined = format!("{int_part}{frac_part}");
    let joined = if joined.is_empty() { "0".to_string() } else { joined };
    let mut int = BigInt::parse_dec(&joined)?;
    if neg {
        int = int.neg();
    }
    Ok((int, frac_part.len() as u32))
}

/// Rescales an unscaled integer from one scale to another: multiplies by
/// ten to go up, rounds half away from zero to go down.
fn rescale_int(int: &BigInt, from_scale: u32, to_scale: u32) -> BigInt {
    if to_scale >= from_scale {
        int.mul_pow10(to_scale - from_scale)
    } else {
        int.div_pow10_round(from_scale - to_scale)
    }
}

impl fmt::Display for UpDecimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.int.mag_to_dec_string();
        let s = self.ty.scale as usize;
        let neg = self.int.is_negative();
        let padded = if digits.len() <= s {
            format!("{}{}", "0".repeat(s + 1 - digits.len()), digits)
        } else {
            digits
        };
        let (int_part, frac_part) = padded.split_at(padded.len() - s);
        if neg {
            write!(f, "-")?;
        }
        if s == 0 {
            write!(f, "{int_part}")
        } else {
            write!(f, "{int_part}.{frac_part}")
        }
    }
}

impl fmt::Debug for UpDecimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UpDecimal({} {})", self, self.ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn dec(s: &str, p: u32, sc: u32) -> UpDecimal {
        UpDecimal::parse(s, ty(p, sc)).unwrap()
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(dec("1.23", 4, 2).to_string(), "1.23");
        assert_eq!(dec("-1.23", 10, 2).to_string(), "-1.23");
        assert_eq!(dec("0.1", 3, 1).to_string(), "0.1");
        assert_eq!(dec("0.1", 3, 2).to_string(), "0.10"); // padded to scale
        assert_eq!(dec("7", 5, 0).to_string(), "7");
        assert_eq!(dec("0.0001", 9, 4).to_string(), "0.0001");
        assert_eq!(dec("-0.5", 2, 1).to_string(), "-0.5");
    }

    #[test]
    fn parse_rounds_when_narrowing() {
        assert_eq!(dec("1.235", 4, 2).to_string(), "1.24"); // half away from zero
        assert_eq!(dec("-1.235", 4, 2).to_string(), "-1.24");
        assert_eq!(dec("1.234", 4, 2).to_string(), "1.23");
    }

    #[test]
    fn paper_intro_example_is_exact() {
        // §II-B: 1.23 (4,2) + 0.1 (3,1): align 0.1 → 0.10 (integer 10).
        let a = dec("1.23", 4, 2);
        let b = dec("0.1", 3, 1);
        let sum = a.add(&b);
        assert_eq!(sum.to_string(), "1.33");
        assert_eq!(sum.dtype(), ty(5, 2)); // (max(4, 3+2-1)+1, 2)
        assert_eq!(sum.unscaled(), &BigInt::from(133i64));
    }

    #[test]
    fn exactness_that_double_lacks() {
        // 0.1 + 0.2 == 0.3 exactly in DECIMAL; not in f64.
        let a = dec("0.1", 3, 1);
        let b = dec("0.2", 3, 1);
        let c = a.add(&b);
        assert_eq!(c.cmp_value(&dec("0.3", 3, 1)), Ordering::Equal);
        assert_ne!(0.1f64 + 0.2f64, 0.3f64); // the motivating failure
    }

    #[test]
    fn listing1_shape() {
        // DECIMAL(4,2) + DECIMAL(4,1) → DECIMAL(6,2); the kernel computes
        // c1 + (c2 << 1).
        let c1 = dec("1.23", 4, 2);
        let c2 = dec("9.9", 4, 1);
        let r = c1.add(&c2);
        assert_eq!(r.dtype(), ty(6, 2));
        assert_eq!(r.to_string(), "11.13");
    }

    #[test]
    fn subtraction_picks_minuend_by_magnitude() {
        let a = dec("1.00", 4, 2);
        let b = dec("2.50", 4, 2);
        assert_eq!(a.sub(&b).to_string(), "-1.50");
        assert_eq!(b.sub(&a).to_string(), "1.50");
        let z = a.sub(&a);
        assert!(z.is_zero());
    }

    #[test]
    fn multiplication() {
        let a = dec("1.5", 2, 1);
        let b = dec("-2.05", 3, 2);
        let p = a.mul(&b);
        assert_eq!(p.dtype(), ty(5, 3));
        assert_eq!(p.to_string(), "-3.075");
    }

    #[test]
    fn division_scale_plus_4_rule() {
        let a = dec("1", 9, 8); // 1.00000000 in (9,8)
        let b = dec("3", 2, 0);
        let q = a.div(&b).unwrap();
        assert_eq!(q.dtype().scale, 12); // s1 + 4
        assert_eq!(q.to_string(), "0.333333333333");
        // Division truncates (the paper's underflow discussion for Fig. 15
        // depends on that).
        let q2 = dec("2", 2, 0).div(&dec("3", 2, 0)).unwrap();
        assert_eq!(q2.to_string(), "0.6666");
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let a = dec("1", 2, 0);
        assert!(matches!(a.div(&UpDecimal::zero(ty(2, 0))), Err(NumError::DivisionByZero)));
        assert!(matches!(a.rem(&UpDecimal::zero(ty(2, 0))), Err(NumError::DivisionByZero)));
    }

    #[test]
    fn modulo_is_integer_only() {
        let a = dec("17.9", 3, 1);
        let n = dec("5", 1, 0);
        let r = a.rem(&n).unwrap();
        assert_eq!(r.dtype().scale, 0);
        assert_eq!(r.to_string(), "2"); // 17 % 5
    }

    #[test]
    fn literal_type_inference() {
        // §III-D2: 1.23 is DECIMAL(3,2) and 10 is DECIMAL(2,0).
        assert_eq!(UpDecimal::parse_literal("1.23").unwrap().dtype(), ty(3, 2));
        assert_eq!(UpDecimal::parse_literal("10").unwrap().dtype(), ty(2, 0));
        assert_eq!(UpDecimal::parse_literal("0.25").unwrap().dtype(), ty(2, 2));
        assert_eq!(UpDecimal::parse_literal("-7").unwrap().dtype(), ty(1, 0));
    }

    #[test]
    fn cast_up_and_down() {
        let v = dec("1.23", 4, 2);
        let up = v.cast(ty(10, 5)).unwrap();
        assert_eq!(up.to_string(), "1.23000");
        let down = up.cast(ty(4, 1)).unwrap();
        assert_eq!(down.to_string(), "1.2");
        // Overflow on cast is reported.
        let big = dec("99.99", 4, 2);
        assert!(big.cast(ty(3, 2)).is_err());
    }

    #[test]
    fn value_comparison_across_scales() {
        let a = dec("1.5", 2, 1);
        let b = dec("1.50", 3, 2);
        assert_eq!(a.cmp_value(&b), Ordering::Equal);
        assert_eq!(dec("-2", 2, 0).cmp_value(&a), Ordering::Less);
    }

    #[test]
    fn overflow_detection() {
        assert!(UpDecimal::parse("100.0", ty(3, 1)).is_err());
        assert!(UpDecimal::parse("99.9", ty(3, 1)).is_ok());
    }

    #[test]
    fn f64_round_trip_at_scale() {
        let v = UpDecimal::from_f64(2.5, ty(5, 2)).unwrap();
        assert_eq!(v.to_string(), "2.50");
        assert!((v.to_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn high_precision_sum_stays_exact() {
        // 10^30 + 1 at scale 5 — far beyond f64's 53-bit mantissa.
        let t = ty(40, 5);
        let a = UpDecimal::parse("1000000000000000000000000000000.00001", t).unwrap();
        let b = UpDecimal::parse("0.00001", t).unwrap();
        let s = a.add(&b);
        assert_eq!(s.to_string(), "1000000000000000000000000000000.00002");
    }
}
