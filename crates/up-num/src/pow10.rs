//! Cached powers of ten as limb arrays.
//!
//! Scale alignment multiplies or divides by `10^(s₂−s₁)` (§II-B), so powers
//! of ten are on the hot path of every addition between differently-scaled
//! columns. The JIT bakes them into kernels as constants; on the host we
//! memoize them behind a lock.

use crate::limbs::Limb;
use crate::mul;
use std::sync::{Mutex, OnceLock};

/// Largest exponent the process-wide cache will memoize. Larger exponents
/// are computed on the fly (they appear only in ground-truth computations).
pub const CACHE_MAX_EXP: u32 = 2048;

fn cache() -> &'static Mutex<Vec<Vec<Limb>>> {
    static CACHE: OnceLock<Mutex<Vec<Vec<Limb>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(vec![vec![1]]))
}

/// `10^n` as a little-endian limb vector.
pub fn pow10_limbs(n: u32) -> Vec<Limb> {
    if n <= 27 {
        // Fits u128 comfortably (10^38 < 2^127, but 10^27 < 2^90 stays cheap).
        return crate::limbs::from_u128(10u128.pow(n));
    }
    if n > CACHE_MAX_EXP {
        return compute_pow10(n);
    }
    let mut c = cache().lock().expect("pow10 cache poisoned");
    while c.len() <= n as usize {
        let next = mul::mul(&c[c.len() - 1], &[10]);
        c.push(next);
    }
    c[n as usize].clone()
}

fn compute_pow10(n: u32) -> Vec<Limb> {
    // Square-and-multiply on the exponent.
    let mut result: Vec<Limb> = vec![1];
    let mut base: Vec<Limb> = vec![10];
    let mut e = n;
    while e > 0 {
        if e & 1 == 1 {
            result = mul::mul(&result, &base);
        }
        e >>= 1;
        if e > 0 {
            base = mul::mul(&base, &base);
        }
    }
    result
}

/// Number of decimal digits of `10^n` (that is, `n + 1`) — convenience for
/// precision bookkeeping.
pub fn digits_of_pow10(n: u32) -> u32 {
    n + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limbs::to_u128;

    #[test]
    fn small_powers_match_u128() {
        for n in 0..=27 {
            assert_eq!(to_u128(&pow10_limbs(n)).unwrap(), 10u128.pow(n));
        }
    }

    #[test]
    fn cached_and_direct_agree() {
        for n in [28u32, 40, 77, 100] {
            assert_eq!(pow10_limbs(n), compute_pow10(n), "n={n}");
        }
    }

    #[test]
    fn big_power_has_expected_bit_length() {
        // 10^1000 needs ceil(1000·log₂10) = 3322 bits.
        let p = pow10_limbs(1000);
        assert_eq!(crate::limbs::bit_len(&p), 3322);
    }

    #[test]
    fn beyond_cache_limit_still_computes() {
        let p = compute_pow10(CACHE_MAX_EXP + 5);
        let q = mul::mul(&pow10_limbs(CACHE_MAX_EXP), &pow10_limbs(5));
        assert_eq!(p, q);
    }

    #[test]
    fn parallel_lookups_agree_with_serial_computation() {
        // The global cache extends itself lazily under its mutex; racing
        // threads asking for interleaved exponents must all observe
        // correct values (the concurrent server hits this path whenever
        // sessions align differently-scaled columns simultaneously).
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    // Each thread walks a different arithmetic sequence so
                    // cache growth is requested out of order.
                    (0..40u32)
                        .map(|i| {
                            let n = 28 + ((i * 7 + t * 13) % 200);
                            (n, pow10_limbs(n))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (n, limbs) in h.join().unwrap() {
                assert_eq!(limbs, compute_pow10(n), "n={n}");
            }
        }
    }
}
