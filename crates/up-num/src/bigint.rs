//! Signed arbitrary-precision integers over 32-bit limbs.
//!
//! `DECIMAL(p, s)` stores only an integer (the unscaled value) plus a sign
//! byte (§III-B, Fig. 4); the scale lives in column metadata. [`BigInt`] is
//! that stored integer. Sign handling follows the paper's description of
//! the addition function: "the signs of operands determine whether two
//! numbers are added or one number is subtracted from the other. Numbers
//! are compared before the subtraction to decide the minuend and the
//! subtrahend" (§II-B).

use crate::div;
use crate::limbs::{self, Limb};
use crate::mul;
use crate::pow10;
use core::cmp::Ordering;
use core::fmt;

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`] (normalized form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Negative magnitude.
    Minus,
    /// The value zero.
    Zero,
    /// Positive magnitude.
    Plus,
}

// Inherent `neg`/`mul` are deliberate: `Sign` is not a number, these are
// the sign-algebra rules, and operator sugar would suggest otherwise.
#[allow(clippy::should_implement_trait)]
impl Sign {
    /// The opposite sign; zero stays zero.
    pub fn neg(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    /// Product-of-signs rule.
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// A signed arbitrary-precision integer: sign + little-endian magnitude.
///
/// Invariant: the magnitude has no high-order zero limbs, and a zero value
/// has an empty magnitude with `Sign::Zero`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: Vec<Limb>,
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt { sign: Sign::Plus, mag: vec![1] }
    }

    /// Builds from a sign and a magnitude, normalizing.
    pub fn from_sign_mag(sign: Sign, mut mag: Vec<Limb>) -> Self {
        limbs::trim(&mut mag);
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero, "non-empty magnitude with Zero sign");
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude limbs (little-endian, trimmed).
    pub fn mag(&self) -> &[Limb] {
        &self.mag
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// True iff the value is negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Bit length of the magnitude.
    pub fn bit_len(&self) -> u64 {
        limbs::bit_len(&self.mag)
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        BigInt { sign: self.sign.neg(), mag: self.mag.clone() }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        match self.sign {
            Sign::Minus => BigInt { sign: Sign::Plus, mag: self.mag.clone() },
            _ => self.clone(),
        }
    }

    /// Signed addition, deciding add-vs-subtract from the operand signs as
    /// the paper's `+` operator does.
    pub fn add(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, limbs::add(&self.mag, &other.mag)),
            _ => {
                // Opposite signs: compare magnitudes to pick minuend/subtrahend.
                match limbs::cmp(&self.mag, &other.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => {
                        BigInt::from_sign_mag(self.sign, limbs::sub(&self.mag, &other.mag))
                    }
                    Ordering::Less => {
                        BigInt::from_sign_mag(other.sign, limbs::sub(&other.mag, &self.mag))
                    }
                }
            }
        }
    }

    /// Signed subtraction.
    pub fn sub(&self, other: &BigInt) -> BigInt {
        self.add(&other.neg())
    }

    /// Signed multiplication.
    pub fn mul(&self, other: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.mul(other.sign), mul::mul(&self.mag, &other.mag))
    }

    /// Truncated division (toward zero) with remainder; the remainder takes
    /// the dividend's sign — the SQL convention for `%`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q, r) = div::div_rem(&self.mag, &other.mag);
        (
            BigInt::from_sign_mag(self.sign.mul(other.sign), q),
            BigInt::from_sign_mag(self.sign, r),
        )
    }

    /// Quotient of truncated division.
    pub fn div(&self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }

    /// Remainder of truncated division (sign follows the dividend).
    pub fn rem(&self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }

    /// Multiplies by `10^n` (scale-up alignment).
    pub fn mul_pow10(&self, n: u32) -> BigInt {
        if n == 0 || self.is_zero() {
            return self.clone();
        }
        BigInt::from_sign_mag(self.sign, mul::mul(&self.mag, &pow10::pow10_limbs(n)))
    }

    /// Divides by `10^n`, truncating toward zero (scale-down alignment; the
    /// paper notes this "lowers the intermediate precision", §II-B).
    pub fn div_pow10_trunc(&self, n: u32) -> BigInt {
        if n == 0 || self.is_zero() {
            return self.clone();
        }
        let (q, _) = div::div_rem(&self.mag, &pow10::pow10_limbs(n));
        BigInt::from_sign_mag(self.sign, q)
    }

    /// Divides by `10^n`, rounding half away from zero (PostgreSQL's
    /// `numeric` rounding, used when casting to a smaller scale).
    pub fn div_pow10_round(&self, n: u32) -> BigInt {
        if n == 0 || self.is_zero() {
            return self.clone();
        }
        let p = pow10::pow10_limbs(n);
        let (q, r) = div::div_rem(&self.mag, &p);
        let twice_r = limbs::shl_bits(&r, 1);
        let round_up = limbs::cmp(&twice_r, &p) != Ordering::Less;
        let q = if round_up { limbs::add(&q, &[1]) } else { q };
        BigInt::from_sign_mag(self.sign, q)
    }

    /// Raises to a small power (used by RSA's `X^e` with e = 3 and the
    /// ground-truth Taylor series).
    pub fn pow(&self, e: u32) -> BigInt {
        let mut result = BigInt::one();
        let mut base = self.clone();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base);
            }
        }
        result
    }

    /// Modular exponentiation `self^e mod m` (magnitude-positive modulus).
    pub fn mod_pow(&self, e: u32, m: &BigInt) -> BigInt {
        assert!(!m.is_zero(), "zero modulus");
        let mut result = BigInt::one();
        let mut base = self.rem(m);
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                result = result.mul(&base).rem(m);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul(&base).rem(m);
            }
        }
        result
    }

    /// Modular exponentiation with an arbitrary-precision exponent
    /// (square-and-multiply over the exponent's bits) — used by the RSA
    /// workload's Miller–Rabin primality test.
    pub fn mod_pow_big(&self, e: &BigInt, m: &BigInt) -> BigInt {
        assert!(!m.is_zero(), "zero modulus");
        assert!(e.sign() != Sign::Minus, "negative exponent");
        let bits = limbs::bit_len(e.mag());
        let mut result = BigInt::one().rem(m);
        let mut base = self.rem(m);
        for i in 0..bits {
            if limbs::get_bit(e.mag(), i) {
                result = result.mul(&base).rem(m);
            }
            if i + 1 < bits {
                base = base.mul(&base).rem(m);
            }
        }
        result
    }

    /// Number of decimal digits of the magnitude (0 has 1 digit).
    pub fn dec_digits(&self) -> u32 {
        if self.is_zero() {
            return 1;
        }
        // Estimate from the bit length, then correct by comparison.
        let bits = self.bit_len();
        let mut d = ((bits as f64) * core::f64::consts::LOG10_2).floor() as u32 + 1;
        // 10^(d-1) <= |x| must hold; if not, decrement. If 10^d <= |x|, increment.
        while d > 1 && limbs::cmp(&self.mag, &pow10::pow10_limbs(d - 1)) == Ordering::Less {
            d -= 1;
        }
        while limbs::cmp(&self.mag, &pow10::pow10_limbs(d)) != Ordering::Less {
            d += 1;
        }
        d
    }

    /// Signed comparison.
    pub fn cmp_signed(&self, other: &BigInt) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Minus, Sign::Minus) => limbs::cmp(&other.mag, &self.mag),
            (Sign::Minus, _) => Ordering::Less,
            (_, Sign::Minus) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Zero) => Ordering::Greater,
            (Sign::Plus, Sign::Plus) => limbs::cmp(&self.mag, &other.mag),
        }
    }

    /// Lossy conversion to `f64` (used only for reporting and the DOUBLE
    /// baseline comparisons).
    pub fn to_f64(&self) -> f64 {
        let n = self.mag.len();
        let mut v = 0.0f64;
        for i in (0..n).rev() {
            v = v * 4294967296.0 + self.mag[i] as f64;
        }
        if self.sign == Sign::Minus {
            -v
        } else {
            v
        }
    }

    /// Parses a decimal integer string (optionally signed).
    pub fn parse_dec(s: &str) -> Result<BigInt, crate::NumError> {
        let s = s.trim();
        let (sign, digits) = match s.as_bytes().first() {
            Some(b'-') => (Sign::Minus, &s[1..]),
            Some(b'+') => (Sign::Plus, &s[1..]),
            Some(_) => (Sign::Plus, s),
            None => return Err(crate::NumError::Parse("empty string".into())),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(crate::NumError::Parse(format!("invalid integer literal {s:?}")));
        }
        // Fold 9-digit chunks: mag = mag * 10^9 + chunk.
        let mut mag: Vec<Limb> = Vec::new();
        let bytes = digits.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(9);
            let chunk: u32 = digits[i..i + take].parse().expect("digit chunk");
            mag = limbs::mul_limb(&mag, 10u32.pow(take as u32));
            if chunk != 0 {
                mag.resize(mag.len() + 1, 0);
                let carry = limbs::add_assign(&mut mag, &[chunk]);
                debug_assert!(!carry);
                limbs::trim(&mut mag);
            }
            i += take;
        }
        Ok(BigInt::from_sign_mag(sign, mag))
    }

    /// Formats the magnitude as decimal digits (no sign).
    pub fn mag_to_dec_string(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks: Vec<u32> = Vec::new();
        let mut work = self.mag.clone();
        while !limbs::is_zero(&work) {
            let r = limbs::div_limb_in_place(&mut work, 1_000_000_000);
            limbs::trim(&mut work);
            chunks.push(r);
        }
        let mut s = String::with_capacity(chunks.len() * 9);
        s.push_str(&chunks.pop().expect("nonzero has a chunk").to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:09}"));
        }
        s
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag_to_dec_string())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let (sign, mag) = if v < 0 {
            (Sign::Minus, limbs::from_u64(v.unsigned_abs()))
        } else {
            (Sign::Plus, limbs::from_u64(v as u64))
        };
        BigInt { sign, mag }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_sign_mag(Sign::Plus, limbs::from_u64(v))
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        if v == 0 {
            return BigInt::zero();
        }
        let (sign, mag) = if v < 0 {
            (Sign::Minus, limbs::from_u128(v.unsigned_abs()))
        } else {
            (Sign::Plus, limbs::from_u128(v as u128))
        };
        BigInt { sign, mag }
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        BigInt::from_sign_mag(Sign::Plus, limbs::from_u128(v))
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_signed(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_add_covers_all_sign_combinations() {
        let cases: [(i128, i128); 9] = [
            (0, 0),
            (5, 0),
            (0, -5),
            (3, 4),
            (-3, -4),
            (7, -3),
            (3, -7),
            (-7, 3),
            (-3, 7),
        ];
        for (a, b) in cases {
            assert_eq!(bi(a).add(&bi(b)), bi(a + b), "{a} + {b}");
            assert_eq!(bi(a).sub(&bi(b)), bi(a - b), "{a} - {b}");
        }
    }

    #[test]
    fn truncated_division_sign_convention() {
        // SQL: quotient truncates toward zero; remainder takes dividend sign.
        for (a, b) in [(7i128, 3i128), (-7, 3), (7, -3), (-7, -3)] {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(q, bi(a / b), "{a}/{b}");
            assert_eq!(r, bi(a % b), "{a}%{b}");
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["0", "1", "-1", "999999999", "1000000000", "-123456789012345678901234567890"] {
            let v = BigInt::parse_dec(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigInt::parse_dec("12x").is_err());
        assert!(BigInt::parse_dec("").is_err());
        assert_eq!(BigInt::parse_dec("+42").unwrap(), bi(42));
    }

    #[test]
    fn dec_digits_exact_at_power_boundaries() {
        assert_eq!(bi(0).dec_digits(), 1);
        assert_eq!(bi(9).dec_digits(), 1);
        assert_eq!(bi(10).dec_digits(), 2);
        assert_eq!(bi(999_999_999_999_999_999).dec_digits(), 18);
        assert_eq!(bi(1_000_000_000_000_000_000).dec_digits(), 19);
        assert_eq!(BigInt::parse_dec("99999999999999999999999999999999999").unwrap().dec_digits(), 35);
    }

    #[test]
    fn pow10_scaling_round_trip() {
        let v = BigInt::parse_dec("-123456789").unwrap();
        assert_eq!(v.mul_pow10(5).div_pow10_trunc(5), v);
        assert_eq!(bi(12349).div_pow10_round(2), bi(123));
        assert_eq!(bi(12350).div_pow10_round(2), bi(124)); // half away from zero
        assert_eq!(bi(-12350).div_pow10_round(2), bi(-124));
    }

    #[test]
    fn mod_pow_matches_naive() {
        let m = bi(1_000_000_007);
        let x = bi(123_456_789);
        assert_eq!(x.mod_pow(3, &m), x.mul(&x).mul(&x).rem(&m));
    }

    #[test]
    fn signed_ordering() {
        let mut v = vec![bi(3), bi(-10), bi(0), bi(10), bi(-3)];
        v.sort();
        assert_eq!(v, vec![bi(-10), bi(-3), bi(0), bi(3), bi(10)]);
    }
}
