//! Compact (memory) vs word-aligned (register) representations — Fig. 4.
//!
//! In memory and on disk a decimal is a **byte-aligned** array of `Lb`
//! bytes with the sign folded into the most significant bit; in registers
//! it expands to `Lw` 32-bit words plus a sign byte, because PTX carry
//! instructions operate on 32-bit operands at least (§III-B). Expression
//! evaluation follows the three steps of §III-B2: read compact → expand →
//! evaluate → write back compact.

use crate::bigint::{BigInt, Sign};
use crate::decimal::UpDecimal;
use crate::dtype::DecimalType;
use crate::limbs;
use crate::NumError;

/// The word-aligned register-resident form: `Lw` little-endian 32-bit
/// words plus a sign byte (`Decimal<N>` in the paper's generated code).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WordRepr {
    /// −1, 0 or +1.
    pub sign: i8,
    /// Exactly `Lw` words for the owning type, least significant first.
    pub words: Vec<u32>,
}

impl WordRepr {
    /// Expands a value to exactly `lw` words.
    pub fn from_decimal(v: &UpDecimal, lw: usize) -> WordRepr {
        let mag = v.unscaled().mag();
        debug_assert!(limbs::sig_limbs(mag) <= lw, "value wider than Lw");
        let mut words = vec![0u32; lw];
        let n = mag.len().min(lw);
        words[..n].copy_from_slice(&mag[..n]);
        let sign = match v.sign() {
            Sign::Minus => -1,
            Sign::Zero => 0,
            Sign::Plus => 1,
        };
        WordRepr { sign, words }
    }

    /// Collapses back to a value of type `ty`.
    pub fn to_decimal(&self, ty: DecimalType) -> UpDecimal {
        let sign = match self.sign {
            0 => Sign::Zero,
            s if s < 0 => Sign::Minus,
            _ => Sign::Plus,
        };
        let int = BigInt::from_sign_mag(
            if limbs::is_zero(&self.words) { Sign::Zero } else { sign },
            self.words.clone(),
        );
        UpDecimal::from_parts_unchecked(int, ty)
    }

    /// Bytes this representation occupies (the paper's "9 bytes in total"
    /// for `DECIMAL(10, 2)`): `4·Lw + 1`.
    pub fn size_bytes(&self) -> usize {
        4 * self.words.len() + 1
    }
}

/// Encodes a value into its compact `Lb`-byte form in `out` (which must be
/// exactly `ty.lb()` bytes): little-endian magnitude bytes with the sign in
/// the top bit of the last byte.
pub fn encode_compact_into(v: &UpDecimal, ty: DecimalType, out: &mut [u8]) -> Result<(), NumError> {
    let lb = ty.lb();
    debug_assert_eq!(out.len(), lb);
    let mag = v.unscaled().mag();
    let bits = limbs::bit_len(mag);
    if bits as usize > lb * 8 - 1 {
        return Err(NumError::Overflow { ty, digits: v.unscaled().dec_digits() });
    }
    out.fill(0);
    for (i, b) in out.iter_mut().enumerate().take(mag.len() * 4) {
        let limb = mag[i / 4];
        *b = (limb >> (8 * (i % 4))) as u8;
    }
    if v.unscaled().is_negative() {
        out[lb - 1] |= 0x80;
    }
    Ok(())
}

/// Encodes a value into a fresh compact buffer of `ty.lb()` bytes.
pub fn encode_compact(v: &UpDecimal, ty: DecimalType) -> Result<Vec<u8>, NumError> {
    let mut out = vec![0u8; ty.lb()];
    encode_compact_into(v, ty, &mut out)?;
    Ok(out)
}

/// Decodes a compact buffer back into a value of type `ty` ("expand",
/// §III-B2 step 1).
pub fn decode_compact(bytes: &[u8], ty: DecimalType) -> UpDecimal {
    let lb = ty.lb();
    debug_assert_eq!(bytes.len(), lb);
    let neg = bytes[lb - 1] & 0x80 != 0;
    let mut words = vec![0u32; ty.lw()];
    for (i, &b) in bytes.iter().enumerate() {
        let b = if i == lb - 1 { b & 0x7f } else { b };
        if b != 0 {
            words[i / 4] |= (b as u32) << (8 * (i % 4));
        }
    }
    let sign = if limbs::is_zero(&words) {
        Sign::Zero
    } else if neg {
        Sign::Minus
    } else {
        Sign::Plus
    };
    UpDecimal::from_parts_unchecked(BigInt::from_sign_mag(sign, words), ty)
}

/// Expands a compact buffer straight to the word-aligned form (what the
/// generated kernel's `Decimal<N>(cDecimal*)` constructor does).
pub fn expand_compact(bytes: &[u8], ty: DecimalType) -> WordRepr {
    let v = decode_compact(bytes, ty);
    WordRepr::from_decimal(&v, ty.lw())
}

/// Storage cost per value of the **alternative representation** (§III-B1):
/// the decimal point sits between array elements, each 32-bit word right of
/// the point holding 9 digits (10⁹ states). Returns the word count
/// `ceil(int_digits/9) + ceil(scale/9)` (minimum one word per side used by
/// PostgreSQL/RateupDB-style layouts). Used by the representation ablation.
pub fn alt_repr_words(ty: DecimalType) -> usize {
    let int_words = (ty.int_digits() as usize).div_ceil(9).max(1);
    let frac_words = (ty.scale as usize).div_ceil(9);
    int_words + frac_words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn fig4_example_minus_1_23_in_decimal_10_2() {
        let t = ty(10, 2);
        let v = UpDecimal::parse("-1.23", t).unwrap();
        // Compact: 5 bytes, value 123, sign bit set in the last byte.
        let c = encode_compact(&v, t).unwrap();
        assert_eq!(c, vec![123, 0, 0, 0, 0x80]);
        // Word-aligned: 2 words + sign byte = 9 bytes.
        let w = WordRepr::from_decimal(&v, t.lw());
        assert_eq!(w.words, vec![123, 0]);
        assert_eq!(w.sign, -1);
        assert_eq!(w.size_bytes(), 9);
    }

    #[test]
    fn round_trip_positive_negative_zero() {
        let t = ty(20, 4);
        for s in ["0", "0.0001", "-0.0001", "12345.6789", "-9999999999999999.9999"] {
            let v = UpDecimal::parse(s, t).unwrap();
            let c = encode_compact(&v, t).unwrap();
            assert_eq!(c.len(), t.lb());
            let back = decode_compact(&c, t);
            assert_eq!(back, v, "{s}");
        }
    }

    #[test]
    fn zero_never_encodes_a_sign_bit() {
        let t = ty(10, 2);
        let z = UpDecimal::zero(t);
        let c = encode_compact(&z, t).unwrap();
        assert!(c.iter().all(|&b| b == 0));
    }

    #[test]
    fn word_repr_round_trip() {
        let t = ty(38, 10);
        let v = UpDecimal::parse("-1234567890123456789.0123456789", t).unwrap();
        let w = WordRepr::from_decimal(&v, t.lw());
        assert_eq!(w.words.len(), t.lw());
        assert_eq!(w.to_decimal(t), v);
    }

    #[test]
    fn compact_rejects_overwide_magnitude() {
        // A value that fits (4,0)'s digits but pretend Lb is for (2,0).
        let small = ty(2, 0);
        let v = UpDecimal::parse("9999", ty(4, 0)).unwrap();
        // 9999 needs 14 bits; Lb(2) = 1 byte = 7 magnitude bits.
        assert!(encode_compact(&v, small).is_err());
    }

    #[test]
    fn alternative_representation_storage_cost() {
        // §III-B1: representing 1.23 word-aligned needs two words (one for
        // 1, one for 0.23) — double the compact one word.
        let t = ty(4, 2);
        assert_eq!(alt_repr_words(t), 2);
        assert_eq!(t.lw(), 1);
        // High precision narrows the gap.
        let big = ty(76, 38);
        assert_eq!(alt_repr_words(big), 5 + 5);
        assert_eq!(big.lw(), 8);
    }

    #[test]
    fn expand_matches_decode_then_expand() {
        let t = ty(17, 5);
        let v = UpDecimal::parse("-123456789012.34567", t).unwrap();
        let c = encode_compact(&v, t).unwrap();
        let w = expand_compact(&c, t);
        assert_eq!(w.to_decimal(t), v);
    }
}
