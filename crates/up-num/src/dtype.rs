//! `DECIMAL(p, s)` type metadata and the paper's type-inference rules.
//!
//! Precision `p` is the total digit count and scale `s` the digits after
//! the decimal point (§I). The word length of the value array follows
//!
//! ```text
//! Lw = ceil(p · log₂10 / 32)          (§III-B)
//! ```
//!
//! and the compact in-memory byte array (sign folded into one bit) follows
//!
//! ```text
//! Lb = ceil((1 + p · log₂10) / 8)     (§III-B, Fig. 4)
//! ```
//!
//! The JIT engine sizes every intermediate result at compile time with the
//! rules of §III-B3, reproduced verbatim in [`DecimalType::add_result`],
//! [`DecimalType::mul_result`], [`DecimalType::div_result`],
//! [`DecimalType::mod_result`], [`DecimalType::sum_result`] and
//! [`DecimalType::avg_divisor`].

use core::fmt;

/// log₂(10), used by the paper's Lw/Lb formulas.
pub const LOG2_10: f64 = core::f64::consts::LOG2_10;

/// Extra fractional digits every division result carries (§III-B3: "the
/// result is guaranteed to have the scale of s₁ + 4 in our framework").
pub const DIV_EXTRA_SCALE: u32 = 4;

/// The `DECIMAL(p, s)` column type: precision (total digits) and scale
/// (digits after the decimal point).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecimalType {
    /// Total number of decimal digits.
    pub precision: u32,
    /// Digits after the decimal point. Scale ≤ precision (we follow the
    /// SQL convention; Oracle's deviation is noted in Table II only).
    pub scale: u32,
}

impl DecimalType {
    /// Creates a type, validating `1 ≤ p` and `s ≤ p`.
    pub fn new(precision: u32, scale: u32) -> Result<Self, crate::NumError> {
        if precision == 0 {
            return Err(crate::NumError::InvalidType { precision, scale, reason: "precision must be ≥ 1" });
        }
        if scale > precision {
            return Err(crate::NumError::InvalidType { precision, scale, reason: "scale must be ≤ precision" });
        }
        Ok(DecimalType { precision, scale })
    }

    /// Creates a type without validation (for trusted constants).
    pub const fn new_unchecked(precision: u32, scale: u32) -> Self {
        DecimalType { precision, scale }
    }

    /// Number of 32-bit words of the word-aligned (register) representation:
    /// `Lw = ceil(p·log₂10 / 32)`. The paper pre-computes these in a
    /// key-value table; we memoize the same way.
    pub fn lw(&self) -> usize {
        lw_for_precision(self.precision)
    }

    /// Number of bytes of the compact (memory) representation:
    /// `Lb = ceil((1 + p·log₂10) / 8)` — one extra bit holds the sign.
    pub fn lb(&self) -> usize {
        lb_for_precision(self.precision)
    }

    /// Digits before the decimal point.
    pub fn int_digits(&self) -> u32 {
        self.precision - self.scale
    }

    /// Result type of `+`/`-` (§III-B3): with s₁ ≥ s₂ the result is
    /// `DECIMAL(max(p₁, p₂ + s₁ − s₂) + 1, s₁)`.
    pub fn add_result(&self, other: &DecimalType) -> DecimalType {
        let (hi, lo) = if self.scale >= other.scale { (self, other) } else { (other, self) };
        let (p1, s1) = (hi.precision, hi.scale);
        let (p2, s2) = (lo.precision, lo.scale);
        DecimalType { precision: p1.max(p2 + s1 - s2) + 1, scale: s1 }
    }

    /// Result type of `×` (§III-B3): `(p₁ + p₂, s₁ + s₂)`.
    pub fn mul_result(&self, other: &DecimalType) -> DecimalType {
        DecimalType { precision: self.precision + other.precision, scale: self.scale + other.scale }
    }

    /// Result type of `÷` (§III-B3): the dividend is pre-multiplied by
    /// `10^(s₂+4)` and the quotient is `DECIMAL(p₁ − p₂ + s₂ + 5, s₁ + 4)`
    /// (integer part bounded by `(p₁−s₁) − (p₂−s₂) + 1`). Clamped so the
    /// precision always admits the scale.
    pub fn div_result(&self, other: &DecimalType) -> DecimalType {
        let scale = self.scale + DIV_EXTRA_SCALE;
        let raw = self.precision as i64 - other.precision as i64 + other.scale as i64 + 5;
        let precision = raw.max(scale as i64 + 1) as u32;
        DecimalType { precision, scale }
    }

    /// Result type of `%` (§III-B3): `(p₂, 0)` — only integer modulo is
    /// supported.
    pub fn mod_result(&self, other: &DecimalType) -> DecimalType {
        DecimalType { precision: other.precision.max(1), scale: 0 }
    }

    /// Result type of `SUM` over `n` tuples (§III-B3): `p + ceil(log₁₀ n)`.
    pub fn sum_result(&self, n: u64) -> DecimalType {
        DecimalType { precision: self.precision + ceil_log10(n), scale: self.scale }
    }

    /// The divisor type `AVG` uses (§III-B3): the tuple count converted to
    /// `DECIMAL(floor(log₁₀ N) + 1, 0)` — i.e. exactly its digit count.
    pub fn avg_divisor(n: u64) -> DecimalType {
        DecimalType { precision: floor_log10(n) + 1, scale: 0 }
    }

    /// Result type of `AVG` (§III-B3): SUM's type divided by the count.
    pub fn avg_result(&self, n: u64) -> DecimalType {
        self.sum_result(n).div_result(&Self::avg_divisor(n))
    }

    /// Result type of `MIN`/`MAX` (§III-B3): unchanged.
    pub fn min_max_result(&self) -> DecimalType {
        *self
    }

    /// Result type of unary negation: unchanged.
    pub fn neg_result(&self) -> DecimalType {
        *self
    }

    /// Smallest type that can represent both inputs' values exactly —
    /// used when typing CASE/comparison coercions.
    pub fn union_type(&self, other: &DecimalType) -> DecimalType {
        let scale = self.scale.max(other.scale);
        let int = self.int_digits().max(other.int_digits());
        DecimalType { precision: int + scale, scale }
    }
}

impl fmt::Display for DecimalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DECIMAL({}, {})", self.precision, self.scale)
    }
}

impl fmt::Debug for DecimalType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// `Lw` for a given precision: `ceil(p·log₂10 / 32)` (§III-B).
pub fn lw_for_precision(p: u32) -> usize {
    let bits = (p as f64 * LOG2_10).ceil() as usize;
    bits.div_ceil(32).max(1)
}

/// `Lb` for a given precision: `ceil((1 + p·log₂10) / 8)` (§III-B).
pub fn lb_for_precision(p: u32) -> usize {
    let bits = 1 + (p as f64 * LOG2_10).ceil() as usize;
    bits.div_ceil(8).max(1)
}

/// Largest precision whose magnitude **plus one sign bit** fits `lw`
/// words: `floor((32·Lw − 1) / log₂10)`. The evaluation fixes result
/// precisions to 18/38/76/153/307 for LEN = 2/4/8/16/32 (§IV "Workloads");
/// this function generates exactly that series.
pub fn max_precision_for_lw(lw: usize) -> u32 {
    let p = ((32 * lw - 1) as f64 / LOG2_10).floor() as u32;
    debug_assert!(lw_for_precision(p) <= lw);
    p
}

/// `ceil(log₁₀ n)` for n ≥ 1 (0 maps to 0), as used by the SUM rule.
pub fn ceil_log10(n: u64) -> u32 {
    if n <= 1 {
        return 0;
    }
    let mut d = 0;
    let mut bound: u128 = 1;
    while bound < n as u128 {
        bound *= 10;
        d += 1;
    }
    d
}

/// `floor(log₁₀ n)` for n ≥ 1.
pub fn floor_log10(n: u64) -> u32 {
    debug_assert!(n >= 1);
    let mut d = 0;
    let mut bound: u128 = 10;
    while bound <= n as u128 {
        bound *= 10;
        d += 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lw_matches_paper_examples() {
        // §III-B2: precision 4 → Lw = 1; expanded precision 6 → still 1.
        assert_eq!(lw_for_precision(4), 1);
        assert_eq!(lw_for_precision(6), 1);
        // §II: a 32-bit word holds at most 9 digits; 64-bit holds 19.
        assert_eq!(lw_for_precision(9), 1);
        assert_eq!(lw_for_precision(10), 2);
        assert_eq!(lw_for_precision(19), 2);
        assert_eq!(lw_for_precision(20), 3);
    }

    #[test]
    fn evaluation_len_series() {
        // §IV "Workloads": precisions 18/38/76/153/307 ↔ LEN 2/4/8/16/32.
        for (p, len) in [(18, 2), (38, 4), (76, 8), (153, 16), (307, 32)] {
            assert_eq!(lw_for_precision(p), len, "p={p}");
            assert_eq!(max_precision_for_lw(len), p, "len={len}");
        }
    }

    #[test]
    fn lb_matches_fig4_example() {
        // Fig. 4: -1.23 in DECIMAL(10, 2) takes 5 bytes compact…
        assert_eq!(lb_for_precision(10), 5);
        // …and 9 bytes word-aligned (2 words + sign byte).
        assert_eq!(lw_for_precision(10) * 4 + 1, 9);
        // Listing 1: DECIMAL(4,2)+DECIMAL(4,1) result precision 6 → Lb = 3.
        assert_eq!(lb_for_precision(6), 3);
        assert_eq!(lb_for_precision(4), 2);
    }

    #[test]
    fn add_rule() {
        // (4,2) + (4,1): s1=2 ≥ s2=1 → (max(4, 4+1)+1, 2) = (6, 2) — the
        // Listing 1 expansion "to avoid potential overflows… expand the
        // precision of the results to 6".
        let a = DecimalType::new_unchecked(4, 2);
        let b = DecimalType::new_unchecked(4, 1);
        assert_eq!(a.add_result(&b), DecimalType::new_unchecked(6, 2));
        assert_eq!(b.add_result(&a), DecimalType::new_unchecked(6, 2)); // symmetric
    }

    #[test]
    fn mul_rule() {
        let a = DecimalType::new_unchecked(12, 5);
        let b = DecimalType::new_unchecked(12, 5);
        assert_eq!(a.mul_result(&b), DecimalType::new_unchecked(24, 10)); // Fig. 6 "×" node
    }

    #[test]
    fn div_rule() {
        let a = DecimalType::new_unchecked(17, 5);
        let b = DecimalType::new_unchecked(14, 2);
        let q = a.div_result(&b);
        assert_eq!(q.scale, 9); // s1 + 4
        assert_eq!(q.precision, 17 - 14 + 2 + 5); // p1 - p2 + s2 + 5 = 10
        // Degenerate case must still admit the scale.
        let tiny = DecimalType::new_unchecked(2, 1);
        let huge = DecimalType::new_unchecked(300, 0);
        let q2 = tiny.div_result(&huge);
        assert!(q2.precision > q2.scale);
    }

    #[test]
    fn mod_rule() {
        let a = DecimalType::new_unchecked(17, 0);
        let n = DecimalType::new_unchecked(18, 0);
        assert_eq!(a.mod_result(&n), DecimalType::new_unchecked(18, 0));
    }

    #[test]
    fn sum_and_avg_rules() {
        let c = DecimalType::new_unchecked(12, 2);
        // 10M tuples → ceil(log10 1e7) = 7 extra digits.
        assert_eq!(c.sum_result(10_000_000), DecimalType::new_unchecked(19, 2));
        assert_eq!(DecimalType::avg_divisor(10_000_000), DecimalType::new_unchecked(8, 0));
        let avg = c.avg_result(10_000_000);
        assert_eq!(avg.scale, 2 + DIV_EXTRA_SCALE);
    }

    #[test]
    fn log10_helpers() {
        assert_eq!(ceil_log10(1), 0);
        assert_eq!(ceil_log10(10), 1);
        assert_eq!(ceil_log10(11), 2);
        assert_eq!(ceil_log10(10_000_000), 7);
        assert_eq!(floor_log10(1), 0);
        assert_eq!(floor_log10(9), 0);
        assert_eq!(floor_log10(10), 1);
        assert_eq!(floor_log10(10_000_000), 7);
    }

    #[test]
    fn type_validation() {
        assert!(DecimalType::new(0, 0).is_err());
        assert!(DecimalType::new(3, 4).is_err());
        assert!(DecimalType::new(38, 38).is_ok());
    }
}
