//! Multi-word division.
//!
//! The paper describes four ways to divide (§II-B, §III-C2):
//!
//! 1. fast paths — if both operands fit in a 64-bit word, a single `div`
//!    instruction; if the divisor is one 32-bit word, divide the dividend
//!    word-by-word from the most significant end ([`div_rem`] dispatches
//!    both);
//! 2. the GPU single-thread algorithm — bracket the quotient range with
//!    `bfind` (most-significant-bit positions) and **binary-search** the
//!    quotient ([`div_rem_binary_search`]);
//! 3. **Newton–Raphson** reciprocal iteration, used by the CGBN-based
//!    multi-threaded kernels ([`div_rem_newton`]);
//! 4. the **Goldschmidt** convergence division ([`div_rem_goldschmidt`]).
//!
//! The CPU-reference algorithm backing everything else is Knuth's
//! Algorithm D ([`div_rem_knuth`]). All five agree bit-for-bit; the
//! property tests at the crate root cross-check them.

use crate::limbs::{self, Limb};
use crate::mul;
use core::cmp::Ordering;

/// Quotient and remainder of `a / b` (magnitudes). Dispatches the paper's
/// fast paths before falling back to Knuth's Algorithm D.
///
/// # Panics
/// Panics if `b` is zero.
pub fn div_rem(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let nb = limbs::sig_limbs(b);
    assert!(nb > 0, "division by zero");
    let na = limbs::sig_limbs(a);
    if na == 0 || limbs::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..na].to_vec());
    }
    // Fast path 1: both operands fit in 64 bits → hardware `div`.
    if let (Some(x), Some(y)) = (limbs::to_u64(a), limbs::to_u64(b)) {
        return (limbs::from_u64(x / y), limbs::from_u64(x % y));
    }
    // Fast path 2: single-word divisor → most-significant-first word division.
    if nb == 1 {
        let mut q = a[..na].to_vec();
        let r = limbs::div_limb_in_place(&mut q, b[0]);
        limbs::trim(&mut q);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    div_rem_knuth(a, b)
}

/// Knuth Algorithm D (TAOCP vol. 2, 4.3.1) on 32-bit limbs.
pub fn div_rem_knuth(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let n = limbs::sig_limbs(b);
    assert!(n > 0, "division by zero");
    let m = limbs::sig_limbs(a);
    if m == 0 || limbs::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..m].to_vec());
    }
    if n == 1 {
        let mut q = a[..m].to_vec();
        let r = limbs::div_limb_in_place(&mut q, b[0]);
        limbs::trim(&mut q);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b[n - 1].leading_zeros() as u64;
    let bn = limbs::shl_bits(&b[..n], shift);
    debug_assert_eq!(bn.len(), n);
    let mut an = limbs::shl_bits(&a[..m], shift);
    an.resize(m + 1, 0);

    let mut q = vec![0 as Limb; m - n + 1];
    // D2..D7: main loop, one quotient limb per iteration.
    for j in (0..=m - n).rev() {
        // D3: estimate qhat from the top two dividend limbs over the top
        // divisor limb, then correct with the second divisor limb.
        let top = ((an[j + n] as u64) << 32) | an[j + n - 1] as u64;
        let mut qhat = top / bn[n - 1] as u64;
        let mut rhat = top % bn[n - 1] as u64;
        loop {
            if qhat >> 32 != 0
                || qhat * bn[n - 2] as u64 > ((rhat << 32) | an[j + n - 2] as u64)
            {
                qhat -= 1;
                rhat += bn[n - 1] as u64;
                if rhat >> 32 == 0 {
                    continue;
                }
            }
            break;
        }
        // D4: multiply-and-subtract qhat * bn from the dividend window.
        let mut p = vec![0 as Limb; n + 1];
        limbs::mul_limb_add(&mut p, &bn, qhat as Limb, 0);
        let window = &mut an[j..=j + n];
        if limbs::sub_assign(window, &p) {
            // D6: the estimate was one too large — add the divisor back.
            qhat -= 1;
            let carry = limbs::add_assign(window, &bn);
            debug_assert!(carry, "add-back must cancel the borrow");
        }
        q[j] = qhat as Limb;
    }

    // D8: denormalize the remainder.
    an.truncate(n);
    let mut r = limbs::shr_bits(&an, shift);
    limbs::trim(&mut q);
    limbs::trim(&mut r);
    (q, r)
}

/// The paper's single-thread GPU division (§III-C2): bracket the quotient
/// with the most-significant-bit positions of dividend and divisor
/// (`bfind`), then binary-search the quotient, testing each probe with a
/// full multiply-and-compare.
pub fn div_rem_binary_search(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let nb = limbs::sig_limbs(b);
    assert!(nb > 0, "division by zero");
    let na = limbs::sig_limbs(a);
    if na == 0 || limbs::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..na].to_vec());
    }
    let la = limbs::bit_len(a);
    let lb = limbs::bit_len(b);
    // If a is 1xxxxx₂ and b is 1xxx₂ the quotient lies in
    // [2^(la-lb-1), 2^(la-lb+1)) — the paper's quotient range.
    let mut lo: Vec<Limb> = if la > lb {
        limbs::shl_bits(&[1], la - lb - 1)
    } else {
        vec![1]
    };
    let mut hi: Vec<Limb> = limbs::shl_bits(&[1], la - lb + 1); // exclusive
    // Invariant: lo*b <= a < hi*b. Find the largest q with q*b <= a.
    while {
        let mut gap = hi.clone();
        let borrow = limbs::sub_assign(&mut gap, &lo);
        debug_assert!(!borrow);
        limbs::trim(&mut gap);
        limbs::cmp(&gap, &[1]) == Ordering::Greater
    } {
        // mid = (lo + hi) / 2
        let mut mid = limbs::add(&lo, &hi);
        mid = limbs::shr_bits(&mid, 1);
        let prod = mul::mul(&mid, b);
        if limbs::cmp(&prod, a) == Ordering::Greater {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    let prod = mul::mul(&lo, b);
    let mut r = a[..na].to_vec();
    let borrow = limbs::sub_assign(&mut r, &prod);
    debug_assert!(!borrow);
    limbs::trim(&mut r);
    limbs::trim(&mut lo);
    (lo, r)
}

/// Newton–Raphson division (§II-B): approximate `1/b` in fixed point by
/// iterating `xᵢ₊₁ = xᵢ(2 − b·xᵢ)`, then multiply by the dividend and
/// correct. This is the algorithm the multi-threaded (CGBN-style) kernels
/// use (§III-E1).
pub fn div_rem_newton(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let nb = limbs::sig_limbs(b);
    assert!(nb > 0, "division by zero");
    let na = limbs::sig_limbs(a);
    if na == 0 || limbs::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..na].to_vec());
    }
    if nb == 1 {
        // Reciprocal iteration is pointless for single-word divisors.
        return div_rem(a, b);
    }
    let la = limbs::bit_len(a);
    let lb = limbs::bit_len(b);
    // x approximates floor(2^k / b) with k = la + 1 fraction bits.
    let k = la + 1;

    // Initial estimate from the divisor's top 32 bits:
    //   b ≈ b_top · 2^(lb−32)  ⇒  2^k/b ≈ (2^63 / b_top) · 2^(k−lb−31).
    let b_top = {
        let top = limbs::shr_bits(&b[..nb], lb - 32);
        top[0] as u64
    };
    let est = (1u64 << 63) / b_top; // 31..32 significant bits
    let mut x: Vec<Limb> = if k >= lb + 31 {
        limbs::shl_bits(&limbs::from_u64(est), k - lb - 31)
    } else {
        limbs::shr_bits(&limbs::from_u64(est), lb + 31 - k)
    };
    if limbs::is_zero(&x) {
        x = vec![1];
    }

    // Quadratic convergence: ~30 correct bits double per step.
    let two_pow_k1 = limbs::shl_bits(&[1], k + 1);
    let mut iters = 0;
    let max_iters = 2 * (64 - k.leading_zeros() as usize) + 4;
    loop {
        // e = 2^(k+1) − b·x ;  x' = (x · e) >> k
        let bx = mul::mul(b, &x);
        if limbs::cmp(&bx, &two_pow_k1) != Ordering::Less {
            // Overshoot: shrink x and retry.
            x = limbs::shr_bits(&x, 1);
            if limbs::is_zero(&x) {
                x = vec![1];
            }
            iters += 1;
            if iters > max_iters {
                break;
            }
            continue;
        }
        let mut e = two_pow_k1.clone();
        let borrow = limbs::sub_assign(&mut e, &bx);
        debug_assert!(!borrow);
        limbs::trim(&mut e);
        let nx = limbs::shr_bits(&mul::mul(&x, &e), k);
        iters += 1;
        if limbs::cmp(&nx, &x) == Ordering::Equal || iters > max_iters {
            x = nx;
            break;
        }
        x = nx;
    }

    // q ≈ (a · x) >> k, then correct the few-ULP error exactly.
    let mut q = limbs::shr_bits(&mul::mul(a, &x), k);
    correct_quotient(&mut q, a, b);
    let prod = mul::mul(&q, b);
    let mut r = a[..na].to_vec();
    let borrow = limbs::sub_assign(&mut r, &prod);
    debug_assert!(!borrow);
    limbs::trim(&mut r);
    limbs::trim(&mut q);
    (q, r)
}

/// Goldschmidt division (§II-B): scale numerator and denominator by a
/// convergence factor `F = 2 − D` until the denominator approaches 1; the
/// numerator then approaches the quotient.
pub fn div_rem_goldschmidt(a: &[Limb], b: &[Limb]) -> (Vec<Limb>, Vec<Limb>) {
    let nb = limbs::sig_limbs(b);
    assert!(nb > 0, "division by zero");
    let na = limbs::sig_limbs(a);
    if na == 0 || limbs::cmp(a, b) == Ordering::Less {
        return (Vec::new(), a[..na].to_vec());
    }
    let la = limbs::bit_len(a);
    let lb = limbs::bit_len(b);
    // Fixed point with f fraction bits; generous guard bits keep the
    // truncation error below the final correction's reach.
    let f = la + 64;
    let one = limbs::shl_bits(&[1], f);
    let two = limbs::shl_bits(&[1], f + 1);

    // Normalize: D₀ = b / 2^lb ∈ [0.5, 1), N₀ = a / 2^lb.
    let mut d = limbs::shl_bits(&b[..nb], f - lb);
    let mut n = limbs::shl_bits(&a[..na], f - lb);

    for _ in 0..128 {
        // F = 2 − D
        let mut fch = two.clone();
        let borrow = limbs::sub_assign(&mut fch, &d);
        debug_assert!(!borrow);
        limbs::trim(&mut fch);
        if limbs::cmp(&fch, &one) == Ordering::Equal {
            break; // D has converged to 1.0 at this precision
        }
        n = limbs::shr_bits(&mul::mul(&n, &fch), f);
        d = limbs::shr_bits(&mul::mul(&d, &fch), f);
    }
    let mut q = limbs::shr_bits(&n, f);
    correct_quotient(&mut q, a, b);
    let prod = mul::mul(&q, b);
    let mut r = a[..na].to_vec();
    let borrow = limbs::sub_assign(&mut r, &prod);
    debug_assert!(!borrow);
    limbs::trim(&mut r);
    limbs::trim(&mut q);
    (q, r)
}

/// Nudges an approximate quotient to the exact floor quotient.
fn correct_quotient(q: &mut Vec<Limb>, a: &[Limb], b: &[Limb]) {
    // Lower q while q*b > a.
    loop {
        let prod = mul::mul(q, b);
        if limbs::cmp(&prod, a) != Ordering::Greater {
            break;
        }
        let borrow = limbs::sub_assign(q, &[1]);
        debug_assert!(!borrow);
        limbs::trim(q);
    }
    // Raise q while (q+1)*b <= a.
    loop {
        let q1 = limbs::add(q, &[1]);
        let prod = mul::mul(&q1, b);
        if limbs::cmp(&prod, a) == Ordering::Greater {
            break;
        }
        *q = q1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::limbs::{from_u128, to_u128};

    fn check_all(a: u128, b: u128) {
        let (la, lb) = (from_u128(a), from_u128(b));
        let algos: [(&str, fn(&[Limb], &[Limb]) -> (Vec<Limb>, Vec<Limb>)); 5] = [
            ("dispatch", div_rem),
            ("knuth", div_rem_knuth),
            ("binary_search", div_rem_binary_search),
            ("newton", div_rem_newton),
            ("goldschmidt", div_rem_goldschmidt),
        ];
        for (name, f) in algos {
            let (q, r) = f(&la, &lb);
            assert_eq!(to_u128(&q).unwrap(), a / b, "{name}: q of {a}/{b}");
            assert_eq!(to_u128(&r).unwrap(), a % b, "{name}: r of {a}/{b}");
        }
    }

    #[test]
    fn all_algorithms_agree_on_u128_cases() {
        let cases: [(u128, u128); 10] = [
            (0, 3),
            (7, 7),
            (6, 7),
            (u128::MAX, 1),
            (u128::MAX, 2),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, u128::MAX - 1),
            (123_456_789_012_345_678_901_234_567_890, 997),
            (123_456_789_012_345_678_901_234_567_890, 10_000_000_000_000_000_000),
            (1 << 100, (1 << 50) + 1),
        ];
        for (a, b) in cases {
            check_all(a, b);
        }
    }

    #[test]
    fn knuth_add_back_case() {
        // Constructed to trigger the rare D6 add-back step.
        let a = vec![0, 0, 0x8000_0000];
        let b = vec![1, 0x8000_0000];
        let (q, r) = div_rem_knuth(&a, &b);
        // Verify by reconstruction: a = q*b + r, r < b.
        let mut recon = mul::mul(&q, &b);
        recon.resize(recon.len().max(3) + 1, 0);
        let carry = limbs::add_assign(&mut recon, &r);
        assert!(!carry);
        assert_eq!(limbs::cmp(&recon, &a), Ordering::Equal);
        assert_eq!(limbs::cmp(&r, &b), Ordering::Less);
    }

    #[test]
    fn large_operand_reconstruction() {
        // 20-limb / 7-limb division, checked by reconstruction.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 32) as u32
        };
        let a: Vec<u32> = (0..20).map(|_| next() | 1).collect();
        let b: Vec<u32> = (0..7).map(|_| next() | 1).collect();
        for f in [div_rem_knuth, div_rem_binary_search, div_rem_newton, div_rem_goldschmidt] {
            let (q, r) = f(&a, &b);
            let mut recon = mul::mul(&q, &b);
            recon.resize(recon.len().max(a.len()) + 1, 0);
            assert!(!limbs::add_assign(&mut recon, &r));
            assert_eq!(limbs::cmp(&recon, &a), Ordering::Equal);
            assert_eq!(limbs::cmp(&r, &b), Ordering::Less);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        div_rem(&[1], &[]);
    }
}
