#![warn(missing_docs)]
//! # up-num — arbitrary-precision fixed-point decimal arithmetic
//!
//! The numeric core of the UltraPrecise reproduction (ICDE 2024): 32-bit
//! limb primitives with explicit carry chains (the software analogue of the
//! paper's PTX `addc`/`subc`), school-book and Karatsuba multiplication,
//! five division algorithms (Knuth D, single-word fast path, binary-search
//! quotient, Newton–Raphson, Goldschmidt), a signed [`BigInt`], the
//! [`DecimalType`] metadata with the paper's §III-B3 intermediate-precision
//! rules, the fixed-point value type [`UpDecimal`], and the compact ↔
//! word-aligned representation pair of Fig. 4.
//!
//! ```
//! use up_num::{DecimalType, UpDecimal};
//!
//! let t = DecimalType::new(17, 5).unwrap();
//! let a = UpDecimal::parse("123.45678", t).unwrap();
//! let b = UpDecimal::parse("0.00322", t).unwrap();
//! assert_eq!(a.add(&b).to_string(), "123.46000");
//! ```

pub mod bigint;
pub mod compact;
pub mod decimal;
pub mod div;
pub mod dtype;
pub mod limbs;
pub mod mul;
pub mod pow10;

pub use bigint::{BigInt, Sign};
pub use compact::{decode_compact, encode_compact, encode_compact_into, expand_compact, WordRepr};
pub use decimal::UpDecimal;
pub use dtype::{lb_for_precision, lw_for_precision, max_precision_for_lw, DecimalType, DIV_EXTRA_SCALE};

use core::fmt;

/// Errors produced by the numeric core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NumError {
    /// A literal could not be parsed.
    Parse(String),
    /// A value needs more digits than its declared precision.
    Overflow {
        /// The violated type.
        ty: DecimalType,
        /// Digits the value actually needs.
        digits: u32,
    },
    /// Division or modulo by zero.
    DivisionByZero,
    /// An invalid `DECIMAL(p, s)` declaration.
    InvalidType {
        /// Offending precision.
        precision: u32,
        /// Offending scale.
        scale: u32,
        /// Human-readable constraint.
        reason: &'static str,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Parse(msg) => write!(f, "parse error: {msg}"),
            NumError::Overflow { ty, digits } => {
                write!(f, "numeric overflow: {digits} digits do not fit {ty}")
            }
            NumError::DivisionByZero => write!(f, "division by zero"),
            NumError::InvalidType { precision, scale, reason } => {
                write!(f, "invalid DECIMAL({precision}, {scale}): {reason}")
            }
        }
    }
}

impl std::error::Error for NumError {}
