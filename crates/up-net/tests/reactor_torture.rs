//! Adversarial wire-layer tests, run against both backends:
//!
//! * **Slow loris** — dozens of connections dribbling one byte of a
//!   frame at a time must not starve the event loop (a legit client on
//!   the same single event thread keeps completing queries) and must
//!   still be reaped by the idle timeout, because `last_activity` only
//!   advances on *complete* frames.
//! * **Slow consumer** — a peer that pipelines queries but never reads
//!   replies overflows its bounded outbound queue and is dropped with
//!   stable code 27 ([`ErrorCode::SlowConsumer`]), counted exactly once.
//! * **Resumable decode** — a proptest feeding arbitrarily-chunked
//!   frame streams through [`FrameAssembler`], which must reproduce the
//!   frame sequence exactly regardless of where the splits fall.

use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use up_engine::{ColumnType, Schema, Value};
use up_net::{
    read_frame, Client, ErrorCode, Frame, FrameAssembler, NetConfig, ReactorMode, Reply,
    TenantQuota, TenantRegistry, WireServer, DEFAULT_MAX_FRAME,
};
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

fn ty() -> DecimalType {
    DecimalType::new_unchecked(10, 2)
}

/// An `UpServer` with table `t(x DECIMAL(10,2))` holding `n` rows.
fn seeded_up(n: usize) -> Arc<UpServer> {
    let up = Arc::new(UpServer::new(ServerConfig::default()));
    up.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(ty()))]));
    let rows: Vec<Vec<Value>> = (0..n)
        .map(|i| vec![Value::Decimal(UpDecimal::parse(&format!("{}.{:02}", i % 500, i % 100), ty()).unwrap())])
        .collect();
    up.insert_many("t", rows).unwrap();
    up
}

fn registry() -> Arc<TenantRegistry> {
    let tenants = Arc::new(TenantRegistry::new());
    tenants.register("acme", "token", TenantQuota::default());
    tenants
}

/// Instantiates each test body under both wire backends.
macro_rules! both_modes {
    ($($name:ident),+ $(,)?) => {
        mod threads {
            $(#[test]
            fn $name() {
                super::$name(up_net::ReactorMode::Threads);
            })+
        }
        mod epoll {
            $(#[test]
            fn $name() {
                super::$name(up_net::ReactorMode::Epoll);
            })+
        }
    };
}

both_modes!(
    slow_loris_is_reaped_without_starving_the_event_loop,
    slow_consumer_overflow_gets_code_27_and_the_boot,
);

fn slow_loris_is_reaped_without_starving_the_event_loop(mode: ReactorMode) {
    const LORIS: usize = 24;
    let idle = Duration::from_millis(400);
    let up = seeded_up(64);
    let mut server = WireServer::start(
        up,
        registry(),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            reactor: mode,
            // One event thread: if trickled bytes could monopolise the
            // loop, the legit client below would stall visibly.
            event_threads: 1,
            idle_timeout: idle,
            max_conns: 256,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Each loris dribbles one byte of a legal Query frame every 30 ms,
    // stopping (still mid-frame) before the idle deadline so the
    // eviction notice is read off a quiet socket. No complete frame
    // ever lands, so `last_activity` never advances and the server
    // must evict at ~400 ms even though bytes kept arriving.
    let loris: Vec<_> = (0..LORIS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut s = TcpStream::connect(addr).unwrap();
                let bytes = Frame::Query { id: 1, sql: "SELECT SUM(x) FROM t".into() }.to_bytes();
                for b in bytes.iter().take(10) {
                    if s.write_all(std::slice::from_ref(b)).is_err() {
                        break; // evicted early; the read below still sees why
                    }
                    std::thread::sleep(Duration::from_millis(30));
                }
                s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                match read_frame(&mut s, DEFAULT_MAX_FRAME) {
                    Ok(Some(Frame::Error { id: 0, code, .. })) => {
                        assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::IdleTimeout));
                    }
                    other => panic!("expected an IdleTimeout eviction notice, got {other:?}"),
                }
            })
        })
        .collect();

    // Meanwhile a legit client shares the single event thread with all
    // the loris sockets and must keep making progress.
    let mut client = Client::connect(addr, "acme", "token").unwrap();
    let t0 = Instant::now();
    let mut done = 0u32;
    while t0.elapsed() < Duration::from_millis(900) {
        let rows = client.query("SELECT SUM(x) FROM t").unwrap();
        assert_eq!(rows.rows.len(), 1);
        done += 1;
    }
    assert!(done >= 5, "legit client starved by loris traffic: {done} queries in 900 ms");
    client.goodbye().unwrap();

    for h in loris {
        h.join().unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.idle_closed, LORIS as u64, "every loris reaped by idle timeout");
    assert_eq!(stats.slow_closed, 0);
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}

fn slow_consumer_overflow_gets_code_27_and_the_boot(mode: ReactorMode) {
    // 30k rows render to ~400 KiB per reply; 24 pipelined replies are
    // ~10 MiB — far past what loopback socket buffers absorb (~4 MiB
    // measured) — so the 4 KiB outbound bound must overflow while the
    // client deliberately reads nothing.
    let up = seeded_up(30_000);
    let mut server = WireServer::start(
        up,
        registry(),
        NetConfig {
            addr: "127.0.0.1:0".into(),
            reactor: mode,
            max_inflight: 32,
            max_write_buf: 4096,
            ..NetConfig::default()
        },
    )
    .unwrap();

    let mut client = Client::connect(server.addr(), "acme", "token").unwrap();
    for _ in 0..24 {
        client.send_query("SELECT x FROM t").unwrap();
    }

    // The server must flag the connection on its own; the client is
    // still not reading. Poll the counter rather than sleeping blind.
    let t0 = Instant::now();
    while server.stats().slow_closed == 0 {
        assert!(t0.elapsed() < Duration::from_secs(30), "slow consumer never detected");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Now drain: some replies that were already buffered arrive, then
    // the code-27 notice, then Goodbye/EOF.
    let mut saw_slow = false;
    loop {
        match client.recv_reply() {
            Ok(Reply::Error { id: 0, code, .. })
                if ErrorCode::from_u16(code) == Some(ErrorCode::SlowConsumer) =>
            {
                saw_slow = true;
            }
            Ok(_) => {}
            Err(_) => break, // Goodbye or EOF
        }
    }
    assert!(saw_slow, "expected a SlowConsumer (27) notice before the close");
    let stats = server.stats();
    assert_eq!(stats.slow_closed, 1, "one connection, counted once");
    assert_eq!(stats.protocol_errors, 0);
    server.shutdown();
}

// ---- resumable partial-frame decode ------------------------------------

/// Printable-ASCII strings up to `max` bytes (the vendored proptest
/// shim has no string strategies, so build them from byte vectors).
fn arb_text(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

fn arb_frame() -> BoxedStrategy<Frame> {
    prop_oneof![
        (arb_text(12), arb_text(24)).prop_map(|(tenant, token)| Frame::Auth { tenant, token }),
        (any::<u64>(), arb_text(48)).prop_map(|(id, sql)| Frame::Query { id, sql }),
        any::<u64>().prop_map(|id| Frame::Cancel { id }),
        (any::<u64>(), any::<u16>(), arb_text(32))
            .prop_map(|(id, code, message)| Frame::Error { id, code, message }),
        (
            any::<u64>(),
            prop::collection::vec(arb_text(6), 1..3),
            prop::collection::vec(prop::collection::vec(arb_text(10), 1..3), 0..4),
        )
            .prop_map(|(id, columns, mut rows)| {
                let width = columns.len();
                for row in &mut rows {
                    row.resize(width, String::new());
                }
                Frame::Rows { id, columns, rows }
            }),
        (0u8..1).prop_map(|_| Frame::Goodbye),
    ]
    .boxed()
}

proptest! {
    /// Whatever the byte stream is cut into, the assembler yields the
    /// exact frame sequence and ends with no partial frame pending.
    #[test]
    fn assembler_survives_any_chunking(
        frames in prop::collection::vec(arb_frame(), 1..8),
        cuts in prop::collection::vec(1usize..64, 1..48),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            f.encode(&mut stream);
        }

        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut = cuts.iter().cycle();
        while pos < stream.len() {
            let n = (*cut.next().unwrap()).min(stream.len() - pos);
            asm.push(&stream[pos..pos + n]);
            pos += n;
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME).unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(asm.pending(), 0);
    }
}
