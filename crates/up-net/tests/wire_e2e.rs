//! End-to-end wire tests: real loopback TCP connections against a real
//! `UpServer`, checking result fidelity, stable error codes, tenant
//! quotas, fairness skew, and lifecycle edges.
//!
//! Every test body takes the [`ReactorMode`] to run under and is
//! instantiated twice (`threads::*`, `epoll::*`), so the legacy
//! thread-per-connection backend and the epoll reactor must behave
//! identically on every path — results, codes, quotas, idle eviction,
//! and shutdown drain. (Off Linux the `epoll` leg degrades to threads
//! via [`ReactorMode::effective`] and becomes a second threads run.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use up_engine::{ColumnType, Profile, Schema, Value};
use up_net::{
    read_frame, write_frame, Client, ErrorCode, Frame, NetConfig, ReactorMode, Reply,
    TenantQuota, TenantRegistry, WireError, WireServer, DEFAULT_MAX_FRAME,
};
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

fn ty() -> DecimalType {
    DecimalType::new_unchecked(10, 2)
}

fn dec(s: &str) -> Value {
    Value::Decimal(UpDecimal::parse(s, ty()).unwrap())
}

/// An `UpServer` with table `t(x DECIMAL(10,2))` holding `n` rows.
fn seeded_up(config: ServerConfig, n: usize) -> Arc<UpServer> {
    let up = Arc::new(UpServer::new(config));
    up.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(ty()))]));
    let rows: Vec<Vec<Value>> =
        (0..n).map(|i| vec![dec(&format!("{}.{:02}", i % 500, i % 100))]).collect();
    up.insert_many("t", rows).unwrap();
    up
}

fn open_registry(names: &[&str]) -> Arc<TenantRegistry> {
    let tenants = Arc::new(TenantRegistry::new());
    for n in names {
        tenants.register(n, "token", TenantQuota::default());
    }
    tenants
}

fn net_config(mode: ReactorMode) -> NetConfig {
    NetConfig { addr: "127.0.0.1:0".into(), reactor: mode, ..NetConfig::default() }
}

/// Instantiates each test body under both wire backends.
macro_rules! both_modes {
    ($($name:ident),+ $(,)?) => {
        mod threads {
            $(#[test]
            fn $name() {
                super::$name(up_net::ReactorMode::Threads);
            })+
        }
        mod epoll {
            $(#[test]
            fn $name() {
                super::$name(up_net::ReactorMode::Epoll);
            })+
        }
    };
}

both_modes!(
    wire_rows_are_bit_identical_to_in_process_queries,
    server_errors_arrive_with_their_stable_codes,
    tenant_quotas_enforce_rate_concurrency_and_byte_budget,
    byte_budget_and_inflight_cap_cut_off_over_the_wire,
    handshake_violations_and_garbage_get_protocol_codes,
    connection_cap_refuses_and_idle_timeout_reaps,
    weighted_tenants_get_a_skewed_completion_share_under_saturation,
    shutdown_drains_inflight_queries_before_goodbye,
);

fn remote_code(err: WireError) -> ErrorCode {
    match err {
        WireError::Remote { code, .. } => {
            ErrorCode::from_u16(code).unwrap_or_else(|| panic!("unknown wire code {code}"))
        }
        other => panic!("expected a remote error, got {other}"),
    }
}

fn wire_rows_are_bit_identical_to_in_process_queries(mode: ReactorMode) {
    let up = seeded_up(ServerConfig::default(), 64);
    let tenants = open_registry(&["alpha", "beta", "gamma"]);
    let mut server = WireServer::start(Arc::clone(&up), tenants, net_config(mode)).unwrap();

    let queries = [
        "SELECT x + x FROM t",
        "SELECT SUM(x) FROM t",
        "SELECT x FROM t WHERE x > 100 ORDER BY x DESC LIMIT 5",
        "SELECT SUM(x * x) AS s, COUNT(*) AS n FROM t",
    ];
    for tenant in ["alpha", "beta", "gamma"] {
        let mut client = Client::connect(server.addr(), tenant, "token").unwrap();
        let reference = up.connect(Profile::UltraPrecise);
        for sql in queries {
            let wire = client.query(sql).unwrap();
            let local = up.query(reference, sql).unwrap();
            assert_eq!(wire.columns, local.columns, "{tenant}: {sql}");
            let local_rows: Vec<Vec<String>> = local
                .rows
                .iter()
                .map(|row| row.iter().map(|v| v.render()).collect())
                .collect();
            assert_eq!(wire.rows, local_rows, "{tenant}: {sql}");
        }
        client.goodbye().unwrap();
    }

    // Engine failures execute (workers > 0) and come back as stable
    // code 6 with the engine's message.
    let mut client = Client::connect(server.addr(), "alpha", "token").unwrap();
    let err = client.query("SELECT definitely not sql").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::QueryFailed);
    server.shutdown();
}

fn server_errors_arrive_with_their_stable_codes(mode: ReactorMode) {
    // workers:0 parks everything in the queue forever, making each
    // error path deterministic: queue_capacity 2 makes the third
    // pipelined query a Rejected, closing the session turns the two
    // queued ones into UnknownSession, and a fresh query on a new
    // connection runs out the 300 ms ticket deadline into a Timeout.
    let up = seeded_up(
        ServerConfig {
            workers: 0,
            queue_capacity: 2,
            default_timeout: Duration::from_millis(300),
            ..ServerConfig::default()
        },
        8,
    );
    let tenants = open_registry(&["acme"]);
    let mut server = WireServer::start(Arc::clone(&up), tenants, net_config(mode)).unwrap();
    let mut client = Client::connect(server.addr(), "acme", "token").unwrap();

    let q1 = client.send_query("SELECT x FROM t").unwrap();
    let q2 = client.send_query("SELECT x FROM t").unwrap();
    let q3 = client.send_query("SELECT x FROM t").unwrap();
    // The only reply that can arrive this early is q3's rejection.
    match client.recv_reply().unwrap() {
        Reply::Error { id, code, .. } => {
            assert_eq!(id, q3);
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::Rejected));
        }
        Reply::Rows { id, .. } => panic!("query {id} cannot succeed with 0 workers"),
    }
    // Close the session out from under the two queued queries: both
    // resolve with code 2 well before their 300 ms deadline.
    up.close_session(up_server::SessionId(client.session()));
    let mut got = std::collections::HashMap::new();
    for _ in 0..2 {
        match client.recv_reply().unwrap() {
            Reply::Error { id, code, .. } => {
                got.insert(id, ErrorCode::from_u16(code).unwrap());
            }
            Reply::Rows { id, .. } => panic!("query {id} cannot succeed with 0 workers"),
        }
    }
    assert_eq!(got[&q1], ErrorCode::UnknownSession, "{got:?}");
    assert_eq!(got[&q2], ErrorCode::UnknownSession, "{got:?}");

    // A fresh connection (fresh session, empty queue): the queued query
    // runs out the ticket deadline.
    let mut client = Client::connect(server.addr(), "acme", "token").unwrap();
    let err = client.query("SELECT x FROM t").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::Timeout);
    server.shutdown();
}

fn tenant_quotas_enforce_rate_concurrency_and_byte_budget(mode: ReactorMode) {
    let up = seeded_up(
        ServerConfig { workers: 0, default_timeout: Duration::from_millis(200), ..Default::default() },
        8,
    );
    let tenants = Arc::new(TenantRegistry::new());
    // burst 2, negligible refill: the third immediate query throttles.
    tenants.register(
        "bursty",
        "token",
        TenantQuota { qps: 0.001, burst: 2.0, ..TenantQuota::default() },
    );
    tenants.register(
        "narrow",
        "token",
        TenantQuota { max_concurrent: 1, ..TenantQuota::default() },
    );
    let mut server = WireServer::start(Arc::clone(&up), tenants, net_config(mode)).unwrap();

    let mut c = Client::connect(server.addr(), "bursty", "token").unwrap();
    c.send_query("SELECT x FROM t").unwrap();
    c.send_query("SELECT x FROM t").unwrap();
    let q3 = c.send_query("SELECT x FROM t").unwrap();
    // The throttle answers immediately, before the queued pair times out.
    match c.recv_reply().unwrap() {
        Reply::Error { id, code, .. } => {
            assert_eq!(id, q3);
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::RateLimited));
        }
        Reply::Rows { id, .. } => panic!("query {id} cannot succeed with 0 workers"),
    }

    let mut c = Client::connect(server.addr(), "narrow", "token").unwrap();
    c.send_query("SELECT x FROM t").unwrap();
    let q2 = c.send_query("SELECT x FROM t").unwrap();
    match c.recv_reply().unwrap() {
        Reply::Error { id, code, .. } => {
            assert_eq!(id, q2);
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::TenantConcurrency));
        }
        Reply::Rows { id, .. } => panic!("query {id} cannot succeed with 0 workers"),
    }
    server.shutdown();
}

fn byte_budget_and_inflight_cap_cut_off_over_the_wire(mode: ReactorMode) {
    // Budget of 1 byte: the first query lands (the budget is checked
    // before its bytes arrive), the second is refused.
    let up = seeded_up(ServerConfig::default(), 8);
    let tenants = Arc::new(TenantRegistry::new());
    tenants.register(
        "tiny",
        "token",
        TenantQuota { result_byte_budget: 1, ..TenantQuota::default() },
    );
    let mut server = WireServer::start(Arc::clone(&up), tenants, net_config(mode)).unwrap();
    let mut c = Client::connect(server.addr(), "tiny", "token").unwrap();
    c.query("SELECT SUM(x) FROM t").unwrap();
    let err = c.query("SELECT SUM(x) FROM t").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::ByteBudgetExceeded);
    server.shutdown();

    // Per-connection in-flight cap: with 0 workers the first query
    // parks in the queue, so the second deterministically trips the cap
    // before any tenant quota is consulted.
    let up = seeded_up(
        ServerConfig { workers: 0, default_timeout: Duration::from_millis(200), ..Default::default() },
        8,
    );
    let tenants = open_registry(&["acme"]);
    let mut server = WireServer::start(
        Arc::clone(&up),
        tenants,
        NetConfig { max_inflight: 1, ..net_config(mode) },
    )
    .unwrap();
    let mut c = Client::connect(server.addr(), "acme", "token").unwrap();
    c.send_query("SELECT x FROM t").unwrap();
    let q2 = c.send_query("SELECT x FROM t").unwrap();
    match c.recv_reply().unwrap() {
        Reply::Error { id, code, .. } => {
            assert_eq!(id, q2);
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::TooManyInflight));
        }
        Reply::Rows { id, .. } => panic!("query {id} cannot succeed with 0 workers"),
    }
    server.shutdown();
}

fn handshake_violations_and_garbage_get_protocol_codes(mode: ReactorMode) {
    let up = seeded_up(ServerConfig::default(), 4);
    let tenants = open_registry(&["acme"]);
    let mut server = WireServer::start(up, tenants, net_config(mode)).unwrap();

    // Wrong token.
    let err = Client::connect(server.addr(), "acme", "wrong").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::Unauthorized);
    // Unknown tenant.
    let err = Client::connect(server.addr(), "ghost", "token").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::Unauthorized);

    // Query before Hello: BadState, then an orderly close.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    write_frame(&mut raw, &Frame::Query { id: 1, sql: "SELECT 1".into() }).unwrap();
    match read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap() {
        Some(Frame::Error { code, .. }) => {
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::BadState));
        }
        f => panic!("expected BadState error, got {f:?}"),
    }
    assert_eq!(read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap(), Some(Frame::Goodbye));

    // A hostile length prefix: FrameTooLarge, never a hang.
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    use std::io::Write as _;
    raw.write_all(&u32::MAX.to_be_bytes()).unwrap();
    match read_frame(&mut raw, DEFAULT_MAX_FRAME).unwrap() {
        Some(Frame::Error { code, .. }) => {
            assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::FrameTooLarge));
        }
        f => panic!("expected FrameTooLarge error, got {f:?}"),
    }

    assert!(server.stats().protocol_errors >= 2);
    server.shutdown();
}

fn connection_cap_refuses_and_idle_timeout_reaps(mode: ReactorMode) {
    let up = seeded_up(ServerConfig::default(), 4);
    let tenants = open_registry(&["acme"]);
    let mut server = WireServer::start(
        Arc::clone(&up),
        tenants,
        NetConfig {
            max_conns: 1,
            idle_timeout: Duration::from_millis(300),
            ..net_config(mode)
        },
    )
    .unwrap();

    let mut first = Client::connect(server.addr(), "acme", "token").unwrap();
    first.query("SELECT x FROM t").unwrap();
    // Second connection bounces off the cap with a stable code.
    let err = Client::connect(server.addr(), "acme", "token").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::ConnLimit);

    // Going idle past the limit closes the first connection...
    std::thread::sleep(Duration::from_millis(700));
    let err = first.query("SELECT x FROM t").unwrap_err();
    assert_eq!(remote_code(err), ErrorCode::IdleTimeout);
    assert_eq!(server.stats().idle_closed, 1);

    // ...which frees its slot (and its server session) for a newcomer.
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut newcomer = loop {
        match Client::connect(server.addr(), "acme", "token") {
            Ok(c) => break c,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25))
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    };
    newcomer.query("SELECT x FROM t").unwrap();
    assert_eq!(up.metrics().sessions_active, 1, "idle session was closed server-side");
    server.shutdown();
}

fn weighted_tenants_get_a_skewed_completion_share_under_saturation(mode: ReactorMode) {
    // One worker, DRR dequeue (arena on), both tenants keep 32 queries
    // queued: the 2.0-weight tenant should complete ~2× the queries of
    // the 1.0-weight tenant at any cut point.
    let up = seeded_up(
        ServerConfig {
            workers: 1,
            queue_capacity: 256,
            arena: true,
            default_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
        3000,
    );
    let tenants = Arc::new(TenantRegistry::new());
    tenants.register("hot", "token", TenantQuota { weight: 2.0, ..TenantQuota::default() });
    tenants.register("cold", "token", TenantQuota { weight: 1.0, ..TenantQuota::default() });
    let mut server = WireServer::start(
        Arc::clone(&up),
        tenants,
        NetConfig { max_inflight: 64, ..net_config(mode) },
    )
    .unwrap();

    const PER_TENANT: usize = 32;
    let hot_done = Arc::new(AtomicU64::new(0));
    let cold_done = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for (tenant, counter) in
        [("hot", Arc::clone(&hot_done)), ("cold", Arc::clone(&cold_done))]
    {
        let addr = server.addr();
        handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr, tenant, "token").unwrap();
            for _ in 0..PER_TENANT {
                c.send_query("SELECT SUM(x * x) FROM t").unwrap();
            }
            for _ in 0..PER_TENANT {
                match c.recv_reply().unwrap() {
                    Reply::Rows { .. } => {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                    Reply::Error { code, message, .. } => {
                        panic!("query failed with code {code}: {message}")
                    }
                }
            }
        }));
    }

    // Cut when half the combined work is done and compare shares.
    let deadline = Instant::now() + Duration::from_secs(120);
    let (hot_cut, cold_cut) = loop {
        let h = hot_done.load(Ordering::Relaxed);
        let c = cold_done.load(Ordering::Relaxed);
        if h + c >= PER_TENANT as u64 {
            break (h, c);
        }
        assert!(Instant::now() < deadline, "saturation run stalled at {h}+{c}");
        std::thread::sleep(Duration::from_millis(2));
    };
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        hot_cut as f64 >= cold_cut as f64 * 1.3,
        "2:1 weights should skew completions: hot {hot_cut} vs cold {cold_cut}"
    );
    server.shutdown();
}

fn shutdown_drains_inflight_queries_before_goodbye(mode: ReactorMode) {
    let up = seeded_up(
        ServerConfig { workers: 1, default_timeout: Duration::from_secs(60), ..Default::default() },
        2000,
    );
    let tenants = open_registry(&["acme"]);
    let mut server = WireServer::start(
        Arc::clone(&up),
        tenants,
        NetConfig { max_inflight: 16, ..net_config(mode) },
    )
    .unwrap();

    let mut client = Client::connect(server.addr(), "acme", "token").unwrap();
    let mut ids = std::collections::HashSet::new();
    for _ in 0..4 {
        ids.insert(client.send_query("SELECT SUM(x * x) FROM t").unwrap());
    }
    // Wait until all four are actually in flight server-side (a query
    // still sitting in the socket buffer at shutdown is not in-flight —
    // it legitimately gets the shutdown notice instead of running).
    let deadline = Instant::now() + Duration::from_secs(10);
    while up.metrics().submitted < 4 {
        assert!(Instant::now() < deadline, "queries never reached the server");
        std::thread::sleep(Duration::from_millis(1));
    }
    // Shut down while those queries are queued/executing: every one must
    // still resolve (rows or a stable error), and only then Goodbye.
    let shutter = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    let mut resolved = 0;
    while resolved < ids.len() {
        match client.recv_reply() {
            Ok(Reply::Rows { id, .. }) => {
                assert!(ids.remove(&id));
                resolved += 1;
            }
            Ok(Reply::Error { id, code, .. }) if id != 0 => {
                assert!(ids.remove(&id));
                let code = ErrorCode::from_u16(code).unwrap();
                assert!(
                    matches!(code, ErrorCode::Shutdown | ErrorCode::Timeout),
                    "in-flight queries may only fail with a shutdown-ish code, got {code}"
                );
                resolved += 1;
            }
            Ok(Reply::Error { .. }) => {} // connection-level shutdown notice
            Err(e) => panic!("connection died before draining: {e}"),
        }
    }
    shutter.join().unwrap();
    assert_eq!(up.metrics().sessions_active, 0, "drained connections close their sessions");
}
