//! Property tests for the frame codec: arbitrary frames round-trip
//! exactly, and hostile byte streams (truncations, garbage, oversized
//! lengths, wrong versions) always produce protocol errors — never a
//! panic, a hang, or a silently wrong frame.

use proptest::prelude::*;
use up_net::{
    parse_frame, read_frame, ErrorCode, Frame, WireError, DEFAULT_MAX_FRAME, WIRE_VERSION,
};

/// Character palette for generated strings: ASCII, spaces, quotes, and
/// multi-byte UTF-8 (2-, 3-byte sequences).
const PALETTE: [char; 16] =
    ['a', 'Z', '0', ' ', '"', '\\', '\n', ';', '(', '%', 'µ', 'λ', '→', 'Ω', '中', '\t'];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..40)
        .prop_map(|ix| ix.into_iter().map(|i| PALETTE[i]).collect())
}

/// Rectangular `Rows` payloads: `ncols` (1–4) picks how much of the
/// pre-generated width-4 material each row keeps.
fn arb_rows() -> impl Strategy<Value = Frame> {
    (
        any::<u64>(),
        1usize..5,
        prop::collection::vec(arb_string(), 4),
        prop::collection::vec(prop::collection::vec(arb_string(), 4), 0..6),
    )
        .prop_map(|(id, ncols, columns, rows)| Frame::Rows {
            id,
            columns: columns.into_iter().take(ncols).collect(),
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().take(ncols).collect())
                .collect(),
        })
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<u32>())
            .prop_map(|(max_frame, max_inflight)| Frame::Hello { max_frame, max_inflight }),
        (arb_string(), arb_string()).prop_map(|(tenant, token)| Frame::Auth { tenant, token }),
        any::<u64>().prop_map(|session| Frame::AuthOk { session }),
        (any::<u64>(), arb_string()).prop_map(|(id, sql)| Frame::Query { id, sql }),
        any::<u64>().prop_map(|id| Frame::Cancel { id }),
        arb_rows(),
        (any::<u64>(), any::<u16>(), arb_string())
            .prop_map(|(id, code, message)| Frame::Error { id, code, message }),
        arb_string().prop_map(|report| Frame::Metrics { report }),
        (0u8..1).prop_map(|_| Frame::Goodbye),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_frames_roundtrip_exactly(frame in arb_frame()) {
        let bytes = frame.to_bytes();
        let (consumed, decoded) = parse_frame(&bytes, DEFAULT_MAX_FRAME)
            .expect("own encoding must decode")
            .expect("a complete frame must parse");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn concatenated_frames_parse_in_order(frames in prop::collection::vec(arb_frame(), 1..6)) {
        let mut stream = Vec::new();
        for f in &frames {
            f.encode(&mut stream);
        }
        // Buffered path: peel frames off the front one at a time.
        let mut rest = stream.as_slice();
        for expected in &frames {
            let (consumed, got) = parse_frame(rest, DEFAULT_MAX_FRAME).unwrap().unwrap();
            prop_assert_eq!(&got, expected);
            rest = &rest[consumed..];
        }
        prop_assert!(rest.is_empty());
        // Blocking path over the same bytes.
        let mut cursor = std::io::Cursor::new(stream);
        for expected in &frames {
            let got = read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap().unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert_eq!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn truncations_never_parse_as_a_frame(frame in arb_frame(), keep in 0usize..100) {
        let bytes = frame.to_bytes();
        let cut = (bytes.len() - 1) * keep / 100;
        // A strict prefix either asks for more bytes or (if the cut
        // landed inside the 4-byte length prefix and the partial length
        // happens to decode small) errors — it never yields a frame.
        match parse_frame(&bytes[..cut], DEFAULT_MAX_FRAME) {
            Ok(None) | Err(_) => {}
            Ok(Some(_)) => prop_assert!(false, "a {}-byte prefix of {} parsed", cut, bytes.len()),
        }
        // The blocking reader sees EOF mid-frame as an error, not a hang.
        if cut > 0 {
            let mut cursor = std::io::Cursor::new(bytes[..cut].to_vec());
            prop_assert!(read_frame(&mut cursor, DEFAULT_MAX_FRAME).is_err());
        }
    }

    #[test]
    fn garbage_streams_error_instead_of_panicking(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever the bytes, the parser terminates with a ruling.
        match parse_frame(&bytes, DEFAULT_MAX_FRAME) {
            Ok(None) | Ok(Some(_)) | Err(_) => {}
        }
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME) {
            Ok(_) | Err(_) => {}
        }
    }

    #[test]
    fn corrupted_payloads_error_with_stable_codes(
        frame in arb_frame(), pos in any::<usize>(), mask in any::<u8>(),
    ) {
        // Flip payload bits (never the length prefix): decode either
        // still succeeds (the bits were in free text) or errors cleanly.
        let mut bytes = frame.to_bytes();
        if bytes.len() > 4 {
            let pos = 4 + pos % (bytes.len() - 4);
            bytes[pos] ^= mask | 1;
            match parse_frame(&bytes, DEFAULT_MAX_FRAME) {
                Ok(_) => {}
                Err(e) => prop_assert!(
                    matches!(e.code, ErrorCode::BadFrame | ErrorCode::BadVersion),
                    "unexpected code {:?}",
                    e.code
                ),
            }
        }
    }

    #[test]
    fn wrong_versions_are_rejected(frame in arb_frame(), version in any::<u8>()) {
        prop_assume!(version != WIRE_VERSION);
        let mut bytes = frame.to_bytes();
        bytes[4] = version; // the version byte sits right after the length
        let err = parse_frame(&bytes, DEFAULT_MAX_FRAME).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::BadVersion);
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation(len in (1u32 << 10)..u32::MAX) {
        // Advertise a huge payload with no bytes behind it: the limit
        // fires on the prefix alone.
        let limit = 1 << 10;
        let mut bytes = len.to_be_bytes().to_vec();
        bytes.extend_from_slice(&[WIRE_VERSION, 9]); // a touch of payload
        let err = parse_frame(&bytes, limit).unwrap_err();
        prop_assert_eq!(err.code, ErrorCode::FrameTooLarge);
        let mut cursor = std::io::Cursor::new(bytes);
        match read_frame(&mut cursor, limit) {
            Err(WireError::Decode(e)) => prop_assert_eq!(e.code, ErrorCode::FrameTooLarge),
            other => prop_assert!(false, "expected FrameTooLarge, got {:?}", other.map(|_| ())),
        }
    }
}
