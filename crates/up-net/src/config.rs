//! Wire-server tuning knobs, with `UP_NET_*` environment defaults.
//!
//! Same contract as `UP_PIPELINE` / `UP_SIM_THREADS` / `UP_ARENA`: each
//! variable is read once per process, a valid value overrides the
//! default, and an invalid value warns once on stderr and behaves like
//! unset — never a panic, never silently meaning something else.

use crate::frame::DEFAULT_MAX_FRAME;
use std::sync::OnceLock;
use std::time::Duration;

/// Wire-server configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Listen address. Defaults from `UP_NET_ADDR` (must look like
    /// `host:port`), otherwise `127.0.0.1:0` (ephemeral port —
    /// [`WireServer::addr`](crate::WireServer::addr) reports the bound
    /// one).
    pub addr: String,
    /// Connection cap; excess connections are refused with a
    /// [`ConnLimit`](crate::ErrorCode::ConnLimit) error frame.
    /// Defaults from `UP_NET_MAX_CONNS` (≥ 1), otherwise 1024.
    pub max_conns: usize,
    /// Idle timeout: a connection with no inbound frames for this long
    /// is closed (error frame + `Goodbye`) and its session reaped.
    /// Defaults from `UP_NET_IDLE_S` (seconds, > 0), otherwise 30 s.
    pub idle_timeout: Duration,
    /// Largest accepted frame payload in bytes.
    pub max_frame: u32,
    /// Most in-flight queries per connection.
    pub max_inflight: u32,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: addr_from_env().unwrap_or_else(|| "127.0.0.1:0".to_string()),
            max_conns: max_conns_from_env().unwrap_or(1024),
            idle_timeout: Duration::from_secs_f64(idle_s_from_env().unwrap_or(30.0)),
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 8,
        }
    }
}

// The warn-once parsing core lives in `up_gpusim::env` (shared by every
// UP_* knob across the workspace); re-imported here so the per-knob
// parse rules and tests below stay local.
pub(crate) use up_gpusim::env::parse_value as parse_env_value;

pub(crate) fn parse_addr(v: &str) -> Option<String> {
    // A listen address needs a host and a port; full validation happens
    // at bind time, this just catches obviously-not-an-address values.
    let (host, port) = v.rsplit_once(':')?;
    if host.is_empty() || port.parse::<u16>().is_err() {
        return None;
    }
    Some(v.to_string())
}

pub(crate) fn parse_max_conns(v: &str) -> Option<usize> {
    v.parse::<usize>().ok().filter(|&n| n >= 1)
}

pub(crate) fn parse_idle_s(v: &str) -> Option<f64> {
    v.parse::<f64>().ok().filter(|s| s.is_finite() && *s > 0.0)
}

fn addr_from_env() -> Option<String> {
    static CACHE: OnceLock<Option<String>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            parse_env_value(
                "UP_NET_ADDR",
                "host:port",
                std::env::var("UP_NET_ADDR").ok().as_deref(),
                parse_addr,
            )
        })
        .clone()
}

fn max_conns_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_MAX_CONNS",
            "a connection count >= 1",
            std::env::var("UP_NET_MAX_CONNS").ok().as_deref(),
            parse_max_conns,
        )
    })
}

fn idle_s_from_env() -> Option<f64> {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_IDLE_S",
            "idle seconds > 0",
            std::env::var("UP_NET_IDLE_S").ok().as_deref(),
            parse_idle_s,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse_valid_values_and_ignore_nonsense() {
        // UP_NET_ADDR: host:port shapes pass, garbage warns → None.
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("0.0.0.0:5433"), parse_addr),
            Some("0.0.0.0:5433".to_string())
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("[::1]:0"), parse_addr),
            Some("[::1]:0".to_string())
        );
        assert_eq!(parse_env_value("UP_NET_ADDR", "host:port", None, parse_addr), None);
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("not-an-addr"), parse_addr),
            None
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some(":8080"), parse_addr),
            None,
            "empty host is rejected"
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("host:99999"), parse_addr),
            None,
            "port must fit u16"
        );

        // UP_NET_MAX_CONNS: positive integers only.
        assert_eq!(
            parse_env_value("UP_NET_MAX_CONNS", "a count", Some("512"), parse_max_conns),
            Some(512)
        );
        assert_eq!(parse_env_value("UP_NET_MAX_CONNS", "a count", Some("0"), parse_max_conns), None);
        assert_eq!(
            parse_env_value("UP_NET_MAX_CONNS", "a count", Some("many"), parse_max_conns),
            None
        );

        // UP_NET_IDLE_S: positive finite seconds (fractions allowed).
        assert_eq!(
            parse_env_value("UP_NET_IDLE_S", "seconds", Some("2.5"), parse_idle_s),
            Some(2.5)
        );
        assert_eq!(
            parse_env_value("UP_NET_IDLE_S", "seconds", Some(" 30 "), parse_idle_s),
            Some(30.0),
            "values are trimmed before parsing"
        );
        assert_eq!(parse_env_value("UP_NET_IDLE_S", "seconds", Some("-1"), parse_idle_s), None);
        assert_eq!(parse_env_value("UP_NET_IDLE_S", "seconds", Some("inf"), parse_idle_s), None);
    }

    #[test]
    fn defaults_are_sane_without_env() {
        let c = NetConfig::default();
        assert!(c.addr.contains(':'));
        assert!(c.max_conns >= 1);
        assert!(c.idle_timeout > Duration::ZERO);
        assert!(c.max_frame >= 1024);
        assert!(c.max_inflight >= 1);
    }
}
