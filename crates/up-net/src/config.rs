//! Wire-server tuning knobs, with `UP_NET_*` environment defaults.
//!
//! Same contract as `UP_PIPELINE` / `UP_SIM_THREADS` / `UP_ARENA`: each
//! variable is read once per process, a valid value overrides the
//! default, and an invalid value warns once on stderr and behaves like
//! unset — never a panic, never silently meaning something else.

use crate::frame::DEFAULT_MAX_FRAME;
use std::sync::OnceLock;
use std::time::Duration;

/// How the wire server multiplexes connections onto OS threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReactorMode {
    /// Legacy shape: two blocking threads (reader + writer) per
    /// connection, plus a waiter thread per in-flight query. Simple and
    /// portable; costs O(connections) threads.
    Threads,
    /// Readiness-driven reactor (Linux): N event threads own slabs of
    /// nonblocking connections over `epoll`, query completions come
    /// back via an eventfd wakeup, and the only threads are the
    /// acceptor, the event loops, and the server's worker pool —
    /// O(cores), independent of connection count. On non-Linux builds
    /// this falls back to [`Threads`](ReactorMode::Threads).
    Epoll,
}

impl ReactorMode {
    /// True when this build can actually run the epoll reactor.
    pub fn epoll_supported() -> bool {
        cfg!(target_os = "linux")
    }

    /// The mode that will really run: `Epoll` degrades to `Threads` on
    /// platforms without the poller.
    pub fn effective(self) -> ReactorMode {
        match self {
            ReactorMode::Epoll if Self::epoll_supported() => ReactorMode::Epoll,
            ReactorMode::Epoll => ReactorMode::Threads,
            ReactorMode::Threads => ReactorMode::Threads,
        }
    }

    /// Lower-case name, as accepted by `UP_NET_REACTOR`.
    pub fn name(self) -> &'static str {
        match self {
            ReactorMode::Threads => "threads",
            ReactorMode::Epoll => "epoll",
        }
    }
}

/// Wire-server configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Listen address. Defaults from `UP_NET_ADDR` (must look like
    /// `host:port`), otherwise `127.0.0.1:0` (ephemeral port —
    /// [`WireServer::addr`](crate::WireServer::addr) reports the bound
    /// one).
    pub addr: String,
    /// Connection cap; excess connections are refused with a
    /// [`ConnLimit`](crate::ErrorCode::ConnLimit) error frame.
    /// Defaults from `UP_NET_MAX_CONNS` (≥ 1), otherwise 1024.
    pub max_conns: usize,
    /// Idle timeout: a connection with no inbound frames for this long
    /// is closed (error frame + `Goodbye`) and its session reaped.
    /// Defaults from `UP_NET_IDLE_S` (seconds, > 0), otherwise 30 s.
    pub idle_timeout: Duration,
    /// Largest accepted frame payload in bytes.
    pub max_frame: u32,
    /// Most in-flight queries per connection.
    pub max_inflight: u32,
    /// Connection multiplexing strategy. Defaults from
    /// `UP_NET_REACTOR` (`threads | epoll`), otherwise
    /// [`Epoll`](ReactorMode::Epoll) on Linux and
    /// [`Threads`](ReactorMode::Threads) elsewhere. Both modes speak
    /// the identical protocol (same stable codes, quotas, idle/drain
    /// behavior) and are differential-tested against each other.
    pub reactor: ReactorMode,
    /// Event threads of the epoll reactor (ignored in threads mode).
    /// Defaults from `UP_NET_EVENT_THREADS` (`1..=64`), otherwise
    /// `min(4, available cores)`.
    pub event_threads: usize,
    /// Per-connection outbound-queue bound in bytes. Once a
    /// connection's un-flushed replies exceed this, the peer is deemed
    /// a slow consumer: the server answers
    /// [`SlowConsumer`](crate::ErrorCode::SlowConsumer) and drops the
    /// connection instead of buffering without bound. Applies to both
    /// reactor modes. The bound is a threshold, not a hard ceiling — a
    /// single frame is always accepted when the queue is below it.
    pub max_write_buf: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: addr_from_env().unwrap_or_else(|| "127.0.0.1:0".to_string()),
            max_conns: max_conns_from_env().unwrap_or(1024),
            idle_timeout: Duration::from_secs_f64(idle_s_from_env().unwrap_or(30.0)),
            max_frame: DEFAULT_MAX_FRAME,
            max_inflight: 8,
            reactor: reactor_from_env().unwrap_or(ReactorMode::Epoll).effective(),
            event_threads: event_threads_from_env().unwrap_or_else(default_event_threads),
            max_write_buf: 4 << 20,
        }
    }
}

/// `min(4, cores)`: enough loops to spread readiness work, never more
/// than the host can run.
fn default_event_threads() -> usize {
    let cores =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    cores.clamp(1, 4)
}

// The warn-once parsing core lives in `up_gpusim::env` (shared by every
// UP_* knob across the workspace); re-imported here so the per-knob
// parse rules and tests below stay local.
pub(crate) use up_gpusim::env::parse_value as parse_env_value;

pub(crate) fn parse_addr(v: &str) -> Option<String> {
    // A listen address needs a host and a port; full validation happens
    // at bind time, this just catches obviously-not-an-address values.
    let (host, port) = v.rsplit_once(':')?;
    if host.is_empty() || port.parse::<u16>().is_err() {
        return None;
    }
    Some(v.to_string())
}

pub(crate) fn parse_max_conns(v: &str) -> Option<usize> {
    v.parse::<usize>().ok().filter(|&n| n >= 1)
}

pub(crate) fn parse_idle_s(v: &str) -> Option<f64> {
    v.parse::<f64>().ok().filter(|s| s.is_finite() && *s > 0.0)
}

pub(crate) fn parse_reactor(v: &str) -> Option<ReactorMode> {
    match v.to_ascii_lowercase().as_str() {
        "threads" | "thread" => Some(ReactorMode::Threads),
        "epoll" => Some(ReactorMode::Epoll),
        _ => None,
    }
}

pub(crate) fn parse_event_threads(v: &str) -> Option<usize> {
    v.parse::<usize>().ok().filter(|&n| (1..=64).contains(&n))
}

fn reactor_from_env() -> Option<ReactorMode> {
    static CACHE: OnceLock<Option<ReactorMode>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_REACTOR",
            "threads | epoll",
            std::env::var("UP_NET_REACTOR").ok().as_deref(),
            parse_reactor,
        )
    })
}

fn event_threads_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_EVENT_THREADS",
            "an event-thread count in 1..=64",
            std::env::var("UP_NET_EVENT_THREADS").ok().as_deref(),
            parse_event_threads,
        )
    })
}

fn addr_from_env() -> Option<String> {
    static CACHE: OnceLock<Option<String>> = OnceLock::new();
    CACHE
        .get_or_init(|| {
            parse_env_value(
                "UP_NET_ADDR",
                "host:port",
                std::env::var("UP_NET_ADDR").ok().as_deref(),
                parse_addr,
            )
        })
        .clone()
}

fn max_conns_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_MAX_CONNS",
            "a connection count >= 1",
            std::env::var("UP_NET_MAX_CONNS").ok().as_deref(),
            parse_max_conns,
        )
    })
}

fn idle_s_from_env() -> Option<f64> {
    static CACHE: OnceLock<Option<f64>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        parse_env_value(
            "UP_NET_IDLE_S",
            "idle seconds > 0",
            std::env::var("UP_NET_IDLE_S").ok().as_deref(),
            parse_idle_s,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knobs_parse_valid_values_and_ignore_nonsense() {
        // UP_NET_ADDR: host:port shapes pass, garbage warns → None.
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("0.0.0.0:5433"), parse_addr),
            Some("0.0.0.0:5433".to_string())
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("[::1]:0"), parse_addr),
            Some("[::1]:0".to_string())
        );
        assert_eq!(parse_env_value("UP_NET_ADDR", "host:port", None, parse_addr), None);
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("not-an-addr"), parse_addr),
            None
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some(":8080"), parse_addr),
            None,
            "empty host is rejected"
        );
        assert_eq!(
            parse_env_value("UP_NET_ADDR", "host:port", Some("host:99999"), parse_addr),
            None,
            "port must fit u16"
        );

        // UP_NET_MAX_CONNS: positive integers only.
        assert_eq!(
            parse_env_value("UP_NET_MAX_CONNS", "a count", Some("512"), parse_max_conns),
            Some(512)
        );
        assert_eq!(parse_env_value("UP_NET_MAX_CONNS", "a count", Some("0"), parse_max_conns), None);
        assert_eq!(
            parse_env_value("UP_NET_MAX_CONNS", "a count", Some("many"), parse_max_conns),
            None
        );

        // UP_NET_IDLE_S: positive finite seconds (fractions allowed).
        assert_eq!(
            parse_env_value("UP_NET_IDLE_S", "seconds", Some("2.5"), parse_idle_s),
            Some(2.5)
        );
        assert_eq!(
            parse_env_value("UP_NET_IDLE_S", "seconds", Some(" 30 "), parse_idle_s),
            Some(30.0),
            "values are trimmed before parsing"
        );
        assert_eq!(parse_env_value("UP_NET_IDLE_S", "seconds", Some("-1"), parse_idle_s), None);
        assert_eq!(parse_env_value("UP_NET_IDLE_S", "seconds", Some("inf"), parse_idle_s), None);
    }

    #[test]
    fn reactor_knob_parses_modes_and_ignores_nonsense() {
        let p = |raw| parse_env_value("UP_NET_REACTOR", "threads | epoll", raw, parse_reactor);
        assert_eq!(p(Some("epoll")), Some(ReactorMode::Epoll));
        assert_eq!(p(Some("Threads")), Some(ReactorMode::Threads), "case-insensitive");
        assert_eq!(p(Some(" epoll ")), Some(ReactorMode::Epoll), "trimmed");
        assert_eq!(p(Some("tokio")), None, "no async runtimes here");
        assert_eq!(p(None), None);
    }

    #[test]
    fn event_threads_knob_bounds_to_1_through_64() {
        let p = |raw| {
            parse_env_value("UP_NET_EVENT_THREADS", "1..=64", raw, parse_event_threads)
        };
        assert_eq!(p(Some("1")), Some(1));
        assert_eq!(p(Some("8")), Some(8));
        assert_eq!(p(Some("64")), Some(64));
        assert_eq!(p(Some("0")), None);
        assert_eq!(p(Some("65")), None);
        assert_eq!(p(Some("four")), None);
    }

    #[test]
    fn reactor_mode_effective_degrades_off_linux_only() {
        assert_eq!(ReactorMode::Threads.effective(), ReactorMode::Threads);
        if ReactorMode::epoll_supported() {
            assert_eq!(ReactorMode::Epoll.effective(), ReactorMode::Epoll);
        } else {
            assert_eq!(ReactorMode::Epoll.effective(), ReactorMode::Threads);
        }
        assert_eq!(ReactorMode::Epoll.name(), "epoll");
        assert_eq!(ReactorMode::Threads.name(), "threads");
    }

    #[test]
    fn defaults_are_sane_without_env() {
        let c = NetConfig::default();
        assert!(c.addr.contains(':'));
        assert!(c.max_conns >= 1);
        assert!(c.idle_timeout > Duration::ZERO);
        assert!(c.max_frame >= 1024);
        assert!(c.max_inflight >= 1);
        assert_eq!(c.reactor, c.reactor.effective(), "default is always runnable");
        assert!((1..=64).contains(&c.event_threads));
        assert!(c.max_write_buf >= c.max_frame as usize, "one max frame must fit");
    }
}
