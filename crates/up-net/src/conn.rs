//! The connection layer: one acceptor, two execution modes.
//!
//! [`WireServer::start`] dispatches on [`NetConfig::reactor`]:
//!
//! - **`threads`** (legacy): per connection, a **reader** thread owning
//!   the protocol state machine (`Hello → Auth → Ready`) and a
//!   **writer** thread draining a *bounded* outbound frame queue
//!   ([`WriteQueue`]); per in-flight query, a small **waiter** thread
//!   blocking on the [`QueryTicket`](up_server::QueryTicket). Simple,
//!   portable, O(connections) threads.
//! - **`epoll`** (default on Linux): the readiness [`reactor`] — a
//!   fixed pool of [`NetConfig::event_threads`] event loops over
//!   nonblocking sockets, O(cores) threads no matter how many
//!   connections are open. See [`crate::reactor`].
//!
//! Both modes share this module's protocol brain — [`classify`] maps
//! `(state, frame)` to an [`Intent`], [`do_auth`] and [`admit_query`]
//! perform the identical side effects — so handshake order, stable
//! error codes, quota behavior, idle/slow-consumer teardown, and the
//! drain-before-`Goodbye` shutdown sequence are byte-identical on the
//! wire regardless of mode.
//!
//! Reads are length-framed through the shared [`FrameAssembler`]: a
//! frame split across reads can never desynchronize the stream.
//! Graceful teardown — client `Goodbye`, idle timeout, slow-consumer
//! overflow, or server shutdown — stops reading, **drains in-flight
//! tickets**, then sends `Goodbye` and closes the server session, which
//! releases its DRR lane and errors anything still queued.

use crate::config::{NetConfig, ReactorMode};
use crate::frame::{write_frame, ErrorCode, Frame, FrameAssembler};
use crate::tenant::TenantRegistry;
use crate::writeq::WriteQueue;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use up_engine::Profile;
use up_server::{SessionId, UpServer};

/// Stack for connection/waiter threads — thousands of connections fit
/// comfortably (the handlers recurse nowhere near default depth).
pub(crate) const CONN_STACK: usize = 256 * 1024;

/// Poll tick: the granularity at which idle/stop/slow are observed, in
/// both the threads-mode reader and the reactor's `epoll_wait`.
pub(crate) const POLL_TICK: Duration = Duration::from_millis(25);

/// Wire-layer counters (the connection-level complement of
/// [`UpServer::metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct WireStats {
    /// Connections accepted (including later-refused ones).
    pub accepted: u64,
    /// Connections refused at the connection cap.
    pub refused: u64,
    /// Connections open right now.
    pub active: usize,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Connections dropped for protocol violations (bad frames, wrong
    /// handshake order, oversized frames).
    pub protocol_errors: u64,
    /// Connections dropped because the peer stopped reading and its
    /// bounded outbound queue overflowed ([`NetConfig::max_write_buf`]).
    pub slow_closed: u64,
}

pub(crate) struct NetInner {
    pub(crate) up: Arc<UpServer>,
    pub(crate) tenants: Arc<TenantRegistry>,
    pub(crate) config: NetConfig,
    pub(crate) stop: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) accepted: AtomicU64,
    pub(crate) refused: AtomicU64,
    pub(crate) idle_closed: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
    pub(crate) slow_closed: AtomicU64,
}

impl NetInner {
    fn stats(&self) -> WireStats {
        WireStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            slow_closed: self.slow_closed.load(Ordering::Relaxed),
        }
    }
}

/// The running backend: which threads to join at shutdown.
enum Backend {
    Threads {
        acceptor: Option<JoinHandle<()>>,
        conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    },
    #[cfg(target_os = "linux")]
    Epoll(Option<crate::reactor::Reactor>),
}

/// The TCP front end: owns the listener and every server-side thread.
/// Dropping (or [`shutdown`](WireServer::shutdown)) stops accepting,
/// tells every connection to finish, and joins all threads.
pub struct WireServer {
    inner: Arc<NetInner>,
    backend: Backend,
    mode: ReactorMode,
    addr: SocketAddr,
}

impl WireServer {
    /// Binds `config.addr` and starts accepting. The `UpServer` is
    /// shared, not owned — several front ends (or in-process callers)
    /// may drive one server.
    pub fn start(
        up: Arc<UpServer>,
        tenants: Arc<TenantRegistry>,
        config: NetConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let mode = config.reactor.effective();
        let inner = Arc::new(NetInner {
            up,
            tenants,
            config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            slow_closed: AtomicU64::new(0),
        });
        let backend = match mode {
            ReactorMode::Threads => {
                let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
                let acceptor = {
                    let inner = Arc::clone(&inner);
                    let conns = Arc::clone(&conns);
                    std::thread::Builder::new()
                        .name("up-net-accept".into())
                        .spawn(move || accept_loop(inner, listener, conns))
                        .expect("spawn acceptor")
                };
                Backend::Threads { acceptor: Some(acceptor), conns }
            }
            #[cfg(target_os = "linux")]
            ReactorMode::Epoll => Backend::Epoll(Some(crate::reactor::Reactor::start(
                Arc::clone(&inner),
                listener,
            )?)),
            #[cfg(not(target_os = "linux"))]
            ReactorMode::Epoll => unreachable!("ReactorMode::effective degrades epoll off-linux"),
        };
        Ok(WireServer { inner, backend, mode, addr })
    }

    /// The bound address (resolves the ephemeral port of `host:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which backend this server is actually running (after the
    /// off-platform degrade in [`ReactorMode::effective`]).
    pub fn mode(&self) -> ReactorMode {
        self.mode
    }

    /// Wire-layer counters.
    pub fn stats(&self) -> WireStats {
        self.inner.stats()
    }

    /// The full text report: service metrics, tenant counters, and the
    /// wire line. This is what a `Metrics` frame answers with.
    pub fn report(&self) -> String {
        render_report(&self.inner)
    }

    /// Stops accepting, asks every connection to finish (in-flight
    /// queries drain first), and joins all threads. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        match &mut self.backend {
            Backend::Threads { acceptor, conns } => {
                if let Some(h) = acceptor.take() {
                    let _ = h.join();
                }
                let handles = std::mem::take(&mut *conns.lock().expect("conn list poisoned"));
                for h in handles {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll(reactor) => {
                if let Some(r) = reactor.take() {
                    r.shutdown();
                }
            }
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

pub(crate) fn render_report(inner: &NetInner) -> String {
    let w = inner.stats();
    format!(
        "{}{}== up-net ==\nmode:        {} ({} event threads)\nconns:       {} active / {} \
         accepted, {} refused (cap {}), {} idle-closed, {} protocol errors, {} slow-consumer\n",
        inner.up.metrics().report(),
        inner.tenants.report(),
        inner.config.reactor.effective().name(),
        inner.config.event_threads,
        w.active,
        w.accepted,
        w.refused,
        inner.config.max_conns,
        w.idle_closed,
        w.protocol_errors,
        w.slow_closed,
    )
}

fn accept_loop(inner: Arc<NetInner>, listener: TcpListener, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                // Accepted sockets must be blocking regardless of what
                // the platform says they inherit from the listener.
                let _ = stream.set_nonblocking(false);
                if inner.active.load(Ordering::Relaxed) >= inner.config.max_conns {
                    inner.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                inner.active.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("up-net-conn".into())
                    .stack_size(CONN_STACK)
                    .spawn(move || {
                        conn_main(&conn_inner, stream);
                        conn_inner.active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                let mut g = conns.lock().expect("conn list poisoned");
                g.retain(|h| !h.is_finished());
                g.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort refusal at the connection cap: a stable error frame and
/// an orderly goodbye, bounded so a dead peer can't stall the acceptor.
pub(crate) fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = write_frame(
        &mut stream,
        &Frame::Error {
            id: 0,
            code: ErrorCode::ConnLimit.as_u16(),
            message: "server connection cap reached".into(),
        },
    );
    let _ = write_frame(&mut stream, &Frame::Goodbye);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection protocol state. Shared by both wire modes.
#[derive(PartialEq)]
pub(crate) enum ConnState {
    ExpectHello,
    ExpectAuth,
    Ready,
}

/// What a decoded frame asks the connection to do. [`classify`] is the
/// one place `(state, frame)` is interpreted, so the two wire modes
/// cannot drift apart on protocol decisions.
pub(crate) enum Intent {
    /// Legal `Hello` in `ExpectHello`: reply with the server's limits.
    SendHello,
    /// Legal `Auth` in `ExpectAuth`: authenticate the tenant.
    Auth { tenant: String, token: String },
    /// Legal `Query` in `Ready`: admit and submit.
    Submit { id: u64, sql: String },
    /// Legal `Cancel` in `Ready`: best-effort cancel by id.
    Cancel { id: u64 },
    /// Legal `Metrics` request in `Ready`: reply with the text report.
    Metrics,
    /// Orderly close from the peer (legal in every state).
    Goodbye,
    /// Any other frame: protocol violation, answer `BadState` + close.
    BadState { name: &'static str },
}

pub(crate) fn classify(state: &ConnState, frame: Frame) -> Intent {
    match (state, frame) {
        (ConnState::ExpectHello, Frame::Hello { .. }) => Intent::SendHello,
        (ConnState::ExpectAuth, Frame::Auth { tenant, token }) => Intent::Auth { tenant, token },
        (ConnState::Ready, Frame::Query { id, sql }) => Intent::Submit { id, sql },
        (ConnState::Ready, Frame::Cancel { id }) => Intent::Cancel { id },
        (ConnState::Ready, Frame::Metrics { .. }) => Intent::Metrics,
        (_, Frame::Goodbye) => Intent::Goodbye,
        (_, other) => Intent::BadState { name: frame_name(&other) },
    }
}

/// Authenticates a tenant and binds a fresh weighted server session —
/// the successful-`Auth` side effect, identical in both modes.
pub(crate) fn do_auth(
    inner: &NetInner,
    tenant: &str,
    token: &str,
) -> Result<SessionId, ErrorCode> {
    let quota = inner.tenants.authenticate(tenant, token)?;
    let session = inner.up.connect(Profile::UltraPrecise);
    inner.up.set_session_weight(session, quota.weight);
    Ok(session)
}

/// The per-query admission gate both modes run before submitting: the
/// connection's in-flight cap, then the tenant's quotas. On `Err` the
/// caller answers with the code and message, and the query never
/// reaches the server (no `on_done` owed).
pub(crate) fn admit_query(
    inner: &NetInner,
    tenant: &str,
    inflight: usize,
) -> Result<(), (ErrorCode, String)> {
    if inflight >= inner.config.max_inflight as usize {
        return Err((
            ErrorCode::TooManyInflight,
            format!("connection already has {} queries in flight", inner.config.max_inflight),
        ));
    }
    if let Err(code) = inner.tenants.try_admit(tenant) {
        return Err((code, format!("tenant {tenant} is over quota")));
    }
    Ok(())
}

pub(crate) fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello { .. } => "Hello",
        Frame::Auth { .. } => "Auth",
        Frame::AuthOk { .. } => "AuthOk",
        Frame::Query { .. } => "Query",
        Frame::Cancel { .. } => "Cancel",
        Frame::Rows { .. } => "Rows",
        Frame::Error { .. } => "Error",
        Frame::Metrics { .. } => "Metrics",
        Frame::Goodbye => "Goodbye",
    }
}

/// What a handled frame means for the connection's future.
enum Flow {
    Continue,
    Close,
}

struct Conn {
    state: ConnState,
    session: Option<SessionId>,
    tenant: Option<String>,
    /// Cancel handles of in-flight queries, by correlation id.
    inflight: Arc<Mutex<HashMap<u64, up_server::CancelHandle>>>,
    inflight_count: Arc<AtomicUsize>,
    waiters: Vec<JoinHandle<()>>,
    wq: Arc<WriteQueue>,
    /// Set by any producer whose bounded data push overflowed; the
    /// reader observes it each tick and runs the slow-consumer teardown.
    slow: Arc<AtomicBool>,
}

impl Conn {
    /// Bounded push for result-bearing frames (`Rows`, `Metrics`);
    /// overflow flags the peer as a slow consumer.
    fn send_data(&self, frame: &Frame) {
        if self.wq.push(frame).is_err() {
            self.slow.store(true, Ordering::Relaxed);
        }
    }
}

fn conn_main(inner: &Arc<NetInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut wstream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let wq = Arc::new(WriteQueue::new(inner.config.max_write_buf));
    let writer = {
        let wq = Arc::clone(&wq);
        // Bound every socket write so a peer that stops reading cannot
        // wedge the writer (and with it, shutdown's join) forever.
        let stall = inner.config.idle_timeout.max(Duration::from_secs(1));
        std::thread::Builder::new()
            .name("up-net-write".into())
            .stack_size(CONN_STACK)
            .spawn(move || {
                let _ = wstream.set_write_timeout(Some(stall));
                while let Some(out) = wq.pop_blocking() {
                    if wstream.write_all(&out.bytes).is_err() || out.goodbye {
                        break;
                    }
                }
                let _ = wstream.shutdown(Shutdown::Write);
            })
            .expect("spawn writer thread")
    };

    let mut conn = Conn {
        state: ConnState::ExpectHello,
        session: None,
        tenant: None,
        inflight: Arc::new(Mutex::new(HashMap::new())),
        inflight_count: Arc::new(AtomicUsize::new(0)),
        waiters: Vec::new(),
        wq,
        slow: Arc::new(AtomicBool::new(false)),
    };
    reader_loop(inner, stream, &mut conn);

    // Graceful drain: every in-flight ticket resolves (Rows or a stable
    // error) before the session — and with it the DRR lane — goes away.
    // Goodbye is sent only now, *after* the drain, so the writer (which
    // stops at Goodbye) never races past undelivered results.
    for w in conn.waiters.drain(..) {
        let _ = w.join();
    }
    conn.wq.push_control(&Frame::Goodbye);
    if let Some(s) = conn.session.take() {
        inner.up.close_session(s);
    }
    conn.wq.close();
    let _ = writer.join();
}

fn reader_loop(inner: &Arc<NetInner>, mut stream: TcpStream, conn: &mut Conn) {
    let mut asm = FrameAssembler::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    'conn: loop {
        // Peel complete frames off the assembler.
        loop {
            match asm.next_frame(inner.config.max_frame) {
                Ok(None) => break,
                Ok(Some(frame)) => {
                    last_activity = Instant::now();
                    match handle_frame(inner, conn, frame) {
                        Flow::Continue => {}
                        Flow::Close => break 'conn,
                    }
                }
                Err(e) => {
                    // Framing is no longer trustworthy — answer with the
                    // stable code and hang up.
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    conn.wq.push_control(&Frame::Error {
                        id: 0,
                        code: e.code.as_u16(),
                        message: e.message,
                    });
                    break 'conn;
                }
            }
        }
        conn.waiters.retain(|w| !w.is_finished());
        if conn.slow.load(Ordering::Relaxed) {
            inner.slow_closed.fetch_add(1, Ordering::Relaxed);
            conn.wq.push_control(&Frame::Error {
                id: 0,
                code: ErrorCode::SlowConsumer.as_u16(),
                message: format!(
                    "outbound queue exceeded {} bytes; peer is not reading",
                    inner.config.max_write_buf
                ),
            });
            break;
        }
        if inner.stop.load(Ordering::Relaxed) {
            conn.wq.push_control(&Frame::Error {
                id: 0,
                code: ErrorCode::Shutdown.as_u16(),
                message: "server shutting down".into(),
            });
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => asm.push(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_activity.elapsed() >= inner.config.idle_timeout {
                    inner.idle_closed.fetch_add(1, Ordering::Relaxed);
                    conn.wq.push_control(&Frame::Error {
                        id: 0,
                        code: ErrorCode::IdleTimeout.as_u16(),
                        message: format!(
                            "idle for {:.1} s (limit {:.1} s)",
                            last_activity.elapsed().as_secs_f64(),
                            inner.config.idle_timeout.as_secs_f64()
                        ),
                    });
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn handle_frame(inner: &Arc<NetInner>, conn: &mut Conn, frame: Frame) -> Flow {
    match classify(&conn.state, frame) {
        Intent::SendHello => {
            conn.wq.push_control(&Frame::Hello {
                max_frame: inner.config.max_frame,
                max_inflight: inner.config.max_inflight,
            });
            conn.state = ConnState::ExpectAuth;
            Flow::Continue
        }
        Intent::Auth { tenant, token } => match do_auth(inner, &tenant, &token) {
            Ok(session) => {
                conn.session = Some(session);
                conn.tenant = Some(tenant);
                conn.state = ConnState::Ready;
                conn.wq.push_control(&Frame::AuthOk { session: session.0 });
                Flow::Continue
            }
            Err(code) => {
                conn.wq.push_control(&Frame::Error {
                    id: 0,
                    code: code.as_u16(),
                    message: "unknown tenant or bad token".into(),
                });
                Flow::Close
            }
        },
        Intent::Submit { id, sql } => {
            submit_query(inner, conn, id, sql);
            Flow::Continue
        }
        Intent::Cancel { id } => {
            if let Some(h) = conn.inflight.lock().expect("inflight poisoned").get(&id) {
                h.cancel();
            }
            Flow::Continue
        }
        Intent::Metrics => {
            conn.send_data(&Frame::Metrics { report: render_report(inner) });
            Flow::Continue
        }
        Intent::Goodbye => Flow::Close,
        Intent::BadState { name } => {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            conn.wq.push_control(&Frame::Error {
                id: 0,
                code: ErrorCode::BadState.as_u16(),
                message: format!("frame {name} is not legal in this state"),
            });
            Flow::Close
        }
    }
}

fn submit_query(inner: &Arc<NetInner>, conn: &mut Conn, id: u64, sql: String) {
    let tenant = conn.tenant.clone().expect("Ready implies authenticated");
    let session = conn.session.expect("Ready implies a session");
    if let Err((code, message)) =
        admit_query(inner, &tenant, conn.inflight_count.load(Ordering::Relaxed))
    {
        conn.wq.push_control(&Frame::Error { id, code: code.as_u16(), message });
        return;
    }
    let t0 = Instant::now();
    let ticket = match inner.up.submit(session, &sql) {
        Ok(t) => t,
        Err(e) => {
            inner.tenants.on_done(&tenant, false, 0, t0.elapsed().as_secs_f64());
            conn.wq.push_control(&Frame::Error {
                id,
                code: ErrorCode::from_server_error(&e).as_u16(),
                message: e.to_string(),
            });
            return;
        }
    };
    conn.inflight_count.fetch_add(1, Ordering::Relaxed);
    conn.inflight.lock().expect("inflight poisoned").insert(id, ticket.cancel_handle());
    let wq = Arc::clone(&conn.wq);
    let slow = Arc::clone(&conn.slow);
    let tenants = Arc::clone(&inner.tenants);
    let inflight = Arc::clone(&conn.inflight);
    let inflight_count = Arc::clone(&conn.inflight_count);
    let waiter = std::thread::Builder::new()
        .name("up-net-wait".into())
        .stack_size(CONN_STACK)
        .spawn(move || {
            let result = ticket.wait();
            inflight.lock().expect("inflight poisoned").remove(&id);
            inflight_count.fetch_sub(1, Ordering::Relaxed);
            let latency_s = t0.elapsed().as_secs_f64();
            match result {
                Ok(r) => {
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .map(|row| row.iter().map(|v| v.render()).collect())
                        .collect();
                    let bytes: u64 =
                        rows.iter().flatten().map(|cell| cell.len() as u64).sum();
                    tenants.on_done(&tenant, true, bytes, latency_s);
                    if wq.push(&Frame::Rows { id, columns: r.columns, rows }).is_err() {
                        slow.store(true, Ordering::Relaxed);
                    }
                }
                Err(e) => {
                    tenants.on_done(&tenant, false, 0, latency_s);
                    wq.push_control(&Frame::Error {
                        id,
                        code: ErrorCode::from_server_error(&e).as_u16(),
                        message: e.to_string(),
                    });
                }
            }
        })
        .expect("spawn waiter thread");
    conn.waiters.push(waiter);
}
