//! The connection layer: acceptor + per-connection reader/writer
//! threads over `std::net`.
//!
//! Thread shape (no async runtime — the workspace is offline and
//! dependency-free by design):
//!
//! - one **acceptor** thread on a non-blocking listener, polling a stop
//!   flag between accepts and enforcing the connection cap;
//! - per connection, a **reader** thread owning the protocol state
//!   machine (`Hello → Auth → Ready`) and a **writer** thread draining
//!   an outbound frame channel, so replies from concurrent queries
//!   never interleave mid-frame;
//! - per in-flight query, a small **waiter** thread that blocks on the
//!   [`QueryTicket`](up_server::QueryTicket) and forwards `Rows` or a
//!   stable [`ErrorCode`] to the writer. In-flight queries per
//!   connection are capped ([`NetConfig::max_inflight`]).
//!
//! Reads are buffered and length-framed: the reader appends whatever
//! bytes arrived to an accumulator and peels complete frames off the
//! front, so a frame split across reads (or a read timeout used to poll
//! the stop flag and the idle clock) can never desynchronize the
//! stream. Graceful teardown — client `Goodbye`, idle timeout, or
//! server shutdown — stops reading, **drains in-flight tickets** (the
//! waiters run to completion), then closes the server session, which
//! releases its DRR lane and errors anything still queued.

use crate::config::NetConfig;
use crate::frame::{parse_frame, write_frame, ErrorCode, Frame};
use crate::tenant::TenantRegistry;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use up_engine::Profile;
use up_server::{SessionId, UpServer};

/// Stack for connection/waiter threads — thousands of connections fit
/// comfortably (the handlers recurse nowhere near default depth).
const CONN_STACK: usize = 256 * 1024;

/// Reader poll tick: the granularity at which idle/stop are observed.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Wire-layer counters (the connection-level complement of
/// [`UpServer::metrics`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct WireStats {
    /// Connections accepted (including later-refused ones).
    pub accepted: u64,
    /// Connections refused at the connection cap.
    pub refused: u64,
    /// Connections open right now.
    pub active: usize,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Connections dropped for protocol violations (bad frames, wrong
    /// handshake order, oversized frames).
    pub protocol_errors: u64,
}

struct NetInner {
    up: Arc<UpServer>,
    tenants: Arc<TenantRegistry>,
    config: NetConfig,
    stop: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    refused: AtomicU64,
    idle_closed: AtomicU64,
    protocol_errors: AtomicU64,
}

impl NetInner {
    fn stats(&self) -> WireStats {
        WireStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            active: self.active.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// The TCP front end: owns the listener and every connection thread.
/// Dropping (or [`shutdown`](WireServer::shutdown)) stops accepting,
/// tells every connection to finish, and joins all threads.
pub struct WireServer {
    inner: Arc<NetInner>,
    acceptor: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    addr: SocketAddr,
}

impl WireServer {
    /// Binds `config.addr` and starts accepting. The `UpServer` is
    /// shared, not owned — several front ends (or in-process callers)
    /// may drive one server.
    pub fn start(
        up: Arc<UpServer>,
        tenants: Arc<TenantRegistry>,
        config: NetConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(NetInner {
            up,
            tenants,
            config,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            idle_closed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("up-net-accept".into())
                .spawn(move || accept_loop(inner, listener, conns))
                .expect("spawn acceptor")
        };
        Ok(WireServer { inner, acceptor: Some(acceptor), conns, addr })
    }

    /// The bound address (resolves the ephemeral port of `host:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire-layer counters.
    pub fn stats(&self) -> WireStats {
        self.inner.stats()
    }

    /// The full text report: service metrics, tenant counters, and the
    /// wire line. This is what a `Metrics` frame answers with.
    pub fn report(&self) -> String {
        render_report(&self.inner)
    }

    /// Stops accepting, asks every connection to finish (in-flight
    /// queries drain first), and joins all threads. Idempotent; also
    /// runs on drop.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conn list poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn render_report(inner: &NetInner) -> String {
    let w = inner.stats();
    format!(
        "{}{}== up-net ==\nconns:       {} active / {} accepted, {} refused (cap {}), \
         {} idle-closed, {} protocol errors\n",
        inner.up.metrics().report(),
        inner.tenants.report(),
        w.active,
        w.accepted,
        w.refused,
        inner.config.max_conns,
        w.idle_closed,
        w.protocol_errors,
    )
}

fn accept_loop(inner: Arc<NetInner>, listener: TcpListener, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                // Accepted sockets must be blocking regardless of what
                // the platform says they inherit from the listener.
                let _ = stream.set_nonblocking(false);
                if inner.active.load(Ordering::Relaxed) >= inner.config.max_conns {
                    inner.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                inner.active.fetch_add(1, Ordering::Relaxed);
                let conn_inner = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name("up-net-conn".into())
                    .stack_size(CONN_STACK)
                    .spawn(move || {
                        conn_main(&conn_inner, stream);
                        conn_inner.active.fetch_sub(1, Ordering::Relaxed);
                    })
                    .expect("spawn connection thread");
                let mut g = conns.lock().expect("conn list poisoned");
                g.retain(|h| !h.is_finished());
                g.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort refusal at the connection cap: a stable error frame and
/// an orderly goodbye, bounded so a dead peer can't stall the acceptor.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let _ = write_frame(
        &mut stream,
        &Frame::Error {
            id: 0,
            code: ErrorCode::ConnLimit.as_u16(),
            message: "server connection cap reached".into(),
        },
    );
    let _ = write_frame(&mut stream, &Frame::Goodbye);
    let _ = stream.shutdown(Shutdown::Both);
}

/// Per-connection protocol state.
#[derive(PartialEq)]
enum ConnState {
    ExpectHello,
    ExpectAuth,
    Ready,
}

/// What a handled frame means for the connection's future.
enum Flow {
    Continue,
    Close,
}

struct Conn {
    state: ConnState,
    session: Option<SessionId>,
    tenant: Option<String>,
    /// Cancel handles of in-flight queries, by correlation id.
    inflight: Arc<Mutex<HashMap<u64, up_server::CancelHandle>>>,
    inflight_count: Arc<AtomicUsize>,
    waiters: Vec<JoinHandle<()>>,
    tx: mpsc::Sender<Frame>,
}

fn conn_main(inner: &Arc<NetInner>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_TICK));
    let mut wstream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("up-net-write".into())
        .stack_size(CONN_STACK)
        .spawn(move || {
            while let Ok(frame) = rx.recv() {
                let last = matches!(frame, Frame::Goodbye);
                if write_frame(&mut wstream, &frame).is_err() || last {
                    break;
                }
            }
            let _ = wstream.shutdown(Shutdown::Write);
        })
        .expect("spawn writer thread");

    let mut conn = Conn {
        state: ConnState::ExpectHello,
        session: None,
        tenant: None,
        inflight: Arc::new(Mutex::new(HashMap::new())),
        inflight_count: Arc::new(AtomicUsize::new(0)),
        waiters: Vec::new(),
        tx,
    };
    reader_loop(inner, stream, &mut conn);

    // Graceful drain: every in-flight ticket resolves (Rows or a stable
    // error) before the session — and with it the DRR lane — goes away.
    // Goodbye is sent only now, *after* the drain, so the writer (which
    // stops at Goodbye) never races past undelivered results.
    for w in conn.waiters.drain(..) {
        let _ = w.join();
    }
    let _ = conn.tx.send(Frame::Goodbye);
    if let Some(s) = conn.session.take() {
        inner.up.close_session(s);
    }
    drop(conn.tx);
    let _ = writer.join();
}

fn reader_loop(inner: &Arc<NetInner>, mut stream: TcpStream, conn: &mut Conn) {
    let mut acc: Vec<u8> = Vec::new();
    let mut chunk = vec![0u8; 16 * 1024];
    let mut last_activity = Instant::now();
    'conn: loop {
        // Peel complete frames off the accumulator.
        loop {
            match parse_frame(&acc, inner.config.max_frame) {
                Ok(None) => break,
                Ok(Some((consumed, frame))) => {
                    acc.drain(..consumed);
                    last_activity = Instant::now();
                    match handle_frame(inner, conn, frame) {
                        Flow::Continue => {}
                        Flow::Close => break 'conn,
                    }
                }
                Err(e) => {
                    // Framing is no longer trustworthy — answer with the
                    // stable code and hang up.
                    inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.tx.send(Frame::Error {
                        id: 0,
                        code: e.code.as_u16(),
                        message: e.message,
                    });
                    break 'conn;
                }
            }
        }
        conn.waiters.retain(|w| !w.is_finished());
        if inner.stop.load(Ordering::Relaxed) {
            let _ = conn.tx.send(Frame::Error {
                id: 0,
                code: ErrorCode::Shutdown.as_u16(),
                message: "server shutting down".into(),
            });
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break, // peer closed
            Ok(n) => acc.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if last_activity.elapsed() >= inner.config.idle_timeout {
                    inner.idle_closed.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.tx.send(Frame::Error {
                        id: 0,
                        code: ErrorCode::IdleTimeout.as_u16(),
                        message: format!(
                            "idle for {:.1} s (limit {:.1} s)",
                            last_activity.elapsed().as_secs_f64(),
                            inner.config.idle_timeout.as_secs_f64()
                        ),
                    });
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

fn handle_frame(inner: &Arc<NetInner>, conn: &mut Conn, frame: Frame) -> Flow {
    match (&conn.state, frame) {
        (ConnState::ExpectHello, Frame::Hello { .. }) => {
            let _ = conn.tx.send(Frame::Hello {
                max_frame: inner.config.max_frame,
                max_inflight: inner.config.max_inflight,
            });
            conn.state = ConnState::ExpectAuth;
            Flow::Continue
        }
        (ConnState::ExpectAuth, Frame::Auth { tenant, token }) => {
            match inner.tenants.authenticate(&tenant, &token) {
                Ok(quota) => {
                    let session = inner.up.connect(Profile::UltraPrecise);
                    inner.up.set_session_weight(session, quota.weight);
                    conn.session = Some(session);
                    conn.tenant = Some(tenant);
                    conn.state = ConnState::Ready;
                    let _ = conn.tx.send(Frame::AuthOk { session: session.0 });
                    Flow::Continue
                }
                Err(code) => {
                    let _ = conn.tx.send(Frame::Error {
                        id: 0,
                        code: code.as_u16(),
                        message: "unknown tenant or bad token".into(),
                    });
                    Flow::Close
                }
            }
        }
        (ConnState::Ready, Frame::Query { id, sql }) => {
            submit_query(inner, conn, id, sql);
            Flow::Continue
        }
        (ConnState::Ready, Frame::Cancel { id }) => {
            if let Some(h) = conn.inflight.lock().expect("inflight poisoned").get(&id) {
                h.cancel();
            }
            Flow::Continue
        }
        (ConnState::Ready, Frame::Metrics { .. }) => {
            let _ = conn.tx.send(Frame::Metrics { report: render_report(inner) });
            Flow::Continue
        }
        (_, Frame::Goodbye) => Flow::Close,
        (_, other) => {
            inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = conn.tx.send(Frame::Error {
                id: 0,
                code: ErrorCode::BadState.as_u16(),
                message: format!("frame {} is not legal in this state", frame_name(&other)),
            });
            Flow::Close
        }
    }
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Hello { .. } => "Hello",
        Frame::Auth { .. } => "Auth",
        Frame::AuthOk { .. } => "AuthOk",
        Frame::Query { .. } => "Query",
        Frame::Cancel { .. } => "Cancel",
        Frame::Rows { .. } => "Rows",
        Frame::Error { .. } => "Error",
        Frame::Metrics { .. } => "Metrics",
        Frame::Goodbye => "Goodbye",
    }
}

fn submit_query(inner: &Arc<NetInner>, conn: &mut Conn, id: u64, sql: String) {
    let tenant = conn.tenant.clone().expect("Ready implies authenticated");
    let session = conn.session.expect("Ready implies a session");
    if conn.inflight_count.load(Ordering::Relaxed) >= inner.config.max_inflight as usize {
        let _ = conn.tx.send(Frame::Error {
            id,
            code: ErrorCode::TooManyInflight.as_u16(),
            message: format!("connection already has {} queries in flight", inner.config.max_inflight),
        });
        return;
    }
    if let Err(code) = inner.tenants.try_admit(&tenant) {
        let _ = conn.tx.send(Frame::Error {
            id,
            code: code.as_u16(),
            message: format!("tenant {tenant} is over quota"),
        });
        return;
    }
    let t0 = Instant::now();
    let ticket = match inner.up.submit(session, &sql) {
        Ok(t) => t,
        Err(e) => {
            inner.tenants.on_done(&tenant, false, 0, t0.elapsed().as_secs_f64());
            let _ = conn.tx.send(Frame::Error {
                id,
                code: ErrorCode::from_server_error(&e).as_u16(),
                message: e.to_string(),
            });
            return;
        }
    };
    conn.inflight_count.fetch_add(1, Ordering::Relaxed);
    conn.inflight.lock().expect("inflight poisoned").insert(id, ticket.cancel_handle());
    let tx = conn.tx.clone();
    let tenants = Arc::clone(&inner.tenants);
    let inflight = Arc::clone(&conn.inflight);
    let inflight_count = Arc::clone(&conn.inflight_count);
    let waiter = std::thread::Builder::new()
        .name("up-net-wait".into())
        .stack_size(CONN_STACK)
        .spawn(move || {
            let result = ticket.wait();
            inflight.lock().expect("inflight poisoned").remove(&id);
            inflight_count.fetch_sub(1, Ordering::Relaxed);
            let latency_s = t0.elapsed().as_secs_f64();
            match result {
                Ok(r) => {
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .map(|row| row.iter().map(|v| v.render()).collect())
                        .collect();
                    let bytes: u64 =
                        rows.iter().flatten().map(|cell| cell.len() as u64).sum();
                    tenants.on_done(&tenant, true, bytes, latency_s);
                    let _ = tx.send(Frame::Rows { id, columns: r.columns, rows });
                }
                Err(e) => {
                    tenants.on_done(&tenant, false, 0, latency_s);
                    let _ = tx.send(Frame::Error {
                        id,
                        code: ErrorCode::from_server_error(&e).as_u16(),
                        message: e.to_string(),
                    });
                }
            }
        })
        .expect("spawn waiter thread");
    conn.waiters.push(waiter);
}
