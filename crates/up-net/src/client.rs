//! A small blocking wire client, shared by the tests, the load
//! harness, and `examples/wire_service.rs`.
//!
//! One [`Client`] is one connection (and thus one server session). The
//! simple path is [`query`](Client::query) — submit and block for the
//! matching reply. For pipelined use, [`send_query`](Client::send_query)
//! fires without waiting and [`recv_reply`](Client::recv_reply) pulls
//! whatever completes next; replies arrive in completion order, keyed
//! by the correlation id.

use crate::frame::{read_frame, write_frame, Frame, WireError, DEFAULT_MAX_FRAME};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A decoded `Rows` result: column names plus rendered cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Rendered cells, one `Vec<String>` per row.
    pub rows: Vec<Vec<String>>,
}

/// One reply pulled off the wire in pipelined mode.
#[derive(Clone, Debug)]
pub enum Reply {
    /// A successful result for query `id`.
    Rows {
        /// Correlation id the rows answer.
        id: u64,
        /// The result.
        rows: RowSet,
    },
    /// A failure for query `id` (0 = connection-level).
    Error {
        /// Correlation id, or 0 for connection-level errors.
        id: u64,
        /// Stable wire code (decode with [`ErrorCode::from_u16`](crate::ErrorCode::from_u16)).
        code: u16,
        /// The server's message.
        message: String,
    },
}

/// A blocking wire-protocol client bound to one authenticated tenant.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    max_frame: u32,
    session: u64,
}

impl Client {
    /// Connects, handshakes (`Hello`), and authenticates as `tenant`.
    /// Fails with [`WireError::Remote`] if the server refuses the
    /// connection or the credentials.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: &str,
        token: &str,
    ) -> Result<Client, WireError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // Generous: queries block server-side up to the server's own
        // deadline, which answers with a Timeout error frame well
        // before this trips. This only guards against a dead server.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(300)));
        let mut c = Client { stream, next_id: 1, max_frame: DEFAULT_MAX_FRAME, session: 0 };
        c.send(&Frame::Hello { max_frame: DEFAULT_MAX_FRAME, max_inflight: u32::MAX })?;
        match c.recv()? {
            Frame::Hello { .. } => {}
            Frame::Error { id, code, message } => {
                return Err(WireError::Remote { id, code, message })
            }
            f => return Err(WireError::Protocol(format!("expected Hello, got {f:?}"))),
        }
        c.send(&Frame::Auth { tenant: tenant.into(), token: token.into() })?;
        match c.recv()? {
            Frame::AuthOk { session } => {
                c.session = session;
                Ok(c)
            }
            Frame::Error { id, code, message } => Err(WireError::Remote { id, code, message }),
            f => Err(WireError::Protocol(format!("expected AuthOk, got {f:?}"))),
        }
    }

    /// The server-side session id backing this connection.
    pub fn session(&self) -> u64 {
        self.session
    }

    fn send(&mut self, f: &Frame) -> Result<(), WireError> {
        write_frame(&mut self.stream, f)?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Frame, WireError> {
        match read_frame(&mut self.stream, self.max_frame)? {
            Some(f) => Ok(f),
            None => Err(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
        }
    }

    /// Submits a query without waiting; returns its correlation id.
    pub fn send_query(&mut self, sql: &str) -> Result<u64, WireError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Frame::Query { id, sql: sql.into() })?;
        Ok(id)
    }

    /// Blocks for the next completed reply (any in-flight id).
    pub fn recv_reply(&mut self) -> Result<Reply, WireError> {
        match self.recv()? {
            Frame::Rows { id, columns, rows } => {
                Ok(Reply::Rows { id, rows: RowSet { columns, rows } })
            }
            Frame::Error { id, code, message } => Ok(Reply::Error { id, code, message }),
            Frame::Goodbye => Err(WireError::Protocol("server closed with Goodbye".into())),
            f => Err(WireError::Protocol(format!("unexpected reply frame {f:?}"))),
        }
    }

    /// Submit-and-wait: runs `sql`, skipping stale replies to earlier
    /// pipelined queries, and returns this query's rows.
    pub fn query(&mut self, sql: &str) -> Result<RowSet, WireError> {
        let id = self.send_query(sql)?;
        loop {
            match self.recv_reply()? {
                Reply::Rows { id: rid, rows } if rid == id => return Ok(rows),
                Reply::Error { id: rid, code, message } if rid == id || rid == 0 => {
                    return Err(WireError::Remote { id: rid, code, message })
                }
                _ => continue, // a reply to an earlier pipelined query
            }
        }
    }

    /// Best-effort cancel of an in-flight query by id.
    pub fn cancel(&mut self, id: u64) -> Result<(), WireError> {
        self.send(&Frame::Cancel { id })
    }

    /// Fetches the server's text metrics report (service + tenants +
    /// wire counters). Replies to in-flight queries that land first are
    /// discarded — call this on an otherwise-idle connection.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        self.send(&Frame::Metrics { report: String::new() })?;
        loop {
            match self.recv()? {
                Frame::Metrics { report } => return Ok(report),
                Frame::Rows { .. } | Frame::Error { .. } => continue,
                f => return Err(WireError::Protocol(format!("unexpected frame {f:?}"))),
            }
        }
    }

    /// Orderly close: sends `Goodbye` and waits for the server's.
    pub fn goodbye(mut self) -> Result<(), WireError> {
        self.send(&Frame::Goodbye)?;
        loop {
            match read_frame(&mut self.stream, self.max_frame) {
                Ok(Some(Frame::Goodbye)) | Ok(None) => return Ok(()),
                Ok(Some(_)) => continue, // drain stragglers
                Err(e) => return Err(e),
            }
        }
    }
}
