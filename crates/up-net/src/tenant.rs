//! The tenant layer: authenticated identities with quotas.
//!
//! A *tenant* is the billing/fairness unit — many connections (and thus
//! many `up-server` sessions) can authenticate as one tenant. The
//! registry enforces, per tenant:
//!
//! - a **token-bucket rate limit** (sustained QPS plus a burst
//!   allowance) — exceeding it is [`ErrorCode::RateLimited`];
//! - a **max-concurrent-queries** cap — [`ErrorCode::TenantConcurrency`];
//! - a cumulative **result-byte budget** — once a tenant has been sent
//!   that many rendered result bytes, further queries are
//!   [`ErrorCode::ByteBudgetExceeded`];
//! - an **admission weight**, forwarded to
//!   [`UpServer::set_session_weight`](up_server::UpServer::set_session_weight)
//!   at auth so the server's deficit-round-robin dequeue actually runs
//!   per tenant.
//!
//! Counters (admitted/rejected/throttled, latency, bytes out) are kept
//! per tenant and rendered by [`TenantRegistry::report`], which the
//! wire layer appends to the server metrics report.

use crate::frame::ErrorCode;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;
use up_server::{LatencyHistogram, LatencySummary};

/// Per-tenant quota knobs. The default is fully open: no rate limit, no
/// concurrency cap, no byte budget, weight 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TenantQuota {
    /// Sustained queries per second the token bucket refills at;
    /// `<= 0` disables rate limiting.
    pub qps: f64,
    /// Bucket capacity — how many queries may land back-to-back before
    /// the sustained rate applies (clamped to ≥ 1 when `qps` is on).
    pub burst: f64,
    /// Most queries the tenant may have in flight at once, across all
    /// of its connections; `0` disables the cap.
    pub max_concurrent: usize,
    /// Cumulative rendered result bytes the tenant may be sent; `0`
    /// disables the budget.
    pub result_byte_budget: u64,
    /// Admission weight for the server's per-session DRR scheduling.
    pub weight: f64,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            qps: 0.0,
            burst: 16.0,
            max_concurrent: 0,
            result_byte_budget: 0,
            weight: 1.0,
        }
    }
}

/// Point-in-time view of one tenant's counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TenantStats {
    /// Queries admitted past the quota checks.
    pub admitted: u64,
    /// Queries rejected by concurrency cap or byte budget.
    pub rejected: u64,
    /// Queries bounced by the rate limiter.
    pub throttled: u64,
    /// Admitted queries that produced a result (ok or error).
    pub completed: u64,
    /// Of those, how many errored.
    pub errors: u64,
    /// Rendered result bytes sent to the tenant.
    pub bytes_out: u64,
    /// Queries in flight right now.
    pub inflight: usize,
    /// End-to-end latency (admit → reply) of completed queries.
    pub latency: LatencySummary,
}

struct Bucket {
    tokens: f64,
    last: Instant,
}

struct TenantState {
    token: String,
    quota: TenantQuota,
    bucket: Bucket,
    inflight: usize,
    admitted: u64,
    rejected: u64,
    throttled: u64,
    completed: u64,
    errors: u64,
    bytes_out: u64,
    latency: LatencyHistogram,
}

impl TenantState {
    fn stats(&self) -> TenantStats {
        TenantStats {
            admitted: self.admitted,
            rejected: self.rejected,
            throttled: self.throttled,
            completed: self.completed,
            errors: self.errors,
            bytes_out: self.bytes_out,
            inflight: self.inflight,
            latency: self.latency.summary(),
        }
    }
}

/// Maps tenant names to credentials, quotas, and live counters. All
/// methods take `&self` (one mutex; tenant counts are small next to
/// query traffic).
#[derive(Default)]
pub struct TenantRegistry {
    tenants: Mutex<HashMap<String, TenantState>>,
}

impl TenantRegistry {
    /// New empty registry.
    pub fn new() -> TenantRegistry {
        TenantRegistry::default()
    }

    /// Registers (or replaces) a tenant with its auth token and quota.
    pub fn register(&self, name: &str, token: &str, quota: TenantQuota) {
        self.tenants.lock().expect("tenant map poisoned").insert(
            name.to_string(),
            TenantState {
                token: token.to_string(),
                quota,
                bucket: Bucket { tokens: quota.burst.max(1.0), last: Instant::now() },
                inflight: 0,
                admitted: 0,
                rejected: 0,
                throttled: 0,
                completed: 0,
                errors: 0,
                bytes_out: 0,
                latency: LatencyHistogram::new(),
            },
        );
    }

    /// Checks credentials; the quota comes back so the wire layer can
    /// forward the tenant's weight to the server session.
    pub fn authenticate(&self, name: &str, token: &str) -> Result<TenantQuota, ErrorCode> {
        let g = self.tenants.lock().expect("tenant map poisoned");
        match g.get(name) {
            Some(t) if t.token == token => Ok(t.quota),
            _ => Err(ErrorCode::Unauthorized),
        }
    }

    /// Runs the quota gauntlet for one query: rate limit, then
    /// concurrency cap, then byte budget. On `Ok` the query counts as
    /// in-flight until [`on_done`](TenantRegistry::on_done).
    pub fn try_admit(&self, name: &str) -> Result<(), ErrorCode> {
        self.try_admit_at(name, Instant::now())
    }

    /// [`try_admit`](TenantRegistry::try_admit) with an explicit clock,
    /// so token-bucket behavior is testable without sleeping.
    pub fn try_admit_at(&self, name: &str, now: Instant) -> Result<(), ErrorCode> {
        let mut g = self.tenants.lock().expect("tenant map poisoned");
        let t = g.get_mut(name).ok_or(ErrorCode::Unauthorized)?;
        if t.quota.qps > 0.0 {
            let cap = t.quota.burst.max(1.0);
            let elapsed = now.duration_since(t.bucket.last).as_secs_f64();
            t.bucket.tokens = (t.bucket.tokens + elapsed * t.quota.qps).min(cap);
            t.bucket.last = now;
            if t.bucket.tokens < 1.0 {
                t.throttled += 1;
                return Err(ErrorCode::RateLimited);
            }
            t.bucket.tokens -= 1.0;
        }
        if t.quota.max_concurrent > 0 && t.inflight >= t.quota.max_concurrent {
            t.rejected += 1;
            return Err(ErrorCode::TenantConcurrency);
        }
        if t.quota.result_byte_budget > 0 && t.bytes_out >= t.quota.result_byte_budget {
            t.rejected += 1;
            return Err(ErrorCode::ByteBudgetExceeded);
        }
        t.inflight += 1;
        t.admitted += 1;
        Ok(())
    }

    /// Closes out one admitted query: releases its in-flight slot and
    /// records outcome, result bytes, and end-to-end latency.
    pub fn on_done(&self, name: &str, ok: bool, bytes_out: u64, latency_s: f64) {
        let mut g = self.tenants.lock().expect("tenant map poisoned");
        if let Some(t) = g.get_mut(name) {
            t.inflight = t.inflight.saturating_sub(1);
            t.completed += 1;
            if !ok {
                t.errors += 1;
            }
            t.bytes_out += bytes_out;
            t.latency.record(latency_s);
        }
    }

    /// One tenant's counters.
    pub fn stats(&self, name: &str) -> Option<TenantStats> {
        self.tenants.lock().expect("tenant map poisoned").get(name).map(|t| t.stats())
    }

    /// Every tenant's counters, sorted by name.
    pub fn all_stats(&self) -> Vec<(String, TenantStats)> {
        let g = self.tenants.lock().expect("tenant map poisoned");
        let mut all: Vec<(String, TenantStats)> =
            g.iter().map(|(n, t)| (n.clone(), t.stats())).collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    /// Text lines for the metrics report, one per tenant.
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(o, "== tenants ==");
        for (name, s) in self.all_stats() {
            let _ = writeln!(
                o,
                "{name}: {} admitted ({} in flight), {} rejected, {} throttled, \
                 {} completed ({} errors), {} bytes out, p50 {:.3} ms / p95 {:.3} ms",
                s.admitted,
                s.inflight,
                s.rejected,
                s.throttled,
                s.completed,
                s.errors,
                s.bytes_out,
                s.latency.p50_s * 1e3,
                s.latency.p95_s * 1e3,
            );
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn auth_checks_name_and_token() {
        let r = TenantRegistry::new();
        r.register("acme", "s3cret", TenantQuota { weight: 2.0, ..TenantQuota::default() });
        assert_eq!(r.authenticate("acme", "s3cret").unwrap().weight, 2.0);
        assert_eq!(r.authenticate("acme", "wrong"), Err(ErrorCode::Unauthorized));
        assert_eq!(r.authenticate("ghost", "s3cret"), Err(ErrorCode::Unauthorized));
        assert_eq!(r.try_admit("ghost"), Err(ErrorCode::Unauthorized));
    }

    #[test]
    fn token_bucket_throttles_at_sustained_rate_with_burst() {
        let r = TenantRegistry::new();
        r.register(
            "t",
            "k",
            TenantQuota { qps: 10.0, burst: 3.0, ..TenantQuota::default() },
        );
        let t0 = Instant::now();
        // The burst allowance admits 3 back-to-back...
        for _ in 0..3 {
            r.try_admit_at("t", t0).unwrap();
        }
        // ...then the 4th at the same instant is throttled.
        assert_eq!(r.try_admit_at("t", t0), Err(ErrorCode::RateLimited));
        // 100 ms later one token (10 QPS) has refilled.
        let t1 = t0 + Duration::from_millis(100);
        r.try_admit_at("t", t1).unwrap();
        assert_eq!(r.try_admit_at("t", t1), Err(ErrorCode::RateLimited));
        let s = r.stats("t").unwrap();
        assert_eq!(s.admitted, 4);
        assert_eq!(s.throttled, 2);
        // Refill never exceeds the burst capacity.
        let t2 = t1 + Duration::from_secs(3600);
        for _ in 0..3 {
            r.try_admit_at("t", t2).unwrap();
        }
        assert_eq!(r.try_admit_at("t", t2), Err(ErrorCode::RateLimited));
    }

    #[test]
    fn concurrency_cap_frees_on_done() {
        let r = TenantRegistry::new();
        r.register("t", "k", TenantQuota { max_concurrent: 2, ..TenantQuota::default() });
        r.try_admit("t").unwrap();
        r.try_admit("t").unwrap();
        assert_eq!(r.try_admit("t"), Err(ErrorCode::TenantConcurrency));
        r.on_done("t", true, 128, 0.002);
        r.try_admit("t").unwrap();
        let s = r.stats("t").unwrap();
        assert_eq!(s.inflight, 2);
        assert_eq!(s.admitted, 3);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.bytes_out, 128);
        assert_eq!(s.latency.count, 1);
    }

    #[test]
    fn byte_budget_cuts_off_cumulative_output() {
        let r = TenantRegistry::new();
        r.register("t", "k", TenantQuota { result_byte_budget: 100, ..TenantQuota::default() });
        r.try_admit("t").unwrap();
        r.on_done("t", true, 60, 0.001);
        r.try_admit("t").unwrap();
        r.on_done("t", true, 60, 0.001);
        // 120 bytes out ≥ 100 budget → spent.
        assert_eq!(r.try_admit("t"), Err(ErrorCode::ByteBudgetExceeded));
        let s = r.stats("t").unwrap();
        assert_eq!(s.bytes_out, 120);
        assert_eq!(s.rejected, 1);
    }

    #[test]
    fn report_renders_every_tenant_sorted() {
        let r = TenantRegistry::new();
        r.register("beta", "k", TenantQuota::default());
        r.register("alpha", "k", TenantQuota::default());
        r.try_admit("alpha").unwrap();
        r.on_done("alpha", false, 10, 0.001);
        let text = r.report();
        let a = text.find("alpha:").unwrap();
        let b = text.find("beta:").unwrap();
        assert!(a < b, "sorted by name:\n{text}");
        assert!(text.contains("1 completed (1 errors)"), "{text}");
    }
}
