//! The frame codec: length-prefixed, versioned binary frames.
//!
//! Wire layout (all integers big-endian):
//!
//! ```text
//! frame   := len:u32  payload            len = payload length in bytes
//! payload := version:u8  kind:u8  body   version is WIRE_VERSION (1)
//! string  := len:u32  utf8-bytes
//! ```
//!
//! The codec is *strict*: a frame longer than the negotiated maximum,
//! an unknown version or kind, a string that overruns the payload,
//! invalid UTF-8, and trailing bytes after the body are all decode
//! errors with stable [`ErrorCode`]s — never panics, and never silent
//! truncation. Because every frame is bounded by its length prefix up
//! front, a malformed body can only ever poison its own frame.

use std::io::{Read, Write};
use up_server::ServerError;

/// Protocol version carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Default cap on a single frame's payload (1 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 1 << 20;

/// Stable wire error codes. The numeric values are the protocol
/// contract — never renumber, only append.
///
/// Codes 1–6 map the [`ServerError`] variants one-to-one; codes ≥ 10
/// are protocol/quota conditions produced by the wire layer itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Admission control bounced the query (`ServerError::Rejected`).
    Rejected = 1,
    /// The session is gone (`ServerError::UnknownSession`) — e.g. it
    /// was reaped while the query sat in the queue.
    UnknownSession = 2,
    /// The server-side wait deadline expired (`ServerError::Timeout`).
    Timeout = 3,
    /// The query was canceled before execution (`ServerError::Canceled`).
    Canceled = 4,
    /// The server shut down before answering (`ServerError::Shutdown`).
    Shutdown = 5,
    /// The engine executed the query and failed (`ServerError::Query`);
    /// the frame's message carries the engine error text.
    QueryFailed = 6,

    /// Malformed frame: truncated body, trailing bytes, bad UTF-8, an
    /// unknown kind, or a length that overruns the payload.
    BadFrame = 10,
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion = 11,
    /// The length prefix exceeds the negotiated maximum frame size.
    FrameTooLarge = 12,
    /// The frame is not legal in the connection's current handshake
    /// state (e.g. `Query` before `Auth`).
    BadState = 13,
    /// Unknown tenant or wrong token.
    Unauthorized = 20,
    /// The connection already has the maximum in-flight queries.
    TooManyInflight = 21,
    /// The tenant's token-bucket rate limit is exhausted (throttled).
    RateLimited = 22,
    /// The tenant is at its max-concurrent-queries quota.
    TenantConcurrency = 23,
    /// The tenant's cumulative result-byte budget is spent.
    ByteBudgetExceeded = 24,
    /// The server is at its connection cap.
    ConnLimit = 25,
    /// The connection sat idle past the server's idle timeout.
    IdleTimeout = 26,
    /// The peer stopped reading: its bounded outbound queue overflowed
    /// ([`NetConfig::max_write_buf`](crate::NetConfig::max_write_buf)),
    /// so the server dropped the connection instead of buffering
    /// without bound.
    SlowConsumer = 27,
}

impl ErrorCode {
    /// The stable numeric code.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a numeric code; `None` for codes this build doesn't know
    /// (forward compatibility: treat as an opaque failure).
    pub fn from_u16(v: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            1 => Rejected,
            2 => UnknownSession,
            3 => Timeout,
            4 => Canceled,
            5 => Shutdown,
            6 => QueryFailed,
            10 => BadFrame,
            11 => BadVersion,
            12 => FrameTooLarge,
            13 => BadState,
            20 => Unauthorized,
            21 => TooManyInflight,
            22 => RateLimited,
            23 => TenantConcurrency,
            24 => ByteBudgetExceeded,
            25 => ConnLimit,
            26 => IdleTimeout,
            27 => SlowConsumer,
            _ => return None,
        })
    }

    /// The wire code for a server-side failure. Exhaustive over
    /// [`ServerError`] — adding a variant there is a compile error here
    /// until it gets a stable code.
    pub fn from_server_error(e: &ServerError) -> ErrorCode {
        match e {
            ServerError::Rejected { .. } => ErrorCode::Rejected,
            ServerError::UnknownSession(_) => ErrorCode::UnknownSession,
            ServerError::Timeout { .. } => ErrorCode::Timeout,
            ServerError::Canceled => ErrorCode::Canceled,
            ServerError::Shutdown => ErrorCode::Shutdown,
            ServerError::Query(_) => ErrorCode::QueryFailed,
        }
    }
}

impl core::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}({})", self.as_u16())
    }
}

/// One protocol frame. `id` fields correlate queries with their
/// replies: a connection may have several queries in flight and replies
/// arrive in completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Handshake opener; each side advertises its limits.
    Hello {
        /// Largest frame payload the sender will accept.
        max_frame: u32,
        /// Most in-flight queries the sender allows per connection.
        max_inflight: u32,
    },
    /// Tenant credentials (client → server, after `Hello`).
    Auth {
        /// Tenant name.
        tenant: String,
        /// Shared-secret token.
        token: String,
    },
    /// Successful auth (server → client); the connection is now bound
    /// to one `up-server` session.
    AuthOk {
        /// The server-side session id backing this connection.
        session: u64,
    },
    /// Submit a query (client → server).
    Query {
        /// Client-chosen correlation id (nonzero).
        id: u64,
        /// SQL text.
        sql: String,
    },
    /// Cancel an in-flight query by id (client → server, best-effort).
    Cancel {
        /// The id of the query to cancel.
        id: u64,
    },
    /// A successful result (server → client): column names plus rows of
    /// cells rendered exactly as `Value::render` — bit-identical to an
    /// in-process query's rendering.
    Rows {
        /// Correlation id of the query this answers.
        id: u64,
        /// Output column names.
        columns: Vec<String>,
        /// Rendered cells, one `Vec<String>` per row (rectangular).
        rows: Vec<Vec<String>>,
    },
    /// A failure (server → client). `id` is 0 for connection-level
    /// errors (bad frame, handshake violations, idle timeout).
    Error {
        /// Correlation id, or 0 for connection-level errors.
        id: u64,
        /// Stable [`ErrorCode`] value.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Metrics exchange: a client sends an empty report to request, the
    /// server replies with the rendered text report.
    Metrics {
        /// Empty in requests; the server's text report in replies.
        report: String,
    },
    /// Orderly close; each side sends one before disconnecting.
    Goodbye,
}

const KIND_HELLO: u8 = 1;
const KIND_AUTH: u8 = 2;
const KIND_AUTH_OK: u8 = 3;
const KIND_QUERY: u8 = 4;
const KIND_CANCEL: u8 = 5;
const KIND_ROWS: u8 = 6;
const KIND_ERROR: u8 = 7;
const KIND_METRICS: u8 = 8;
const KIND_GOODBYE: u8 = 9;

/// A decode failure: the stable code to answer with plus detail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Which protocol error this is.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for DecodeError {}

fn bad(message: impl Into<String>) -> DecodeError {
    DecodeError { code: ErrorCode::BadFrame, message: message.into() }
}

/// Anything that can go wrong on a wire endpoint.
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure (includes unexpected EOF mid-frame).
    Io(std::io::Error),
    /// The peer sent bytes this codec rejects.
    Decode(DecodeError),
    /// The peer answered with an `Error` frame.
    Remote {
        /// Correlation id the error answers (0 = connection-level).
        id: u64,
        /// The wire error code (decode with [`ErrorCode::from_u16`]).
        code: u16,
        /// The peer's message.
        message: String,
    },
    /// The peer sent a legal frame that makes no sense here (e.g. rows
    /// for a query never submitted).
    Protocol(String),
}

impl WireError {
    /// The remote [`ErrorCode`], when this is a decoded `Error` frame.
    pub fn remote_code(&self) -> Option<ErrorCode> {
        match self {
            WireError::Remote { code, .. } => ErrorCode::from_u16(*code),
            _ => None,
        }
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::Decode(e) => write!(f, "decode: {e}"),
            WireError::Remote { id, code, message } => match ErrorCode::from_u16(*code) {
                Some(c) => write!(f, "remote error for id {id}: {c}: {message}"),
                None => write!(f, "remote error for id {id}: code {code}: {message}"),
            },
            WireError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Bounds-checked cursor over one frame's payload.
struct Cur<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.b.len() - self.pos < n {
            return Err(bad(format!(
                "truncated body: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.b.len() - self.pos
            )));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not valid UTF-8"))
    }

    /// An element count, sanity-bounded by the bytes actually left
    /// (every element costs ≥ `min_elem` bytes) so a hostile count
    /// can't force a huge preallocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let room = (self.b.len() - self.pos) / min_elem.max(1);
        if n > room {
            return Err(bad(format!("count {n} exceeds remaining payload (max {room})")));
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos != self.b.len() {
            return Err(bad(format!("{} trailing bytes after body", self.b.len() - self.pos)));
        }
        Ok(())
    }
}

impl Frame {
    /// Appends the full frame (length prefix + payload) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let start = out.len();
        put_u32(out, 0); // patched below
        out.push(WIRE_VERSION);
        match self {
            Frame::Hello { max_frame, max_inflight } => {
                out.push(KIND_HELLO);
                put_u32(out, *max_frame);
                put_u32(out, *max_inflight);
            }
            Frame::Auth { tenant, token } => {
                out.push(KIND_AUTH);
                put_str(out, tenant);
                put_str(out, token);
            }
            Frame::AuthOk { session } => {
                out.push(KIND_AUTH_OK);
                put_u64(out, *session);
            }
            Frame::Query { id, sql } => {
                out.push(KIND_QUERY);
                put_u64(out, *id);
                put_str(out, sql);
            }
            Frame::Cancel { id } => {
                out.push(KIND_CANCEL);
                put_u64(out, *id);
            }
            Frame::Rows { id, columns, rows } => {
                out.push(KIND_ROWS);
                put_u64(out, *id);
                put_u32(out, columns.len() as u32);
                for c in columns {
                    put_str(out, c);
                }
                put_u32(out, rows.len() as u32);
                for row in rows {
                    for cell in row {
                        put_str(out, cell);
                    }
                }
            }
            Frame::Error { id, code, message } => {
                out.push(KIND_ERROR);
                put_u64(out, *id);
                out.extend_from_slice(&code.to_be_bytes());
                put_str(out, message);
            }
            Frame::Metrics { report } => {
                out.push(KIND_METRICS);
                put_str(out, report);
            }
            Frame::Goodbye => out.push(KIND_GOODBYE),
        }
        let len = (out.len() - start - 4) as u32;
        out[start..start + 4].copy_from_slice(&len.to_be_bytes());
    }

    /// The encoded frame as a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes one payload (the bytes *after* the length prefix).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, DecodeError> {
        let mut c = Cur { b: payload, pos: 0 };
        let version = c.u8().map_err(|_| bad("empty payload"))?;
        if version != WIRE_VERSION {
            return Err(DecodeError {
                code: ErrorCode::BadVersion,
                message: format!("version {version}, this end speaks {WIRE_VERSION}"),
            });
        }
        let kind = c.u8().map_err(|_| bad("payload has no kind byte"))?;
        let frame = match kind {
            KIND_HELLO => Frame::Hello { max_frame: c.u32()?, max_inflight: c.u32()? },
            KIND_AUTH => Frame::Auth { tenant: c.str()?, token: c.str()? },
            KIND_AUTH_OK => Frame::AuthOk { session: c.u64()? },
            KIND_QUERY => Frame::Query { id: c.u64()?, sql: c.str()? },
            KIND_CANCEL => Frame::Cancel { id: c.u64()? },
            KIND_ROWS => {
                let id = c.u64()?;
                let ncols = c.count(4)?;
                let mut columns = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    columns.push(c.str()?);
                }
                let nrows = c.count(4.max(4 * ncols))?;
                let mut rows = Vec::with_capacity(nrows);
                for _ in 0..nrows {
                    let mut row = Vec::with_capacity(ncols);
                    for _ in 0..ncols {
                        row.push(c.str()?);
                    }
                    rows.push(row);
                }
                Frame::Rows { id, columns, rows }
            }
            KIND_ERROR => Frame::Error { id: c.u64()?, code: c.u16()?, message: c.str()? },
            KIND_METRICS => Frame::Metrics { report: c.str()? },
            KIND_GOODBYE => Frame::Goodbye,
            other => return Err(bad(format!("unknown frame kind {other}"))),
        };
        c.done()?;
        Ok(frame)
    }
}

/// Tries to parse one complete frame from the front of `buf`.
///
/// Returns `Ok(None)` when more bytes are needed, or `Ok(Some((consumed,
/// frame)))` — the caller drains `consumed` bytes. A length prefix over
/// `max_frame` or a payload that fails to decode is an error; the length
/// prefix itself stays trustworthy, so the caller can choose to answer
/// and resynchronize or close.
pub fn parse_frame(buf: &[u8], max_frame: u32) -> Result<Option<(usize, Frame)>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_be_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > max_frame as usize {
        return Err(DecodeError {
            code: ErrorCode::FrameTooLarge,
            message: format!("frame payload of {len} bytes exceeds limit {max_frame}"),
        });
    }
    if len < 2 {
        return Err(bad(format!("frame payload of {len} bytes is below the 2-byte header")));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    let frame = Frame::decode_payload(&buf[4..4 + len])?;
    Ok(Some((4 + len, frame)))
}

/// Resumable frame decoder: feed it byte chunks as they arrive (in any
/// split — a nonblocking read may deliver half a length prefix), pull
/// complete frames off the front. This is the one reassembly path both
/// wire modes share, so a frame split across reads can never
/// desynchronize the stream in either.
///
/// After a [`DecodeError`] the stream is untrustworthy; the caller
/// answers with the stable code and closes (the assembler keeps
/// returning the same error).
#[derive(Debug, Default)]
pub struct FrameAssembler {
    acc: Vec<u8>,
}

impl FrameAssembler {
    /// New empty assembler.
    pub fn new() -> FrameAssembler {
        FrameAssembler::default()
    }

    /// Appends newly-read bytes to the accumulator.
    pub fn push(&mut self, bytes: &[u8]) {
        self.acc.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed. Call in a loop — one `push` may complete several frames.
    pub fn next_frame(&mut self, max_frame: u32) -> Result<Option<Frame>, DecodeError> {
        match parse_frame(&self.acc, max_frame)? {
            None => Ok(None),
            Some((consumed, frame)) => {
                self.acc.drain(..consumed);
                Ok(Some(frame))
            }
        }
    }

    /// Bytes buffered but not yet forming a complete frame.
    pub fn pending(&self) -> usize {
        self.acc.len()
    }
}

/// Blocking read of exactly one frame. `Ok(None)` on clean EOF at a
/// frame boundary; EOF mid-frame is an [`WireError::Io`] error.
pub fn read_frame(r: &mut impl Read, max_frame: u32) -> Result<Option<Frame>, WireError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame as usize {
        return Err(WireError::Decode(DecodeError {
            code: ErrorCode::FrameTooLarge,
            message: format!("frame payload of {len} bytes exceeds limit {max_frame}"),
        }));
    }
    if len < 2 {
        return Err(WireError::Decode(bad(format!(
            "frame payload of {len} bytes is below the 2-byte header"
        ))));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(WireError::Io)?;
    Ok(Some(Frame::decode_payload(&payload)?))
}

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: Frame) {
        let bytes = f.to_bytes();
        let (consumed, got) = parse_frame(&bytes, DEFAULT_MAX_FRAME).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(got, f);
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip(Frame::Hello { max_frame: 1 << 20, max_inflight: 8 });
        roundtrip(Frame::Auth { tenant: "acme".into(), token: "s3cret".into() });
        roundtrip(Frame::AuthOk { session: 42 });
        roundtrip(Frame::Query { id: 7, sql: "SELECT x + x FROM t".into() });
        roundtrip(Frame::Cancel { id: 7 });
        roundtrip(Frame::Rows {
            id: 7,
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                vec!["1.25".into(), "-3".into()],
                vec!["".into(), "µ-unicode".into()],
            ],
        });
        roundtrip(Frame::Error { id: 7, code: 22, message: "slow down".into() });
        roundtrip(Frame::Metrics { report: String::new() });
        roundtrip(Frame::Metrics { report: "== up-server metrics ==\n".into() });
        roundtrip(Frame::Goodbye);
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let bytes = Frame::Query { id: 1, sql: "SELECT 1".into() }.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                parse_frame(&bytes[..cut], DEFAULT_MAX_FRAME).unwrap(),
                None,
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn oversized_unknown_and_garbage_are_stable_errors() {
        // Length prefix over the cap.
        let mut b = Vec::new();
        put_u32(&mut b, 100);
        let err = parse_frame(&b, 64).unwrap_err();
        assert_eq!(err.code, ErrorCode::FrameTooLarge);
        // Undersized payload (below the version+kind header).
        let err = parse_frame(&[0, 0, 0, 1, 9], 64).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadFrame);
        // Garbage version byte.
        let err = Frame::decode_payload(&[99, KIND_GOODBYE]).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadVersion);
        // Unknown kind.
        let err = Frame::decode_payload(&[WIRE_VERSION, 200]).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadFrame);
        // Truncated string.
        let mut p = vec![WIRE_VERSION, KIND_METRICS];
        put_u32(&mut p, 10); // claims 10 bytes, has none
        assert_eq!(Frame::decode_payload(&p).unwrap_err().code, ErrorCode::BadFrame);
        // Trailing bytes.
        let mut p = vec![WIRE_VERSION, KIND_GOODBYE];
        p.push(0);
        assert_eq!(Frame::decode_payload(&p).unwrap_err().code, ErrorCode::BadFrame);
        // Hostile row count cannot force a huge preallocation.
        let mut p = vec![WIRE_VERSION, KIND_ROWS];
        put_u64(&mut p, 1);
        put_u32(&mut p, u32::MAX); // ncols
        assert_eq!(Frame::decode_payload(&p).unwrap_err().code, ErrorCode::BadFrame);
    }

    #[test]
    fn error_codes_are_stable_and_cover_every_server_error() {
        use up_engine::QueryError;
        // The numeric contract.
        for (code, v) in [
            (ErrorCode::Rejected, 1),
            (ErrorCode::UnknownSession, 2),
            (ErrorCode::Timeout, 3),
            (ErrorCode::Canceled, 4),
            (ErrorCode::Shutdown, 5),
            (ErrorCode::QueryFailed, 6),
            (ErrorCode::BadFrame, 10),
            (ErrorCode::BadVersion, 11),
            (ErrorCode::FrameTooLarge, 12),
            (ErrorCode::BadState, 13),
            (ErrorCode::Unauthorized, 20),
            (ErrorCode::TooManyInflight, 21),
            (ErrorCode::RateLimited, 22),
            (ErrorCode::TenantConcurrency, 23),
            (ErrorCode::ByteBudgetExceeded, 24),
            (ErrorCode::ConnLimit, 25),
            (ErrorCode::IdleTimeout, 26),
            (ErrorCode::SlowConsumer, 27),
        ] {
            assert_eq!(code.as_u16(), v);
            assert_eq!(ErrorCode::from_u16(v), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(999), None);
        // Every ServerError variant maps.
        let errs = [
            ServerError::Rejected { queue_depth: 1, retry_after_s: 0.1 },
            ServerError::UnknownSession(up_server::SessionId(3)),
            ServerError::Timeout { after_s: 1.0 },
            ServerError::Canceled,
            ServerError::Shutdown,
            ServerError::Query(QueryError::Unsupported("x".into())),
        ];
        let codes: Vec<u16> =
            errs.iter().map(|e| ErrorCode::from_server_error(e).as_u16()).collect();
        assert_eq!(codes, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn assembler_resumes_across_arbitrary_splits() {
        let frames = [
            Frame::Hello { max_frame: 1 << 20, max_inflight: 8 },
            Frame::Query { id: 3, sql: "SELECT SUM(x) FROM t".into() },
            Frame::Goodbye,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            f.encode(&mut bytes);
        }
        // Feed one byte at a time: every frame must still pop exactly
        // once, in order, with nothing left pending.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &bytes {
            asm.push(std::slice::from_ref(b));
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME).unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(asm.pending(), 0);
        // A poisoned stream keeps returning the same stable error.
        let mut asm = FrameAssembler::new();
        asm.push(&u32::MAX.to_be_bytes());
        assert_eq!(asm.next_frame(64).unwrap_err().code, ErrorCode::FrameTooLarge);
        assert_eq!(asm.next_frame(64).unwrap_err().code, ErrorCode::FrameTooLarge);
    }

    #[test]
    fn read_frame_handles_eof_and_streams() {
        let mut bytes = Frame::Goodbye.to_bytes();
        bytes.extend(Frame::Cancel { id: 9 }.to_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), Some(Frame::Goodbye));
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), Some(Frame::Cancel { id: 9 }));
        assert_eq!(read_frame(&mut cursor, 64).unwrap(), None, "clean EOF");
        // EOF mid-frame is an IO error, not a hang or a panic.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0, 0, 50, 1]);
        assert!(matches!(read_frame(&mut cursor, 64).unwrap_err(), WireError::Io(_)));
    }
}
