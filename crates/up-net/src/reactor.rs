//! The epoll readiness reactor: `O(cores)` threads for any number of
//! connections.
//!
//! Thread shape: one **acceptor** (cap enforcement and refusal exactly
//! as in threads mode) round-robins accepted sockets across
//! [`NetConfig::event_threads`](crate::NetConfig::event_threads)
//! **event loops**. Each loop owns a slab of nonblocking connections
//! and multiplexes them with level-triggered `epoll` (raw syscalls via
//! [`crate::sys`] — no async runtime, no new dependencies). Query
//! execution stays on the `UpServer` worker pool: a submit hands the
//! worker a completion callback that renders the reply frame off the
//! event thread, posts it to the owning loop's inbox, and kicks its
//! eventfd, so results re-enter the loop as ordinary wakeups.
//!
//! Per connection, two small state machines:
//!
//! - **read**: bytes → shared [`FrameAssembler`] → frames → the shared
//!   [`classify`] protocol brain. Reads per readiness event are bounded
//!   (`READ_ROUNDS` chunks), so one firehose — or one slow-loris
//!   dribbling a byte at a time — cannot starve the other connections
//!   on the loop; level-triggered epoll re-arms whatever was left.
//!   `last_activity` advances only when a *complete* frame parses,
//!   so trickled partial frames still hit the idle timeout.
//! - **write**: a bounded [`OutBuf`] flushed until `WouldBlock`;
//!   `EPOLLOUT` interest is registered only while un-flushed bytes
//!   remain. Overflow is the same slow-consumer teardown as threads
//!   mode ([`ErrorCode::SlowConsumer`]).
//!
//! Teardown parity: every close path — client `Goodbye`, protocol
//! error, idle timeout, slow consumer, server shutdown — stops reading,
//! **waits for in-flight queries to resolve** (their completions still
//! account `on_done`), then queues `Goodbye`, closes the server
//! session, and frees the slot. Client-side wait deadlines are enforced
//! by the loop itself: each in-flight query carries
//! `UpServer::default_timeout`, and expiry cancels the job and answers
//! with the same `Timeout` code and message a threads-mode
//! `QueryTicket::wait` would produce.

use crate::conn::{
    admit_query, classify, do_auth, refuse, render_report, ConnState, Intent, NetInner, POLL_TICK,
};
use crate::frame::{DecodeError, ErrorCode, Frame, FrameAssembler};
use crate::sys::{Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::writeq::OutBuf;
use std::collections::HashMap;
use std::io::Read;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use up_server::{CancelHandle, ServerError, SessionId};

/// Read at most this many chunks per readiness event before yielding to
/// the other connections on the loop (fairness under firehose input).
const READ_ROUNDS: usize = 4;
const READ_CHUNK: usize = 16 * 1024;

/// Slab token for the loop's own eventfd.
const WAKE_TOKEN: u64 = u64::MAX;

fn token(slot: usize, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

/// A finished query coming back from the worker pool: the reply frame
/// was rendered on the worker's thread; the loop only queues bytes.
struct CompletionMsg {
    slot: usize,
    gen: u32,
    id: u64,
    frame: Frame,
    ok: bool,
    bytes: u64,
}

#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    done: Vec<CompletionMsg>,
}

/// The cross-thread half of one event loop: its inbox plus the eventfd
/// that kicks it out of `epoll_wait`.
struct LoopShared {
    inbox: Mutex<Inbox>,
    wake: EventFd,
}

/// Handle owned by [`WireServer`](crate::WireServer): joins the
/// acceptor and every event loop at shutdown.
pub(crate) struct Reactor {
    acceptor: Option<JoinHandle<()>>,
    loops: Vec<(Arc<LoopShared>, JoinHandle<()>)>,
}

impl Reactor {
    pub(crate) fn start(inner: Arc<NetInner>, listener: TcpListener) -> std::io::Result<Reactor> {
        let n = inner.config.event_threads.max(1);
        let mut loops = Vec::with_capacity(n);
        let mut shareds = Vec::with_capacity(n);
        for i in 0..n {
            let shared =
                Arc::new(LoopShared { inbox: Mutex::new(Inbox::default()), wake: EventFd::new()? });
            let ep = Epoll::new()?;
            ep.add(shared.wake.raw_fd(), EPOLLIN, WAKE_TOKEN)?;
            let handle = {
                let inner = Arc::clone(&inner);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("up-net-ev{i}"))
                    .spawn(move || event_loop(inner, shared, ep))
                    .expect("spawn event thread")
            };
            shareds.push(Arc::clone(&shared));
            loops.push((shared, handle));
        }
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("up-net-accept".into())
                .spawn(move || accept_loop(inner, listener, shareds))
                .expect("spawn acceptor")
        };
        Ok(Reactor { acceptor: Some(acceptor), loops })
    }

    /// Joins everything. The caller has already set `inner.stop`; the
    /// loops notice via their wakeups (or at the next tick) and drain.
    pub(crate) fn shutdown(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for (shared, _) in &self.loops {
            shared.wake.wake();
        }
        for (_, h) in self.loops.drain(..) {
            let _ = h.join();
        }
    }
}

fn accept_loop(inner: Arc<NetInner>, listener: TcpListener, loops: Vec<Arc<LoopShared>>) {
    let mut next = 0usize;
    while !inner.stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.accepted.fetch_add(1, Ordering::Relaxed);
                if inner.active.load(Ordering::Relaxed) >= inner.config.max_conns {
                    inner.refused.fetch_add(1, Ordering::Relaxed);
                    // Refusal writes are blocking-with-timeout.
                    let _ = stream.set_nonblocking(false);
                    refuse(stream);
                    continue;
                }
                // Reserve the slot *before* handing off, so the cap is
                // enforced here exactly as in threads mode.
                inner.active.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(true);
                let target = &loops[next % loops.len()];
                next = next.wrapping_add(1);
                target.inbox.lock().expect("inbox poisoned").conns.push(stream);
                target.wake.wake();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// One in-flight query on a connection.
struct Inflight {
    cancel: CancelHandle,
    t0: Instant,
    /// Client-side wait deadline (`UpServer::default_timeout` past
    /// submit) — the reactor's equivalent of `QueryTicket::wait`.
    deadline: Instant,
}

#[derive(PartialEq)]
enum Phase {
    /// Reading and serving.
    Open,
    /// Teardown begun: no more reads; waiting for in-flight queries,
    /// then `Goodbye`, flush, close.
    Draining,
}

struct EpConn {
    stream: TcpStream,
    gen: u32,
    state: ConnState,
    session: Option<SessionId>,
    tenant: Option<String>,
    inflight: HashMap<u64, Inflight>,
    asm: FrameAssembler,
    out: OutBuf,
    last_activity: Instant,
    phase: Phase,
    /// Socket is unusable (peer reset / write error): stop all I/O but
    /// keep the slot until in-flight queries resolve, so tenant
    /// accounting (`on_done`) never goes missing.
    dead: bool,
    goodbye_queued: bool,
    /// When the final flush began; force-close if it stalls.
    drain_since: Option<Instant>,
    /// Interest set currently registered with epoll.
    interest: u32,
}

struct EvLoop {
    inner: Arc<NetInner>,
    shared: Arc<LoopShared>,
    ep: Epoll,
    slab: Vec<Option<EpConn>>,
    free: Vec<usize>,
    live: usize,
    gen_counter: u32,
}

fn event_loop(inner: Arc<NetInner>, shared: Arc<LoopShared>, ep: Epoll) {
    let mut lp = EvLoop {
        inner,
        shared,
        ep,
        slab: Vec::new(),
        free: Vec::new(),
        live: 0,
        gen_counter: 0,
    };
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let n = lp.ep.wait(&mut events, POLL_TICK.as_millis() as i32).unwrap_or(0);
        for ev in events.iter().take(n) {
            let ev = *ev;
            let tok = { ev.data };
            let bits = { ev.events };
            if tok == WAKE_TOKEN {
                lp.shared.wake.drain();
                continue;
            }
            lp.handle_io((tok & 0xffff_ffff) as usize, (tok >> 32) as u32, bits, &mut chunk);
        }
        lp.drain_inbox();
        lp.tick();
        if lp.inner.stop.load(Ordering::Relaxed) && lp.live == 0 {
            let g = lp.shared.inbox.lock().expect("inbox poisoned");
            if g.conns.is_empty() {
                // Leftover `done` entries can only be late completions
                // for already-closed slots; nothing to deliver.
                break;
            }
        }
    }
}

impl EvLoop {
    fn conn(&mut self, slot: usize) -> Option<&mut EpConn> {
        self.slab.get_mut(slot).and_then(|c| c.as_mut())
    }

    // ---- inbox -----------------------------------------------------

    fn drain_inbox(&mut self) {
        let (conns, done) = {
            let mut g = self.shared.inbox.lock().expect("inbox poisoned");
            (std::mem::take(&mut g.conns), std::mem::take(&mut g.done))
        };
        for stream in conns {
            self.register(stream);
        }
        for msg in done {
            self.complete(msg);
        }
    }

    fn register(&mut self, stream: TcpStream) {
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slab.push(None);
            self.slab.len() - 1
        });
        self.gen_counter = self.gen_counter.wrapping_add(1);
        let gen = self.gen_counter;
        if self.ep.add(stream.as_raw_fd(), EPOLLIN, token(slot, gen)).is_err() {
            // Could not watch the socket: undo the acceptor's
            // reservation and drop the connection.
            self.inner.active.fetch_sub(1, Ordering::Relaxed);
            self.free.push(slot);
            return;
        }
        self.slab[slot] = Some(EpConn {
            stream,
            gen,
            state: ConnState::ExpectHello,
            session: None,
            tenant: None,
            inflight: HashMap::new(),
            asm: FrameAssembler::new(),
            out: OutBuf::new(self.inner.config.max_write_buf),
            last_activity: Instant::now(),
            phase: Phase::Open,
            dead: false,
            goodbye_queued: false,
            drain_since: None,
            interest: EPOLLIN,
        });
        self.live += 1;
    }

    fn complete(&mut self, m: CompletionMsg) {
        let inner = Arc::clone(&self.inner);
        let overflow = {
            let Some(conn) = self.conn(m.slot) else { return };
            if conn.gen != m.gen {
                return;
            }
            let Some(inf) = conn.inflight.remove(&m.id) else {
                // Already resolved by the loop (client-side timeout):
                // accounting happened there; drop the late reply.
                return;
            };
            let tenant = conn.tenant.clone().unwrap_or_default();
            inner.tenants.on_done(&tenant, m.ok, m.bytes, inf.t0.elapsed().as_secs_f64());
            !conn.dead && conn.out.push(&m.frame).is_err()
        };
        if overflow {
            self.slow_consumer(m.slot);
        }
        self.pump(m.slot);
    }

    // ---- readiness -------------------------------------------------

    fn handle_io(&mut self, slot: usize, gen: u32, bits: u32, chunk: &mut [u8]) {
        {
            let Some(conn) = self.conn(slot) else { return };
            if conn.gen != gen {
                return;
            }
        }
        if bits & EPOLLIN != 0 {
            self.do_read(slot, chunk);
        }
        if bits & EPOLLERR != 0 || (bits & EPOLLHUP != 0 && bits & EPOLLIN == 0) {
            self.socket_dead(slot);
        }
        self.pump(slot);
    }

    fn do_read(&mut self, slot: usize, chunk: &mut [u8]) {
        enum Step {
            Frames(Vec<Frame>, Option<DecodeError>),
            Closed,
            WouldBlock,
            Dead,
        }
        for _ in 0..READ_ROUNDS {
            let max_frame = self.inner.config.max_frame;
            let step = {
                let Some(conn) = self.conn(slot) else { return };
                if conn.phase != Phase::Open || conn.dead {
                    return;
                }
                loop {
                    match conn.stream.read(chunk) {
                        Ok(0) => break Step::Closed,
                        Ok(n) => {
                            conn.asm.push(&chunk[..n]);
                            let mut frames = Vec::new();
                            let mut decode_err = None;
                            loop {
                                match conn.asm.next_frame(max_frame) {
                                    Ok(None) => break,
                                    Ok(Some(frame)) => {
                                        // A *complete* frame is activity;
                                        // a trickle of partial bytes is
                                        // not — so a slow-loris still
                                        // hits the idle timeout.
                                        conn.last_activity = Instant::now();
                                        frames.push(frame);
                                    }
                                    Err(e) => {
                                        decode_err = Some(e);
                                        break;
                                    }
                                }
                            }
                            break Step::Frames(frames, decode_err);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            break Step::WouldBlock
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => break Step::Dead,
                    }
                }
            };
            match step {
                Step::Frames(frames, decode_err) => {
                    // Frames decoded before a poisoned tail still
                    // execute, as in threads mode.
                    for frame in frames {
                        if !self.on_frame(slot, frame) {
                            return;
                        }
                    }
                    if let Some(e) = decode_err {
                        self.inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        self.begin_close(
                            slot,
                            Some(Frame::Error {
                                id: 0,
                                code: e.code.as_u16(),
                                message: e.message,
                            }),
                        );
                        return;
                    }
                }
                Step::Closed => {
                    // Peer closed its write side at a frame boundary.
                    self.begin_close(slot, None);
                    return;
                }
                Step::WouldBlock => return,
                Step::Dead => {
                    self.socket_dead(slot);
                    return;
                }
            }
        }
    }

    /// Runs one decoded frame through the shared protocol brain.
    /// Returns false once the connection is closing.
    fn on_frame(&mut self, slot: usize, frame: Frame) -> bool {
        let inner = Arc::clone(&self.inner);
        let intent = {
            let Some(conn) = self.conn(slot) else { return false };
            if conn.phase != Phase::Open || conn.dead {
                return false;
            }
            classify(&conn.state, frame)
        };
        match intent {
            Intent::SendHello => {
                let hello = Frame::Hello {
                    max_frame: inner.config.max_frame,
                    max_inflight: inner.config.max_inflight,
                };
                let conn = self.conn(slot).expect("checked above");
                conn.out.push_control(&hello);
                conn.state = ConnState::ExpectAuth;
                true
            }
            Intent::Auth { tenant, token } => match do_auth(&inner, &tenant, &token) {
                Ok(session) => {
                    let conn = self.conn(slot).expect("checked above");
                    conn.session = Some(session);
                    conn.tenant = Some(tenant);
                    conn.state = ConnState::Ready;
                    conn.out.push_control(&Frame::AuthOk { session: session.0 });
                    true
                }
                Err(code) => {
                    self.begin_close(
                        slot,
                        Some(Frame::Error {
                            id: 0,
                            code: code.as_u16(),
                            message: "unknown tenant or bad token".into(),
                        }),
                    );
                    false
                }
            },
            Intent::Submit { id, sql } => {
                self.submit(slot, id, sql);
                true
            }
            Intent::Cancel { id } => {
                let conn = self.conn(slot).expect("checked above");
                if let Some(inf) = conn.inflight.get(&id) {
                    inf.cancel.cancel();
                }
                true
            }
            Intent::Metrics => {
                let report = render_report(&inner);
                let conn = self.conn(slot).expect("checked above");
                if conn.out.push(&Frame::Metrics { report }).is_err() {
                    self.slow_consumer(slot);
                    return false;
                }
                true
            }
            Intent::Goodbye => {
                self.begin_close(slot, None);
                false
            }
            Intent::BadState { name } => {
                inner.protocol_errors.fetch_add(1, Ordering::Relaxed);
                self.begin_close(
                    slot,
                    Some(Frame::Error {
                        id: 0,
                        code: ErrorCode::BadState.as_u16(),
                        message: format!("frame {name} is not legal in this state"),
                    }),
                );
                false
            }
        }
    }

    fn submit(&mut self, slot: usize, id: u64, sql: String) {
        let (tenant, session, inflight_len, gen) = {
            let conn = self.conn(slot).expect("submit on live conn");
            (
                conn.tenant.clone().expect("Ready implies authenticated"),
                conn.session.expect("Ready implies a session"),
                conn.inflight.len(),
                conn.gen,
            )
        };
        if let Err((code, message)) = admit_query(&self.inner, &tenant, inflight_len) {
            let conn = self.conn(slot).expect("still live");
            conn.out.push_control(&Frame::Error { id, code: code.as_u16(), message });
            return;
        }
        let t0 = Instant::now();
        let shared = Arc::clone(&self.shared);
        let on_done: up_server::Completion = Box::new(move |result| {
            // Worker thread: render the reply here, off the event loop.
            let (frame, ok, bytes) = match result {
                Ok(r) => {
                    let rows: Vec<Vec<String>> = r
                        .rows
                        .iter()
                        .map(|row| row.iter().map(|v| v.render()).collect())
                        .collect();
                    let bytes: u64 = rows.iter().flatten().map(|cell| cell.len() as u64).sum();
                    (Frame::Rows { id, columns: r.columns, rows }, true, bytes)
                }
                Err(e) => (
                    Frame::Error {
                        id,
                        code: ErrorCode::from_server_error(&e).as_u16(),
                        message: e.to_string(),
                    },
                    false,
                    0,
                ),
            };
            shared
                .inbox
                .lock()
                .expect("inbox poisoned")
                .done
                .push(CompletionMsg { slot, gen, id, frame, ok, bytes });
            shared.wake.wake();
        });
        match self.inner.up.submit_with(session, &sql, on_done) {
            Ok(cancel) => {
                let deadline = t0 + self.inner.up.default_timeout();
                let conn = self.conn(slot).expect("still live");
                conn.inflight.insert(id, Inflight { cancel, t0, deadline });
            }
            Err(e) => {
                self.inner.tenants.on_done(&tenant, false, 0, t0.elapsed().as_secs_f64());
                let frame = Frame::Error {
                    id,
                    code: ErrorCode::from_server_error(&e).as_u16(),
                    message: e.to_string(),
                };
                let conn = self.conn(slot).expect("still live");
                conn.out.push_control(&frame);
            }
        }
    }

    // ---- timers / shutdown ----------------------------------------

    fn tick(&mut self) {
        let stop = self.inner.stop.load(Ordering::Relaxed);
        let idle_timeout = self.inner.config.idle_timeout;
        let default_timeout = self.inner.up.default_timeout();
        for slot in 0..self.slab.len() {
            if self.slab[slot].is_none() {
                continue;
            }
            // Client-side wait deadlines (`QueryTicket::wait` parity).
            let now = Instant::now();
            let expired: Vec<u64> = {
                let conn = self.conn(slot).expect("checked above");
                conn.inflight
                    .iter()
                    .filter(|(_, inf)| now >= inf.deadline)
                    .map(|(id, _)| *id)
                    .collect()
            };
            for id in expired {
                let inner = Arc::clone(&self.inner);
                let Some(conn) = self.conn(slot) else { break };
                let Some(inf) = conn.inflight.remove(&id) else { continue };
                inf.cancel.cancel();
                inner.up.note_client_timeout();
                let tenant = conn.tenant.clone().unwrap_or_default();
                inner.tenants.on_done(&tenant, false, 0, inf.t0.elapsed().as_secs_f64());
                conn.out.push_control(&Frame::Error {
                    id,
                    code: ErrorCode::Timeout.as_u16(),
                    message: ServerError::Timeout { after_s: default_timeout.as_secs_f64() }
                        .to_string(),
                });
            }
            // Shutdown notice, then idle eviction — same priority as the
            // threads-mode reader.
            let inner = Arc::clone(&self.inner);
            let teardown = {
                let conn = self.conn(slot).expect("checked above");
                if conn.phase != Phase::Open || conn.dead {
                    None
                } else if stop {
                    Some(Frame::Error {
                        id: 0,
                        code: ErrorCode::Shutdown.as_u16(),
                        message: "server shutting down".into(),
                    })
                } else if conn.last_activity.elapsed() >= idle_timeout {
                    inner.idle_closed.fetch_add(1, Ordering::Relaxed);
                    Some(Frame::Error {
                        id: 0,
                        code: ErrorCode::IdleTimeout.as_u16(),
                        message: format!(
                            "idle for {:.1} s (limit {:.1} s)",
                            conn.last_activity.elapsed().as_secs_f64(),
                            idle_timeout.as_secs_f64()
                        ),
                    })
                } else {
                    None
                }
            };
            if let Some(frame) = teardown {
                self.begin_close(slot, Some(frame));
            }
            self.pump(slot);
        }
    }

    // ---- teardown --------------------------------------------------

    /// Slow-consumer teardown: count it, say why (control frames bypass
    /// the bound), stop serving. Only the first overflow counts — once
    /// the connection is draining, later completions that bounce off
    /// the full outbox are silently dropped (the peer stopped reading;
    /// the teardown notice is already queued).
    fn slow_consumer(&mut self, slot: usize) {
        match self.conn(slot) {
            Some(conn) if conn.phase == Phase::Open => {}
            _ => return,
        }
        self.inner.slow_closed.fetch_add(1, Ordering::Relaxed);
        let max = self.inner.config.max_write_buf;
        self.begin_close(
            slot,
            Some(Frame::Error {
                id: 0,
                code: ErrorCode::SlowConsumer.as_u16(),
                message: format!("outbound queue exceeded {max} bytes; peer is not reading"),
            }),
        );
    }

    /// Stops reading and enters the drain phase, optionally queueing a
    /// final error notice first. In-flight queries keep running; the
    /// slot closes once they resolve and the outbox flushes.
    fn begin_close(&mut self, slot: usize, notice: Option<Frame>) {
        let Some(conn) = self.conn(slot) else { return };
        if let (Some(frame), false) = (notice, conn.dead) {
            conn.out.push_control(&frame);
        }
        conn.phase = Phase::Draining;
    }

    /// Marks the socket unusable: deregister and shut it down, discard
    /// the outbox, but keep the slot until in-flight queries resolve so
    /// `on_done` accounting survives abrupt disconnects.
    fn socket_dead(&mut self, slot: usize) {
        let fd = {
            let Some(conn) = self.conn(slot) else { return };
            if conn.dead {
                return;
            }
            conn.dead = true;
            conn.phase = Phase::Draining;
            conn.stream.as_raw_fd()
        };
        let _ = self.ep.delete(fd);
        if let Some(conn) = self.conn(slot) {
            conn.interest = 0;
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }

    /// Flush, maybe finish the drain, refresh epoll interest.
    fn pump(&mut self, slot: usize) {
        // Flush whatever the socket will take.
        let flush_err = {
            let Some(conn) = self.conn(slot) else { return };
            if conn.dead {
                false
            } else {
                conn.out.flush(&mut conn.stream).is_err()
            }
        };
        if flush_err {
            self.socket_dead(slot);
        }
        self.maybe_finish(slot);
        self.update_interest(slot);
    }

    fn maybe_finish(&mut self, slot: usize) {
        let inner = Arc::clone(&self.inner);
        let stall = inner.config.idle_timeout.max(Duration::from_secs(1));
        let close_now = {
            let Some(conn) = self.conn(slot) else { return };
            if conn.phase != Phase::Draining || !conn.inflight.is_empty() {
                return;
            }
            if !conn.goodbye_queued {
                // All in-flight work resolved: say Goodbye and release
                // the session (and its DRR lane) — the same order the
                // threads-mode teardown uses.
                if !conn.dead {
                    conn.out.push_control(&Frame::Goodbye);
                }
                conn.goodbye_queued = true;
                conn.drain_since = Some(Instant::now());
                if let Some(s) = conn.session.take() {
                    inner.up.close_session(s);
                }
                let _ = conn.out.flush(&mut conn.stream);
            }
            conn.dead
                || conn.out.is_empty()
                || conn.drain_since.is_some_and(|t| t.elapsed() >= stall)
        };
        if close_now {
            self.close_slot(slot);
        }
    }

    fn close_slot(&mut self, slot: usize) {
        let Some(mut conn) = self.slab.get_mut(slot).and_then(|c| c.take()) else { return };
        if !conn.dead {
            let _ = self.ep.delete(conn.stream.as_raw_fd());
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        // Defensive: every path that queues Goodbye already closed the
        // session, but a dead socket can skip that step.
        if let Some(s) = conn.session.take() {
            self.inner.up.close_session(s);
        }
        self.free.push(slot);
        self.live -= 1;
        self.inner.active.fetch_sub(1, Ordering::Relaxed);
    }

    fn update_interest(&mut self, slot: usize) {
        let (fd, tok, want, current) = {
            let Some(conn) = self.conn(slot) else { return };
            if conn.dead {
                return;
            }
            let mut want = 0;
            if conn.phase == Phase::Open {
                want |= EPOLLIN;
            }
            if !conn.out.is_empty() {
                want |= EPOLLOUT;
            }
            (conn.stream.as_raw_fd(), token(slot, conn.gen), want, conn.interest)
        };
        if want != current && self.ep.modify(fd, want, tok).is_ok() {
            if let Some(conn) = self.conn(slot) {
                conn.interest = want;
            }
        }
    }
}
