//! Thin raw bindings to the three Linux syscalls the reactor needs:
//! `epoll`, `eventfd`, and `close`.
//!
//! The workspace is offline (no `libc` crate), but `std` already links
//! the platform libc, so declaring the handful of symbols we use is
//! both cheap and dependency-free. Everything here is wrapped by safe
//! owner types ([`Epoll`], [`EventFd`]) — the rest of the crate never
//! sees a raw fd without an owner.

use std::fs::File;
use std::io;
use std::os::unix::io::{AsRawFd, FromRawFd, RawFd};

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x80000;
const EFD_CLOEXEC: i32 = 0x80000;
const EFD_NONBLOCK: i32 = 0x800;

/// Mirrors `struct epoll_event`. On x86-64 the kernel ABI packs it so
/// the 64-bit payload sits at offset 4; other arches use natural
/// alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Opaque per-registration token (we store generation-tagged slab
    /// slots here).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Owned epoll instance; closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` with the given interest set and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Rewrites the interest set for an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event for DEL; passing
        // one is harmless everywhere.
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`;
    /// returns how many fired. Retries `EINTR` internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            match cvt(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

/// Nonblocking eventfd used to kick an event loop out of `epoll_wait`
/// from another thread. The fd is owned by a [`File`], so drop closes
/// it and `read`/`write` go through std.
pub struct EventFd {
    file: File,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { file: unsafe { File::from_raw_fd(fd) } })
    }

    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Posts a wakeup. An `EAGAIN` (counter at max) still wakes the
    /// poller, so it is ignored like every other failure here — the
    /// worst case is a spurious tick.
    pub fn wake(&self) {
        use std::io::Write;
        let one = 1u64.to_ne_bytes();
        let _ = (&self.file).write(&one);
    }

    /// Drains the counter so level-triggered polling goes quiet again.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains_quiet() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Quiet at first.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        efd.wake();
        efd.wake();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        assert_eq!({ ev.data }, 7);
        assert_ne!({ ev.events } & EPOLLIN, 0);

        // One read drains the whole counter; the fd goes quiet.
        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // Interest can be rewritten and removed.
        ep.modify(efd.raw_fd(), EPOLLIN | EPOLLOUT, 9).unwrap();
        ep.delete(efd.raw_fd()).unwrap();
        efd.wake();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
