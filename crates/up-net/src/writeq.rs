//! Bounded per-connection outbound queues.
//!
//! Both wire modes enforce the same backpressure contract: a
//! connection's un-flushed reply bytes are bounded by
//! [`NetConfig::max_write_buf`](crate::NetConfig::max_write_buf). A
//! peer that submits queries but stops reading replies used to grow the
//! writer queue without bound; now the push fails, the connection gets
//! a stable [`SlowConsumer`](crate::ErrorCode::SlowConsumer) error, and
//! the server drops it. The bound is a threshold, not a ceiling: a push
//! is accepted whenever the queue is currently *below* the bound, so a
//! single frame larger than the bound still goes out (frames are
//! already capped at `max_frame`), and control frames (errors,
//! `Goodbye`) bypass the check — they are what a teardown needs to say.
//!
//! [`WriteQueue`] is the threads-mode shape: producers (the reader
//! thread, waiter threads) push encoded frames, one writer thread pops
//! blocking. [`OutBuf`] is the reactor shape: single-owner (the event
//! thread), flushed opportunistically against a nonblocking socket, no
//! lock at all.

use crate::frame::Frame;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Condvar, Mutex};

/// A producer-side push bounced off the byte bound: the peer is a slow
/// consumer and the connection should be torn down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overflow {
    /// Bytes already queued when the push was refused.
    pub queued: usize,
}

/// One encoded outbound frame.
pub(crate) struct Out {
    pub bytes: Vec<u8>,
    /// `Goodbye` is the writer's stop marker in threads mode.
    pub goodbye: bool,
}

struct WqState {
    q: VecDeque<Out>,
    bytes: usize,
    closed: bool,
}

/// Multi-producer / single-consumer bounded frame queue (threads mode).
pub(crate) struct WriteQueue {
    state: Mutex<WqState>,
    ready: Condvar,
    bound: usize,
}

impl WriteQueue {
    pub fn new(bound: usize) -> WriteQueue {
        WriteQueue {
            state: Mutex::new(WqState { q: VecDeque::new(), bytes: 0, closed: false }),
            ready: Condvar::new(),
            bound,
        }
    }

    /// Queues a data frame; refused once the queue sits at/over the
    /// byte bound (the connection owner then runs the slow-consumer
    /// teardown). Pushes to a closed queue are silently dropped — the
    /// writer is already gone, there is nobody left to tell.
    pub fn push(&self, frame: &Frame) -> Result<(), Overflow> {
        let mut g = self.state.lock().expect("write queue poisoned");
        if g.closed {
            return Ok(());
        }
        if g.bytes >= self.bound {
            return Err(Overflow { queued: g.bytes });
        }
        let bytes = frame.to_bytes();
        g.bytes += bytes.len();
        g.q.push_back(Out { bytes, goodbye: matches!(frame, Frame::Goodbye) });
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Queues a control frame (error notices, `Goodbye`) regardless of
    /// the bound — teardown must always be able to say why.
    pub fn push_control(&self, frame: &Frame) {
        let mut g = self.state.lock().expect("write queue poisoned");
        if g.closed {
            return;
        }
        let bytes = frame.to_bytes();
        g.bytes += bytes.len();
        g.q.push_back(Out { bytes, goodbye: matches!(frame, Frame::Goodbye) });
        drop(g);
        self.ready.notify_one();
    }

    /// Blocks for the next frame; `None` once closed and drained.
    pub fn pop_blocking(&self) -> Option<Out> {
        let mut g = self.state.lock().expect("write queue poisoned");
        loop {
            if let Some(out) = g.q.pop_front() {
                g.bytes -= out.bytes.len();
                return Some(out);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).expect("write queue poisoned");
        }
    }

    /// Closes the queue: the writer drains what is queued and exits.
    pub fn close(&self) {
        self.state.lock().expect("write queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Single-owner bounded outbound buffer (reactor mode): a FIFO of
/// encoded frames plus a cursor into the front one, flushed against a
/// nonblocking socket until `WouldBlock`.
pub(crate) struct OutBuf {
    q: VecDeque<Vec<u8>>,
    /// Bytes of the front frame already written.
    front_pos: usize,
    bytes: usize,
    bound: usize,
}

impl OutBuf {
    pub fn new(bound: usize) -> OutBuf {
        OutBuf { q: VecDeque::new(), front_pos: 0, bytes: 0, bound }
    }

    /// Queues a data frame under the byte bound.
    pub fn push(&mut self, frame: &Frame) -> Result<(), Overflow> {
        if self.bytes >= self.bound {
            return Err(Overflow { queued: self.bytes });
        }
        self.push_control(frame);
        Ok(())
    }

    /// Queues a control frame regardless of the bound.
    pub fn push_control(&mut self, frame: &Frame) {
        let bytes = frame.to_bytes();
        self.bytes += bytes.len();
        self.q.push_back(bytes);
    }

    /// Writes as much as the socket accepts. `Ok(true)` = fully
    /// drained, `Ok(false)` = the socket would block (caller keeps
    /// `EPOLLOUT` interest); an error means the connection is dead.
    pub fn flush(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while let Some(front) = self.q.front() {
            match w.write(&front[self.front_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted 0 bytes",
                    ))
                }
                Ok(n) => {
                    self.front_pos += n;
                    self.bytes -= n;
                    if self.front_pos == front.len() {
                        self.q.pop_front();
                        self.front_pos = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Queued (un-flushed) bytes.
    #[cfg(test)]
    pub fn queued(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ErrorCode;

    fn rows_frame(cells: usize) -> Frame {
        Frame::Rows {
            id: 1,
            columns: vec!["x".into()],
            rows: (0..cells).map(|i| vec![format!("{i:032}")]).collect(),
        }
    }

    #[test]
    fn write_queue_bounds_data_but_not_control() {
        let q = WriteQueue::new(32);
        q.push(&rows_frame(1)).unwrap();
        // Queue now sits over the 32-byte bound: the next push bounces.
        let err = q.push(&rows_frame(1)).unwrap_err();
        assert!(err.queued >= 32);
        // ...but the teardown notice always fits.
        q.push_control(&Frame::Error {
            id: 0,
            code: ErrorCode::SlowConsumer.as_u16(),
            message: "too slow".into(),
        });
        q.push_control(&Frame::Goodbye);
        q.close();
        let mut kinds = Vec::new();
        while let Some(out) = q.pop_blocking() {
            kinds.push(out.goodbye);
        }
        assert_eq!(kinds, vec![false, false, true], "rows, error, goodbye");
        // Draining returned the queue to empty; pushes after close are
        // swallowed, not deadlocks.
        q.push(&rows_frame(1)).unwrap();
        assert!(q.pop_blocking().is_none());
    }

    #[test]
    fn outbuf_flushes_across_partial_writes() {
        // A writer that accepts 7 bytes per call, then blocks every
        // third call: flush must resume exactly where it left off.
        struct Dribble {
            sink: Vec<u8>,
            calls: usize,
        }
        impl Write for Dribble {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls += 1;
                if self.calls.is_multiple_of(3) {
                    return Err(std::io::ErrorKind::WouldBlock.into());
                }
                let n = buf.len().min(7);
                self.sink.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut out = OutBuf::new(1 << 20);
        let frames = [rows_frame(3), Frame::Goodbye, rows_frame(1)];
        let mut expect = Vec::new();
        for f in &frames {
            out.push(f).unwrap();
            f.encode(&mut expect);
        }
        let mut w = Dribble { sink: Vec::new(), calls: 0 };
        while !out.flush(&mut w).unwrap() {}
        assert_eq!(w.sink, expect);
        assert!(out.is_empty());
        assert_eq!(out.queued(), 0);
    }

    #[test]
    fn outbuf_bound_is_a_threshold() {
        let mut out = OutBuf::new(16);
        // Below the bound: even a frame far larger than it is accepted.
        out.push(&rows_frame(64)).unwrap();
        assert!(out.queued() > 16);
        // At/over the bound: refused until flushed.
        assert!(out.push(&Frame::Goodbye).is_err());
        let mut sink = Vec::new();
        assert!(out.flush(&mut sink).unwrap());
        out.push(&Frame::Goodbye).unwrap();
    }
}
