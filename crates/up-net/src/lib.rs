//! `up-net` — a framed TCP wire protocol in front of
//! [`UpServer`](up_server::UpServer), with per-tenant quotas.
//!
//! The crate turns the in-process query service into a network service
//! using only `std::net` (the workspace is offline; no async runtime):
//!
//! - [`frame`] — the codec: length-prefixed, versioned binary frames
//!   with strict limits and stable numeric [`ErrorCode`]s;
//! - [`conn`] — the [`WireServer`]: one acceptor plus either the
//!   legacy per-connection reader/writer threads or (default on
//!   Linux) the epoll [`reactor`] with `O(cores)` event threads; both
//!   modes share the connection cap, idle timeouts, bounded
//!   per-connection write queues, and graceful shutdown that drains
//!   in-flight tickets;
//! - [`reactor`] — the readiness-driven event loops: nonblocking
//!   sockets in a slab, per-connection read/write state machines over
//!   the same codec, and an eventfd wakeup path that hands query
//!   completions back to the owning event thread
//!   (`UP_NET_REACTOR=threads|epoll` selects the mode);
//! - [`tenant`] — the [`TenantRegistry`]: token-bucket rate limits,
//!   concurrency caps, result-byte budgets, and DRR admission weights;
//! - [`client`] — a blocking [`Client`] shared by the tests, the
//!   `bench_net` load harness, and `examples/wire_service.rs`;
//! - [`config`] — [`NetConfig`] with `UP_NET_ADDR` /
//!   `UP_NET_MAX_CONNS` / `UP_NET_IDLE_S` environment defaults.
//!
//! ```
//! use std::sync::Arc;
//! use up_engine::{ColumnType, Schema, Value};
//! use up_net::{Client, NetConfig, TenantQuota, TenantRegistry, WireServer};
//! use up_num::{DecimalType, UpDecimal};
//! use up_server::{ServerConfig, UpServer};
//!
//! let up = Arc::new(UpServer::new(ServerConfig::default()));
//! let t = DecimalType::new_unchecked(6, 2);
//! up.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(t))]));
//! up.insert_many("t", [vec![Value::Decimal(UpDecimal::parse("1.25", t).unwrap())]])
//!     .unwrap();
//!
//! let tenants = Arc::new(TenantRegistry::new());
//! tenants.register("acme", "s3cret", TenantQuota::default());
//! let mut server = WireServer::start(up, tenants, NetConfig::default()).unwrap();
//!
//! let mut client = Client::connect(server.addr(), "acme", "s3cret").unwrap();
//! let rows = client.query("SELECT x + x FROM t").unwrap();
//! assert_eq!(rows.rows[0][0], "2.50");
//! client.goodbye().unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod conn;
pub mod frame;
#[cfg(target_os = "linux")]
pub mod reactor;
#[cfg(target_os = "linux")]
mod sys;
pub mod tenant;
mod writeq;

pub use client::{Client, Reply, RowSet};
pub use config::{NetConfig, ReactorMode};
pub use conn::{WireServer, WireStats};
pub use frame::{
    parse_frame, read_frame, write_frame, DecodeError, ErrorCode, Frame, FrameAssembler,
    WireError, DEFAULT_MAX_FRAME, WIRE_VERSION,
};
pub use tenant::{TenantQuota, TenantRegistry, TenantStats};
pub use writeq::Overflow;
