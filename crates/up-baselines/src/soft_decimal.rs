//! A PostgreSQL-`numeric`-style CPU arbitrary-precision decimal.
//!
//! PostgreSQL realizes arbitrary-precision `DECIMAL` in "more than 10K
//! lines of C" (§I) around a base-10000 digit array (`NumericVar`). This
//! module reimplements that design — sign, base-10⁴ digit vector, a
//! base-10⁴ exponent, and a display scale — together with the
//! division-scale policies that distinguish the CPU databases the paper
//! evaluates:
//!
//! * **PostgreSQL**: quotient scale = `max(s₁, s₂)`, raised until the
//!   quotient keeps at least 16 significant digits (`select_div_scale`);
//! * **H2**: "adds 20 additional digits in DECIMAL divisions" (§IV-D4) —
//!   the reason it dodges Fig. 15's underflow but pays for it;
//! * **CockroachDB**: a significant-digit context like its `apd` library;
//! * **PaperRule**: UltraPrecise's own `s₁ + 4` (§III-B3), for apples-to-
//!   apples checks against `up-num`.
//!
//! The arithmetic is an independent implementation (base 10⁴, not 2³²) so
//! cross-checks between `SoftDecimal` and [`up_num::UpDecimal`] catch
//! errors in either.

use core::cmp::Ordering;
use core::fmt;

/// Base of one digit group.
const NBASE: i32 = 10_000;
/// Decimal digits per group.
const DEC_PER_DIGIT: u32 = 4;
/// PostgreSQL's `NUMERIC_MIN_SIG_DIGITS`.
const PG_MIN_SIG_DIGITS: i64 = 16;
/// CockroachDB's default significant-digit context.
const CRDB_SIG_DIGITS: i64 = 20;
/// H2's extra division digits (§IV-D4).
const H2_EXTRA_DIGITS: u32 = 20;

/// Division result-scale policy of a CPU database profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivProfile {
    /// PostgreSQL `select_div_scale`.
    Postgres,
    /// H2: dividend scale + 20.
    H2,
    /// CockroachDB: 20-significant-digit context.
    Cockroach,
    /// UltraPrecise's `s₁ + 4` rule (§III-B3).
    PaperRule,
}

/// A base-10⁴ arbitrary-precision decimal.
///
/// Value = `sign · Σ digits[i] · 10000^(lsd_exp + i)`, digits least
/// significant group first, truncated/padded so no leading or trailing
/// zero groups remain. `dscale` is the display scale in decimal digits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SoftDecimal {
    sign: i8,
    digits: Vec<i32>,
    lsd_exp: i32,
    dscale: u32,
}

impl SoftDecimal {
    /// Zero with a display scale.
    pub fn zero(dscale: u32) -> SoftDecimal {
        SoftDecimal { sign: 0, digits: Vec::new(), lsd_exp: 0, dscale }
    }

    /// The display scale (digits after the decimal point).
    pub fn dscale(&self) -> u32 {
        self.dscale
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == 0
    }

    /// Parses a literal like `-123.45`; the display scale is the literal's
    /// fraction length.
    pub fn parse(s: &str) -> Result<SoftDecimal, String> {
        let s = s.trim();
        let (neg, body) = match s.as_bytes().first() {
            Some(b'-') => (true, &s[1..]),
            Some(b'+') => (false, &s[1..]),
            Some(_) => (false, s),
            None => return Err("empty literal".into()),
        };
        let (int_part, frac_part) = body.split_once('.').unwrap_or((body, ""));
        if (int_part.is_empty() && frac_part.is_empty())
            || !int_part.bytes().all(|b| b.is_ascii_digit())
            || !frac_part.bytes().all(|b| b.is_ascii_digit())
        {
            return Err(format!("invalid literal {s:?}"));
        }
        let dscale = frac_part.len() as u32;
        // Pad the fraction to a whole number of base-10⁴ groups.
        let pad = (DEC_PER_DIGIT - (dscale % DEC_PER_DIGIT)) % DEC_PER_DIGIT;
        let padded = format!("{int_part}{frac_part}{}", "0".repeat(pad as usize));
        let lsd_exp = -(((dscale + pad) / DEC_PER_DIGIT) as i32);
        // Split from the right into 4-digit groups.
        let bytes = padded.as_bytes();
        let mut digits = Vec::with_capacity(bytes.len() / 4 + 1);
        let mut end = bytes.len();
        while end > 0 {
            let start = end.saturating_sub(4);
            let chunk: i32 = padded[start..end].parse().map_err(|_| "chunk")?;
            digits.push(chunk);
            end = start;
        }
        let mut v = SoftDecimal { sign: if neg { -1 } else { 1 }, digits, lsd_exp, dscale };
        v.normalize();
        Ok(v)
    }

    /// Builds from an `i64` at display scale 0.
    pub fn from_i64(v: i64) -> SoftDecimal {
        Self::parse(&v.to_string()).expect("i64 formats as a valid literal")
    }

    /// Builds from an unscaled integer + scale, the column storage form.
    pub fn from_scaled_i128(unscaled: i128, scale: u32) -> SoftDecimal {
        let neg = unscaled < 0;
        let digits = unscaled.unsigned_abs().to_string();
        let s = if digits.len() as u32 <= scale {
            format!(
                "{}0.{}{}",
                if neg { "-" } else { "" },
                "0".repeat((scale as usize).saturating_sub(digits.len())),
                digits
            )
        } else {
            let split = digits.len() - scale as usize;
            if scale == 0 {
                format!("{}{}", if neg { "-" } else { "" }, digits)
            } else {
                format!("{}{}.{}", if neg { "-" } else { "" }, &digits[..split], &digits[split..])
            }
        };
        Self::parse(&s).expect("formatted literal")
    }

    fn normalize(&mut self) {
        while let Some(&0) = self.digits.last() {
            self.digits.pop();
        }
        while let Some(&0) = self.digits.first() {
            self.digits.remove(0);
            self.lsd_exp += 1;
        }
        if self.digits.is_empty() {
            self.sign = 0;
            self.lsd_exp = 0;
        } else if self.sign == 0 {
            self.sign = 1;
        }
    }

    /// Decimal digits after the point actually stored (≥ dscale rounding
    /// target before a round).
    fn frac_groups(&self) -> i32 {
        (-self.lsd_exp).max(0)
    }

    /// Compares absolute values.
    fn cmp_abs(&self, other: &SoftDecimal) -> Ordering {
        let msd_a = self.lsd_exp + self.digits.len() as i32;
        let msd_b = other.lsd_exp + other.digits.len() as i32;
        if self.digits.is_empty() || other.digits.is_empty() {
            return self.digits.len().cmp(&other.digits.len());
        }
        if msd_a != msd_b {
            return msd_a.cmp(&msd_b);
        }
        // Walk from the most significant group down.
        let lo = self.lsd_exp.min(other.lsd_exp);
        for e in (lo..msd_a).rev() {
            let da = self.digit_at(e);
            let db = other.digit_at(e);
            if da != db {
                return da.cmp(&db);
            }
        }
        Ordering::Equal
    }

    fn digit_at(&self, exp: i32) -> i32 {
        let idx = exp - self.lsd_exp;
        if idx < 0 || idx as usize >= self.digits.len() {
            0
        } else {
            self.digits[idx as usize]
        }
    }

    /// Signed comparison by value.
    pub fn cmp_value(&self, other: &SoftDecimal) -> Ordering {
        match (self.sign, other.sign) {
            (0, 0) => Ordering::Equal,
            (a, b) if a < b => Ordering::Less,
            (a, b) if a > b => Ordering::Greater,
            (-1, _) => other.cmp_abs(self),
            _ => self.cmp_abs(other),
        }
    }

    fn add_abs(&self, other: &SoftDecimal) -> (Vec<i32>, i32) {
        let lo = self.lsd_exp.min(other.lsd_exp);
        let hi = (self.lsd_exp + self.digits.len() as i32)
            .max(other.lsd_exp + other.digits.len() as i32);
        let mut out = Vec::with_capacity((hi - lo + 1) as usize);
        let mut carry = 0i32;
        for e in lo..hi {
            let mut s = self.digit_at(e) + other.digit_at(e) + carry;
            if s >= NBASE {
                s -= NBASE;
                carry = 1;
            } else {
                carry = 0;
            }
            out.push(s);
        }
        if carry > 0 {
            out.push(carry);
        }
        (out, lo)
    }

    /// |self| − |other| assuming |self| ≥ |other|.
    fn sub_abs(&self, other: &SoftDecimal) -> (Vec<i32>, i32) {
        debug_assert!(self.cmp_abs(other) != Ordering::Less);
        let lo = self.lsd_exp.min(other.lsd_exp);
        let hi = self.lsd_exp + self.digits.len() as i32;
        let mut out = Vec::with_capacity((hi - lo) as usize);
        let mut borrow = 0i32;
        for e in lo..hi {
            let mut d = self.digit_at(e) - other.digit_at(e) - borrow;
            if d < 0 {
                d += NBASE;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d);
        }
        debug_assert_eq!(borrow, 0);
        (out, lo)
    }

    /// Addition; display scale = `max(s₁, s₂)` (PostgreSQL's rule).
    pub fn add(&self, other: &SoftDecimal) -> SoftDecimal {
        let dscale = self.dscale.max(other.dscale);
        let mut r = if self.sign == 0 {
            other.clone()
        } else if other.sign == 0 {
            self.clone()
        } else if self.sign == other.sign {
            let (digits, lsd_exp) = self.add_abs(other);
            SoftDecimal { sign: self.sign, digits, lsd_exp, dscale }
        } else {
            match self.cmp_abs(other) {
                Ordering::Equal => SoftDecimal::zero(dscale),
                Ordering::Greater => {
                    let (digits, lsd_exp) = self.sub_abs(other);
                    SoftDecimal { sign: self.sign, digits, lsd_exp, dscale }
                }
                Ordering::Less => {
                    let (digits, lsd_exp) = other.sub_abs(self);
                    SoftDecimal { sign: other.sign, digits, lsd_exp, dscale }
                }
            }
        };
        r.dscale = dscale;
        r.normalize();
        r
    }

    /// Subtraction.
    pub fn sub(&self, other: &SoftDecimal) -> SoftDecimal {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> SoftDecimal {
        SoftDecimal { sign: -self.sign, ..self.clone() }
    }

    /// Multiplication; display scale = `s₁ + s₂`.
    pub fn mul(&self, other: &SoftDecimal) -> SoftDecimal {
        let dscale = self.dscale + other.dscale;
        if self.sign == 0 || other.sign == 0 {
            return SoftDecimal::zero(dscale);
        }
        let mut acc = vec![0i64; self.digits.len() + other.digits.len() + 1];
        for (i, &a) in self.digits.iter().enumerate() {
            for (j, &b) in other.digits.iter().enumerate() {
                acc[i + j] += a as i64 * b as i64;
            }
        }
        let mut out = Vec::with_capacity(acc.len());
        let mut carry = 0i64;
        for v in acc {
            let t = v + carry;
            out.push((t % NBASE as i64) as i32);
            carry = t / NBASE as i64;
        }
        debug_assert_eq!(carry, 0);
        let mut r = SoftDecimal {
            sign: self.sign * other.sign,
            digits: out,
            lsd_exp: self.lsd_exp + other.lsd_exp,
            dscale,
        };
        r.normalize();
        r
    }

    /// Division under a profile's result-scale policy; rounds half away
    /// from zero at the chosen scale. Errors on a zero divisor.
    pub fn div(&self, other: &SoftDecimal, profile: DivProfile) -> Result<SoftDecimal, String> {
        if other.sign == 0 {
            return Err("division by zero".into());
        }
        let rscale = self.select_div_scale(other, profile);
        if self.sign == 0 {
            return Ok(SoftDecimal::zero(rscale));
        }
        // Compute with guard digits, then round to rscale.
        let guard_groups = rscale.div_ceil(DEC_PER_DIGIT) as i32 + 2;

        // Long division in base 10⁴ (the elementary-school method §II-B):
        // shift the dividend left so the integer quotient carries
        // `guard_groups` fractional groups.
        let shift = guard_groups + other.frac_groups() - self.frac_groups();
        let mut num: Vec<i32> = self.digits.clone();
        let num_lsd = self.lsd_exp; // value ignored below; we work integer
        let _ = num_lsd;
        if shift > 0 {
            let mut shifted = vec![0i32; shift as usize];
            shifted.extend_from_slice(&num);
            num = shifted;
        } else if shift < 0 {
            let drop = (-shift) as usize;
            if drop >= num.len() {
                num.clear();
            } else {
                num.drain(..drop);
            }
        }
        let den = &other.digits;
        let q = int_div(&num, den);
        let mut r = SoftDecimal {
            sign: self.sign * other.sign,
            digits: q,
            lsd_exp: -guard_groups + (self.lsd_exp + self.frac_groups())
                - (other.lsd_exp + other.frac_groups()),
            dscale: rscale,
        };
        r.normalize();
        Ok(r.round_dscale(rscale))
    }

    fn select_div_scale(&self, other: &SoftDecimal, profile: DivProfile) -> u32 {
        match profile {
            DivProfile::PaperRule => self.dscale + 4,
            DivProfile::H2 => self.dscale + H2_EXTRA_DIGITS,
            DivProfile::Postgres | DivProfile::Cockroach => {
                let min_sig = if profile == DivProfile::Postgres {
                    PG_MIN_SIG_DIGITS
                } else {
                    CRDB_SIG_DIGITS
                };
                // Estimate the quotient weight from the operands' most
                // significant groups (PostgreSQL's select_div_scale).
                let w1 = self.lsd_exp + self.digits.len() as i32;
                let w2 = other.lsd_exp + other.digits.len() as i32;
                let qweight = (w1 - w2) as i64 * DEC_PER_DIGIT as i64;
                let rscale = min_sig - qweight;
                rscale
                    .max(self.dscale.max(other.dscale) as i64)
                    .clamp(0, 130_000) as u32
            }
        }
    }

    /// Rounds (half away from zero) to a display scale, in one step —
    /// half-away rounding depends only on the most significant dropped
    /// digit, so no double rounding across the base-10⁴ group boundary.
    pub fn round_dscale(&self, dscale: u32) -> SoftDecimal {
        let frac_digits = self.frac_groups() as u32 * DEC_PER_DIGIT;
        if self.sign == 0 || frac_digits <= dscale {
            let mut r = self.clone();
            r.dscale = dscale;
            return r;
        }
        let drop = frac_digits - dscale;
        let drop_groups = (drop / DEC_PER_DIGIT) as usize;
        let extra = drop % DEC_PER_DIGIT;
        let mut r = self.clone();
        r.dscale = dscale;
        // Most significant dropped digit decides the half-away rounding.
        let msd = if extra > 0 {
            let g = r.digit_at(r.lsd_exp + drop_groups as i32);
            (g / 10i32.pow(extra - 1)) % 10
        } else {
            let g = r.digit_at(r.lsd_exp + drop_groups as i32 - 1);
            g / 1000
        };
        let cut = drop_groups.min(r.digits.len());
        r.digits.drain(..cut);
        r.lsd_exp += cut as i32;
        if extra > 0 && !r.digits.is_empty() {
            let m = 10i32.pow(extra);
            r.digits[0] -= r.digits[0] % m;
        }
        if msd >= 5 {
            // One ulp at the kept scale = 10^extra at the lowest group.
            let mut carry = 10i32.pow(extra);
            let mut i = 0;
            while carry > 0 {
                if i == r.digits.len() {
                    r.digits.push(0);
                }
                r.digits[i] += carry;
                carry = r.digits[i] / NBASE;
                r.digits[i] %= NBASE;
                i += 1;
            }
        }
        r.normalize();
        r
    }

    /// Lossy f64 view.
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0;
        for &d in self.digits.iter().rev() {
            v = v * NBASE as f64 + d as f64;
        }
        v *= (NBASE as f64).powi(self.lsd_exp);
        if self.sign < 0 {
            -v
        } else {
            v
        }
    }
}

/// Integer long division of base-10⁴ digit vectors (LSD first), quotient
/// only — the schoolbook algorithm with a two-group estimate and
/// correction.
fn int_div(num: &[i32], den: &[i32]) -> Vec<i32> {
    let n = den.len();
    debug_assert!(n > 0);
    if num.len() < n {
        return Vec::new();
    }
    if n == 1 {
        let d = den[0] as i64;
        let mut q = vec![0i32; num.len()];
        let mut rem: i64 = 0;
        for i in (0..num.len()).rev() {
            let cur = rem * NBASE as i64 + num[i] as i64;
            q[i] = (cur / d) as i32;
            rem = cur % d;
        }
        return q;
    }
    // Knuth D in base 10⁴, with the usual normalization so the divisor's
    // top group is ≥ NBASE/2 and the two-group estimate is off by ≤ 2.
    let factor = (NBASE as i64) / (den[n - 1] as i64 + 1);
    let num_n = scale_digits(num, factor);
    let den_n = scale_digits(den, factor);
    debug_assert_eq!(den_n.len(), n, "normalization must not widen the divisor");
    let m = num_n.len() - n;
    let mut rem: Vec<i64> = num_n.iter().map(|&d| d as i64).collect();
    rem.push(0);
    let dhi = den_n[n - 1] as i64;
    let dlo = den_n[n - 2] as i64;
    let mut q = vec![0i32; m + 1];
    for j in (0..=m).rev() {
        let top = rem[j + n] * NBASE as i64 + rem[j + n - 1];
        let mut qhat = (top / dhi).min(NBASE as i64 - 1);
        let mut rhat = top - qhat * dhi;
        while rhat < NBASE as i64 && qhat * dlo > rhat * NBASE as i64 + rem[j + n - 2] {
            qhat -= 1;
            rhat += dhi;
        }
        // rem[j..] -= qhat * den
        let mut borrow: i64 = 0;
        for (i, &d) in den_n.iter().enumerate() {
            let t = rem[j + i] - qhat * d as i64 - borrow;
            borrow = if t < 0 { (-t + NBASE as i64 - 1) / NBASE as i64 } else { 0 };
            rem[j + i] = t + borrow * NBASE as i64;
        }
        rem[j + n] -= borrow;
        if rem[j + n] < 0 {
            // One too big: add the divisor back.
            qhat -= 1;
            let mut carry: i64 = 0;
            for (i, &d) in den_n.iter().enumerate() {
                let t = rem[j + i] + d as i64 + carry;
                rem[j + i] = t % NBASE as i64;
                carry = t / NBASE as i64;
            }
            rem[j + n] += carry;
            debug_assert!(rem[j + n] >= 0);
        }
        q[j] = qhat as i32;
    }
    q
}

/// Multiplies a base-10⁴ digit vector by a small scalar (< NBASE) without
/// changing the group count unless a carry spills.
fn scale_digits(v: &[i32], factor: i64) -> Vec<i32> {
    if factor <= 1 {
        return v.to_vec();
    }
    let mut out = Vec::with_capacity(v.len() + 1);
    let mut carry: i64 = 0;
    for &d in v {
        let t = d as i64 * factor + carry;
        out.push((t % NBASE as i64) as i32);
        carry = t / NBASE as i64;
    }
    if carry > 0 {
        out.push(carry as i32);
    }
    out
}

impl fmt::Display for SoftDecimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == 0 {
            if self.dscale == 0 {
                return write!(f, "0");
            }
            return write!(f, "0.{}", "0".repeat(self.dscale as usize));
        }
        // Render all groups from the integer top through the fraction
        // grid, then place the point by dscale. Only a leading *integer*
        // group may print unpadded; fraction groups always pad to 4.
        let mut digits = String::new();
        let msd = self.lsd_exp + self.digits.len() as i32;
        let hi = msd.max(0);
        let lo = self
            .lsd_exp
            .min(-((self.dscale.div_ceil(DEC_PER_DIGIT)) as i32))
            .min(0);
        for e in (lo..hi).rev() {
            let d = self.digit_at(e);
            if digits.is_empty() && e >= 0 {
                digits.push_str(&d.to_string());
            } else {
                digits.push_str(&format!("{d:04}"));
            }
        }
        let frac_digits = (-lo).max(0) as usize * DEC_PER_DIGIT as usize;
        // Trim or pad the fraction to dscale.
        let int_len = digits.len().saturating_sub(frac_digits);
        let (int_part, frac_part) = digits.split_at(int_len);
        let int_part = int_part.trim_start_matches('0');
        let int_part = if int_part.is_empty() { "0" } else { int_part };
        let mut frac: String = frac_part.to_string();
        frac.truncate(self.dscale as usize);
        while frac.len() < self.dscale as usize {
            frac.push('0');
        }
        if self.sign < 0 {
            write!(f, "-")?;
        }
        if self.dscale == 0 {
            write!(f, "{int_part}")
        } else {
            write!(f, "{int_part}.{frac}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(s: &str) -> SoftDecimal {
        SoftDecimal::parse(s).unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        for s in [
            "0",
            "1",
            "-1",
            "1.23",
            "-0.0001",
            "12345678.90123456",
            "10000",
            "0.10",
            "99999999999999999999999999.999",
        ] {
            assert_eq!(sd(s).to_string(), s, "{s}");
        }
    }

    #[test]
    fn addition_with_alignment() {
        assert_eq!(sd("1.23").add(&sd("0.1")).to_string(), "1.33");
        assert_eq!(sd("0.1").add(&sd("0.2")).to_string(), "0.3");
        assert_eq!(sd("9999.9999").add(&sd("0.0001")).to_string(), "10000.0000");
        assert_eq!(sd("1.00").sub(&sd("2.50")).to_string(), "-1.50");
        assert_eq!(sd("-5").add(&sd("5")).to_string(), "0");
    }

    #[test]
    fn multiplication() {
        assert_eq!(sd("1.5").mul(&sd("-2.05")).to_string(), "-3.075");
        assert_eq!(sd("10000").mul(&sd("10000")).to_string(), "100000000");
        assert_eq!(
            sd("123456789.123").mul(&sd("987654321.987")).to_string(),
            // 123456789123 × 987654321987 = 121932631355968601347401,
            // with 3 + 3 = 6 fraction digits.
            "121932631355968601.347401"
        );
    }

    #[test]
    fn division_profiles_set_scale() {
        let a = sd("1.00000000"); // dscale 8
        let b = sd("3");
        let pg = a.div(&b, DivProfile::Postgres).unwrap();
        // PG: quotient ~0.33 → rscale ≈ 16 + small; at least max scale 8.
        assert!(pg.dscale() >= 16, "pg dscale {}", pg.dscale());
        let h2 = a.div(&b, DivProfile::H2).unwrap();
        assert_eq!(h2.dscale(), 8 + 20);
        let paper = a.div(&b, DivProfile::PaperRule).unwrap();
        assert_eq!(paper.dscale(), 12);
        let crdb = a.div(&b, DivProfile::Cockroach).unwrap();
        assert!(crdb.dscale() >= 20);
        // All approximate 1/3.
        for q in [&pg, &h2, &paper, &crdb] {
            assert!((q.to_f64() - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn division_values_match_expected_digits() {
        let q = sd("2").div(&sd("7"), DivProfile::PaperRule).unwrap();
        assert_eq!(q.to_string(), "0.2857"); // s1+4 = 4, rounded
        let q = sd("10").div(&sd("4"), DivProfile::PaperRule).unwrap();
        assert_eq!(q.to_string(), "2.5000");
        let q = sd("-10").div(&sd("4"), DivProfile::PaperRule).unwrap();
        assert_eq!(q.to_string(), "-2.5000");
    }

    #[test]
    fn division_large_operands() {
        let a = sd("123456789012345678901234567890");
        let b = sd("9876543210987654321");
        let q = a.div(&b, DivProfile::PaperRule).unwrap();
        // Cross-check against up-num.
        let ta = up_num::UpDecimal::parse_literal("123456789012345678901234567890").unwrap();
        let tb = up_num::UpDecimal::parse_literal("9876543210987654321").unwrap();
        let want = ta.div(&tb).unwrap();
        assert!((q.to_f64() - want.to_f64()).abs() / want.to_f64() < 1e-12);
    }

    #[test]
    fn cross_check_against_up_num_arithmetic() {
        // Deterministic pseudo-random cross-validation of two independent
        // implementations.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as i64 - (1 << 30)
        };
        for _ in 0..200 {
            let (x, y) = (next(), next());
            let (sx, sy) = ((x.unsigned_abs() % 5) as u32, (y.unsigned_abs() % 5) as u32);
            let a = SoftDecimal::from_scaled_i128(x as i128, sx);
            let b = SoftDecimal::from_scaled_i128(y as i128, sy);
            let ua = up_num::UpDecimal::from_scaled_i64(
                x,
                up_num::DecimalType::new_unchecked(19, sx),
            )
            .unwrap();
            let ub = up_num::UpDecimal::from_scaled_i64(
                y,
                up_num::DecimalType::new_unchecked(19, sy),
            )
            .unwrap();
            assert_eq!(a.add(&b).to_string(), ua.add(&ub).to_string(), "{x}e-{sx} + {y}e-{sy}");
            assert_eq!(a.mul(&b).to_string(), ua.mul(&ub).to_string(), "{x}e-{sx} * {y}e-{sy}");
        }
    }

    #[test]
    fn comparison() {
        assert_eq!(sd("1.5").cmp_value(&sd("1.50")), Ordering::Equal);
        assert_eq!(sd("-2").cmp_value(&sd("1")), Ordering::Less);
        assert_eq!(sd("10000").cmp_value(&sd("9999.9999")), Ordering::Greater);
        assert_eq!(sd("-0.0001").cmp_value(&sd("-0.0002")), Ordering::Greater);
    }

    #[test]
    fn rounding_half_away_from_zero() {
        assert_eq!(sd("1.2350").round_dscale(2).to_string(), "1.24");
        assert_eq!(sd("-1.2350").round_dscale(2).to_string(), "-1.24");
        assert_eq!(sd("1.2349").round_dscale(2).to_string(), "1.23");
        assert_eq!(sd("9.9999").round_dscale(2).to_string(), "10.00");
    }
}
