//! The DOUBLE path — fast and wrong (Fig. 1).
//!
//! Executing `SELECT SUM(c1+c2)` with `DOUBLE` columns "is very fast but
//! produces incorrect results. Furthermore … the DOUBLE execution results
//! from the two databases are inconsistent" (§I). This module provides
//! that baseline: plain `f64` evaluation plus the two accumulation orders
//! that make PostgreSQL-like and CockroachDB-like engines disagree with
//! each other (sequential vs. pairwise summation), so the Fig. 1 harness
//! can show both the error and the inconsistency.

use up_num::UpDecimal;

/// How an engine accumulates a DOUBLE sum — the source of cross-database
/// inconsistency in Fig. 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SumOrder {
    /// Left-to-right sequential accumulation (PostgreSQL-style executor).
    Sequential,
    /// Pairwise/tree reduction (vectorized or distributed executors).
    Pairwise,
}

/// Sums an f64 slice under an accumulation order.
pub fn sum_f64(values: &[f64], order: SumOrder) -> f64 {
    match order {
        SumOrder::Sequential => values.iter().sum(),
        SumOrder::Pairwise => pairwise(values),
    }
}

fn pairwise(v: &[f64]) -> f64 {
    match v.len() {
        0 => 0.0,
        1 => v[0],
        n => {
            let mid = n / 2;
            pairwise(&v[..mid]) + pairwise(&v[mid..])
        }
    }
}

/// Converts a decimal column to f64 (the lossy cast a DOUBLE schema
/// implies).
pub fn to_f64_column(values: &[UpDecimal]) -> Vec<f64> {
    values.iter().map(UpDecimal::to_f64).collect()
}

/// Absolute error of a DOUBLE result against the exact decimal value.
pub fn absolute_error(double_result: f64, exact: &UpDecimal) -> f64 {
    (double_result - exact.to_f64()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_num::DecimalType;

    #[test]
    fn double_sum_is_inexact_where_decimal_is_exact() {
        // 10,000 copies of 0.1: exact sum 1000, f64 drifts.
        let t = DecimalType::new_unchecked(3, 1);
        let dec = vec![UpDecimal::parse("0.1", t).unwrap(); 10_000];
        let doubles = to_f64_column(&dec);
        let s = sum_f64(&doubles, SumOrder::Sequential);
        assert_ne!(s, 1000.0, "f64 should drift");
        assert!((s - 1000.0).abs() < 1e-6);
        // The exact engine gets 1000 exactly.
        let out_ty = t.sum_result(10_000);
        let mut acc = UpDecimal::zero(out_ty);
        for v in &dec {
            acc = UpDecimal::from_parts_unchecked(
                acc.unscaled().add(&v.align_up(out_ty.scale)),
                out_ty,
            );
        }
        assert_eq!(acc.to_string(), format!("1000.{}", "0"));
    }

    #[test]
    fn accumulation_orders_disagree() {
        // A spread of magnitudes makes sequential and pairwise differ —
        // the Fig. 1 "inconsistent results" observation. Sequentially,
        // each +1 is absorbed by the 1e16 accumulator (ULP spacing 2.0);
        // pairwise, the ones combine first and survive.
        let mut values = vec![1e16];
        values.extend(std::iter::repeat(1.0).take(10_000));
        let seq = sum_f64(&values, SumOrder::Sequential);
        let pair = sum_f64(&values, SumOrder::Pairwise);
        assert_ne!(seq, pair, "orders should disagree on mixed magnitudes");
        assert!((pair - (1e16 + 10_000.0)).abs() <= 16.0);
    }

    #[test]
    fn pairwise_is_exact_on_integers() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(sum_f64(&values, SumOrder::Pairwise), 500_500.0);
        assert_eq!(sum_f64(&values, SumOrder::Sequential), 500_500.0);
    }
}
