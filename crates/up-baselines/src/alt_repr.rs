//! The alternative representation — §III-B1, Fig. 5.
//!
//! PostgreSQL and RateupDB place the decimal point *between* array
//! elements: each 32-bit word right of the point holds 9 decimal digits
//! (10⁹ states), so two values never need scale alignment before an
//! addition — at the cost of extra storage (low-precision values double
//! in size). UltraPrecise evaluated and **discarded** this design because
//! "reading data from the memory dominates the execution time of
//! additions and subtractions. A compact representation benefits the
//! calculation." This module implements the representation so the Fig. 8
//! ablation can measure exactly that trade-off.

use up_num::{BigInt, DecimalType, Sign, UpDecimal};

/// Decimal digits per word right of the point.
const DIGITS_PER_WORD: u32 = 9;

/// A decimal in the alternative layout: `int_words` (base 2³², little-
/// endian) left of the point, `frac_words` (base 10⁹, most significant
/// first) right of it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AltDecimal {
    /// Sign: −1, 0, +1.
    pub sign: i8,
    /// Integer part, base 2³², little-endian.
    pub int_words: Vec<u32>,
    /// Fraction part, base 10⁹, most significant word first ("a 32-bit
    /// word to the right of the decimal point is only allowed to
    /// represent 10⁹ numbers").
    pub frac_words: Vec<u32>,
    /// Display scale in decimal digits.
    pub dscale: u32,
}

impl AltDecimal {
    /// Words needed for a `DECIMAL(p, s)` column in this layout.
    pub fn words_for(ty: DecimalType) -> usize {
        up_num::compact::alt_repr_words(ty)
    }

    /// Storage bytes per value (word array + sign byte).
    pub fn bytes_for(ty: DecimalType) -> usize {
        Self::words_for(ty) * 4 + 1
    }

    /// Converts from the reference representation.
    pub fn from_decimal(v: &UpDecimal) -> AltDecimal {
        let ty = v.dtype();
        let scale = ty.scale;
        // Split |v| into integer and fraction parts.
        let int = v.unscaled().div_pow10_trunc(scale);
        let frac = v
            .unscaled()
            .abs()
            .sub(&int.abs().mul_pow10(scale));
        // Fraction digits → base-10⁹ words, MSD first, left-justified:
        // 0.23 is stored as 230,000,000 (Fig. 5's example text).
        let frac_words_n = (scale as usize).div_ceil(DIGITS_PER_WORD as usize);
        let mut frac_digits = frac.mag_to_dec_string();
        // Left-pad to the scale, then right-pad to the word grid.
        while (frac_digits.len() as u32) < scale {
            frac_digits.insert(0, '0');
        }
        while frac_digits.len() < frac_words_n * DIGITS_PER_WORD as usize {
            frac_digits.push('0');
        }
        let frac_words: Vec<u32> = (0..frac_words_n)
            .map(|i| {
                frac_digits[i * 9..(i + 1) * 9].parse().expect("9 digits")
            })
            .collect();
        AltDecimal {
            sign: match v.sign() {
                Sign::Minus => -1,
                Sign::Zero => 0,
                Sign::Plus => 1,
            },
            int_words: int.abs().mag().to_vec(),
            frac_words,
            dscale: scale,
        }
    }

    /// Converts back to the reference representation at scale `dscale`.
    pub fn to_decimal(&self, ty: DecimalType) -> UpDecimal {
        debug_assert_eq!(ty.scale, self.dscale);
        let int = BigInt::from_sign_mag(
            if self.int_words.iter().all(|&w| w == 0) { Sign::Zero } else { Sign::Plus },
            self.int_words.clone(),
        );
        let mut unscaled = int.mul_pow10(self.dscale);
        // Fraction: MSD-first base-10⁹ words hold left-justified digits.
        let mut frac_digits = String::new();
        for w in &self.frac_words {
            frac_digits.push_str(&format!("{w:09}"));
        }
        frac_digits.truncate(self.dscale as usize);
        if !frac_digits.is_empty() {
            let frac = BigInt::parse_dec(&frac_digits).expect("digits");
            unscaled = unscaled.add(&frac);
        }
        if self.sign < 0 {
            unscaled = unscaled.neg();
        }
        UpDecimal::from_parts_unchecked(unscaled, ty)
    }

    /// Adds two same-sign values **without any scale alignment** — the
    /// representation's selling point (Fig. 5): fraction words add as
    /// base-10⁹ digits with decimal carries into the integer part, no
    /// ×10ᵏ multiply even when the operands' scales differ.
    pub fn add_abs_unaligned(&self, other: &AltDecimal) -> AltDecimal {
        let dscale = self.dscale.max(other.dscale);
        let frac_n = self.frac_words.len().max(other.frac_words.len());
        let mut frac = vec![0u32; frac_n];
        let mut carry: u32 = 0;
        for i in (0..frac_n).rev() {
            let a = self.frac_words.get(i).copied().unwrap_or(0);
            let b = other.frac_words.get(i).copied().unwrap_or(0);
            let s = a as u64 + b as u64 + carry as u64;
            if s >= 1_000_000_000 {
                frac[i] = (s - 1_000_000_000) as u32;
                carry = 1;
            } else {
                frac[i] = s as u32;
                carry = 0;
            }
        }
        // Integer part: binary addition plus the decimal carry.
        let mut int = up_num::limbs::add(&self.int_words, &other.int_words);
        if carry != 0 {
            int.resize(int.len() + 1, 0);
            let c = up_num::limbs::add_assign(&mut int, &[1]);
            debug_assert!(!c);
            up_num::limbs::trim(&mut int);
        }
        AltDecimal {
            sign: if self.sign == 0 && other.sign == 0 { 0 } else { 1 },
            int_words: int,
            frac_words: frac,
            dscale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn fig5_example_1_23_layout() {
        // 1.23 in the alternative layout: one int word (1), one frac word
        // storing 230,000,000.
        let v = UpDecimal::parse("1.23", ty(4, 2)).unwrap();
        let alt = AltDecimal::from_decimal(&v);
        assert_eq!(alt.int_words, vec![1]);
        assert_eq!(alt.frac_words, vec![230_000_000]);
        // Two words where the compact layout needs one (§III-B1: "double
        // space is required" at low precision).
        assert_eq!(AltDecimal::words_for(ty(4, 2)), 2);
        assert_eq!(ty(4, 2).lw(), 1);
    }

    #[test]
    fn round_trip() {
        for (s, p, sc) in [
            ("0", 5u32, 2u32),
            ("-12345.67890", 12, 5),
            ("0.000000001", 10, 9),
            ("999999999999.999999999999", 24, 12),
        ] {
            let t = ty(p, sc);
            let v = UpDecimal::parse(s, t).unwrap();
            let alt = AltDecimal::from_decimal(&v);
            assert_eq!(alt.to_decimal(t), v, "{s}");
        }
    }

    #[test]
    fn fig5_addition_needs_no_alignment() {
        // 1.23 (4,2) + 1.1 (4,1): Fig. 5 adds int parts (1+1=2) and frac
        // parts (0.23+0.1 → 330,000,000) with no ×10 multiply.
        let a = AltDecimal::from_decimal(&UpDecimal::parse("1.23", ty(4, 2)).unwrap());
        let b = AltDecimal::from_decimal(&UpDecimal::parse("1.1", ty(4, 1)).unwrap());
        let sum = a.add_abs_unaligned(&b);
        assert_eq!(sum.int_words, vec![2]);
        assert_eq!(sum.frac_words, vec![330_000_000]);
        let got = sum.to_decimal(ty(6, 2));
        assert_eq!(got.to_string(), "2.33");
    }

    #[test]
    fn fraction_carry_ripples_into_integer() {
        let a = AltDecimal::from_decimal(&UpDecimal::parse("0.6", ty(2, 1)).unwrap());
        let b = AltDecimal::from_decimal(&UpDecimal::parse("0.7", ty(2, 1)).unwrap());
        let sum = a.add_abs_unaligned(&b);
        assert_eq!(sum.to_decimal(ty(3, 1)).to_string(), "1.3");
    }

    #[test]
    fn storage_premium_shrinks_with_precision() {
        // Low precision: 2× the compact size; high precision: ~1.25×.
        let low = ty(4, 2);
        let high = ty(76, 38);
        let ratio_low = AltDecimal::bytes_for(low) as f64 / (low.lb() as f64);
        let ratio_high = AltDecimal::bytes_for(high) as f64 / (high.lb() as f64);
        assert!(ratio_low > 2.0, "{ratio_low}");
        assert!(ratio_high < 1.5, "{ratio_high}");
    }
}
