//! Limited-precision fixed-point paths — the fast-but-capped decimals of
//! HEAVY.AI, MonetDB, and RateupDB.
//!
//! The evaluation repeatedly observes these systems *failing* rather than
//! slowing down: "HEAVY.AI … executes the query successfully only when the
//! decimals can be contained in two 32-bit words", "MonetDB fails … when
//! LEN exceeds 4", "RateupDB … at most 5 32-bit words" (§IV-A). This
//! module reproduces those capability envelopes: each backend evaluates
//! decimals in a fixed-width integer and reports [`CapError`] when a
//! declared type (or an intermediate result) cannot be represented.

use up_num::{DecimalType, UpDecimal};

/// Why a limited-precision engine rejected a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CapError {
    /// The declared type exceeds the engine's precision cap.
    TypeTooWide {
        /// Engine name.
        engine: &'static str,
        /// Declared precision.
        precision: u32,
        /// Engine cap.
        max_precision: u32,
    },
    /// A runtime value or intermediate overflowed the fixed width.
    Overflow {
        /// Engine name.
        engine: &'static str,
    },
    /// The operator is unsupported (e.g. HEAVY.AI's missing decimal `%`,
    /// §IV-D3).
    UnsupportedOp {
        /// Engine name.
        engine: &'static str,
        /// Operator name.
        op: &'static str,
    },
}

impl core::fmt::Display for CapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CapError::TypeTooWide { engine, precision, max_precision } => write!(
                f,
                "{engine}: DECIMAL precision {precision} exceeds the supported maximum {max_precision}"
            ),
            CapError::Overflow { engine } => write!(f, "{engine}: decimal overflow"),
            CapError::UnsupportedOp { engine, op } => {
                write!(f, "{engine}: operator {op} unsupported on DECIMAL")
            }
        }
    }
}

impl std::error::Error for CapError {}

/// A fixed-width decimal backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitedKind {
    /// HEAVY.AI: one 64-bit word regardless of declaration, max p = 18.
    HeavyAi64,
    /// MonetDB: two 64-bit words (i128), max p = 38.
    MonetDb128,
    /// RateupDB: five 32-bit words internally, max p = 36.
    Rateup5x32,
}

impl LimitedKind {
    /// Engine display name.
    pub fn name(&self) -> &'static str {
        match self {
            LimitedKind::HeavyAi64 => "HEAVY.AI",
            LimitedKind::MonetDb128 => "MonetDB",
            LimitedKind::Rateup5x32 => "RateupDB",
        }
    }

    /// Maximum declared precision (Table II).
    pub fn max_precision(&self) -> u32 {
        match self {
            LimitedKind::HeavyAi64 => 18,
            LimitedKind::MonetDb128 => 38,
            LimitedKind::Rateup5x32 => 36,
        }
    }

    /// Maximum precision of *intermediate* results. RateupDB's internal
    /// representation is 5 32-bit words (§IV-A), so intermediates can
    /// exceed the declared cap of 36; we bound it at 38 digits (the i128
    /// simulation width), which preserves the paper's observed behaviour
    /// — works through LEN 4, fails at LEN 8 (Fig. 8/9/14a).
    pub fn max_intermediate_precision(&self) -> u32 {
        match self {
            LimitedKind::HeavyAi64 => 18,
            LimitedKind::MonetDb128 => 38,
            LimitedKind::Rateup5x32 => 38,
        }
    }

    /// Checks an *intermediate* result type. HEAVY.AI evaluates every
    /// decimal in one 64-bit word "no matter how the precision and scale
    /// are defined" (§IV-A) — its intermediates are never rejected by
    /// type, only by runtime value overflow.
    pub fn admit_intermediate(&self, ty: DecimalType) -> Result<(), CapError> {
        if *self == LimitedKind::HeavyAi64 {
            return Ok(());
        }
        if ty.precision > self.max_intermediate_precision() {
            return Err(CapError::TypeTooWide {
                engine: self.name(),
                precision: ty.precision,
                max_precision: self.max_intermediate_precision(),
            });
        }
        Ok(())
    }

    /// Magnitude bound of the internal representation.
    fn mag_limit(&self) -> i128 {
        match self {
            LimitedKind::HeavyAi64 => i64::MAX as i128,
            LimitedKind::MonetDb128 => i128::MAX,
            // 5×32-bit words, sign flag aside: 2^159 exceeds i128, so the
            // simulation caps at i128 for representation and additionally
            // enforces the declared p ≤ 36 (10^36 < 2^120 fits).
            LimitedKind::Rateup5x32 => i128::MAX,
        }
    }

    /// Checks whether a column of type `ty` can exist at all.
    pub fn admit(&self, ty: DecimalType) -> Result<(), CapError> {
        if ty.precision > self.max_precision() {
            return Err(CapError::TypeTooWide {
                engine: self.name(),
                precision: ty.precision,
                max_precision: self.max_precision(),
            });
        }
        Ok(())
    }
}

/// A decimal value inside a limited engine: unscaled i128 + type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LimitedDecimal {
    /// Unscaled value.
    pub unscaled: i128,
    /// Declared type.
    pub ty: DecimalType,
}

/// The arithmetic of a limited engine (checked i128 operations).
#[derive(Clone, Copy, Debug)]
pub struct LimitedEngine {
    kind: LimitedKind,
}

impl LimitedEngine {
    /// Creates the engine.
    pub fn new(kind: LimitedKind) -> LimitedEngine {
        LimitedEngine { kind }
    }

    /// Engine kind.
    pub fn kind(&self) -> LimitedKind {
        self.kind
    }

    /// Imports a value, verifying the type cap.
    pub fn import(&self, v: &UpDecimal) -> Result<LimitedDecimal, CapError> {
        self.kind.admit(v.dtype())?;
        let unscaled = up_num::limbs::to_u128(v.unscaled().mag())
            .filter(|&m| m <= self.kind.mag_limit() as u128)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        let unscaled = if v.unscaled().is_negative() {
            -(unscaled as i128)
        } else {
            unscaled as i128
        };
        Ok(LimitedDecimal { unscaled, ty: v.dtype() })
    }

    /// Imports a value checking only the magnitude (not the declared
    /// type cap) — used for intermediate/accumulator values whose types
    /// legitimately exceed the declared envelope.
    pub fn import_unchecked_type(&self, v: &UpDecimal) -> Result<LimitedDecimal, CapError> {
        let unscaled = up_num::limbs::to_u128(v.unscaled().mag())
            .filter(|&m| m <= self.kind.mag_limit() as u128)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        let unscaled = if v.unscaled().is_negative() {
            -(unscaled as i128)
        } else {
            unscaled as i128
        };
        Ok(LimitedDecimal { unscaled, ty: v.dtype() })
    }

    /// Public value-range check (the engine's word width).
    pub fn check_value(&self, v: i128) -> Result<i128, CapError> {
        self.check(v)
    }

    /// Exports back to the reference representation.
    pub fn export(&self, v: LimitedDecimal) -> UpDecimal {
        UpDecimal::from_parts_unchecked(up_num::BigInt::from(v.unscaled), v.ty)
    }

    fn check(&self, v: i128) -> Result<i128, CapError> {
        if v.unsigned_abs() > self.kind.mag_limit() as u128 {
            Err(CapError::Overflow { engine: self.kind.name() })
        } else {
            Ok(v)
        }
    }

    fn pow10(&self, k: u32) -> Result<i128, CapError> {
        10i128
            .checked_pow(k)
            .ok_or(CapError::Overflow { engine: self.kind.name() })
    }

    /// Addition with scale alignment (overflow-checked).
    pub fn add(&self, a: LimitedDecimal, b: LimitedDecimal) -> Result<LimitedDecimal, CapError> {
        let ty = a.ty.add_result(&b.ty);
        self.kind.admit_intermediate(ty)?;
        let s = ty.scale;
        let av = a
            .unscaled
            .checked_mul(self.pow10(s - a.ty.scale)?)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        let bv = b
            .unscaled
            .checked_mul(self.pow10(s - b.ty.scale)?)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        let v = av.checked_add(bv).ok_or(CapError::Overflow { engine: self.kind.name() })?;
        Ok(LimitedDecimal { unscaled: self.check(v)?, ty })
    }

    /// Multiplication (overflow-checked).
    pub fn mul(&self, a: LimitedDecimal, b: LimitedDecimal) -> Result<LimitedDecimal, CapError> {
        let ty = a.ty.mul_result(&b.ty);
        self.kind.admit_intermediate(ty)?;
        let v = a
            .unscaled
            .checked_mul(b.unscaled)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        Ok(LimitedDecimal { unscaled: self.check(v)?, ty })
    }

    /// Division under the paper's `s₁+4` rule (overflow-checked).
    pub fn div(&self, a: LimitedDecimal, b: LimitedDecimal) -> Result<LimitedDecimal, CapError> {
        if b.unscaled == 0 {
            return Err(CapError::Overflow { engine: self.kind.name() });
        }
        let ty = a.ty.div_result(&b.ty);
        self.kind.admit_intermediate(ty)?;
        let boosted = a
            .unscaled
            .checked_mul(self.pow10(b.ty.scale + up_num::DIV_EXTRA_SCALE)?)
            .ok_or(CapError::Overflow { engine: self.kind.name() })?;
        Ok(LimitedDecimal { unscaled: boosted / b.unscaled, ty })
    }

    /// Modulo — HEAVY.AI rejects it outright (§IV-D3: "HEAVY.AI fails to
    /// execute this query because it does not support the modulo operator
    /// of the decimal type").
    pub fn rem(&self, a: LimitedDecimal, b: LimitedDecimal) -> Result<LimitedDecimal, CapError> {
        if self.kind == LimitedKind::HeavyAi64 {
            return Err(CapError::UnsupportedOp { engine: self.kind.name(), op: "%" });
        }
        let ai = a.unscaled / self.pow10(a.ty.scale)?;
        let bi = b.unscaled / self.pow10(b.ty.scale)?;
        if bi == 0 {
            return Err(CapError::Overflow { engine: self.kind.name() });
        }
        let ty = a.ty.mod_result(&b.ty);
        self.kind.admit_intermediate(ty)?;
        Ok(LimitedDecimal { unscaled: ai % bi, ty })
    }

    /// SUM over unscaled values, returning the §III-B3 widened type. The
    /// capability check is **value-based**: the accumulator must fit the
    /// engine's word width, but the widened *type* may exceed the
    /// declared cap (the paper's MonetDB/RateupDB aggregate 10M tuples
    /// whose sums happen to fit their 128-bit accumulators).
    pub fn sum(&self, values: &[LimitedDecimal]) -> Result<LimitedDecimal, CapError> {
        let first_ty = values.first().map(|v| v.ty).unwrap_or(DecimalType::new_unchecked(1, 0));
        let ty = first_ty.sum_result(values.len() as u64);
        let mut acc: i128 = 0;
        for v in values {
            acc = acc
                .checked_add(v.unscaled)
                .ok_or(CapError::Overflow { engine: self.kind.name() })?;
            self.check(acc)?;
        }
        Ok(LimitedDecimal { unscaled: acc, ty })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn v(engine: &LimitedEngine, s: &str, t: DecimalType) -> LimitedDecimal {
        engine.import(&UpDecimal::parse(s, t).unwrap()).unwrap()
    }

    #[test]
    fn heavyai_caps_at_precision_18() {
        let e = LimitedEngine::new(LimitedKind::HeavyAi64);
        assert!(e.kind().admit(ty(18, 2)).is_ok());
        let err = e.kind().admit(ty(19, 2)).unwrap_err();
        assert!(matches!(err, CapError::TypeTooWide { max_precision: 18, .. }));
    }

    #[test]
    fn monetdb_fails_beyond_len4() {
        // LEN 8 result precision 76 > 38 → rejected, as Fig. 8.
        let e = LimitedEngine::new(LimitedKind::MonetDb128);
        assert!(e.kind().admit(ty(38, 2)).is_ok());
        assert!(e.kind().admit(ty(76, 2)).is_err());
    }

    #[test]
    fn rateup_caps_at_36() {
        let e = LimitedEngine::new(LimitedKind::Rateup5x32);
        assert!(e.kind().admit(ty(36, 10)).is_ok());
        assert!(e.kind().admit(ty(37, 10)).is_err());
    }

    #[test]
    fn arithmetic_matches_reference_within_caps() {
        let e = LimitedEngine::new(LimitedKind::MonetDb128);
        let a = v(&e, "123.45", ty(10, 2));
        let b = v(&e, "-0.055", ty(10, 3));
        let sum = e.add(a, b).unwrap();
        let want = UpDecimal::parse("123.45", ty(10, 2))
            .unwrap()
            .add(&UpDecimal::parse("-0.055", ty(10, 3)).unwrap());
        assert_eq!(e.export(sum).cmp_value(&want), core::cmp::Ordering::Equal);
        let prod = e.mul(a, b).unwrap();
        let wantp = UpDecimal::parse("123.45", ty(10, 2))
            .unwrap()
            .mul(&UpDecimal::parse("-0.055", ty(10, 3)).unwrap());
        assert_eq!(e.export(prod).cmp_value(&wantp), core::cmp::Ordering::Equal);
    }

    #[test]
    fn intermediate_overflow_is_detected() {
        // HEAVY.AI evaluates in one 64-bit word regardless of the typed
        // width, so a full-width product fails by *value* overflow.
        let e = LimitedEngine::new(LimitedKind::HeavyAi64);
        let a = v(&e, "999999999999999.999", ty(18, 3));
        assert!(matches!(e.mul(a, a), Err(CapError::Overflow { .. })));
        // Small values at the same types multiply fine (the fixed 64-bit
        // behaviour that lets HEAVY.AI run the original TPC-H Q1).
        let small = v(&e, "12.500", ty(18, 3));
        assert!(e.mul(small, small).is_ok());
        // MonetDB still rejects by intermediate type.
        let m = LimitedEngine::new(LimitedKind::MonetDb128);
        let am = m.import(&UpDecimal::parse("999999999999999.999", ty(38, 3)).unwrap()).unwrap();
        assert!(matches!(m.mul(am, am), Err(CapError::TypeTooWide { .. })));
    }

    #[test]
    fn heavyai_rejects_decimal_modulo() {
        let e = LimitedEngine::new(LimitedKind::HeavyAi64);
        let a = v(&e, "17", ty(10, 0));
        let b = v(&e, "5", ty(10, 0));
        assert!(matches!(e.rem(a, b), Err(CapError::UnsupportedOp { op: "%", .. })));
        // MonetDB supports it.
        let m = LimitedEngine::new(LimitedKind::MonetDb128);
        let a = m.import(&UpDecimal::parse("17", ty(10, 0)).unwrap()).unwrap();
        let b = m.import(&UpDecimal::parse("5", ty(10, 0)).unwrap()).unwrap();
        assert_eq!(m.rem(a, b).unwrap().unscaled, 2);
    }

    #[test]
    fn sum_widens_and_checks() {
        let e = LimitedEngine::new(LimitedKind::MonetDb128);
        let vals: Vec<_> = (1..=100)
            .map(|i| LimitedDecimal { unscaled: i, ty: ty(11, 7) })
            .collect();
        let s = e.sum(&vals).unwrap();
        assert_eq!(s.unscaled, 5050);
        assert_eq!(s.ty, ty(13, 7)); // +ceil(log10 100) = 2
    }
}
