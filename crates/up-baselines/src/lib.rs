#![warn(missing_docs)]
//! # up-baselines — the comparator systems
//!
//! Every system UltraPrecise is evaluated against, implemented from
//! scratch: the PostgreSQL-style base-10000 arbitrary-precision numeric
//! with per-database division-scale profiles ([`soft_decimal`]), the
//! limited-precision fixed-width engines of HEAVY.AI / MonetDB / RateupDB
//! ([`limited`]), the fast-but-inexact DOUBLE path ([`f64col`]), the
//! alternative "decimal point between array elements" representation the
//! paper evaluates and discards ([`alt_repr`]), and Table II's precision
//! registry plus whole-system cost profiles ([`registry`]).

pub mod alt_repr;
pub mod f64col;
pub mod limited;
pub mod registry;
pub mod soft_decimal;

pub use alt_repr::AltDecimal;
pub use limited::{CapError, LimitedDecimal, LimitedEngine, LimitedKind};
pub use registry::{admits, cost_for, limit_for, SystemCost, PRECISION_LIMITS};
pub use soft_decimal::{DivProfile, SoftDecimal};
