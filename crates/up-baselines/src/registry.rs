//! Table II — the DECIMAL precision envelope of 17 database systems —
//! plus the per-system execution-cost profiles the end-to-end harnesses
//! use to model whole-database overheads (executor per-tuple cost, disk
//! scan inclusion) around the arithmetic kernels implemented in this
//! workspace.

use up_num::DecimalType;

/// One row of Table II.
#[derive(Clone, Copy, Debug)]
pub struct PrecisionLimit {
    /// Database name.
    pub database: &'static str,
    /// Maximum precision (`u32::MAX` = "no limit").
    pub max_precision: u32,
    /// Maximum scale.
    pub max_scale: u32,
    /// Display string used when the vendor words it specially.
    pub note: Option<&'static str>,
}

/// Sentinel for "no limit".
pub const NO_LIMIT: u32 = u32::MAX;

/// Table II verbatim.
pub const PRECISION_LIMITS: &[PrecisionLimit] = &[
    PrecisionLimit { database: "PostgreSQL", max_precision: 147_455, max_scale: 16_383, note: None },
    PrecisionLimit { database: "YugabyteDB", max_precision: 147_455, max_scale: 16_383, note: None },
    PrecisionLimit { database: "H2", max_precision: 100_000, max_scale: 100_000, note: None },
    PrecisionLimit { database: "MongoDB", max_precision: 0, max_scale: 0, note: Some("double and string") },
    PrecisionLimit { database: "PolarDB", max_precision: 1_000, max_scale: 1_000, note: None },
    PrecisionLimit { database: "Greenplum", max_precision: NO_LIMIT, max_scale: NO_LIMIT, note: Some("no limit") },
    PrecisionLimit { database: "CockroachDB", max_precision: NO_LIMIT, max_scale: NO_LIMIT, note: Some("no limit") },
    PrecisionLimit { database: "Vertica", max_precision: 1_024, max_scale: 1_024, note: None },
    PrecisionLimit { database: "SparkSQL", max_precision: 38, max_scale: 38, note: None },
    PrecisionLimit { database: "PrestoDB", max_precision: 38, max_scale: 18, note: None },
    PrecisionLimit { database: "SQL Server", max_precision: 38, max_scale: 38, note: None },
    PrecisionLimit { database: "HEAVY.AI", max_precision: 18, max_scale: 18, note: None },
    PrecisionLimit { database: "MonetDB", max_precision: 38, max_scale: 38, note: None },
    PrecisionLimit { database: "RateupDB", max_precision: 36, max_scale: 36, note: None },
    PrecisionLimit { database: "Hive", max_precision: 38, max_scale: 38, note: None },
    PrecisionLimit { database: "Oracle", max_precision: 38, max_scale: 127, note: Some("scale may exceed precision") },
    PrecisionLimit { database: "MySQL", max_precision: 65, max_scale: 30, note: None },
    PrecisionLimit { database: "Google Spanner", max_precision: 38, max_scale: 9, note: None },
    PrecisionLimit { database: "UltraPrecise", max_precision: NO_LIMIT, max_scale: NO_LIMIT, note: Some("this work") },
];

/// Looks a system up by name.
pub fn limit_for(database: &str) -> Option<&'static PrecisionLimit> {
    PRECISION_LIMITS.iter().find(|l| l.database.eq_ignore_ascii_case(database))
}

/// Whether a system admits a column of this type.
pub fn admits(database: &str, ty: DecimalType) -> bool {
    match limit_for(database) {
        None => false,
        Some(l) => {
            if l.note == Some("double and string") {
                return false; // MongoDB has no true DECIMAL
            }
            ty.precision <= l.max_precision && ty.scale <= l.max_scale
        }
    }
}

/// End-to-end cost profile of a comparator system: constants the figure
/// harnesses combine with the measured arithmetic to model whole-database
/// execution the way the paper measures it (§IV: "the execution time
/// includes the disk I/Os except for MonetDB", GPU times include PCIe).
///
/// These are calibration constants, not measurements; EXPERIMENTS.md
/// documents how they were fitted to the paper's absolute numbers at
/// LEN = 2 and the shapes they are meant to preserve.
#[derive(Clone, Copy, Debug)]
pub struct SystemCost {
    /// Name.
    pub name: &'static str,
    /// Per-tuple executor overhead (ns) — tuple iteration, expression
    /// interpreter dispatch.
    pub per_tuple_ns: f64,
    /// Per-arithmetic-operation interpreter overhead (ns) — function-call
    /// dispatch, `palloc`-style allocation of intermediates.
    pub per_op_ns: f64,
    /// Whether measured times include a disk scan of the inputs.
    pub includes_disk_scan: bool,
    /// Effective sequential scan bandwidth (GB/s) when disk is included.
    pub scan_gbps: f64,
    /// Parallel workers the executor brings to bear on a single scan.
    pub parallelism: f64,
}

/// Cost profiles of the evaluated systems.
pub const SYSTEM_COSTS: &[SystemCost] = &[
    SystemCost { name: "PostgreSQL", per_tuple_ns: 300.0, per_op_ns: 75.0, includes_disk_scan: true, scan_gbps: 2.0, parallelism: 1.0 },
    SystemCost { name: "CockroachDB", per_tuple_ns: 450.0, per_op_ns: 110.0, includes_disk_scan: true, scan_gbps: 1.5, parallelism: 1.0 },
    SystemCost { name: "H2", per_tuple_ns: 500.0, per_op_ns: 130.0, includes_disk_scan: true, scan_gbps: 1.5, parallelism: 1.0 },
    SystemCost { name: "MonetDB", per_tuple_ns: 400.0, per_op_ns: 150.0, includes_disk_scan: false, scan_gbps: 8.0, parallelism: 16.0 },
    SystemCost { name: "HEAVY.AI", per_tuple_ns: 2200.0, per_op_ns: 12.0, includes_disk_scan: true, scan_gbps: 4.0, parallelism: 32.0 },
    SystemCost { name: "RateupDB", per_tuple_ns: 400.0, per_op_ns: 12.0, includes_disk_scan: true, scan_gbps: 4.0, parallelism: 32.0 },
    // UltraPrecise is implemented inside RateupDB (§III-A), so it carries
    // the same host-side engine cost; only the decimal path differs.
    SystemCost { name: "UltraPrecise", per_tuple_ns: 400.0, per_op_ns: 0.0, includes_disk_scan: true, scan_gbps: 4.0, parallelism: 32.0 },
];

/// Looks a cost profile up by name.
pub fn cost_for(name: &str) -> Option<&'static SystemCost> {
    SYSTEM_COSTS.iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn table2_has_all_paper_rows() {
        for db in [
            "PostgreSQL", "YugabyteDB", "H2", "MongoDB", "PolarDB", "Greenplum",
            "CockroachDB", "Vertica", "SparkSQL", "PrestoDB", "SQL Server",
            "HEAVY.AI", "MonetDB", "RateupDB", "Hive", "Oracle", "MySQL",
            "Google Spanner",
        ] {
            assert!(limit_for(db).is_some(), "{db} missing from Table II");
        }
    }

    #[test]
    fn admission_checks_follow_the_table() {
        // The evaluation's LEN-series result types.
        let len2 = ty(18, 2);
        let len4 = ty(38, 2);
        let len8 = ty(76, 2);
        assert!(admits("HEAVY.AI", len2));
        assert!(!admits("HEAVY.AI", len4));
        assert!(admits("MonetDB", len4));
        assert!(!admits("MonetDB", len8));
        assert!(!admits("RateupDB", len4)); // p 38 > 36
        assert!(admits("RateupDB", ty(36, 2)));
        assert!(admits("PostgreSQL", ty(10_000, 300)));
        assert!(admits("CockroachDB", len8));
        assert!(!admits("MongoDB", len2)); // no true DECIMAL
        assert!(admits("UltraPrecise", ty(100_000, 50_000)));
    }

    #[test]
    fn spanner_scale_cap() {
        assert!(admits("Google Spanner", ty(38, 9)));
        assert!(!admits("Google Spanner", ty(38, 10)));
    }

    #[test]
    fn cost_profiles_exist_for_evaluated_systems() {
        for s in ["PostgreSQL", "CockroachDB", "H2", "MonetDB", "HEAVY.AI", "RateupDB", "UltraPrecise"] {
            assert!(cost_for(s).is_some(), "{s}");
        }
        // CPU row stores pay far more effective per-tuple cost than the
        // massively parallel GPU systems (per-tuple / parallelism).
        let eff = |n: &str| {
            let c = cost_for(n).unwrap();
            c.per_tuple_ns / c.parallelism
        };
        assert!(eff("PostgreSQL") > 5.0 * eff("RateupDB"));
    }
}
