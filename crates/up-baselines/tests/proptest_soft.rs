//! Property tests cross-validating the base-10⁴ `SoftDecimal` (the
//! PostgreSQL-style CPU baseline) against the base-2³² `up-num` core —
//! two independent implementations that must agree on every exact
//! operation, plus internal invariants of the limited-precision engines.

use proptest::prelude::*;
use up_baselines::limited::{LimitedEngine, LimitedKind};
use up_baselines::soft_decimal::{DivProfile, SoftDecimal};
use up_num::{BigInt, DecimalType, UpDecimal};

fn soft(v: i64, s: u32) -> SoftDecimal {
    SoftDecimal::from_scaled_i128(v as i128, s)
}

fn up(v: i64, s: u32) -> UpDecimal {
    UpDecimal::from_scaled_i64(v, DecimalType::new_unchecked(19, s)).expect("19 digits fit")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_agrees_with_up_num(
        a in any::<i64>(), b in any::<i64>(),
        sa in 0u32..=6, sb in 0u32..=6,
    ) {
        let (a, b) = (a >> 1, b >> 1); // avoid alignment overflowing i64 display paths
        let s = soft(a, sa).add(&soft(b, sb));
        let u = up(a, sa).add(&up(b, sb));
        prop_assert_eq!(s.to_string(), u.to_string());
    }

    #[test]
    fn mul_agrees_with_up_num(
        a in -1_000_000_000i64..=1_000_000_000,
        b in -1_000_000_000i64..=1_000_000_000,
        sa in 0u32..=4, sb in 0u32..=4,
    ) {
        let s = soft(a, sa).mul(&soft(b, sb));
        let u = up(a, sa).mul(&up(b, sb));
        prop_assert_eq!(s.to_string(), u.to_string());
    }

    #[test]
    fn paper_rule_division_agrees_with_up_num(
        a in -1_000_000_000i64..=1_000_000_000,
        b in -1_000_000i64..=1_000_000,
        sa in 0u32..=3, sb in 0u32..=3,
    ) {
        prop_assume!(b != 0);
        let s = soft(a, sa).div(&soft(b, sb), DivProfile::PaperRule).expect("nonzero");
        let u = up(a, sa).div(&up(b, sb)).expect("nonzero");
        // SoftDecimal rounds at s1+4; up-num truncates — equal within one
        // ulp of the quotient scale.
        let diff = (s.to_f64() - u.to_f64()).abs();
        let ulp = 10f64.powi(-((sa + 4) as i32));
        prop_assert!(diff <= ulp * 1.001 + 1e-15, "{s} vs {u} (diff {diff})");
    }

    #[test]
    fn comparison_agrees(a in any::<i64>(), b in any::<i64>(), sa in 0u32..=5, sb in 0u32..=5) {
        let (a, b) = (a >> 1, b >> 1);
        prop_assert_eq!(
            soft(a, sa).cmp_value(&soft(b, sb)),
            up(a, sa).cmp_value(&up(b, sb))
        );
    }

    #[test]
    fn rounding_agrees_with_bigint_rounding(v in any::<i64>(), s in 1u32..=8, keep in 0u32..=7) {
        prop_assume!(keep < s);
        let rounded = soft(v, s).round_dscale(keep);
        let want = BigInt::from(v).div_pow10_round(s - keep);
        let want_dec = UpDecimal::from_parts_unchecked(want, DecimalType::new_unchecked(25, keep));
        prop_assert_eq!(rounded.to_string(), want_dec.to_string());
    }

    #[test]
    fn h2_division_keeps_20_more_digits(
        a in 1i64..=1_000_000, b in 2i64..=999,
    ) {
        let q_pg = soft(a, 0).div(&soft(b, 0), DivProfile::PaperRule).expect("nonzero");
        let q_h2 = soft(a, 0).div(&soft(b, 0), DivProfile::H2).expect("nonzero");
        prop_assert_eq!(q_h2.dscale(), q_pg.dscale() + 16); // 20 vs 4 extra
        // Same value to within the coarser scale.
        prop_assert!((q_pg.to_f64() - q_h2.to_f64()).abs() <= 10f64.powi(-4) + 1e-12);
    }

    #[test]
    fn limited_engines_match_exact_arithmetic_when_in_range(
        a in -99_999_999i64..=99_999_999,
        b in -99_999_999i64..=99_999_999,
        sa in 0u32..=3, sb in 0u32..=3,
    ) {
        let ty_a = DecimalType::new_unchecked(12, sa);
        let ty_b = DecimalType::new_unchecked(12, sb);
        let ua = UpDecimal::from_scaled_i64(a, ty_a).expect("fits");
        let ub = UpDecimal::from_scaled_i64(b, ty_b).expect("fits");
        for kind in [LimitedKind::HeavyAi64, LimitedKind::MonetDb128, LimitedKind::Rateup5x32] {
            let e = LimitedEngine::new(kind);
            let (la, lb) = (e.import(&ua).expect("in range"), e.import(&ub).expect("in range"));
            let sum = e.add(la, lb).expect("in range");
            prop_assert_eq!(
                e.export(sum).cmp_value(&ua.add(&ub)),
                std::cmp::Ordering::Equal,
                "{:?}", kind
            );
            let prod = e.mul(la, lb).expect("in range");
            prop_assert_eq!(
                e.export(prod).cmp_value(&ua.mul(&ub)),
                std::cmp::Ordering::Equal,
                "{:?}", kind
            );
        }
    }
}
