//! Trigonometric-function approximation in SQL — §IV-D4, Fig. 15.
//!
//! `sin(x)` is approximated with its Taylor series
//! `x − x³/3! + x⁵/5! − …` written as a SQL expression over a
//! `DECIMAL(9, 8)` radian column (Query 5). The harness sweeps the
//! polynomial from 2 to 11 terms and three input distributions
//! (N(0.01, 0.01²), N(0.78, 0.01²), N(1.56, 0.01²)) and reports execution
//! time against mean absolute error. Ground truth comes from the same
//! series evaluated in exact integer arithmetic at ≥ 300 fractional
//! digits — the role GMP plays in the paper ("we calculate the ground
//! truth results until 287 digits after the decimal point").

use up_num::{BigInt, DecimalType, UpDecimal};

/// The input radian column type used throughout Fig. 15.
pub fn radian_type() -> DecimalType {
    DecimalType::new_unchecked(9, 8)
}

/// The three input regimes of Fig. 15.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Regime {
    /// x ≈ 0.01 — extremely small angles (the underflow case).
    NearZero,
    /// x ≈ 0.78 ≈ π/4.
    NearQuarterPi,
    /// x ≈ 1.56 ≈ π/2.
    NearHalfPi,
}

impl Regime {
    /// Distribution mean.
    pub fn mean(&self) -> f64 {
        match self {
            Regime::NearZero => 0.01,
            Regime::NearQuarterPi => 0.78,
            Regime::NearHalfPi => 1.56,
        }
    }

    /// Column name used by the paper (`c1`, `c2`, `c3`).
    pub fn column(&self) -> &'static str {
        match self {
            Regime::NearZero => "c1",
            Regime::NearQuarterPi => "c2",
            Regime::NearHalfPi => "c3",
        }
    }

    /// All regimes.
    pub const ALL: [Regime; 3] = [Regime::NearZero, Regime::NearQuarterPi, Regime::NearHalfPi];
}

/// `(2i+1)!` as a decimal string — the Taylor denominators (6, 120, 5040,
/// … beyond u64 after 21!).
pub fn odd_factorial(i: u32) -> BigInt {
    let mut f = BigInt::one();
    for k in 2..=(2 * i + 1) {
        f = f.mul(&BigInt::from(k as u64));
    }
    f
}

/// Builds the Query 5-style SQL for `terms` Taylor terms over column
/// `col`: `SELECT col - col*col*col/6 + col*col*col*col*col/120 … FROM
/// r5`.
pub fn taylor_sql(col: &str, terms: u32) -> String {
    assert!(terms >= 1);
    let mut s = String::from("SELECT ");
    for i in 0..terms {
        let power = 2 * i + 1;
        if i > 0 {
            s.push_str(if i % 2 == 1 { " - " } else { " + " });
        }
        let monomial = vec![col; power as usize].join("*");
        if i == 0 {
            s.push_str(&monomial);
        } else {
            s.push_str(&format!("{monomial}/{}", odd_factorial(i)));
        }
    }
    s.push_str(" FROM r5");
    s
}

/// Exact-series `sin(x)` at `scale` fractional digits (truncated): the
/// ground-truth generator. Works on unscaled integers so every step is
/// exact integer arithmetic.
pub fn sin_ground_truth(x: &UpDecimal, scale: u32) -> UpDecimal {
    let s = scale;
    let x_s = if x.dtype().scale > s {
        // Not expected (inputs have scale 8 ≤ s), but stay correct.
        x.unscaled().div_pow10_trunc(x.dtype().scale - s)
    } else {
        x.align_up(s)
    };
    // term_i and the accumulator live at scale s (unscaled integers).
    let x2 = x_s.mul(&x_s); // scale 2s
    let mut term = x_s.clone();
    let mut acc = x_s.clone();
    let mut k: u64 = 1;
    loop {
        // term_{i+1} = −term_i · x² / ((k+1)(k+2)) , rescaled back to s.
        k += 2;
        let denom = BigInt::from((k - 1) * k);
        term = term.mul(&x2).div_pow10_trunc(2 * s).div(&denom).neg();
        if term.is_zero() {
            break;
        }
        acc = acc.add(&term);
    }
    UpDecimal::from_parts_unchecked(
        acc,
        DecimalType::new_unchecked(s + 2, s),
    )
}

/// Mean absolute error of approximations against ground truths.
pub fn mean_absolute_error(approx: &[UpDecimal], truth: &[UpDecimal]) -> f64 {
    assert_eq!(approx.len(), truth.len());
    assert!(!approx.is_empty());
    let sum: f64 = approx
        .iter()
        .zip(truth)
        .map(|(a, t)| a.abs_diff_f64(t))
        .sum();
    sum / approx.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorials() {
        assert_eq!(odd_factorial(0).to_string(), "1");
        assert_eq!(odd_factorial(1).to_string(), "6");
        assert_eq!(odd_factorial(2).to_string(), "120");
        assert_eq!(odd_factorial(3).to_string(), "5040");
        // 21! exceeds u64 — the 11-term query needs it.
        assert_eq!(odd_factorial(10).to_string(), "51090942171709440000");
    }

    #[test]
    fn sql_matches_query5_shape() {
        let q = taylor_sql("c1", 3);
        assert_eq!(
            q,
            "SELECT c1 - c1*c1*c1/6 + c1*c1*c1*c1*c1/120 FROM r5"
        );
    }

    #[test]
    fn ground_truth_matches_f64_sin_at_f64_precision() {
        for x in ["0.01000000", "0.78000000", "1.56000000", "0.00000001"] {
            let v = UpDecimal::parse(x, radian_type()).unwrap();
            let truth = sin_ground_truth(&v, 60);
            let expect = v.to_f64().sin();
            assert!(
                (truth.to_f64() - expect).abs() < 1e-14,
                "sin({x}): {} vs {expect}",
                truth.to_f64()
            );
        }
    }

    #[test]
    fn ground_truth_is_stable_across_scales() {
        // 300-digit truth truncated to 60 digits equals 60-digit truth
        // within 1 ulp.
        let v = UpDecimal::parse("0.78000000", radian_type()).unwrap();
        let t60 = sin_ground_truth(&v, 60);
        let t300 = sin_ground_truth(&v, 300);
        assert!(t60.abs_diff_f64(&t300) < 1e-59);
    }

    #[test]
    fn mae_computes() {
        let t = radian_type();
        let a = vec![UpDecimal::parse("0.50000000", t).unwrap()];
        let b = vec![UpDecimal::parse("0.50000001", t).unwrap()];
        let e = mean_absolute_error(&a, &b);
        assert!((e - 1e-8).abs() < 1e-15);
    }
}
