//! RSA-encryption-in-SQL — the §IV-D3 workload (Query 4, Fig. 14(c)).
//!
//! `SELECT c1 * c1 % N * c1 % N FROM R4` encrypts the message column with
//! the public exponent e = 3: the expression computes `((c1² mod N)·c1)
//! mod N = c1³ mod N`. The paper generates four versions of `R4` with
//! message precisions 17/35/71/143 and moduli of precisions 18/36/72/144.
//!
//! The moduli here are genuine semiprimes: two primes near
//! `10^(k/2)` found with a deterministic Miller–Rabin search, so the
//! workload is a real RSA setup, not just a modulo benchmark.

use crate::datagen;
use up_num::{BigInt, DecimalType, UpDecimal};

/// The message precisions of the four `R4` versions.
pub const MESSAGE_PRECISIONS: [u32; 4] = [17, 35, 71, 143];

/// Modulus precision for a message precision (paper: 18/36/72/144).
pub fn modulus_precision(message_p: u32) -> u32 {
    message_p + 1
}

/// Deterministic Miller–Rabin primality test with the standard witness
/// set (sufficient for all n < 3.3·10²⁴; overwhelming confidence above).
pub fn is_probable_prime(n: &BigInt) -> bool {
    let two = BigInt::from(2i64);
    if n.cmp_signed(&two) == core::cmp::Ordering::Less {
        return false;
    }
    // Quick small-prime sieve.
    for p in [2i64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let bp = BigInt::from(p);
        match n.cmp_signed(&bp) {
            core::cmp::Ordering::Equal => return true,
            core::cmp::Ordering::Greater => {
                if n.rem(&bp).is_zero() {
                    return false;
                }
            }
            core::cmp::Ordering::Less => return false,
        }
    }
    // n − 1 = d · 2^r with d odd.
    let n_minus_1 = n.sub(&BigInt::one());
    let mut d = n_minus_1.clone();
    let mut r = 0u32;
    while !d.is_zero() && !up_num::limbs::get_bit(d.mag(), 0) {
        d = d.div(&two);
        r += 1;
    }
    'witness: for a in [2i64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let a = BigInt::from(a);
        let mut x = a.mod_pow_big(&d, n);
        if x == BigInt::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r.saturating_sub(1) {
            x = x.mul(&x).rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// First probable prime ≥ `start` (odd-stepping search).
pub fn next_prime(start: &BigInt) -> BigInt {
    let one = BigInt::one();
    let two = BigInt::from(2i64);
    let mut n = start.clone();
    if !up_num::limbs::get_bit(n.mag(), 0) {
        n = n.add(&one);
    }
    loop {
        if is_probable_prime(&n) {
            return n;
        }
        n = n.add(&two);
    }
}

/// An RSA public key `(e, N)` with `N = p·q`.
#[derive(Clone, Debug)]
pub struct RsaKey {
    /// Public exponent (the paper uses 3).
    pub e: u32,
    /// Modulus.
    pub n: BigInt,
    /// Prime factor p (kept for tests).
    pub p: BigInt,
    /// Prime factor q.
    pub q: BigInt,
}

/// Generates a deterministic key whose modulus has roughly
/// `modulus_digits` decimal digits: p, q are the first primes at or above
/// 10^⌈k/2⌉·(1 + small offsets).
pub fn gen_key(modulus_digits: u32) -> RsaKey {
    let half = modulus_digits / 2;
    let base_p = BigInt::from(3u64).mul(&pow10(half.saturating_sub(1))); // ~3·10^(h-1)
    let base_q = BigInt::from(7u64).mul(&pow10(modulus_digits - half - 1));
    let p = next_prime(&base_p.add(&BigInt::from(11u64)));
    let q = next_prime(&base_q.add(&BigInt::from(17u64)));
    RsaKey { e: 3, n: p.mul(&q), p, q }
}

fn pow10(k: u32) -> BigInt {
    BigInt::one().mul_pow10(k)
}

/// Encrypts one message: `X^e mod N`.
pub fn encrypt(key: &RsaKey, msg: &BigInt) -> BigInt {
    msg.mod_pow(key.e, &key.n)
}

/// The Query 4 SQL string for a given modulus literal.
pub fn query4_sql(n: &BigInt) -> String {
    format!("SELECT c1 * c1 % {n} * c1 % {n} FROM r4")
}

/// One experiment size: the message column, its type, and the key.
pub struct RsaWorkload {
    /// Message column type `DECIMAL(p, 0)`.
    pub msg_ty: DecimalType,
    /// Modulus type `DECIMAL(p+1, 0)`.
    pub mod_ty: DecimalType,
    /// Key.
    pub key: RsaKey,
    /// Messages.
    pub messages: Vec<UpDecimal>,
}

/// Builds the workload for a message precision (one of
/// [`MESSAGE_PRECISIONS`]).
pub fn build(message_p: u32, n_msgs: usize, seed: u64) -> RsaWorkload {
    let msg_ty = DecimalType::new_unchecked(message_p, 0);
    let mod_p = modulus_precision(message_p);
    let mod_ty = DecimalType::new_unchecked(mod_p, 0);
    let key = gen_key(mod_p);
    let messages = datagen::random_decimal_column(n_msgs, msg_ty, 1, false, seed);
    RsaWorkload { msg_ty, mod_ty, key, messages }
}

/// CPU ground truth for a message column.
pub fn ground_truth(w: &RsaWorkload) -> Vec<BigInt> {
    w.messages.iter().map(|m| encrypt(&w.key, m.unscaled())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miller_rabin_agrees_with_known_primes() {
        for p in [2i64, 3, 5, 97, 7919, 1_000_000_007, 1_000_000_009] {
            assert!(is_probable_prime(&BigInt::from(p)), "{p}");
        }
        for c in [1i64, 4, 100, 7917, 1_000_000_007i64 * 3, 561 /* Carmichael */, 41041] {
            assert!(!is_probable_prime(&BigInt::from(c)), "{c}");
        }
    }

    #[test]
    fn next_prime_steps_forward() {
        assert_eq!(next_prime(&BigInt::from(90i64)), BigInt::from(97i64));
        assert_eq!(next_prime(&BigInt::from(97i64)), BigInt::from(97i64));
    }

    #[test]
    fn keys_have_the_requested_size() {
        for mp in MESSAGE_PRECISIONS {
            let key = gen_key(modulus_precision(mp));
            let digits = key.n.dec_digits();
            // p·q of the chosen magnitudes lands on k or k+1 digits.
            assert!(
                (modulus_precision(mp)..=modulus_precision(mp) + 1).contains(&digits),
                "mp={mp} digits={digits}"
            );
            assert!(is_probable_prime(&key.p));
            assert!(is_probable_prime(&key.q));
            assert_eq!(key.p.mul(&key.q), key.n);
        }
    }

    #[test]
    fn sql_expression_computes_cube_mod_n() {
        // ((x² mod N)·x) mod N == x³ mod N — the identity Query 4 uses.
        let key = gen_key(18);
        let x = BigInt::from(123_456_789_012_345i64);
        let q4 = x.mul(&x).rem(&key.n).mul(&x).rem(&key.n);
        assert_eq!(q4, encrypt(&key, &x));
    }

    #[test]
    fn workload_is_deterministic_and_typed() {
        let w = build(17, 50, 9);
        let w2 = build(17, 50, 9);
        assert_eq!(w.messages, w2.messages);
        assert_eq!(w.key.n.dec_digits(), w2.key.n.dec_digits());
        assert_eq!(w.msg_ty, DecimalType::new_unchecked(17, 0));
        for m in &w.messages {
            assert_eq!(m.dtype().scale, 0);
        }
    }

    #[test]
    fn rsa_round_trip_with_private_key() {
        // d = e⁻¹ mod λ(n); for e=3 compute d by brute Euler check on a
        // small key to prove the pair is a working cryptosystem.
        // e = 3 needs gcd(3, φ) = 1, i.e. primes ≡ 2 (mod 3).
        let prime_2_mod_3 = |start: i64| {
            let mut c = BigInt::from(start);
            loop {
                c = next_prime(&c);
                if c.rem(&BigInt::from(3i64)) == BigInt::from(2i64) {
                    return c;
                }
                c = c.add(&BigInt::from(2i64));
            }
        };
        let p = prime_2_mod_3(1009);
        let q = prime_2_mod_3(3001);
        let n = p.mul(&q);
        let phi = p.sub(&BigInt::one()).mul(&q.sub(&BigInt::one()));
        // Find d with 3d ≡ 1 (mod phi) by scanning k: d = (k·phi + 1)/3.
        let mut d = BigInt::zero();
        for k in 1..10i64 {
            let cand = phi.mul(&BigInt::from(k)).add(&BigInt::one());
            let (q3, r3) = cand.div_rem(&BigInt::from(3i64));
            if r3.is_zero() {
                d = q3;
                break;
            }
        }
        assert!(!d.is_zero(), "e=3 invertible for this phi");
        let key = RsaKey { e: 3, n: n.clone(), p, q };
        let msg = BigInt::from(424242i64);
        let c = encrypt(&key, &msg);
        let back = c.mod_pow_big(&d, &n);
        assert_eq!(back, msg);
    }
}
