#![warn(missing_docs)]
//! # up-workloads — data and query generators for the evaluation
//!
//! Deterministic generators for everything §IV runs: random decimal
//! columns ([`datagen`]), a scaled-down TPC-H with the Fig. 14(b)
//! precision extension and the Table I query suite ([`tpch`]),
//! RSA-encryption-in-SQL with real Miller–Rabin keys ([`rsa`]),
//! Taylor-series trigonometry with exact ground truth ([`trig`]), and
//! frame-of-reference compression for the Q1 case study
//! ([`compression`]).

pub mod compression;
pub mod datagen;
pub mod rsa;
pub mod tpch;
pub mod trig;
