//! A scaled-down TPC-H data generator and the Table I query suite.
//!
//! The evaluation runs TPC-H Q1 with extended decimal precisions
//! (Fig. 14(b)) and Q2–Q22 to confirm queries without high-precision
//! DECIMAL are not impaired (Table I). This module generates the eight
//! tables deterministically at a configurable scale and provides the 21
//! query texts in this engine's SQL subset.
//!
//! **Documented simplifications** (also indexed in DESIGN.md): queries
//! with correlated/nested subqueries are rewritten as join/aggregate
//! pipelines carrying the same decimal-arithmetic workload; CASE
//! expressions are replaced by their dominant branch; Q18 and Q20 are
//! explicitly two-phase (inner aggregation handed to an outer query),
//! because that host-side decimal delivery is precisely what the paper
//! blames for their regression ("delivering results of subqueries to the
//! outer query is not JIT-based and our efficient representation cannot
//! be applied").

use crate::datagen;
use rand::Rng;
use up_engine::{ColumnType, Database, Schema, Value};
use up_num::{DecimalType, UpDecimal};

/// Generation parameters.
#[derive(Clone, Copy, Debug)]
pub struct TpchConfig {
    /// Lineitem rows (other tables scale off this).
    pub lineitem_rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional precision extension of `l_quantity` and
    /// `l_extendedprice` (the Fig. 14(b) LEN sweep); `None` keeps the
    /// original `DECIMAL(12, 2)`.
    pub extended_precision: Option<u32>,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig { lineitem_rows: 6000, seed: 19_920_401, extended_precision: None }
    }
}

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const RETURNFLAGS: [&str; 3] = ["R", "A", "N"];
const TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "PROMO BURNISHED COPPER",
    "STANDARD POLISHED TIN",
    "SMALL PLATED BRASS",
    "MEDIUM BRUSHED NICKEL",
    "PROMO PLATED STEEL",
];
const CONTAINERS: [&str; 5] = ["SM CASE", "MED BOX", "LG DRUM", "JUMBO PKG", "WRAP BAG"];
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1), ("EGYPT", 4),
    ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3), ("INDIA", 2), ("INDONESIA", 2),
    ("IRAN", 4), ("IRAQ", 4), ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0),
    ("MOROCCO", 0), ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3), ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

fn dec(p: u32, s: u32) -> ColumnType {
    ColumnType::Decimal(DecimalType::new_unchecked(p, s))
}

fn date(r: &mut rand::rngs::StdRng) -> String {
    format!(
        "{:04}-{:02}-{:02}",
        r.gen_range(1992..=1998),
        r.gen_range(1..=12),
        r.gen_range(1..=28)
    )
}

fn money(r: &mut rand::rngs::StdRng, max_units: i64) -> UpDecimal {
    UpDecimal::from_scaled_i64(r.gen_range(100..max_units * 100), DecimalType::new_unchecked(12, 2))
        .expect("fits (12,2)")
}

/// Populates all eight TPC-H tables into a database.
pub fn load(db: &mut Database, cfg: TpchConfig) {
    let mut r = datagen::rng(cfg.seed);
    let n_li = cfg.lineitem_rows.max(100);
    let n_orders = (n_li / 4).max(25);
    let n_cust = (n_li / 40).max(10);
    let n_part = (n_li / 30).max(10);
    let n_supp = (n_li / 300).max(5);
    let n_ps = n_part * 2;

    // region / nation
    db.create_table("region", Schema::new(vec![("r_regionkey", ColumnType::Int64), ("r_name", ColumnType::Str)]));
    for (i, name) in REGIONS.iter().enumerate() {
        db.insert("region", vec![Value::Int64(i as i64), Value::Str(name.to_string())]).unwrap();
    }
    db.create_table(
        "nation",
        Schema::new(vec![
            ("n_nationkey", ColumnType::Int64),
            ("n_name", ColumnType::Str),
            ("n_regionkey", ColumnType::Int64),
        ]),
    );
    for (i, (name, region)) in NATIONS.iter().enumerate() {
        db.insert(
            "nation",
            vec![Value::Int64(i as i64), Value::Str(name.to_string()), Value::Int64(*region)],
        )
        .unwrap();
    }

    // supplier
    db.create_table(
        "supplier",
        Schema::new(vec![
            ("s_suppkey", ColumnType::Int64),
            ("s_name", ColumnType::Str),
            ("s_nationkey", ColumnType::Int64),
            ("s_acctbal", dec(12, 2)),
        ]),
    );
    for i in 0..n_supp {
        db.insert(
            "supplier",
            vec![
                Value::Int64(i as i64),
                Value::Str(format!("Supplier#{i:09}")),
                Value::Int64(r.gen_range(0..25)),
                Value::Decimal(money(&mut r, 10_000)),
            ],
        )
        .unwrap();
    }

    // customer
    db.create_table(
        "customer",
        Schema::new(vec![
            ("c_custkey", ColumnType::Int64),
            ("c_name", ColumnType::Str),
            ("c_nationkey", ColumnType::Int64),
            ("c_mktsegment", ColumnType::Str),
            ("c_acctbal", dec(12, 2)),
        ]),
    );
    for i in 0..n_cust {
        db.insert(
            "customer",
            vec![
                Value::Int64(i as i64),
                Value::Str(format!("Customer#{i:09}")),
                Value::Int64(r.gen_range(0..25)),
                Value::Str(SEGMENTS[r.gen_range(0..SEGMENTS.len())].to_string()),
                Value::Decimal(
                    UpDecimal::from_scaled_i64(
                        r.gen_range(-99_999..999_999),
                        DecimalType::new_unchecked(12, 2),
                    )
                    .expect("fits"),
                ),
            ],
        )
        .unwrap();
    }

    // part
    db.create_table(
        "part",
        Schema::new(vec![
            ("p_partkey", ColumnType::Int64),
            ("p_name", ColumnType::Str),
            ("p_brand", ColumnType::Str),
            ("p_type", ColumnType::Str),
            ("p_container", ColumnType::Str),
            ("p_retailprice", dec(12, 2)),
        ]),
    );
    let colors = ["green", "blue", "red", "ivory", "forest", "puff"];
    for i in 0..n_part {
        db.insert(
            "part",
            vec![
                Value::Int64(i as i64),
                Value::Str(format!(
                    "{} {} part{}",
                    colors[r.gen_range(0..colors.len())],
                    colors[r.gen_range(0..colors.len())],
                    i
                )),
                Value::Str(format!("Brand#{}{}", r.gen_range(1..=5), r.gen_range(1..=5))),
                Value::Str(TYPES[r.gen_range(0..TYPES.len())].to_string()),
                Value::Str(CONTAINERS[r.gen_range(0..CONTAINERS.len())].to_string()),
                Value::Decimal(money(&mut r, 2_000)),
            ],
        )
        .unwrap();
    }

    // partsupp
    db.create_table(
        "partsupp",
        Schema::new(vec![
            ("ps_partkey", ColumnType::Int64),
            ("ps_suppkey", ColumnType::Int64),
            ("ps_availqty", ColumnType::Int64),
            ("ps_supplycost", dec(12, 2)),
        ]),
    );
    for i in 0..n_ps {
        db.insert(
            "partsupp",
            vec![
                Value::Int64((i % n_part) as i64),
                Value::Int64(r.gen_range(0..n_supp) as i64),
                Value::Int64(r.gen_range(1..10_000)),
                Value::Decimal(money(&mut r, 1_000)),
            ],
        )
        .unwrap();
    }

    // orders
    db.create_table(
        "orders",
        Schema::new(vec![
            ("o_orderkey", ColumnType::Int64),
            ("o_custkey", ColumnType::Int64),
            ("o_orderstatus", ColumnType::Str),
            ("o_totalprice", dec(12, 2)),
            ("o_orderdate", ColumnType::Str),
            ("o_orderpriority", ColumnType::Str),
        ]),
    );
    for i in 0..n_orders {
        db.insert(
            "orders",
            vec![
                Value::Int64(i as i64),
                Value::Int64(r.gen_range(0..n_cust) as i64),
                Value::Str(if r.gen_bool(0.5) { "F" } else { "O" }.to_string()),
                Value::Decimal(money(&mut r, 500_000)),
                Value::Str(date(&mut r)),
                Value::Str(PRIORITIES[r.gen_range(0..PRIORITIES.len())].to_string()),
            ],
        )
        .unwrap();
    }

    // lineitem — the decimal-heavy table. Quantity/extendedprice types
    // follow the Fig. 14(b) extension when configured.
    let (qty_ty, price_ty) = lineitem_decimal_types(cfg.extended_precision);
    db.create_table(
        "lineitem",
        Schema::new(vec![
            ("l_orderkey", ColumnType::Int64),
            ("l_partkey", ColumnType::Int64),
            ("l_suppkey", ColumnType::Int64),
            ("l_quantity", ColumnType::Decimal(qty_ty)),
            ("l_extendedprice", ColumnType::Decimal(price_ty)),
            ("l_discount", dec(3, 2)),
            ("l_tax", dec(3, 2)),
            ("l_returnflag", ColumnType::Str),
            ("l_linestatus", ColumnType::Str),
            ("l_shipdate", ColumnType::Str),
            ("l_commitdate", ColumnType::Str),
            ("l_receiptdate", ColumnType::Str),
            ("l_shipmode", ColumnType::Str),
        ]),
    );
    let qty_digits = qty_ty.precision.min(qty_ty.int_digits().min(2) + qty_ty.scale);
    let price_digits = price_ty.precision.saturating_sub(4).max(3);
    for i in 0..n_li {
        let qty = datagen::random_decimal(&mut r, qty_ty, qty_digits, false);
        let price = datagen::random_decimal(&mut r, price_ty, price_digits, false);
        db.insert(
            "lineitem",
            vec![
                Value::Int64(r.gen_range(0..n_orders) as i64),
                Value::Int64(r.gen_range(0..n_part) as i64),
                Value::Int64(r.gen_range(0..n_supp) as i64),
                Value::Decimal(qty),
                Value::Decimal(price),
                Value::Decimal(
                    UpDecimal::from_scaled_i64(r.gen_range(0..=10), DecimalType::new_unchecked(3, 2))
                        .expect("≤ 0.10"),
                ),
                Value::Decimal(
                    UpDecimal::from_scaled_i64(r.gen_range(0..=8), DecimalType::new_unchecked(3, 2))
                        .expect("≤ 0.08"),
                ),
                Value::Str(RETURNFLAGS[r.gen_range(0..RETURNFLAGS.len())].to_string()),
                Value::Str(if r.gen_bool(0.5) { "O" } else { "F" }.to_string()),
                Value::Str(date(&mut r)),
                Value::Str(date(&mut r)),
                Value::Str(date(&mut r)),
                Value::Str(SHIPMODES[r.gen_range(0..SHIPMODES.len())].to_string()),
            ],
        )
        .unwrap();
        let _ = i;
    }
}

/// `(l_quantity, l_extendedprice)` types for a precision extension: with
/// `Some(p)` the columns widen so Q1's aggregates land on the LEN series;
/// `None` keeps TPC-H's original `DECIMAL(12, 2)`.
pub fn lineitem_decimal_types(extended: Option<u32>) -> (DecimalType, DecimalType) {
    match extended {
        None => (DecimalType::new_unchecked(12, 2), DecimalType::new_unchecked(12, 2)),
        Some(p) => {
            let p = p.max(6);
            let scale = (p / 3).min(p - 2);
            (DecimalType::new_unchecked(p, scale), DecimalType::new_unchecked(p, scale))
        }
    }
}

/// TPC-H Q1 in this engine's subset (the original shape; the paper's
/// extended-precision variants change only the column types).
pub fn q1_sql() -> &'static str {
    "SELECT l_returnflag, l_linestatus, \
     SUM(l_quantity) AS sum_qty, \
     SUM(l_extendedprice) AS sum_base_price, \
     SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
     SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
     AVG(l_quantity) AS avg_qty, \
     AVG(l_extendedprice) AS avg_price, \
     COUNT(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus \
     ORDER BY l_returnflag, l_linestatus"
}

/// One Table I workload.
#[derive(Clone, Debug)]
pub struct TpchQuery {
    /// TPC-H query number (2–22).
    pub id: u32,
    /// The SQL (phase 1 for two-phase queries).
    pub sql: String,
    /// Whether a host-side handoff to a second phase exists (Q18, Q20 —
    /// the non-JIT subquery-delivery path the paper calls out).
    pub two_phase: bool,
    /// What was simplified relative to the official query.
    pub note: &'static str,
}

/// The Table I suite (Q2–Q22).
pub fn table1_queries() -> Vec<TpchQuery> {
    let q = |id: u32, sql: &str, two_phase: bool, note: &'static str| TpchQuery {
        id,
        sql: sql.to_string(),
        two_phase,
        note,
    };
    vec![
        q(2, "SELECT MIN(ps_supplycost) FROM partsupp \
              JOIN supplier ON ps_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              JOIN region ON n_regionkey = r_regionkey \
              WHERE r_name = 'EUROPE'", false,
          "correlated min-cost subquery reduced to its aggregate core"),
        q(3, "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
              JOIN customer ON o_custkey = c_custkey \
              WHERE c_mktsegment = 'BUILDING' AND o_orderdate < '1995-03-15' \
              AND l_shipdate > '1995-03-15' \
              GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10", false,
          "o_shippriority column dropped from the output"),
        q(4, "SELECT o_orderpriority, COUNT(*) AS order_count FROM orders \
              WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' \
              GROUP BY o_orderpriority ORDER BY o_orderpriority", false,
          "EXISTS(lineitem) precondition dropped"),
        q(5, "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
              JOIN customer ON o_custkey = c_custkey \
              JOIN supplier ON l_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              JOIN region ON n_regionkey = r_regionkey \
              WHERE r_name = 'ASIA' AND c_nationkey = s_nationkey \
              AND o_orderdate >= '1994-01-01' AND o_orderdate < '1995-01-01' \
              GROUP BY n_name ORDER BY revenue DESC", false, "faithful"),
        q(6, "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
              WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' \
              AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24", false,
          "faithful"),
        q(7, "SELECT n_name, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
              FROM lineitem JOIN supplier ON l_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              WHERE l_shipdate >= '1995-01-01' AND l_shipdate <= '1996-12-31' \
              GROUP BY n_name ORDER BY n_name", false,
          "nation-pair/year matrix reduced to supplier-nation revenue"),
        q(8, "SELECT SUM(CASE WHEN n_name = 'BRAZIL' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
              / SUM(l_extendedprice * (1 - l_discount)) AS mkt_share \
              FROM lineitem JOIN part ON l_partkey = p_partkey \
              JOIN supplier ON l_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              WHERE p_type = 'ECONOMY ANODIZED STEEL'", false,
          "market share via CASE, supplier nation (order-year grouping dropped)"),
        q(9, "SELECT n_name, SUM(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) AS profit \
              FROM lineitem \
              JOIN partsupp ON l_partkey = ps_partkey AND l_suppkey = ps_suppkey \
              JOIN part ON l_partkey = p_partkey \
              JOIN supplier ON l_suppkey = s_suppkey \
              JOIN nation ON s_nationkey = n_nationkey \
              WHERE p_name LIKE '%green%' \
              GROUP BY n_name ORDER BY n_name", false,
          "order-year grouping dropped"),
        q(10, "SELECT c_custkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue \
               FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
               JOIN customer ON o_custkey = c_custkey \
               WHERE o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' \
               AND l_returnflag = 'R' \
               GROUP BY c_custkey ORDER BY revenue DESC LIMIT 20", false,
          "customer detail columns reduced to the key"),
        q(11, "SELECT ps_partkey, SUM(ps_supplycost * ps_availqty) AS value \
               FROM partsupp JOIN supplier ON ps_suppkey = s_suppkey \
               JOIN nation ON s_nationkey = n_nationkey \
               WHERE n_name = 'GERMANY' \
               GROUP BY ps_partkey HAVING value > 1000 ORDER BY value DESC", false,
          "HAVING threshold constant instead of the global-sum fraction"),
        q(12, "SELECT l_shipmode, \
               SUM(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) AS high_line_count, \
               SUM(CASE WHEN o_orderpriority <> '1-URGENT' AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) AS low_line_count \
               FROM lineitem JOIN orders ON l_orderkey = o_orderkey \
               WHERE (l_shipmode = 'MAIL' OR l_shipmode = 'SHIP') \
               AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' \
               GROUP BY l_shipmode ORDER BY l_shipmode", false,
          "faithful (commit/receipt-date conjuncts simplified)"),
        q(13, "SELECT o_custkey, COUNT(*) AS c_count FROM orders \
               GROUP BY o_custkey ORDER BY c_count DESC LIMIT 20", false,
          "outer join + nested regrouping reduced to the inner count"),
        q(14, "SELECT 100.00 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue \
               FROM lineitem JOIN part ON l_partkey = p_partkey \
               WHERE l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'", false,
          "faithful"),
        q(15, "SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue \
               FROM lineitem WHERE l_shipdate >= '1996-01-01' AND l_shipdate < '1996-04-01' \
               GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 1", false,
          "revenue view + max-subquery collapsed to ORDER BY … LIMIT 1"),
        q(16, "SELECT p_brand, p_type, COUNT(DISTINCT ps_suppkey) AS supplier_cnt \
               FROM partsupp JOIN part ON ps_partkey = p_partkey \
               WHERE p_brand <> 'Brand#45' \
               GROUP BY p_brand, p_type ORDER BY supplier_cnt DESC LIMIT 20", false,
          "faithful (size/NOT-IN conjuncts dropped)"),
        q(17, "SELECT SUM(l_extendedprice) / 7.0 AS avg_yearly FROM lineitem \
               JOIN part ON l_partkey = p_partkey \
               WHERE p_brand = 'Brand#23' AND p_container = 'MED BOX' \
               AND l_quantity < 5", false,
          "per-part 0.2·avg(quantity) correlation replaced by a constant threshold"),
        q(18, "SELECT l_orderkey, SUM(l_quantity) AS qty FROM lineitem \
               GROUP BY l_orderkey ORDER BY qty DESC LIMIT 100", true,
          "phase 1 of the large-order detection; the qty column is handed \
           to the host and re-joined — the non-JIT decimal delivery path"),
        q(19, "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue \
               FROM lineitem JOIN part ON l_partkey = p_partkey \
               WHERE (p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11) \
               OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20) \
               OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30)", false,
          "container/shipmode conjuncts dropped from each branch"),
        q(20, "SELECT ps_suppkey, SUM(ps_availqty) AS avail FROM partsupp \
               JOIN part ON ps_partkey = p_partkey \
               WHERE p_name LIKE 'forest%' \
               GROUP BY ps_suppkey ORDER BY avail DESC LIMIT 50", true,
          "phase 1 of the excess-stock detection; supplier filter happens \
           on the host with the delivered decimals"),
        q(21, "SELECT s_name, COUNT(*) AS numwait \
               FROM lineitem JOIN supplier ON l_suppkey = s_suppkey \
               JOIN orders ON l_orderkey = o_orderkey \
               JOIN nation ON s_nationkey = n_nationkey \
               WHERE o_orderstatus = 'F' AND n_name = 'SAUDI ARABIA' \
               AND l_receiptdate > l_commitdate \
               GROUP BY s_name ORDER BY numwait DESC LIMIT 20", false,
          "EXISTS/NOT EXISTS multi-supplier checks dropped"),
        q(22, "SELECT n_name, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal \
               FROM customer JOIN nation ON c_nationkey = n_nationkey \
               WHERE c_acctbal > 0 \
               GROUP BY n_name ORDER BY n_name", false,
          "phone-prefix buckets replaced by nation grouping"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_engine::Profile;

    #[test]
    fn load_produces_consistent_tables() {
        let mut db = Database::new(Profile::UltraPrecise);
        load(&mut db, TpchConfig { lineitem_rows: 500, seed: 1, extended_precision: None });
        for t in ["region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"] {
            assert!(db.table(t).is_some(), "{t}");
            assert!(db.table(t).unwrap().rows > 0, "{t}");
        }
        assert_eq!(db.table("region").unwrap().rows, 5);
        assert_eq!(db.table("nation").unwrap().rows, 25);
        assert_eq!(db.table("lineitem").unwrap().rows, 500);
    }

    #[test]
    fn q1_runs_and_groups_by_flags() {
        let mut db = Database::new(Profile::UltraPrecise);
        load(&mut db, TpchConfig { lineitem_rows: 400, seed: 2, extended_precision: None });
        let r = db.query(q1_sql()).unwrap();
        // 3 return flags × 2 statuses = up to 6 groups.
        assert!((1..=6).contains(&r.rows.len()), "{} groups", r.rows.len());
        assert_eq!(r.columns.len(), 9);
        // count_order sums to the filtered row count.
        let total: i64 = r
            .rows
            .iter()
            .map(|row| match row[8] {
                Value::Int64(n) => n,
                _ => panic!(),
            })
            .sum();
        assert!(total > 0 && total <= 400);
    }

    #[test]
    fn extended_precision_changes_len() {
        let (q, p) = lineitem_decimal_types(Some(35));
        assert_eq!(q.precision, 35);
        assert_eq!(p.precision, 35);
        assert!(q.scale < q.precision);
        let (q0, _) = lineitem_decimal_types(None);
        assert_eq!(q0, DecimalType::new_unchecked(12, 2));
    }

    #[test]
    fn all_table1_queries_parse_and_run() {
        let mut db = Database::new(Profile::UltraPrecise);
        load(&mut db, TpchConfig { lineitem_rows: 600, seed: 3, extended_precision: None });
        for q in table1_queries() {
            let r = db.query(&q.sql);
            assert!(r.is_ok(), "Q{}: {:?}", q.id, r.err());
        }
    }

    #[test]
    fn q6_returns_plausible_revenue() {
        let mut db = Database::new(Profile::UltraPrecise);
        load(&mut db, TpchConfig { lineitem_rows: 2000, seed: 4, extended_precision: None });
        let q6 = &table1_queries()[4];
        assert_eq!(q6.id, 6);
        let r = db.query(&q6.sql).unwrap();
        assert_eq!(r.rows.len(), 1);
        // Cross-check against a manual scan.
        let t = db.table("lineitem").unwrap();
        let ship_idx = t.schema.index_of("l_shipdate").unwrap();
        let qty_idx = t.schema.index_of("l_quantity").unwrap();
        let price_idx = t.schema.index_of("l_extendedprice").unwrap();
        let disc_idx = t.schema.index_of("l_discount").unwrap();
        let mut expect = 0.0f64;
        for i in 0..t.rows {
            let up_engine::ColumnData::Str(dates) = &t.columns[ship_idx] else { panic!() };
            let d = dates[i].as_str();
            let qty = t.columns[qty_idx].get_decimal(i).to_f64();
            let disc = t.columns[disc_idx].get_decimal(i).to_f64();
            if ("1994-01-01".."1995-01-01").contains(&d)
                && (0.05 - 1e-9..=0.07 + 1e-9).contains(&disc)
                && qty < 24.0
            {
                expect += t.columns[price_idx].get_decimal(i).to_f64() * disc;
            }
        }
        match &r.rows[0][0] {
            Value::Decimal(d) => assert!((d.to_f64() - expect).abs() < 1e-6, "{d} vs {expect}"),
            Value::Null => assert_eq!(expect, 0.0),
            other => panic!("{other:?}"),
        }
    }
}
