//! Deterministic random data generation for decimal columns.
//!
//! The evaluation populates relations with "randomly generated" DECIMAL
//! data (§IV "Workloads"). Everything here is seeded so every harness run
//! reproduces the same bytes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use up_num::{BigInt, DecimalType, Sign, UpDecimal};

/// Seeded RNG for a named workload stream.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A uniformly random unscaled magnitude of exactly ≤ `digits` decimal
/// digits (values use the full digit budget about 90% of the time, like
/// dbgen's uniform columns).
pub fn random_unscaled(r: &mut StdRng, digits: u32) -> BigInt {
    debug_assert!(digits >= 1);
    // Build digit-by-digit to stay unbiased at any width.
    let mut s = String::with_capacity(digits as usize);
    for i in 0..digits {
        let d = if i == 0 { r.gen_range(1..=9) } else { r.gen_range(0..=9) };
        s.push(char::from_digit(d, 10).expect("digit"));
    }
    BigInt::parse_dec(&s).expect("digits parse")
}

/// A random decimal of type `ty` whose magnitude uses `digits ≤ p`
/// digits; signs are ±1 with equal probability when `signed`.
pub fn random_decimal(r: &mut StdRng, ty: DecimalType, digits: u32, signed: bool) -> UpDecimal {
    let mag = random_unscaled(r, digits.clamp(1, ty.precision));
    let neg = signed && r.gen_bool(0.5);
    let int = BigInt::from_sign_mag(if neg { Sign::Minus } else { Sign::Plus }, mag.mag().to_vec());
    UpDecimal::from_parts(int, ty).expect("digits clamped to precision")
}

/// A column of random decimals. `headroom` digits are left unused so that
/// sums and products of the evaluation's expressions stay inside the
/// §III-B3 inferred types.
pub fn random_decimal_column(
    n: usize,
    ty: DecimalType,
    headroom: u32,
    signed: bool,
    seed: u64,
) -> Vec<UpDecimal> {
    let digits = ty.precision.saturating_sub(headroom).max(1);
    let mut r = rng(seed);
    (0..n).map(|_| random_decimal(&mut r, ty, digits, signed)).collect()
}

/// Standard normal samples via Box–Muller (no external distribution
/// crates needed).
pub fn normal_f64(r: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = r.gen_range(f64::EPSILON..1.0);
    let u2: f64 = r.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
    mean + std * z
}

/// A DECIMAL(9,8)-style column of radians around `mean` with σ = `std` —
/// the Fig. 15 input distributions N(0.01, 0.01²), N(0.78, 0.01²),
/// N(1.56, 0.01²). Values are clamped into the type's range.
pub fn normal_radian_column(
    n: usize,
    ty: DecimalType,
    mean: f64,
    std: f64,
    seed: u64,
) -> Vec<UpDecimal> {
    let mut r = rng(seed);
    let max = 10f64.powi(ty.int_digits() as i32) - 10f64.powi(-(ty.scale as i32));
    (0..n)
        .map(|_| {
            let x = normal_f64(&mut r, mean, std).clamp(0.0, max);
            UpDecimal::from_f64(x, ty).expect("clamped into range")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_decimal_column(100, ty(17, 5), 2, true, 42);
        let b = random_decimal_column(100, ty(17, 5), 2, true, 42);
        assert_eq!(a, b);
        let c = random_decimal_column(100, ty(17, 5), 2, true, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn values_respect_digit_budget() {
        let col = random_decimal_column(500, ty(17, 5), 3, true, 7);
        for v in &col {
            assert!(v.unscaled().dec_digits() <= 14, "{v:?}");
            assert!(!v.is_zero());
        }
        // Signed generation produces both signs.
        assert!(col.iter().any(|v| v.unscaled().is_negative()));
        assert!(col.iter().any(|v| !v.unscaled().is_negative()));
    }

    #[test]
    fn normal_radians_cluster_near_mean() {
        let col = normal_radian_column(2000, ty(9, 8), 0.78, 0.01, 11);
        let mean: f64 = col.iter().map(UpDecimal::to_f64).sum::<f64>() / col.len() as f64;
        assert!((mean - 0.78).abs() < 0.002, "mean {mean}");
        let var: f64 = col
            .iter()
            .map(|v| (v.to_f64() - mean).powi(2))
            .sum::<f64>()
            / col.len() as f64;
        assert!((var.sqrt() - 0.01).abs() < 0.002, "std {}", var.sqrt());
    }

    #[test]
    fn wide_precision_generation() {
        let t = ty(281, 101);
        let col = random_decimal_column(10, t, 5, true, 3);
        for v in &col {
            assert!(v.unscaled().dec_digits() <= 276);
            assert!(v.unscaled().dec_digits() >= 270);
        }
    }
}
