//! Frame-of-reference (FOR) compression for compact decimal columns —
//! the §IV-D1 case study.
//!
//! The paper evaluates FOR [28] on TPC-H Q1's decimal columns: values are
//! blocked, each block stores a reference (its minimum) and fixed-width
//! deltas, and the kernel decompresses before calculating. Narrower
//! distributions compress harder; the measured end-to-end speedups (with
//! PCIe transfer) were 1.38×/2.01×/3.36×/4.80× at LEN 4/8/16/32.

use up_num::{BigInt, DecimalType, Sign, UpDecimal};

/// Values per compression block.
pub const BLOCK: usize = 1024;

/// One FOR block: reference value + byte-width + packed deltas.
#[derive(Clone, Debug)]
pub struct ForBlock {
    /// Minimum (reference) as a signed unscaled integer.
    pub reference: BigInt,
    /// Bytes per delta.
    pub width: usize,
    /// Packed little-endian deltas, `width` bytes each.
    pub deltas: Vec<u8>,
    /// Values in this block.
    pub len: usize,
}

/// A FOR-compressed decimal column.
#[derive(Clone, Debug)]
pub struct ForColumn {
    /// Element type.
    pub ty: DecimalType,
    /// Blocks.
    pub blocks: Vec<ForBlock>,
}

impl ForColumn {
    /// Compressed size in bytes (references stored at the column's
    /// uncompressed width plus one byte of width metadata per block).
    pub fn compressed_bytes(&self) -> u64 {
        self.blocks
            .iter()
            .map(|b| self.ty.lb() as u64 + 1 + b.deltas.len() as u64)
            .sum()
    }

    /// Uncompressed size in bytes.
    pub fn uncompressed_bytes(&self) -> u64 {
        let n: usize = self.blocks.iter().map(|b| b.len).sum();
        (n * self.ty.lb()) as u64
    }

    /// Compression ratio (uncompressed / compressed).
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes() as f64 / self.compressed_bytes() as f64
    }
}

/// Compresses a column of decimals (all of type `ty`).
pub fn compress(values: &[UpDecimal], ty: DecimalType) -> ForColumn {
    let mut blocks = Vec::with_capacity(values.len().div_ceil(BLOCK));
    for chunk in values.chunks(BLOCK) {
        let reference = chunk
            .iter()
            .map(UpDecimal::unscaled)
            .min()
            .expect("non-empty chunk")
            .clone();
        // Deltas are non-negative by construction.
        let deltas_big: Vec<BigInt> =
            chunk.iter().map(|v| v.unscaled().sub(&reference)).collect();
        let max_bits = deltas_big
            .iter()
            .map(BigInt::bit_len)
            .max()
            .expect("non-empty");
        let width = ((max_bits as usize).div_ceil(8)).max(1);
        let mut deltas = Vec::with_capacity(chunk.len() * width);
        for d in &deltas_big {
            debug_assert!(d.sign() != Sign::Minus);
            let mag = d.mag();
            for b in 0..width {
                let limb = mag.get(b / 4).copied().unwrap_or(0);
                deltas.push((limb >> (8 * (b % 4))) as u8);
            }
        }
        blocks.push(ForBlock { reference, width, deltas, len: chunk.len() });
    }
    ForColumn { ty, blocks }
}

/// Decompresses back to decimals — the work the kernel performs before
/// calculating ("we decompress the values before the calculation in the
/// kernel").
pub fn decompress(col: &ForColumn) -> Vec<UpDecimal> {
    let mut out = Vec::with_capacity(col.blocks.iter().map(|b| b.len).sum());
    for block in &col.blocks {
        for i in 0..block.len {
            let raw = &block.deltas[i * block.width..(i + 1) * block.width];
            let mut limbs = vec![0u32; raw.len().div_ceil(4)];
            for (b, &byte) in raw.iter().enumerate() {
                limbs[b / 4] |= (byte as u32) << (8 * (b % 4));
            }
            let delta = BigInt::from_sign_mag(
                if limbs.iter().all(|&w| w == 0) { Sign::Zero } else { Sign::Plus },
                limbs,
            );
            let v = block.reference.add(&delta);
            out.push(UpDecimal::from_parts_unchecked(v, col.ty));
        }
    }
    out
}

/// Modeled per-value decompression cost in kernel cycles: one wide add
/// per value plus delta unpacking.
pub fn decompress_cycles_per_value(ty: DecimalType, width: usize) -> f64 {
    2.0 * ty.lw() as f64 + width as f64 * 0.5 + 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn round_trip_exact() {
        let t = ty(29, 11);
        let vals = datagen::random_decimal_column(3000, t, 2, true, 5);
        let c = compress(&vals, t);
        let back = decompress(&c);
        assert_eq!(back.len(), vals.len());
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.cmp_value(b), core::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn narrow_distributions_compress_harder() {
        let t = ty(38, 2);
        // Narrow: values clustered within a small range.
        let narrow: Vec<UpDecimal> = (0..4096)
            .map(|i| {
                UpDecimal::from_scaled_i64(1_000_000_000 + (i % 1000) as i64, t).unwrap()
            })
            .collect();
        // Wide: full 36-digit spread.
        let wide = datagen::random_decimal_column(4096, t, 2, false, 6);
        let cn = compress(&narrow, t);
        let cw = compress(&wide, t);
        assert!(cn.ratio() > 3.0, "narrow ratio {}", cn.ratio());
        assert!(cn.ratio() > 2.0 * cw.ratio(), "{} vs {}", cn.ratio(), cw.ratio());
        // Round trips still hold.
        assert_eq!(decompress(&cn)[17].cmp_value(&narrow[17]), core::cmp::Ordering::Equal);
    }

    #[test]
    fn constant_column_compresses_to_metadata() {
        let t = ty(17, 5);
        let v = UpDecimal::parse("123.45000", t).unwrap();
        let vals = vec![v; 2048];
        let c = compress(&vals, t);
        // width 1 (all-zero deltas): ~1 byte per value + block headers.
        assert!(c.compressed_bytes() < c.uncompressed_bytes() / 4);
        assert_eq!(decompress(&c)[2047].cmp_value(&vals[0]), core::cmp::Ordering::Equal);
    }

    #[test]
    fn negative_values_handled_by_reference() {
        let t = ty(10, 3);
        let vals: Vec<UpDecimal> = (-100i64..100)
            .map(|i| UpDecimal::from_scaled_i64(i * 997, t).unwrap())
            .collect();
        let c = compress(&vals, t);
        let back = decompress(&c);
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.cmp_value(b), core::cmp::Ordering::Equal);
        }
    }
}
