//! Workload-level integration tests: the generators must feed the engine
//! end to end, and the compression path must survive a full
//! compress → persist-shape → decompress → query cycle.

use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_num::{DecimalType, UpDecimal};
use up_workloads::{compression, datagen, rsa, tpch, trig};

#[test]
fn rsa_sizes_all_execute_and_verify() {
    for &mp in &rsa::MESSAGE_PRECISIONS {
        let w = rsa::build(mp, 40, mp as u64);
        let mut db = Database::new(Profile::UltraPrecise);
        db.create_table("r4", Schema::new(vec![("c1", ColumnType::Decimal(w.msg_ty))]));
        for m in &w.messages {
            db.insert("r4", vec![Value::Decimal(m.clone())]).unwrap();
        }
        let r = db.query(&rsa::query4_sql(&w.key.n)).unwrap();
        let truth = rsa::ground_truth(&w);
        for (row, want) in r.rows.iter().zip(&truth) {
            let Value::Decimal(got) = &row[0] else { panic!() };
            assert_eq!(&got.unscaled().abs(), want, "p={mp}");
        }
    }
}

#[test]
fn compressed_column_round_trips_through_a_query() {
    let ty = DecimalType::new_unchecked(29, 11);
    let vals = datagen::random_decimal_column(500, ty, 3, true, 99);
    let col = compression::compress(&vals, ty);
    assert!(col.ratio() > 1.0);
    let restored = compression::decompress(&col);

    // Load the decompressed values and aggregate: must equal the
    // aggregate of the originals.
    let mut db = Database::new(Profile::UltraPrecise);
    db.create_table("t", Schema::new(vec![("c", ColumnType::Decimal(ty))]));
    for v in &restored {
        db.insert("t", vec![Value::Decimal(v.clone())]).unwrap();
    }
    let r = db.query("SELECT SUM(c) FROM t").unwrap();
    let out_ty = ty.sum_result(500);
    let mut acc = up_num::BigInt::zero();
    for v in &vals {
        acc = acc.add(&v.align_up(out_ty.scale));
    }
    let want = UpDecimal::from_parts_unchecked(acc, out_ty);
    let Value::Decimal(got) = &r.rows[0][0] else { panic!() };
    assert_eq!(got.cmp_value(&want), std::cmp::Ordering::Equal);
}

#[test]
fn trig_regimes_have_expected_means() {
    for regime in trig::Regime::ALL {
        let col = datagen::normal_radian_column(800, trig::radian_type(), regime.mean(), 0.01, 5);
        let mean: f64 = col.iter().map(UpDecimal::to_f64).sum::<f64>() / col.len() as f64;
        assert!((mean - regime.mean()).abs() < 0.01, "{regime:?}: {mean}");
    }
}

#[test]
fn tpch_q1_groups_are_stable_across_seeds_structurally() {
    // Different seeds give different data but the same schema/groups
    // skeleton; the grouped count always sums to the filtered rows.
    for seed in [1u64, 2, 3] {
        let mut db = Database::new(Profile::UltraPrecise);
        tpch::load(
            &mut db,
            tpch::TpchConfig { lineitem_rows: 300, seed, extended_precision: None },
        );
        let r = db.query(tpch::q1_sql()).unwrap();
        assert!(!r.rows.is_empty());
        for row in &r.rows {
            let Value::Str(rf) = &row[0] else { panic!() };
            assert!(["R", "A", "N"].contains(&rf.as_str()));
        }
    }
}

#[test]
fn table1_two_phase_queries_hand_off_decimals() {
    // Q18 phase 1 returns a decimal column the host re-consumes; make the
    // handoff concrete: take the top group keys and query them back.
    let mut db = Database::new(Profile::UltraPrecise);
    tpch::load(
        &mut db,
        tpch::TpchConfig { lineitem_rows: 500, seed: 18, extended_precision: None },
    );
    let q18 = tpch::table1_queries().into_iter().find(|q| q.id == 18).unwrap();
    assert!(q18.two_phase);
    let phase1 = db.query(&q18.sql).unwrap();
    assert!(!phase1.rows.is_empty());
    let Value::Int64(top_key) = phase1.rows[0][0] else { panic!() };
    // Phase 2 (host-composed): revisit the top order.
    let phase2 = db
        .query(&format!(
            "SELECT SUM(l_quantity) FROM lineitem WHERE l_orderkey = {top_key}"
        ))
        .unwrap();
    let Value::Decimal(qty) = &phase2.rows[0][0] else { panic!() };
    let Value::Decimal(phase1_qty) = &phase1.rows[0][1] else { panic!() };
    assert_eq!(qty.cmp_value(phase1_qty), std::cmp::Ordering::Equal);
}
