//! The concurrent query server: worker pool + admission queue + shared
//! JIT cache + simulated GPU streams, over one `RwLock`-guarded database.
//!
//! Concurrency model:
//!
//! - **Reads scale**: `Database::query` takes `&self`, so any number of
//!   workers execute queries under the read lock simultaneously. The JIT
//!   cache inside is lock-striped and shared — a kernel signature is
//!   compiled at most once server-wide.
//! - **Inserts stripe per table**: the engine's catalog gives every
//!   table its own `RwLock`, so row appends take the *read* side of the
//!   database lock plus one table's write lock. Inserts into disjoint
//!   tables run in parallel, and queries over other tables are never
//!   blocked by a load.
//! - **DDL serializes**: creating or replacing tables takes the global
//!   write lock, draining readers first. That is the paper's deployment
//!   shape (RateupDB's OLAP side: bulk loads, then read-heavy
//!   analytics).
//! - **Admission control**: a bounded queue in front of the pool. Full
//!   queue → immediate [`ServerError::Rejected`] with a retry-after
//!   estimate derived from observed service times, instead of unbounded
//!   latency.
//! - **Cancellation**: every submission carries a cancel flag; a ticket
//!   that times out flips it so a still-queued job is dropped cheaply.
//! - **Modeled GPU contention**: each successful query's kernel seconds
//!   are placed on N simulated CUDA streams; the resulting queueing
//!   delay lands in `ModeledTime::queue_s`, so reported times reflect
//!   device contention, not just isolated execution.
//! - **Pipeline arena** (opt-in via [`ServerConfig::arena`] or
//!   `UP_ARENA=on`): submissions register their plan's kernel signatures
//!   with a server-wide [`LaunchArena`] *at admission*, so compiles start
//!   while the job is still queued, duplicate signatures across
//!   concurrent queries attach to the in-flight compile instead of
//!   compiling twice, dequeue order is per-session weighted deficit
//!   round-robin, and launch DAGs share one modeled pool of compile
//!   lanes, copy engine, and compute streams. Results, `ModeledTime`,
//!   and cache hit/miss counts stay bit-identical to serial execution.

use crate::admission::{BoundedQueue, DrrQueue, QueueFull};
use crate::arena::{ArenaStats, LaunchArena};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::session::{SessionId, SessionManager, SessionStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use up_engine::{ArenaCtx, Database, Profile, QueryError, QueryResult, Schema, Value};
use up_gpusim::stream::StreamScheduler;
use up_gpusim::{DeviceConfig, PipelineMode, SimParallelism};
use up_jit::cache::{JitEngine, JitOptions, SharedKernelCache, DEFAULT_CACHE_CAPACITY};
use up_num::NumError;

/// Server tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries (0 = accept but never execute —
    /// useful for deterministic backpressure tests).
    pub workers: usize,
    /// Admission-queue capacity; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Simulated CUDA streams kernels are multiplexed over.
    pub gpu_streams: usize,
    /// Shared JIT kernel-cache capacity (kernels).
    pub jit_cache_capacity: usize,
    /// Default client-side wait deadline for [`QueryTicket::wait`].
    pub default_timeout: Duration,
    /// Host-side simulator parallelism for kernels launched by queries.
    /// `Auto` draws from the process-wide worker budget shared with every
    /// other launch, so query workers and simulator threads compose
    /// without oversubscribing the host.
    pub sim_par: SimParallelism,
    /// Intra-query launch pipelining for the plans workers execute
    /// (results and modeled times are bit-identical across modes).
    /// Defaults from `UP_PIPELINE`, otherwise off.
    pub pipeline: PipelineMode,
    /// Cross-query pipeline arena: admission-time compile prefetch,
    /// cross-query signature dedup, DRR-fair dequeue, and shared launch
    /// pools. Results and cache stats stay bit-identical either way.
    /// Defaults from `UP_ARENA` (`off | on`), otherwise off.
    pub arena: bool,
    /// Concurrent NVCC compile lanes of the arena's prefetch pool
    /// (ignored when [`arena`](ServerConfig::arena) is off).
    pub compile_lanes: usize,
    /// Functional-interpreter backend for kernels launched by queries:
    /// tree walker, pre-decoded flat programs, closure-compiled
    /// superblocks, or `auto` = count-based promotion from decoded to
    /// compiled once a kernel crosses `UP_SIM_TIER_THRESHOLD` launches
    /// (results bit-identical in every mode). Defaults from
    /// `UP_SIM_EXEC`, otherwise auto.
    pub exec_backend: up_gpusim::ExecBackend,
    /// Simulated GPU fleet size. `1` (the default) is the classic
    /// single-device server. With more devices the engine shards
    /// eligible scans and aggregations across that many A6000-class
    /// cards — results, `ModeledTime`, and cache stats stay bit-identical
    /// to single-device execution; the modeled fleet speedup is reported
    /// side-band per query via `QueryResult::fleet` — worker launches are
    /// routed round-robin across per-device stream/copy pools (arena
    /// mode), and the metrics report grows per-device lines. Defaults
    /// from `UP_DEVICES` (`1..=64`), otherwise 1.
    pub devices: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 64,
            gpu_streams: 4,
            jit_cache_capacity: DEFAULT_CACHE_CAPACITY,
            default_timeout: Duration::from_secs(30),
            sim_par: SimParallelism::Auto,
            pipeline: PipelineMode::from_env().unwrap_or_default(),
            arena: arena_from_env().unwrap_or(false),
            compile_lanes: 8,
            exec_backend: up_gpusim::ExecBackend::env_default(),
            devices: devices_from_env().unwrap_or(1),
        }
    }
}

/// Reads `UP_DEVICES` once per process; invalid values warn once and are
/// ignored (same contract as `UP_ARENA` / `UP_PIPELINE`).
fn devices_from_env() -> Option<usize> {
    static CACHE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        up_gpusim::env::parse_value(
            "UP_DEVICES",
            "a device count in 1..=64",
            std::env::var("UP_DEVICES").ok().as_deref(),
            parse_devices_value,
        )
    })
}

fn parse_devices_value(v: &str) -> Option<usize> {
    v.parse::<usize>().ok().filter(|&n| (1..=64).contains(&n))
}

/// Reads `UP_ARENA` once per process; invalid values warn once and are
/// ignored (same contract as `UP_PIPELINE` / `UP_SIM_THREADS`).
fn arena_from_env() -> Option<bool> {
    static CACHE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| parse_arena_value(std::env::var("UP_ARENA").ok().as_deref()))
}

/// `UP_ARENA` parse rule over the shared warn-once core in
/// [`up_gpusim::env`].
fn parse_arena_value(raw: Option<&str>) -> Option<bool> {
    up_gpusim::env::parse_value("UP_ARENA", "off | on", raw, |v| {
        match v.to_ascii_lowercase().as_str() {
            "on" | "1" | "true" => Some(true),
            "off" | "0" | "false" => Some(false),
            _ => None,
        }
    })
}

/// Everything that can go wrong between `submit` and a result.
#[derive(Debug)]
pub enum ServerError {
    /// Admission control bounced the submission; try again after the
    /// suggested backoff.
    Rejected {
        /// Queue depth observed at rejection.
        queue_depth: usize,
        /// Suggested backoff before retrying, in seconds.
        retry_after_s: f64,
    },
    /// The session handle is not connected.
    UnknownSession(SessionId),
    /// The ticket's deadline expired before a result arrived (the queued
    /// job is canceled).
    Timeout {
        /// The deadline that expired, in seconds.
        after_s: f64,
    },
    /// The job was canceled before execution.
    Canceled,
    /// The server shut down before answering.
    Shutdown,
    /// The engine executed the query and failed.
    Query(QueryError),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Rejected { queue_depth, retry_after_s } => write!(
                f,
                "admission queue full (depth {queue_depth}); retry after {retry_after_s:.3} s"
            ),
            ServerError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServerError::Timeout { after_s } => {
                write!(f, "query timed out after {after_s:.3} s")
            }
            ServerError::Canceled => write!(f, "query canceled"),
            ServerError::Shutdown => write!(f, "server shut down"),
            ServerError::Query(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

struct Job {
    session: SessionId,
    profile: Profile,
    sql: String,
    /// Admission sequence in the arena (0 when the arena is off); owns
    /// this query's prefetched compile entries until `on_query_done`.
    seq: u64,
    cancel: Arc<AtomicBool>,
    enqueued: Instant,
    reply: ReplySink,
}

/// A completion callback: invoked exactly once with the query's result,
/// on whichever thread resolves the job (usually a worker). Callback
/// submissions ([`UpServer::submit_with`]) let a readiness-driven front
/// end receive results without parking a thread per query.
pub type Completion = Box<dyn FnOnce(Result<QueryResult, ServerError>) + Send + 'static>;

/// Where a job's result goes: a channel (ticket-based waits) or a
/// one-shot callback. Either way the submitter observes exactly one
/// resolution — a callback job that is dropped unresolved (e.g. still
/// queued when the queue closes) fires with [`ServerError::Shutdown`].
enum ReplySink {
    Channel(mpsc::Sender<Result<QueryResult, ServerError>>),
    Callback(Option<Completion>),
}

impl ReplySink {
    fn send(&mut self, r: Result<QueryResult, ServerError>) {
        match self {
            // A gone receiver (client timed out and dropped the ticket)
            // is fine — the work is done and accounted either way.
            ReplySink::Channel(tx) => {
                let _ = tx.send(r);
            }
            ReplySink::Callback(cb) => {
                if let Some(cb) = cb.take() {
                    cb(r);
                }
            }
        }
    }

    /// Disarms the drop-guard (the submitter is reporting the failure
    /// itself, e.g. an admission rejection returned from `submit_with`).
    fn defuse(&mut self) {
        if let ReplySink::Callback(cb) = self {
            cb.take();
        }
    }
}

impl Drop for ReplySink {
    fn drop(&mut self) {
        if let ReplySink::Callback(Some(_)) = self {
            self.send(Err(ServerError::Shutdown));
        }
    }
}

/// The admission queue behind one of two dispatch disciplines: global
/// FIFO, or per-session weighted deficit round-robin (arena mode).
enum Dispatch {
    Fifo(BoundedQueue<Job>),
    Drr(DrrQueue<Job>),
}

impl Dispatch {
    fn push(&self, session: u64, job: Job) -> Result<usize, QueueFull<Job>> {
        match self {
            Dispatch::Fifo(q) => q.push(job),
            Dispatch::Drr(q) => q.push(session, job),
        }
    }

    fn pop_blocking(&self) -> Option<Job> {
        match self {
            Dispatch::Fifo(q) => q.pop_blocking(),
            Dispatch::Drr(q) => q.pop_blocking(),
        }
    }

    fn close(&self) {
        match self {
            Dispatch::Fifo(q) => q.close(),
            Dispatch::Drr(q) => q.close(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Dispatch::Fifo(q) => q.len(),
            Dispatch::Drr(q) => q.len(),
        }
    }

    fn capacity(&self) -> usize {
        match self {
            Dispatch::Fifo(q) => q.capacity(),
            Dispatch::Drr(q) => q.capacity(),
        }
    }

    fn max_depth(&self) -> usize {
        match self {
            Dispatch::Fifo(q) => q.max_depth(),
            Dispatch::Drr(q) => q.max_depth(),
        }
    }

    fn set_weight(&self, session: u64, weight: f64) {
        if let Dispatch::Drr(q) = self {
            q.set_weight(session, weight);
        }
    }

    /// Pulls a closed session's still-queued jobs out of the queue (and,
    /// under DRR, releases its lane and round-robin state).
    fn remove_session(&self, session: u64) -> Vec<Job> {
        match self {
            Dispatch::Fifo(q) => q.drain_matching(|job| job.session.0 == session),
            Dispatch::Drr(q) => q.remove_session(session),
        }
    }
}

struct ServerInner {
    db: RwLock<Database>,
    jit_cache: Arc<SharedKernelCache>,
    sessions: SessionManager,
    metrics: MetricsRegistry,
    streams: Mutex<StreamScheduler>,
    queue: Dispatch,
    /// The cross-query launch scheduler; `Some` iff `config.arena`.
    arena: Option<Arc<LaunchArena>>,
    /// Round-robin cursor for routing launches across the fleet.
    next_device: AtomicU64,
    /// Queries executed per simulated device (`len == config.devices`).
    routed: Vec<AtomicU64>,
    started: Instant,
    config: ServerConfig,
}

/// A pending query: await it with [`wait`](QueryTicket::wait) or abort
/// it with [`cancel`](QueryTicket::cancel).
pub struct QueryTicket {
    rx: mpsc::Receiver<Result<QueryResult, ServerError>>,
    cancel: Arc<AtomicBool>,
    timeout: Duration,
    seq: u64,
    inner: Arc<ServerInner>,
}

impl core::fmt::Debug for QueryTicket {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("QueryTicket")
            .field("canceled", &self.cancel.load(Ordering::Relaxed))
            .field("timeout", &self.timeout)
            .finish_non_exhaustive()
    }
}

impl QueryTicket {
    /// Blocks until the result arrives or the server's default timeout
    /// elapses. On timeout the job is canceled (a worker that has not
    /// started it yet will drop it).
    pub fn wait(self) -> Result<QueryResult, ServerError> {
        let timeout = self.timeout;
        self.wait_timeout(timeout)
    }

    /// [`wait`](QueryTicket::wait) with an explicit deadline.
    pub fn wait_timeout(self, timeout: Duration) -> Result<QueryResult, ServerError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                self.cancel.store(true, Ordering::Relaxed);
                self.inner.metrics.on_timed_out();
                Err(ServerError::Timeout { after_s: timeout.as_secs_f64() })
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServerError::Shutdown),
        }
    }

    /// Flags the job canceled. A worker that dequeues it later replies
    /// [`ServerError::Canceled`] without executing.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// A detachable cancel handle, for callers (e.g. a wire front end)
    /// that move the ticket into a waiter thread but still need to
    /// honor an out-of-band cancel request.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle(Arc::clone(&self.cancel))
    }

    /// The query's arena admission sequence — the order it registered
    /// its kernels, which is also serial-replay order for determinism
    /// checks. Always 0 when the arena is off.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Cancels a pending query from outside the ticket (clone-free handle
/// over the job's shared cancel flag).
#[derive(Clone, Debug)]
pub struct CancelHandle(Arc<AtomicBool>);

impl CancelHandle {
    /// Flags the job canceled (same semantics as [`QueryTicket::cancel`]).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// The concurrent query service. Cheap to share behind an `Arc`; all
/// methods take `&self`.
pub struct UpServer {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl UpServer {
    /// Starts a server over a fresh empty database (UltraPrecise default
    /// profile, A6000-like device) whose JIT engine uses a shared cache
    /// of the configured capacity.
    pub fn new(config: ServerConfig) -> UpServer {
        let cache = Arc::new(SharedKernelCache::new(config.jit_cache_capacity));
        let jit = JitEngine::with_cache(JitOptions::default(), Arc::clone(&cache));
        let db = Database::with_config(Profile::UltraPrecise, DeviceConfig::a6000(), jit);
        Self::start(config, db, cache)
    }

    /// Starts a server over an existing database (its kernel cache
    /// becomes the server-wide shared cache).
    pub fn with_database(config: ServerConfig, db: Database) -> UpServer {
        let cache = db.jit_cache_handle();
        Self::start(config, db, cache)
    }

    fn start(config: ServerConfig, mut db: Database, cache: Arc<SharedKernelCache>) -> UpServer {
        let devices = config.devices.max(1);
        db.sim_par = config.sim_par;
        db.pipeline = config.pipeline;
        db.exec_backend = config.exec_backend;
        // Fleet mode: shard eligible scans/aggregations across N
        // A6000-class devices. Results and ModeledTime stay bit-identical
        // (the fleet is priced side-band per query in QueryResult::fleet).
        if devices > 1 {
            db.set_fleet(Some(Arc::new(up_gpusim::Fleet::a6000s(devices))));
        }
        // The arena forks the engine's JIT (shared cache + NVCC-emulation
        // flag carry over) so prefetched compiles land in the same cache
        // the workers hit.
        let arena = config.arena.then(|| {
            Arc::new(LaunchArena::fleet(
                db.jit().fork(),
                devices,
                config.compile_lanes,
                config.gpu_streams,
            ))
        });
        let queue = if config.arena {
            Dispatch::Drr(DrrQueue::new(config.queue_capacity))
        } else {
            Dispatch::Fifo(BoundedQueue::new(config.queue_capacity))
        };
        let inner = Arc::new(ServerInner {
            db: RwLock::new(db),
            jit_cache: cache,
            sessions: SessionManager::new(),
            metrics: MetricsRegistry::new(),
            streams: Mutex::new(StreamScheduler::new(config.gpu_streams)),
            queue,
            arena,
            next_device: AtomicU64::new(0),
            routed: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            started: Instant::now(),
            config,
        });
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("up-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn worker")
            })
            .collect();
        UpServer { inner, workers }
    }

    /// Opens a session running under `profile`.
    pub fn connect(&self, profile: Profile) -> SessionId {
        self.inner.sessions.connect(profile)
    }

    /// Closes a session; returns its final stats, or `None` if unknown.
    /// Alias of [`close_session`](UpServer::close_session).
    pub fn disconnect(&self, id: SessionId) -> Option<SessionStats> {
        self.close_session(id)
    }

    /// Closes a session and releases everything it holds: its entry in
    /// the session map, its DRR lane (arena mode), and every job it
    /// still has queued — each pending ticket observes a clean
    /// [`ServerError::UnknownSession`] instead of executing or hanging.
    /// Returns the session's final stats, or `None` if unknown.
    pub fn close_session(&self, id: SessionId) -> Option<SessionStats> {
        let stats = self.inner.sessions.disconnect(id)?;
        for mut job in self.inner.queue.remove_session(id.0) {
            // The job left the queue without a worker: keep the depth
            // gauge honest and release its prefetched compile entries.
            self.inner.metrics.on_dequeued();
            self.inner.metrics.on_canceled();
            if let Some(arena) = &self.inner.arena {
                arena.on_query_done(job.seq);
            }
            job.reply.send(Err(ServerError::UnknownSession(id)));
        }
        Some(stats)
    }

    /// Reaps every session idle (no submit or completed query) for at
    /// least `max_idle`, via [`close_session`](UpServer::close_session).
    /// Returns the sessions evicted. A wire front end calls this
    /// periodically so abandoned connections release session state and
    /// DRR lanes.
    pub fn reap_idle_sessions(&self, max_idle: Duration) -> Vec<SessionId> {
        let idle = self.inner.sessions.idle_sessions(max_idle);
        idle.iter().for_each(|&id| {
            self.close_session(id);
        });
        idle
    }

    /// A session's usage counters so far.
    pub fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.inner.sessions.stats(id)
    }

    /// Creates (or replaces) a table. Write-locked: drains readers first.
    pub fn create_table(&self, name: &str, schema: Schema) {
        self.inner.db.write().expect("db poisoned").create_table(name, schema);
    }

    /// Bulk-appends rows. Lock-striped: takes the database *read* lock
    /// plus the target table's write lock, so loads into disjoint tables
    /// run in parallel and never drain concurrent queries.
    pub fn insert_many(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), NumError> {
        self.inner.db.read().expect("db poisoned").insert_many(table, rows)
    }

    /// Runs `f` under the database read lock (ad-hoc inspection).
    pub fn read<R>(&self, f: impl FnOnce(&Database) -> R) -> R {
        f(&self.inner.db.read().expect("db poisoned"))
    }

    /// Runs `f` under the database write lock (ad-hoc DDL).
    pub fn write<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.db.write().expect("db poisoned"))
    }

    /// Submits a query for a session; returns a ticket to await. Fails
    /// fast with [`ServerError::Rejected`] when the admission queue is
    /// full and [`ServerError::UnknownSession`] for stale handles.
    pub fn submit(&self, session: SessionId, sql: &str) -> Result<QueryTicket, ServerError> {
        let (tx, rx) = mpsc::channel();
        let (cancel, seq) = self.submit_sink(session, sql, ReplySink::Channel(tx))?;
        Ok(QueryTicket {
            rx,
            cancel,
            timeout: self.inner.config.default_timeout,
            seq,
            inner: Arc::clone(&self.inner),
        })
    }

    /// Submits a query whose result is delivered to `on_done` instead of
    /// a ticket — no thread parks waiting. The callback runs exactly
    /// once, on whichever thread resolves the job (a worker on
    /// completion; the closer on session teardown; the drop path with
    /// [`ServerError::Shutdown`] if the queue dies under it). Callers
    /// enforcing their own deadline should [`CancelHandle::cancel`] and
    /// record it via [`note_client_timeout`](UpServer::note_client_timeout).
    pub fn submit_with(
        &self,
        session: SessionId,
        sql: &str,
        on_done: Completion,
    ) -> Result<CancelHandle, ServerError> {
        let (cancel, _seq) =
            self.submit_sink(session, sql, ReplySink::Callback(Some(on_done)))?;
        Ok(CancelHandle(cancel))
    }

    /// The server's default client-wait deadline
    /// ([`ServerConfig::default_timeout`]) — what [`QueryTicket::wait`]
    /// enforces, exported so callback-based front ends can enforce the
    /// same deadline themselves.
    pub fn default_timeout(&self) -> Duration {
        self.inner.config.default_timeout
    }

    /// Records a client-side wait timeout in the server metrics — the
    /// callback-submission counterpart of the accounting
    /// [`QueryTicket::wait`] does when its deadline expires.
    pub fn note_client_timeout(&self) {
        self.inner.metrics.on_timed_out();
    }

    fn submit_sink(
        &self,
        session: SessionId,
        sql: &str,
        mut reply: ReplySink,
    ) -> Result<(Arc<AtomicBool>, u64), ServerError> {
        let profile = match self.inner.sessions.profile(session) {
            Some(p) => p,
            None => {
                // The submitter gets this as the call's error; the sink
                // must not fire a second time on drop.
                reply.defuse();
                return Err(ServerError::UnknownSession(session));
            }
        };
        // Arena admission: register the plan's kernel signatures *now*,
        // so first-occurrence compiles start while the job is queued and
        // duplicates attach to them. Plan errors are deliberately ignored
        // here — the worker will surface them as the query's real error.
        let seq = match &self.inner.arena {
            Some(arena) => {
                let seq = arena.next_seq();
                let weight = self.inner.sessions.weight(session).unwrap_or(1.0);
                let kernels = self
                    .inner
                    .db
                    .read()
                    .expect("db poisoned")
                    .plan_kernels(profile, sql);
                if let Ok(kernels) = kernels {
                    arena.register(session.0, weight, seq, &kernels);
                }
                seq
            }
            None => 0,
        };
        let cancel = Arc::new(AtomicBool::new(false));
        let job = Job {
            session,
            profile,
            sql: sql.to_string(),
            seq,
            cancel: Arc::clone(&cancel),
            enqueued: Instant::now(),
            reply,
        };
        match self.inner.queue.push(session.0, job) {
            Ok(_depth) => {
                self.inner.metrics.on_submitted();
                Ok((cancel, seq))
            }
            Err(mut full) => {
                // The submitter gets the rejection as this call's error;
                // a callback sink must not fire a second time on drop.
                full.0.reply.defuse();
                drop(full);
                // Rejected after registering → release the prefetched
                // compile entries this seq owns.
                if let Some(arena) = &self.inner.arena {
                    arena.on_query_done(seq);
                }
                self.inner.metrics.on_rejected();
                let queue_depth = self.inner.queue.len();
                // Estimated time for the backlog to drain one slot.
                let mean = self.inner.metrics.mean_latency_s();
                let per_slot = if mean > 0.0 { mean } else { 0.010 };
                let retry_after_s =
                    per_slot * (queue_depth as f64 + 1.0) / self.inner.config.workers.max(1) as f64;
                Err(ServerError::Rejected { queue_depth, retry_after_s })
            }
        }
    }

    /// Convenience: [`submit`](UpServer::submit) + [`QueryTicket::wait`].
    pub fn query(&self, session: SessionId, sql: &str) -> Result<QueryResult, ServerError> {
        self.submit(session, sql)?.wait()
    }

    /// Sets a session's fair-share weight for arena scheduling (dequeue
    /// grants and compile-lane dispatch); false if the session is
    /// unknown. A no-op scheduling-wise when the arena is off.
    pub fn set_session_weight(&self, id: SessionId, weight: f64) -> bool {
        let known = self.inner.sessions.set_weight(id, weight);
        if known {
            self.inner.queue.set_weight(id.0, weight);
        }
        known
    }

    /// Arena statistics (compile dedups, pool utilization, per-session
    /// wait shares); `None` when the arena is off.
    pub fn arena_stats(&self) -> Option<ArenaStats> {
        self.inner.arena.as_ref().map(|a| a.stats())
    }

    /// A point-in-time snapshot of every service metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        self.inner.metrics.fill(&mut snap);
        snap.sessions_active = self.inner.sessions.active();
        snap.sessions_total = self.inner.sessions.total();
        // The queue itself is authoritative for depth (the registry gauge
        // can be transiently off by one mid-handoff).
        snap.queue_depth = self.inner.queue.len();
        snap.queue_capacity = self.inner.queue.capacity();
        snap.queue_max_depth = self.inner.queue.max_depth();
        snap.cache = self.inner.jit_cache.stats();
        // Process-wide by design: one simulator substrate serves every
        // session, and tier promotion is a property of the shared kernel
        // cache, not of any single query.
        snap.exec_tiers = up_gpusim::tier_counters();
        snap.tier_compiles = up_gpusim::compile_counters();
        snap.streams = self.inner.streams.lock().expect("streams poisoned").stats();
        snap.fleet_devices = self.inner.routed.len();
        snap.fleet_routed =
            self.inner.routed.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        if let Some(arena) = &self.inner.arena {
            let a = arena.stats();
            snap.arena_enabled = true;
            snap.arena_compile = a.compile;
            snap.arena_timeline = a.timeline;
            snap.arena_max_wait_share = a.max_wait_share;
            snap.fleet_timeline = arena.timeline().device_stats();
        }
        snap
    }

    /// Per-device launch-timeline statistics across the fleet (queries
    /// placed, modeled copy/exec seconds, utilization against the global
    /// makespan). `None` when the arena is off — without the shared
    /// timeline there is no per-device placement to report.
    pub fn fleet_stats(&self) -> Option<Vec<up_gpusim::DeviceTimelineStats>> {
        self.inner.arena.as_ref().map(|a| a.timeline().device_stats())
    }

    /// Stops accepting work, drains the queue, and joins the workers.
    /// Called automatically on drop.
    pub fn shutdown(&mut self) {
        self.inner.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for UpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: Arc<ServerInner>) {
    while let Some(mut job) = inner.queue.pop_blocking() {
        inner.metrics.on_dequeued();
        let wait_s = job.enqueued.elapsed().as_secs_f64();
        inner.metrics.on_queue_wait(wait_s);
        if let Some(arena) = &inner.arena {
            arena.record_wait(job.session.0, wait_s);
        }
        if job.cancel.load(Ordering::Relaxed) {
            inner.metrics.on_canceled();
            // A canceled job still owns its prefetched compile entries.
            if let Some(arena) = &inner.arena {
                arena.on_query_done(job.seq);
            }
            job.reply.send(Err(ServerError::Canceled));
            continue;
        }
        // The session may have been closed between submit and dequeue
        // (close_session drains the queue, but a job already in a
        // worker's hands races past that) — error it instead of running
        // work nobody is accounted for.
        if !inner.sessions.contains(job.session) {
            inner.metrics.on_canceled();
            if let Some(arena) = &inner.arena {
                arena.on_query_done(job.seq);
            }
            job.reply.send(Err(ServerError::UnknownSession(job.session)));
            continue;
        }
        // Kernel arrival on the simulated device = when the query entered
        // the server, on the server's wall-clock timeline.
        let arrival_s = job.enqueued.duration_since(inner.started).as_secs_f64();
        // Round-robin across the fleet: the home device for this query's
        // launch DAG (per-device copy engine + stream pool in arena mode)
        // and the bucket its per-device routing counter lands in.
        let device = (inner.next_device.fetch_add(1, Ordering::Relaxed)
            % inner.routed.len() as u64) as usize;
        inner.routed[device].fetch_add(1, Ordering::Relaxed);
        let result = {
            let db = inner.db.read().expect("db poisoned");
            match &inner.arena {
                Some(arena) => db.query_with_arena(
                    job.profile,
                    &job.sql,
                    ArenaCtx {
                        compile: arena.compile(),
                        timeline: arena.timeline(),
                        seq: job.seq,
                        arrival_s,
                        device,
                    },
                ),
                None => db.query_as(job.profile, &job.sql),
            }
        };
        if let Some(arena) = &inner.arena {
            arena.on_query_done(job.seq);
        }
        let result = result.map(|mut r| {
            if r.modeled.kernel_s > 0.0 {
                let slot = inner
                    .streams
                    .lock()
                    .expect("streams poisoned")
                    .submit(arrival_s, r.modeled.kernel_s);
                r.modeled.queue_s += slot.queue_delay_s;
            }
            inner.metrics.on_gpu_time(r.modeled.kernel_s, r.modeled.queue_s);
            if let Some(p) = &r.pipeline {
                inner.metrics.on_pipeline(p);
            }
            r
        });
        let ok = result.is_ok();
        inner.sessions.record_query(job.session, ok);
        inner
            .metrics
            .on_completed(job.enqueued.elapsed().as_secs_f64(), ok);
        // A gone receiver (client timed out and dropped the ticket) is
        // fine — the work is done and accounted either way.
        job.reply.send(result.map_err(ServerError::Query));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use up_engine::ColumnType;
    use up_num::{DecimalType, UpDecimal};

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn dec(s: &str, t: DecimalType) -> Value {
        Value::Decimal(UpDecimal::parse(s, t).unwrap())
    }

    fn seeded_server(config: ServerConfig) -> UpServer {
        let server = UpServer::new(config);
        let t = ty(6, 2);
        server.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(t))]));
        server
            .insert_many(
                "t",
                ["1.00", "2.50", "-3.25", "10.00"].map(|s| vec![dec(s, t)]),
            )
            .unwrap();
        server
    }

    #[test]
    fn end_to_end_query_through_the_pool() {
        let server = seeded_server(ServerConfig { workers: 2, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        let r = server.query(s, "SELECT SUM(x) FROM t").unwrap();
        assert_eq!(r.rows[0][0].render(), "10.25");
        let m = server.metrics();
        assert_eq!(m.submitted, 1);
        assert_eq!(m.completed, 1);
        assert_eq!(m.failed, 0);
        assert_eq!(m.latency.count, 1);
        assert_eq!(server.session_stats(s).unwrap().queries, 1);
    }

    #[test]
    fn per_session_profiles_route_execution() {
        let server = seeded_server(ServerConfig::default());
        let gpu = server.connect(Profile::UltraPrecise);
        let cpu = server.connect(Profile::PostgresLike);
        let r1 = server.query(gpu, "SELECT x + x FROM t").unwrap();
        let r2 = server.query(cpu, "SELECT x + x FROM t").unwrap();
        assert_eq!(r1.kernels, 1);
        assert_eq!(r2.kernels, 0, "comparator profile launches no kernels");
        // Result *values* agree; the declared result types may differ
        // between backends, so compare renderings.
        let render = |r: &up_engine::QueryResult| -> Vec<String> {
            r.rows.iter().map(|row| row[0].render()).collect()
        };
        assert_eq!(render(&r1), render(&r2));
    }

    #[test]
    fn unknown_session_is_rejected_up_front() {
        let server = seeded_server(ServerConfig::default());
        let err = server.query(SessionId(999), "SELECT x FROM t").unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession(_)), "{err}");
    }

    #[test]
    fn engine_errors_come_back_as_query_errors() {
        let server = seeded_server(ServerConfig::default());
        let s = server.connect(Profile::UltraPrecise);
        let err = server.query(s, "SELECT nope FROM t").unwrap_err();
        assert!(matches!(err, ServerError::Query(_)), "{err}");
        let m = server.metrics();
        assert_eq!(m.failed, 1);
        assert_eq!(server.session_stats(s).unwrap().errors, 1);
    }

    #[test]
    fn full_queue_rejects_with_retry_after() {
        // No workers: nothing drains, so the queue fills deterministically.
        let server = seeded_server(ServerConfig {
            workers: 0,
            queue_capacity: 2,
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        let _t1 = server.submit(s, "SELECT x FROM t").unwrap();
        let _t2 = server.submit(s, "SELECT x FROM t").unwrap();
        let err = server.submit(s, "SELECT x FROM t").unwrap_err();
        match err {
            ServerError::Rejected { queue_depth, retry_after_s } => {
                assert_eq!(queue_depth, 2);
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected Rejected, got {other}"),
        }
        let m = server.metrics();
        assert_eq!(m.rejected, 1);
        assert_eq!(m.queue_depth, 2);
        assert_eq!(m.queue_max_depth, 2);
    }

    #[test]
    fn ticket_timeout_cancels_the_job() {
        let server = seeded_server(ServerConfig {
            workers: 0,
            default_timeout: Duration::from_millis(10),
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        let ticket = server.submit(s, "SELECT x FROM t").unwrap();
        let err = ticket.wait().unwrap_err();
        assert!(matches!(err, ServerError::Timeout { .. }), "{err}");
        assert_eq!(server.metrics().timed_out, 1);
    }

    #[test]
    fn explicit_cancel_drops_a_queued_job() {
        let server = seeded_server(ServerConfig { workers: 0, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        let ticket = server.submit(s, "SELECT x FROM t").unwrap();
        ticket.cancel();
        // No workers are running; spin one worker pass manually by
        // shutting down with a late-started pool instead: simplest is to
        // assert the flag made it into the queue — the concurrency
        // integration tests cover the worker-side path.
        assert!(ticket.cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn closed_sessions_error_pending_tickets_cleanly() {
        // No workers: submitted jobs sit in the queue until close_session
        // drains them — the tickets must observe an immediate, clean
        // error rather than timing out.
        let server = seeded_server(ServerConfig { workers: 0, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        let t1 = server.submit(s, "SELECT x FROM t").unwrap();
        let t2 = server.submit(s, "SELECT x FROM t").unwrap();
        let stats = server.close_session(s).expect("session was connected");
        assert_eq!(stats.queries, 0, "nothing executed");
        for t in [t1, t2] {
            let err = t.wait_timeout(Duration::from_millis(200)).unwrap_err();
            assert!(matches!(err, ServerError::UnknownSession(_)), "{err}");
        }
        let m = server.metrics();
        assert_eq!(m.queue_depth, 0, "drained jobs leave the depth gauge");
        assert_eq!(m.canceled, 2);
        assert!(server.close_session(s).is_none(), "double close is None");
        // New submissions for the dead session are rejected up front.
        let err = server.submit(s, "SELECT x FROM t").unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession(_)), "{err}");
    }

    #[test]
    fn closed_sessions_release_drr_lanes_under_the_arena() {
        let server = seeded_server(ServerConfig {
            workers: 0,
            arena: true,
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        let ticket = server.submit(s, "SELECT x * x FROM t").unwrap();
        server.close_session(s);
        let err = ticket.wait_timeout(Duration::from_millis(200)).unwrap_err();
        assert!(matches!(err, ServerError::UnknownSession(_)), "{err}");
        // The drained job released its prefetched compile entry (no seq
        // left owning arena state) and the DRR lane is gone.
        let st = server.arena_stats().unwrap();
        assert_eq!(st.compile.queued, 0, "prefetch entries released");
        match &server.inner.queue {
            Dispatch::Drr(q) => assert_eq!(q.lanes(), 0, "lane forgotten"),
            Dispatch::Fifo(_) => panic!("arena mode uses the DRR queue"),
        }
    }

    #[test]
    fn idle_sessions_are_reaped() {
        let server = seeded_server(ServerConfig::default());
        let a = server.connect(Profile::UltraPrecise);
        let b = server.connect(Profile::UltraPrecise);
        server.query(a, "SELECT x FROM t").unwrap();
        assert!(server.reap_idle_sessions(Duration::from_secs(3600)).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        server.query(a, "SELECT x FROM t").unwrap();
        let reaped = server.reap_idle_sessions(Duration::from_millis(10));
        assert_eq!(reaped, vec![b], "only the idle session is evicted");
        assert!(server.session_stats(a).is_some());
        assert!(server.session_stats(b).is_none());
    }

    #[test]
    fn cancel_handle_cancels_from_outside_the_ticket() {
        let server = seeded_server(ServerConfig { workers: 0, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        let ticket = server.submit(s, "SELECT x FROM t").unwrap();
        let handle = ticket.cancel_handle();
        handle.cancel();
        assert!(ticket.cancel.load(Ordering::Relaxed));
    }

    #[test]
    fn inserts_stripe_per_table_under_the_read_lock() {
        let server = seeded_server(ServerConfig::default());
        let t = ty(6, 2);
        server.create_table("u", Schema::new(vec![("y", ColumnType::Decimal(t))]));
        // Under the *read* lock, insert into `t` while holding another
        // table's read guard — possible only because writes stripe per
        // table instead of taking the database-wide write lock.
        server.read(|db| {
            let u_guard = db.table("u").expect("table u");
            db.insert_many("t", [vec![dec("5.00", t)]]).unwrap();
            assert_eq!(u_guard.rows, 0);
        });
        let s = server.connect(Profile::UltraPrecise);
        let r = server.query(s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0].render(), "5");
    }

    #[test]
    fn concurrent_loads_into_disjoint_tables() {
        let server = Arc::new(seeded_server(ServerConfig::default()));
        let t = ty(6, 2);
        server.create_table("a", Schema::new(vec![("x", ColumnType::Decimal(t))]));
        server.create_table("b", Schema::new(vec![("x", ColumnType::Decimal(t))]));
        let loaders: Vec<_> = ["a", "b"]
            .into_iter()
            .map(|name| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        server.insert_many(name, [vec![dec("1.00", t)]]).unwrap();
                    }
                })
            })
            .collect();
        let s = server.connect(Profile::UltraPrecise);
        // Queries over an unrelated table keep flowing during the load.
        for _ in 0..5 {
            server.query(s, "SELECT SUM(x) FROM t").unwrap();
        }
        for l in loaders {
            l.join().unwrap();
        }
        let ra = server.query(s, "SELECT COUNT(*) FROM a").unwrap();
        let rb = server.query(s, "SELECT COUNT(*) FROM b").unwrap();
        assert_eq!(ra.rows[0][0].render(), "50");
        assert_eq!(rb.rows[0][0].render(), "50");
    }

    #[test]
    fn writes_serialize_against_reads() {
        let server = seeded_server(ServerConfig::default());
        let s = server.connect(Profile::UltraPrecise);
        let before = server.query(s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(before.rows[0][0].render(), "4");
        server.insert_many("t", [vec![dec("7.77", ty(6, 2))]]).unwrap();
        let after = server.query(s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(after.rows[0][0].render(), "5");
    }

    #[test]
    fn pipelined_queries_feed_the_snapshot() {
        let server = seeded_server(ServerConfig {
            workers: 2,
            pipeline: PipelineMode::On(4),
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        // Two independent expression slots → the worker runs the launch
        // DAG and its report lands in the service counters.
        let r = server
            .query(s, "SELECT SUM(x * x), SUM(x + x) FROM t")
            .unwrap();
        assert!(r.pipeline.is_some(), "multi-slot plan should pipeline");
        // A single-slot plan stays serial and records nothing.
        let r2 = server.query(s, "SELECT SUM(x) FROM t").unwrap();
        assert!(r2.pipeline.is_none());
        let m = server.metrics();
        assert_eq!(m.pipelined_queries, 1);
        assert!(m.pipeline_nodes >= 2, "{}", m.pipeline_nodes);
        assert!(m.pipeline_utilization > 0.0 && m.pipeline_utilization <= 1.0);
        let text = m.report();
        assert!(text.contains("pipelining:  1 queries"), "{text}");
    }

    #[test]
    fn fleet_mode_routes_launches_and_reports_per_device() {
        let server = seeded_server(ServerConfig {
            workers: 1,
            devices: 4,
            arena: true,
            pipeline: PipelineMode::On(4),
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        for _ in 0..8 {
            let r = server.query(s, "SELECT SUM(x * x), SUM(x + x) FROM t").unwrap();
            let f = r.fleet.expect("fleet report rides every result in fleet mode");
            assert_eq!(f.devices, 4);
            assert_eq!(f.partition_rows.iter().sum::<u64>(), 4, "shards cover the table");
            assert!(f.makespan_s <= f.single_device_s, "{f:?}");
        }
        let m = server.metrics();
        assert_eq!(m.fleet_devices, 4);
        assert_eq!(m.fleet_routed, vec![2, 2, 2, 2], "strict round-robin routing");
        assert_eq!(m.fleet_timeline.len(), 4);
        let placed: u64 = m.fleet_timeline.iter().map(|d| d.queries).sum();
        assert_eq!(placed, 8, "every launch DAG landed on some device's pools");
        assert!(m.fleet_timeline.iter().all(|d| d.queries == 2), "{:?}", m.fleet_timeline);
        let text = m.report();
        assert!(text.contains("fleet:       4 simulated devices"), "{text}");
        assert!(text.contains("device 3:"), "{text}");
        assert_eq!(server.fleet_stats().unwrap().len(), 4);
    }

    #[test]
    fn single_device_config_keeps_the_fleet_block_out_of_the_report() {
        let server = seeded_server(ServerConfig { workers: 1, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        let r = server.query(s, "SELECT SUM(x) FROM t").unwrap();
        assert!(r.fleet.is_none(), "no fleet installed at devices = 1");
        let m = server.metrics();
        assert_eq!(m.fleet_devices, 1);
        assert!(!m.report().contains("fleet:"), "{}", m.report());
    }

    #[test]
    fn devices_env_parse_accepts_counts_and_ignores_nonsense() {
        assert_eq!(parse_devices_value("4"), Some(4));
        assert_eq!(parse_devices_value("1"), Some(1));
        assert_eq!(parse_devices_value("64"), Some(64));
        assert_eq!(parse_devices_value("0"), None, "a fleet needs at least one device");
        assert_eq!(parse_devices_value("65"), None, "capped at 64");
        assert_eq!(parse_devices_value("many"), None);
    }

    #[test]
    fn arena_env_parse_accepts_on_off_and_ignores_nonsense() {
        assert_eq!(parse_arena_value(None), None);
        assert_eq!(parse_arena_value(Some("on")), Some(true));
        assert_eq!(parse_arena_value(Some("1")), Some(true));
        assert_eq!(parse_arena_value(Some(" TRUE ")), Some(true));
        assert_eq!(parse_arena_value(Some("off")), Some(false));
        assert_eq!(parse_arena_value(Some("0")), Some(false));
        // Invalid values warn to stderr and are ignored (config default
        // stays off) instead of silently meaning something.
        assert_eq!(parse_arena_value(Some("banana")), None);
    }

    #[test]
    fn arena_mode_keeps_cache_accounting_identical_to_serial() {
        let server = seeded_server(ServerConfig {
            workers: 2,
            arena: true,
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        for _ in 0..4 {
            let r = server.query(s, "SELECT x * x FROM t").unwrap();
            assert_eq!(r.rows.len(), 4);
        }
        let m = server.metrics();
        assert!(m.arena_enabled);
        // Exactly what serial execution records: one miss, three hits —
        // the prefetched result substitutes for the owner's cache access.
        assert_eq!(m.cache.misses, 1, "one signature, compiled once");
        assert_eq!(m.cache.hits, 3);
        let st = server.arena_stats().unwrap();
        assert_eq!(st.compile.registered, 4);
        assert!(st.compile.compiles_started >= 1);
        assert_eq!(st.compile.queued, 0, "prefetch queue drained");
        assert!(m.queue_wait.count >= 4, "every dequeue records its wait");
        assert!(m.report().contains("arena:"), "{}", m.report());
    }

    #[test]
    fn arena_routes_pipelined_plans_through_shared_pools() {
        let server = seeded_server(ServerConfig {
            workers: 2,
            arena: true,
            pipeline: PipelineMode::On(4),
            ..ServerConfig::default()
        });
        let s = server.connect(Profile::UltraPrecise);
        let r = server
            .query(s, "SELECT SUM(x * x), SUM(x + x) FROM t")
            .unwrap();
        assert!(r.pipeline.is_some(), "multi-slot plan should pipeline");
        let st = server.arena_stats().unwrap();
        assert_eq!(st.timeline.queries, 1, "DAG placed on the shared pools");
        assert!(st.timeline.nodes >= 2, "{}", st.timeline.nodes);
        assert_eq!(st.session_waits.len(), 1, "one session accounted");
        // Per-session weights reach both the dequeue DRR and the map.
        assert!(server.set_session_weight(s, 2.0));
        assert!(!server.set_session_weight(SessionId(999), 2.0));
    }

    #[test]
    fn stream_scheduler_and_cache_feed_the_snapshot() {
        let server = seeded_server(ServerConfig { workers: 2, ..ServerConfig::default() });
        let s = server.connect(Profile::UltraPrecise);
        for _ in 0..4 {
            let r = server.query(s, "SELECT x * x FROM t").unwrap();
            assert!(r.modeled.queue_s >= 0.0);
        }
        let m = server.metrics();
        assert_eq!(m.cache.misses, 1, "one signature, compiled once");
        assert_eq!(m.cache.hits, 3);
        assert_eq!(m.streams.launches, 4);
        assert!(m.gpu_kernel_s > 0.0);
        assert!(m.streams.utilization > 0.0);
        let text = m.report();
        assert!(text.contains("4 submitted"), "{text}");
    }
}
