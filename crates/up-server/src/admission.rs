//! Admission control: a bounded MPMC queue with blocking consumers.
//!
//! The server's front door. Producers (`submit`) never block — a full
//! queue is an immediate, explicit rejection so callers can back off —
//! while consumers (the worker pool) park on a condvar until work or
//! shutdown arrives. This is the load-shedding discipline a GPU service
//! needs: the device has a fixed service rate, so an unbounded queue only
//! converts overload into unbounded latency.
//!
//! Two dispatch disciplines share that contract: [`BoundedQueue`] is
//! plain FIFO, and [`DrrQueue`] keeps one FIFO lane per session and
//! dequeues by weighted deficit round-robin, so a chatty session cannot
//! starve the others — the fairness half of the pipeline arena.

use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use up_gpusim::DeficitRoundRobin;

/// Returned by [`BoundedQueue::push`] when the queue is at capacity or
/// closed; hands the rejected item back to the caller.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()`.
    max_depth: usize,
}

/// A bounded multi-producer multi-consumer queue.
///
/// `push` is non-blocking (rejects at capacity); `pop_blocking` parks
/// until an item or [`close`](BoundedQueue::close) arrives.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// New queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").max_depth
    }

    /// Enqueues `item`, returning the depth after the push, or the item
    /// back inside [`QueueFull`] when at capacity (or closed).
    pub fn push(&self, item: T) -> Result<usize, QueueFull<T>> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed || g.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        g.max_depth = g.max_depth.max(depth);
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, blocked consumers drain the
    /// remaining items and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Removes and returns every queued item matching `pred` (submission
    /// order preserved) — the session-teardown path, so a closed
    /// session's pending jobs can be errored instead of executed.
    pub fn drain_matching(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        let mut kept = VecDeque::with_capacity(g.items.len());
        let mut drained = Vec::new();
        for item in g.items.drain(..) {
            if pred(&item) {
                drained.push(item);
            } else {
                kept.push_back(item);
            }
        }
        g.items = kept;
        drained
    }
}

struct DrrInner<T> {
    /// One FIFO lane per session; lanes persist (empty) across bursts so
    /// the round-robin cursor math stays cheap and stable.
    lanes: HashMap<u64, VecDeque<T>>,
    drr: DeficitRoundRobin,
    len: usize,
    closed: bool,
    max_depth: usize,
}

/// A bounded MPMC queue that dequeues by per-session weighted deficit
/// round-robin instead of global FIFO.
///
/// Same contract as [`BoundedQueue`] — non-blocking `push` with an
/// explicit [`QueueFull`] rejection, blocking `pop_blocking`, drain-then-
/// `None` on [`close`](DrrQueue::close) — but each session gets its own
/// FIFO lane and consumers pick the next lane by deficit round-robin, so
/// grant share tracks session weight while order *within* a session stays
/// submission order.
pub struct DrrQueue<T> {
    inner: Mutex<DrrInner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> DrrQueue<T> {
    /// New queue holding at most `capacity` items total (clamped to ≥ 1).
    pub fn new(capacity: usize) -> DrrQueue<T> {
        DrrQueue {
            inner: Mutex::new(DrrInner {
                lanes: HashMap::new(),
                drr: DeficitRoundRobin::new(),
                len: 0,
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity (shared across all sessions).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items queued right now, across all sessions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").len
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").max_depth
    }

    /// Sets a session's scheduling weight (share of dequeue grants).
    pub fn set_weight(&self, session: u64, weight: f64) {
        self.inner.lock().expect("queue poisoned").drr.set_weight(session, weight);
    }

    /// Enqueues `item` on `session`'s lane, returning the total depth
    /// after the push, or the item back inside [`QueueFull`] when at
    /// capacity (or closed).
    pub fn push(&self, session: u64, item: T) -> Result<usize, QueueFull<T>> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed || g.len >= self.capacity {
            return Err(QueueFull(item));
        }
        g.lanes.entry(session).or_default().push_back(item);
        g.drr.ensure(session);
        g.len += 1;
        let depth = g.len;
        g.max_depth = g.max_depth.max(depth);
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the next item by deficit round-robin over non-empty
    /// session lanes, blocking while the queue is empty. Returns `None`
    /// once the queue is closed *and* drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if g.len > 0 {
                let DrrInner { lanes, drr, .. } = &mut *g;
                let id = drr
                    .next(&|id| lanes.get(&id).is_some_and(|q| !q.is_empty()))
                    .expect("non-empty queue has an eligible lane");
                let item = lanes
                    .get_mut(&id)
                    .and_then(VecDeque::pop_front)
                    .expect("eligible lane is non-empty");
                g.len -= 1;
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, blocked consumers drain the
    /// remaining items and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Tears down a session's lane: returns its queued items (submission
    /// order) and forgets the lane's round-robin state entirely, so
    /// disconnected sessions stop costing the DRR cursor anything.
    pub fn remove_session(&self, session: u64) -> Vec<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        let drained: Vec<T> = g
            .lanes
            .remove(&session)
            .map(|lane| lane.into_iter().collect())
            .unwrap_or_default();
        g.drr.remove(session);
        g.len -= drained.len();
        drained
    }

    /// Lanes currently tracked (connected sessions that ever queued).
    pub fn lanes(&self) -> usize {
        self.inner.lock().expect("queue poisoned").lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_depth_and_rejects_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        let QueueFull(rejected) = q.push(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn pop_returns_fifo_then_blocks_until_close() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.pop_blocking(), Some(10));
        assert_eq!(q.pop_blocking(), Some(20));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        // The consumer parks; closing wakes it with None.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn close_drains_remaining_items_before_none() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(q.push(2).is_err(), "closed queue rejects");
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn drr_queue_is_fifo_within_a_session_and_fair_across() {
        let q: DrrQueue<(u64, i32)> = DrrQueue::new(64);
        q.set_weight(1, 3.0);
        q.set_weight(2, 1.0);
        for i in 0..6 {
            q.push(1, (1, i)).unwrap();
            q.push(2, (2, i)).unwrap();
        }
        let mut by_session: HashMap<u64, Vec<i32>> = HashMap::new();
        let mut first_eight_from_1 = 0;
        for k in 0..12 {
            let (s, i) = q.pop_blocking().unwrap();
            if k < 8 && s == 1 {
                first_eight_from_1 += 1;
            }
            by_session.entry(s).or_default().push(i);
        }
        // Within a session, submission order is preserved.
        assert_eq!(by_session[&1], vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(by_session[&2], vec![0, 1, 2, 3, 4, 5]);
        // Across sessions, the 3:1 weight shows up early: of the first
        // 8 grants, session 1 gets ~6 (3 per round vs 1).
        assert!(first_eight_from_1 >= 5, "{first_eight_from_1}");
        assert!(q.is_empty());
        assert_eq!(q.max_depth(), 12);
    }

    #[test]
    fn drr_queue_rejects_at_capacity_and_drains_on_close() {
        let q: DrrQueue<i32> = DrrQueue::new(2);
        assert_eq!(q.push(7, 10).unwrap(), 1);
        assert_eq!(q.push(8, 20).unwrap(), 2);
        let QueueFull(rejected) = q.push(7, 30).unwrap_err();
        assert_eq!(rejected, 30);
        q.close();
        assert!(q.push(8, 40).is_err(), "closed queue rejects");
        let mut got = vec![q.pop_blocking().unwrap(), q.pop_blocking().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn drain_and_remove_release_queued_work_and_lanes() {
        let q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        let evens = q.drain_matching(|v| v % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_blocking(), Some(1), "survivors keep FIFO order");

        let d: DrrQueue<(u64, i32)> = DrrQueue::new(16);
        d.push(1, (1, 0)).unwrap();
        d.push(1, (1, 1)).unwrap();
        d.push(2, (2, 0)).unwrap();
        assert_eq!(d.lanes(), 2);
        let gone = d.remove_session(1);
        assert_eq!(gone, vec![(1, 0), (1, 1)], "lane drains in submission order");
        assert_eq!(d.len(), 1);
        assert_eq!(d.lanes(), 1, "lane state is forgotten, not just emptied");
        assert!(d.remove_session(999).is_empty(), "unknown session is a no-op");
        assert_eq!(d.pop_blocking(), Some((2, 0)));
    }

    #[test]
    fn drr_queue_wakes_blocked_consumers() {
        let q: Arc<DrrQueue<i32>> = Arc::new(DrrQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(1, 42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop_blocking() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<i32>>());
    }
}
