//! Admission control: a bounded MPMC queue with blocking consumers.
//!
//! The server's front door. Producers (`submit`) never block — a full
//! queue is an immediate, explicit rejection so callers can back off —
//! while consumers (the worker pool) park on a condvar until work or
//! shutdown arrives. This is the load-shedding discipline a GPU service
//! needs: the device has a fixed service rate, so an unbounded queue only
//! converts overload into unbounded latency.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Returned by [`BoundedQueue::push`] when the queue is at capacity or
/// closed; hands the rejected item back to the caller.
#[derive(Debug)]
pub struct QueueFull<T>(pub T);

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// High-water mark of `items.len()`.
    max_depth: usize,
}

/// A bounded multi-producer multi-consumer queue.
///
/// `push` is non-blocking (rejects at capacity); `pop_blocking` parks
/// until an item or [`close`](BoundedQueue::close) arrives.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// New queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue poisoned").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been.
    pub fn max_depth(&self) -> usize {
        self.inner.lock().expect("queue poisoned").max_depth
    }

    /// Enqueues `item`, returning the depth after the push, or the item
    /// back inside [`QueueFull`] when at capacity (or closed).
    pub fn push(&self, item: T) -> Result<usize, QueueFull<T>> {
        let mut g = self.inner.lock().expect("queue poisoned");
        if g.closed || g.items.len() >= self.capacity {
            return Err(QueueFull(item));
        }
        g.items.push_back(item);
        let depth = g.items.len();
        g.max_depth = g.max_depth.max(depth);
        drop(g);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).expect("queue poisoned");
        }
    }

    /// Closes the queue: future pushes fail, blocked consumers drain the
    /// remaining items and then observe `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_reports_depth_and_rejects_at_capacity() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1).unwrap(), 1);
        assert_eq!(q.push(2).unwrap(), 2);
        let QueueFull(rejected) = q.push(3).unwrap_err();
        assert_eq!(rejected, 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
    }

    #[test]
    fn pop_returns_fifo_then_blocks_until_close() {
        let q = Arc::new(BoundedQueue::new(4));
        q.push(10).unwrap();
        q.push(20).unwrap();
        assert_eq!(q.pop_blocking(), Some(10));
        assert_eq!(q.pop_blocking(), Some(20));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_blocking());
        // The consumer parks; closing wakes it with None.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn close_drains_remaining_items_before_none() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(q.push(2).is_err(), "closed queue rejects");
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop_blocking() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..100 {
                        q.push(p * 100 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<i32>>());
    }
}
