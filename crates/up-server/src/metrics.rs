//! Service metrics: counters, gauges, and a latency histogram, all
//! lock-free (`&self` everywhere) so the hot path never serializes on a
//! metrics mutex.
//!
//! [`MetricsRegistry`] is what the server updates; [`MetricsSnapshot`] is
//! the plain-struct view handed to callers, with a [`report`] method that
//! renders the text dashboard printed by `examples/concurrent_service.rs`.
//!
//! [`report`]: MetricsSnapshot::report

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use up_gpusim::stream::StreamStats;
use up_gpusim::{DeviceTimelineStats, PipelineReport, SharedTimelineStats};
use up_jit::cache::CacheStats;
use up_jit::CompileArenaStats;

/// Power-of-two microsecond buckets: bucket `i` holds latencies in
/// `[2^(i−1), 2^i)` µs, so 40 buckets cover ~13 µs-to-years.
const BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram over atomic counters.
///
/// Quantiles are read from bucket upper bounds, so they are exact to
/// within a factor of 2 — plenty for a load report, and recording is a
/// single relaxed `fetch_add`.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: core::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// New empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    fn bucket_of(us: u64) -> usize {
        // 0–1 µs → bucket 0; otherwise the position of the highest bit.
        (64 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one latency observation.
    pub fn record(&self, seconds: f64) {
        let us = (seconds.max(0.0) * 1e6) as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Approximate quantile (`q` in `[0, 1]`) in seconds; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper bound of bucket i is 2^i µs.
                return (1u64 << i) as f64 / 1e6;
            }
        }
        self.max_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Point-in-time summary. Quantiles are bucket upper bounds clamped
    /// to the exact maximum (so `p50 ≤ p95 ≤ max` always holds).
    pub fn summary(&self) -> LatencySummary {
        let count = self.count.load(Ordering::Relaxed);
        let max_s = self.max_us.load(Ordering::Relaxed) as f64 / 1e6;
        LatencySummary {
            count,
            mean_s: if count == 0 {
                0.0
            } else {
                self.sum_us.load(Ordering::Relaxed) as f64 / 1e6 / count as f64
            },
            p50_s: self.quantile(0.50).min(max_s),
            p95_s: self.quantile(0.95).min(max_s),
            max_s,
        }
    }
}

/// Plain summary of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Observations recorded.
    pub count: u64,
    /// Mean latency in seconds.
    pub mean_s: f64,
    /// Median (upper bucket bound).
    pub p50_s: f64,
    /// 95th percentile (upper bucket bound).
    pub p95_s: f64,
    /// Largest observation.
    pub max_s: f64,
}

/// An `f64` accumulator over `AtomicU64` bit patterns (adds are CAS
/// loops; reads are a single load).
#[derive(Default)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The live metrics the server updates on every query.
#[derive(Default)]
pub struct MetricsRegistry {
    /// Queries accepted into the queue.
    submitted: AtomicU64,
    /// Queries that produced a result (Ok or engine error).
    completed: AtomicU64,
    /// Queries whose engine execution errored.
    failed: AtomicU64,
    /// Submissions bounced by admission control.
    rejected: AtomicU64,
    /// Tickets that gave up waiting (client-side deadline).
    timed_out: AtomicU64,
    /// Jobs observed canceled before execution.
    canceled: AtomicU64,
    /// Jobs currently queued (gauge).
    queue_depth: AtomicUsize,
    /// End-to-end (enqueue → reply) latency of completed queries.
    latency: LatencyHistogram,
    /// Admission-queue wait (enqueue → dequeue) of every dequeued job —
    /// the tail-latency signal the arena's fair scheduling targets.
    queue_wait: LatencyHistogram,
    /// Modeled GPU kernel seconds (SM-seconds) executed.
    gpu_kernel_s: AtomicF64,
    /// Modeled stream queueing delay accumulated.
    gpu_queue_s: AtomicF64,
    /// Queries that ran through the intra-query launch DAG.
    pipelined_queries: AtomicU64,
    /// DAG nodes scheduled across all pipelined queries.
    pipeline_nodes: AtomicU64,
    /// Modeled seconds saved by overlap (serial − makespan), summed.
    pipeline_overlap_s: AtomicF64,
    /// Modeled stream-busy seconds inside pipelined plans.
    pipeline_busy_s: AtomicF64,
    /// Modeled stream capacity (streams × makespan) of pipelined plans.
    pipeline_cap_s: AtomicF64,
}

impl MetricsRegistry {
    /// New registry with everything at zero.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// A submission was accepted.
    pub fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// A job left the queue (about to execute or canceled).
    pub fn on_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A submission was bounced by admission control.
    pub fn on_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// A query finished; `latency_s` is enqueue → reply, `ok` whether the
    /// engine succeeded.
    pub fn on_completed(&self, latency_s: f64, ok: bool) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency_s);
    }

    /// A job spent `wait_s` in the admission queue before a worker took
    /// it (recorded for canceled jobs too — they waited all the same).
    pub fn on_queue_wait(&self, wait_s: f64) {
        self.queue_wait.record(wait_s);
    }

    /// A ticket's deadline expired before the reply arrived.
    pub fn on_timed_out(&self) {
        self.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    /// A job was canceled before execution.
    pub fn on_canceled(&self) {
        self.canceled.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds modeled GPU seconds (kernel busy + stream queueing delay).
    pub fn on_gpu_time(&self, kernel_s: f64, queue_s: f64) {
        self.gpu_kernel_s.add(kernel_s);
        self.gpu_queue_s.add(queue_s);
    }

    /// Folds one query's pipeline timeline into the service-wide
    /// counters (called only for queries that actually pipelined).
    pub fn on_pipeline(&self, p: &PipelineReport) {
        self.pipelined_queries.fetch_add(1, Ordering::Relaxed);
        self.pipeline_nodes.fetch_add(p.nodes, Ordering::Relaxed);
        self.pipeline_overlap_s.add(p.overlap_s);
        self.pipeline_busy_s.add(p.exec_s);
        self.pipeline_cap_s.add(p.streams as f64 * p.makespan_s);
    }

    /// Mean end-to-end latency so far (0 before any completion) — the
    /// server's retry-after estimate is derived from this.
    pub fn mean_latency_s(&self) -> f64 {
        self.latency.summary().mean_s
    }

    /// Snapshot of the counters this registry owns; the server folds in
    /// cache/stream/session state to build the full [`MetricsSnapshot`].
    pub fn fill(&self, snap: &mut MetricsSnapshot) {
        snap.submitted = self.submitted.load(Ordering::Relaxed);
        snap.completed = self.completed.load(Ordering::Relaxed);
        snap.failed = self.failed.load(Ordering::Relaxed);
        snap.rejected = self.rejected.load(Ordering::Relaxed);
        snap.timed_out = self.timed_out.load(Ordering::Relaxed);
        snap.canceled = self.canceled.load(Ordering::Relaxed);
        snap.queue_depth = self.queue_depth.load(Ordering::Relaxed);
        snap.latency = self.latency.summary();
        snap.queue_wait = self.queue_wait.summary();
        snap.gpu_kernel_s = self.gpu_kernel_s.get();
        snap.gpu_queue_s = self.gpu_queue_s.get();
        snap.pipelined_queries = self.pipelined_queries.load(Ordering::Relaxed);
        snap.pipeline_nodes = self.pipeline_nodes.load(Ordering::Relaxed);
        snap.pipeline_overlap_s = self.pipeline_overlap_s.get();
        let cap = self.pipeline_cap_s.get();
        snap.pipeline_utilization =
            if cap > 0.0 { (self.pipeline_busy_s.get() / cap).clamp(0.0, 1.0) } else { 0.0 };
    }
}

/// A plain point-in-time view of the whole service.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Sessions currently connected.
    pub sessions_active: usize,
    /// Sessions ever connected.
    pub sessions_total: u64,
    /// Queries accepted into the queue.
    pub submitted: u64,
    /// Queries that produced a result.
    pub completed: u64,
    /// Queries whose execution errored.
    pub failed: u64,
    /// Submissions bounced by admission control.
    pub rejected: u64,
    /// Tickets that timed out waiting.
    pub timed_out: u64,
    /// Jobs canceled before execution.
    pub canceled: u64,
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// Deepest the queue has been.
    pub queue_max_depth: usize,
    /// End-to-end latency summary.
    pub latency: LatencySummary,
    /// Admission-queue wait summary (enqueue → dequeue).
    pub queue_wait: LatencySummary,
    /// Shared JIT kernel-cache counters.
    pub cache: CacheStats,
    /// Simulated GPU stream scheduler statistics.
    pub streams: StreamStats,
    /// Process-wide simulator launch counts per execution tier (tree /
    /// decoded / closure-compiled) plus decoded→compiled promotion
    /// events — the server-level view of `UP_SIM_EXEC=auto` tiering.
    pub exec_tiers: up_gpusim::TierCounters,
    /// Closure-tier compile builds and cache hits (a hit is a launch
    /// reusing an artifact another launch or session already built).
    pub tier_compiles: (u64, u64),
    /// Modeled SM-seconds of kernel execution.
    pub gpu_kernel_s: f64,
    /// Modeled stream queueing delay accumulated.
    pub gpu_queue_s: f64,
    /// Queries executed through the intra-query launch DAG.
    pub pipelined_queries: u64,
    /// DAG nodes scheduled across pipelined queries.
    pub pipeline_nodes: u64,
    /// Modeled seconds of compile/transfer/exec overlap won, summed.
    pub pipeline_overlap_s: f64,
    /// Aggregate modeled stream utilization of pipelined plans
    /// (busy / capacity over their makespans, in `[0, 1]`).
    pub pipeline_utilization: f64,
    /// Whether the cross-query pipeline arena is on.
    pub arena_enabled: bool,
    /// Arena compile-prefetch pool counters (registrations, dedups,
    /// lane occupancy). All zero when the arena is off.
    pub arena_compile: CompileArenaStats,
    /// Arena shared launch-timeline counters (copy-engine and stream
    /// utilization across queries). All zero when the arena is off.
    pub arena_timeline: SharedTimelineStats,
    /// Largest single session's share of total admission-queue wait, in
    /// `[0, 1]`; near `1 / sessions` means the DRR scheduler is fair.
    pub arena_max_wait_share: f64,
    /// Simulated GPU fleet size (`ServerConfig::devices`, ≥ 1).
    pub fleet_devices: usize,
    /// Queries routed to each device, round-robin by execution order
    /// (`len == fleet_devices`).
    pub fleet_routed: Vec<u64>,
    /// Per-device launch-timeline stats from the arena's shared fleet
    /// timeline (empty when the arena is off).
    pub fleet_timeline: Vec<DeviceTimelineStats>,
}

fn fmt_s(s: f64) -> String {
    if s <= 0.0 {
        "0".to_string()
    } else if s < 0.001 {
        format!("{:.1} µs", s * 1e6)
    } else if s < 10.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

impl MetricsSnapshot {
    /// Renders the text dashboard.
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut o = String::new();
        let _ = writeln!(o, "== up-server metrics ==");
        let _ = writeln!(
            o,
            "sessions:    {} active / {} total",
            self.sessions_active, self.sessions_total
        );
        let _ = writeln!(
            o,
            "queries:     {} submitted, {} completed ({} failed), {} rejected, {} timed out, {} canceled",
            self.submitted, self.completed, self.failed, self.rejected, self.timed_out,
            self.canceled
        );
        let _ = writeln!(
            o,
            "queue:       depth {} / {} (max {})",
            self.queue_depth, self.queue_capacity, self.queue_max_depth
        );
        let l = &self.latency;
        let _ = writeln!(
            o,
            "latency:     p50 {} | p95 {} | max {} | mean {} (n = {})",
            fmt_s(l.p50_s),
            fmt_s(l.p95_s),
            fmt_s(l.max_s),
            fmt_s(l.mean_s),
            l.count
        );
        let w = &self.queue_wait;
        let _ = writeln!(
            o,
            "queue wait:  p50 {} | p95 {} | max {} (n = {})",
            fmt_s(w.p50_s),
            fmt_s(w.p95_s),
            fmt_s(w.max_s),
            w.count
        );
        let c = &self.cache;
        let _ = writeln!(
            o,
            "jit cache:   {}/{} kernels, {} hits / {} misses ({:.1}% hit rate), {} evictions",
            c.entries,
            c.capacity,
            c.hits,
            c.misses,
            c.hit_rate() * 100.0,
            c.evictions
        );
        let s = &self.streams;
        let _ = writeln!(
            o,
            "gpu streams: {} streams, {} launches, {:.3}% utilization, busy {}, queued {}",
            s.streams,
            s.launches,
            s.utilization * 100.0,
            fmt_s(self.gpu_kernel_s),
            fmt_s(self.gpu_queue_s)
        );
        let t = &self.exec_tiers;
        let _ = writeln!(
            o,
            "exec tiers:  {} tree · {} decoded · {} compiled ({} promotions, {} builds / {} shared hits)",
            t.tree,
            t.decoded,
            t.compiled,
            t.promotions,
            self.tier_compiles.0,
            self.tier_compiles.1
        );
        let _ = writeln!(
            o,
            "mem lowering: {} lowered / {} fallback superblocks · {} mem thunks · {} fallback insts",
            t.lowered_superblocks, t.fallback_superblocks, t.lowered_mem_thunks, t.fallback_insts
        );
        let _ = writeln!(
            o,
            "pipelining:  {} queries, {} DAG nodes, overlap won {}, stream utilization {:.1}%",
            self.pipelined_queries,
            self.pipeline_nodes,
            fmt_s(self.pipeline_overlap_s),
            self.pipeline_utilization * 100.0
        );
        if self.fleet_devices > 1 {
            let _ = writeln!(
                o,
                "fleet:       {} simulated devices, launches routed round-robin",
                self.fleet_devices
            );
            for (d, &routed) in self.fleet_routed.iter().enumerate() {
                let t = self.fleet_timeline.get(d).copied().unwrap_or_default();
                let _ = writeln!(
                    o,
                    "  device {d}:  {} routed · {} placed / {} nodes, h2d {}, exec {}, queued {}, copy {:.1}%, streams {:.1}%",
                    routed,
                    t.queries,
                    t.nodes,
                    fmt_s(t.h2d_s),
                    fmt_s(t.exec_s),
                    fmt_s(t.queue_s),
                    t.copy_utilization * 100.0,
                    t.stream_utilization * 100.0
                );
            }
        }
        if self.arena_enabled {
            let a = &self.arena_compile;
            let _ = writeln!(
                o,
                "arena:       {} kernel refs, {} compiles started, {} cross-query dedups, {} prefetched taken, lanes {}/{} busy ({} queued)",
                a.registered,
                a.compiles_started,
                a.cross_query_dedups,
                a.prefetched_taken,
                a.lanes_busy,
                a.lanes,
                a.queued
            );
            let t = &self.arena_timeline;
            let _ = writeln!(
                o,
                "arena pools: {} queries / {} nodes placed, compile {:.1}%, copy {:.1}%, streams {:.1}% | max wait share {:.1}%",
                t.queries,
                t.nodes,
                t.compile_utilization * 100.0,
                t.copy_utilization * 100.0,
                t.stream_utilization * 100.0,
                self.arena_max_wait_share * 100.0
            );
        }
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_observations() {
        let h = LatencyHistogram::new();
        for _ in 0..95 {
            h.record(0.001); // 1000 µs → bucket ub 1024 µs
        }
        for _ in 0..5 {
            h.record(0.1); // 100 000 µs
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50_s >= 0.001 && s.p50_s <= 0.002, "{}", s.p50_s);
        assert!(s.p95_s <= 0.002, "95th obs is still the 1 ms group");
        assert!((s.max_s - 0.1).abs() < 1e-9);
        assert!(s.mean_s > 0.001 && s.mean_s < 0.01);
        assert!(h.quantile(1.0) >= 0.1);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_s, 0.0);
        assert_eq!(s.max_s, 0.0);
    }

    #[test]
    fn atomic_f64_accumulates_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.on_gpu_time(0.001, 0.0005);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut snap = MetricsSnapshot::default();
        m.fill(&mut snap);
        assert!((snap.gpu_kernel_s - 8.0).abs() < 1e-9, "{}", snap.gpu_kernel_s);
        assert!((snap.gpu_queue_s - 4.0).abs() < 1e-9, "{}", snap.gpu_queue_s);
    }

    #[test]
    fn pipeline_counters_feed_snapshot_and_report() {
        let m = MetricsRegistry::new();
        // Two pipelined queries: 3 + 2 nodes, each with known busy and
        // makespan so the aggregate utilization is checkable by hand.
        m.on_pipeline(&PipelineReport {
            nodes: 3,
            streams: 2,
            serial_s: 1.0,
            makespan_s: 0.6,
            overlap_s: 0.4,
            exec_s: 0.6,
            ..Default::default()
        });
        m.on_pipeline(&PipelineReport {
            nodes: 2,
            streams: 2,
            serial_s: 0.5,
            makespan_s: 0.4,
            overlap_s: 0.1,
            exec_s: 0.4,
            ..Default::default()
        });
        let mut snap = MetricsSnapshot::default();
        m.fill(&mut snap);
        assert_eq!(snap.pipelined_queries, 2);
        assert_eq!(snap.pipeline_nodes, 5);
        assert!((snap.pipeline_overlap_s - 0.5).abs() < 1e-12);
        // busy 1.0 over capacity 2·0.6 + 2·0.4 = 2.0 → 50%.
        assert!((snap.pipeline_utilization - 0.5).abs() < 1e-12, "{}", snap.pipeline_utilization);
        let text = snap.report();
        assert!(text.contains("pipelining:  2 queries, 5 DAG nodes"), "{text}");
    }

    #[test]
    fn queue_wait_and_arena_lines_render() {
        let m = MetricsRegistry::new();
        m.on_queue_wait(0.002);
        m.on_queue_wait(0.004);
        let mut snap = MetricsSnapshot::default();
        m.fill(&mut snap);
        assert_eq!(snap.queue_wait.count, 2);
        assert!(snap.queue_wait.p95_s >= snap.queue_wait.p50_s);
        // The arena block renders only when the arena is on.
        assert!(!snap.report().contains("arena:"));
        snap.arena_enabled = true;
        snap.arena_compile.cross_query_dedups = 3;
        snap.arena_max_wait_share = 0.25;
        let text = snap.report();
        assert!(text.contains("queue wait:"), "{text}");
        assert!(text.contains("3 cross-query dedups"), "{text}");
        assert!(text.contains("max wait share 25.0%"), "{text}");
    }

    #[test]
    fn registry_counters_feed_snapshot_and_report() {
        let m = MetricsRegistry::new();
        m.on_submitted();
        m.on_submitted();
        m.on_dequeued();
        m.on_completed(0.002, true);
        m.on_rejected();
        m.on_timed_out();
        let mut snap = MetricsSnapshot::default();
        m.fill(&mut snap);
        snap.queue_capacity = 8;
        assert_eq!(snap.submitted, 2);
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.rejected, 1);
        assert_eq!(snap.timed_out, 1);
        assert_eq!(snap.queue_depth, 1);
        let text = snap.report();
        assert!(text.contains("2 submitted"), "{text}");
        assert!(text.contains("depth 1 / 8"), "{text}");
        assert!(text.contains("jit cache:"), "{text}");
        assert!(text.contains("gpu streams:"), "{text}");
    }
}
