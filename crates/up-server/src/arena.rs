//! The server-wide pipeline arena: one shared launch scheduler that all
//! worker threads feed, instead of each query pipelining alone.
//!
//! The arena is the cross-query half of the launch pipeline introduced in
//! `up_gpusim::pipeline`. It owns:
//!
//! - a [`CompileArena`] — the admission-time compile prefetcher. When a
//!   query is *submitted* (not when a worker picks it up), the server
//!   registers the plan's kernel signatures here; first occurrences start
//!   compiling immediately on a bounded pool of lanes scheduled by
//!   weighted deficit round-robin, and later occurrences — from the same
//!   query *or any other in-flight query* — attach to the in-flight
//!   compile instead of queueing a duplicate.
//! - a [`SharedTimeline`] — the shared launch-resource model (compile
//!   lanes, one copy engine, N compute streams) that every arena query's
//!   launch DAG is placed on, so modeled overlap reflects *cross-query*
//!   contention rather than a private per-query device.
//! - per-session queue-wait accounting, the input to the tail-latency
//!   fairness metric (`max_wait_share`).
//!
//! Determinism: the arena changes *when* compiles run, never *what* they
//! produce. Each signature is compiled exactly once by its owner entry
//! and everyone else observes the same cache hit serial execution would
//! have recorded, so results, `ModeledTime`, and aggregate cache stats
//! stay bit-identical to one-at-a-time execution (see
//! `up_jit::arena` for the full argument).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use up_gpusim::{SharedTimeline, SharedTimelineStats};
use up_jit::cache::JitEngine;
use up_jit::{CompileArena, CompileArenaStats, Expr};

/// A point-in-time view of the arena: compile-pool counters, shared
/// launch-timeline utilization, and the per-session wait distribution.
#[derive(Clone, Debug, Default)]
pub struct ArenaStats {
    /// Compile-prefetch pool counters (dedups, lanes, queue).
    pub compile: CompileArenaStats,
    /// Shared launch-resource model (copy engine / stream utilization).
    pub timeline: SharedTimelineStats,
    /// Accumulated admission-queue wait per session, sorted by session id.
    pub session_waits: Vec<(u64, f64)>,
    /// Largest single session's share of total queue wait, in `[0, 1]` —
    /// a fairness check: under equal weights and sustained load this
    /// should approach `1 / sessions`, not 1.
    pub max_wait_share: f64,
}

/// The server's shared launch scheduler (see module docs).
pub struct LaunchArena {
    compile: Arc<CompileArena>,
    timeline: SharedTimeline,
    /// Admission sequence: the order queries registered their kernels,
    /// which is also the ownership order for compile attribution.
    seq: AtomicU64,
    /// Accumulated queue wait per session id, for the fairness metric.
    session_wait: Mutex<HashMap<u64, f64>>,
}

impl LaunchArena {
    /// New arena compiling through `jit` (fork of the server engine, so
    /// the shared kernel cache and NVCC-emulation flag carry over) with
    /// `compile_lanes` concurrent compiles and `gpu_streams` compute
    /// streams in the shared timeline.
    pub fn new(jit: JitEngine, compile_lanes: usize, gpu_streams: usize) -> LaunchArena {
        Self::fleet(jit, 1, compile_lanes, gpu_streams)
    }

    /// [`new`](LaunchArena::new) over a simulated fleet: the timeline
    /// keeps one shared pool of `compile_lanes` (NVCC runs on the host,
    /// so compiles contend fleet-wide) but gives each of the `devices`
    /// its own copy engine and `gpu_streams` compute streams.
    pub fn fleet(
        jit: JitEngine,
        devices: usize,
        compile_lanes: usize,
        gpu_streams: usize,
    ) -> LaunchArena {
        let compile_lanes = compile_lanes.max(1);
        LaunchArena {
            compile: Arc::new(CompileArena::new(jit, compile_lanes)),
            timeline: SharedTimeline::fleet(devices, gpu_streams, compile_lanes),
            seq: AtomicU64::new(0),
            session_wait: Mutex::new(HashMap::new()),
        }
    }

    /// Allocates the next admission sequence number (1-based).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The compile-prefetch pool (workers rendezvous with it at eval).
    pub fn compile(&self) -> &CompileArena {
        &self.compile
    }

    /// The shared launch timeline (workers place their DAGs on it).
    pub fn timeline(&self) -> &SharedTimeline {
        &self.timeline
    }

    /// Registers an admitted query's kernel references: sets the
    /// session's compile-lane weight and starts first-occurrence
    /// compiles. Called at submit time, before the job is queued.
    pub fn register(&self, session: u64, weight: f64, seq: u64, kernels: &[(String, Expr)]) {
        self.compile.register(session, weight, seq, kernels);
    }

    /// Releases a query's arena state (owned compile entries); must be
    /// called exactly once per allocated seq, including on cancel and on
    /// admission rejection.
    pub fn on_query_done(&self, seq: u64) {
        self.compile.query_done(seq);
    }

    /// Accumulates one dequeue's admission-queue wait against a session.
    pub fn record_wait(&self, session: u64, wait_s: f64) {
        *self
            .session_wait
            .lock()
            .expect("session wait poisoned")
            .entry(session)
            .or_insert(0.0) += wait_s.max(0.0);
    }

    /// Snapshot of compile-pool, timeline, and fairness state.
    pub fn stats(&self) -> ArenaStats {
        let mut session_waits: Vec<(u64, f64)> = self
            .session_wait
            .lock()
            .expect("session wait poisoned")
            .iter()
            .map(|(&id, &w)| (id, w))
            .collect();
        session_waits.sort_unstable_by_key(|&(id, _)| id);
        let total: f64 = session_waits.iter().map(|&(_, w)| w).sum();
        let max: f64 = session_waits.iter().map(|&(_, w)| w).fold(0.0, f64::max);
        ArenaStats {
            compile: self.compile.stats(),
            timeline: self.timeline.stats(),
            session_waits,
            max_wait_share: if total > 0.0 { max / total } else { 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_numbers_are_unique_and_monotonic() {
        let a = LaunchArena::new(JitEngine::with_defaults(), 2, 2);
        let s1 = a.next_seq();
        let s2 = a.next_seq();
        assert!(s1 >= 1);
        assert_eq!(s2, s1 + 1);
    }

    #[test]
    fn wait_shares_track_the_dominant_session() {
        let a = LaunchArena::new(JitEngine::with_defaults(), 2, 2);
        assert_eq!(a.stats().max_wait_share, 0.0, "no waits yet");
        a.record_wait(1, 0.030);
        a.record_wait(2, 0.010);
        a.record_wait(1, 0.030);
        a.record_wait(2, -5.0); // clamped to 0
        let st = a.stats();
        assert_eq!(st.session_waits, vec![(1, 0.060), (2, 0.010)]);
        assert!((st.max_wait_share - 0.060 / 0.070).abs() < 1e-12, "{}", st.max_wait_share);
    }

    #[test]
    fn register_and_done_round_trip_through_the_compile_pool() {
        use up_num::DecimalType;
        let jit = JitEngine::with_defaults();
        let a = LaunchArena::new(jit.fork(), 2, 2);
        let t = DecimalType::new_unchecked(9, 3);
        let e = Expr::col(0, t, "a").mul(Expr::col(1, t, "b"));
        let sig = jit.signature(&e).expect("jit-routed expression");
        let seq_a = a.next_seq();
        let seq_b = a.next_seq();
        a.register(1, 1.0, seq_a, &[(sig.clone(), e.clone())]);
        a.register(2, 1.0, seq_b, &[(sig, e.clone())]);
        let st = a.stats();
        assert_eq!(st.compile.registered, 2);
        assert_eq!(st.compile.cross_query_dedups, 1, "second query attached");
        // Both queries retire; the owner's entry may still be in flight
        // (orphaned) but the shared cache keeps the kernel either way.
        a.on_query_done(seq_a);
        a.on_query_done(seq_b);
        assert!(a.compile().rendezvous(seq_b + 1, &e).is_none(), "entries released");
    }
}
