#![warn(missing_docs)]
//! # up-server — a concurrent query service over the engine
//!
//! The paper evaluates UltraPrecise inside RateupDB, a *server*: many
//! clients, one GPU, shared compiled artifacts. This crate reproduces
//! that deployment shape on top of [`up_engine`]:
//!
//! - **Sessions** ([`session`]): connect/disconnect with a per-session
//!   execution profile and query counters.
//! - **Admission control** ([`admission`]): a bounded queue feeding a
//!   configurable worker pool; when it is full, submissions are rejected
//!   with a suggested retry-after instead of piling up latency.
//! - **Shared JIT kernel cache**: all sessions compile through one
//!   lock-striped LRU ([`up_jit::cache::SharedKernelCache`]), so a
//!   signature is compiled at most once no matter how many sessions race
//!   on it.
//! - **GPU stream scheduling** ([`up_gpusim::stream`]): kernels from
//!   concurrent queries are placed on N simulated CUDA streams and the
//!   modeled queueing delay is folded into each query's
//!   [`up_engine::ModeledTime`].
//! - **Metrics** ([`metrics`]): latency histograms, queue depth, cache
//!   hit rate, and modeled SM-seconds, snapshotable as a plain struct or
//!   a printable text report.
//! - **Pipeline arena** ([`arena`], opt-in via `ServerConfig::arena` or
//!   `UP_ARENA=on`): queries register their kernel signatures at
//!   admission so compiles start while jobs are still queued, duplicate
//!   signatures across in-flight queries attach to one compile, dequeue
//!   is per-session weighted deficit round-robin, and every launch DAG
//!   shares one modeled pool of compile lanes / copy engine / compute
//!   streams. Results, modeled times, and cache hit/miss counts stay
//!   bit-identical to serial execution.
//!
//! Reads run concurrently (the engine's `query` takes `&self`). The
//! engine's catalog is lock-striped per table, so row inserts take the
//! server's read lock plus one table's write lock — inserts into
//! disjoint tables proceed in parallel with each other and with queries
//! over other tables. Only DDL (create/replace table) takes the global
//! write lock. Simulated kernels inside queries additionally fan out
//! over host cores ([`up_gpusim::SimParallelism`]); worker threads and
//! simulator threads share one process-wide budget, so the two layers of
//! parallelism compose instead of oversubscribing.
//!
//! ```
//! use up_engine::{ColumnType, Profile, Schema, Value};
//! use up_num::{DecimalType, UpDecimal};
//! use up_server::{ServerConfig, UpServer};
//!
//! let server = UpServer::new(ServerConfig::default());
//! let ty = DecimalType::new_unchecked(6, 2);
//! server.create_table("t", Schema::new(vec![("x", ColumnType::Decimal(ty))]));
//! server
//!     .insert_many(
//!         "t",
//!         vec![vec![Value::Decimal(UpDecimal::parse("1.25", ty).unwrap())]],
//!     )
//!     .unwrap();
//! let session = server.connect(Profile::UltraPrecise);
//! let result = server.query(session, "SELECT x + x FROM t").unwrap();
//! assert_eq!(result.rows[0][0].render(), "2.50");
//! println!("{}", server.metrics().report());
//! ```

pub mod admission;
pub mod arena;
pub mod metrics;
pub mod server;
pub mod session;

pub use arena::{ArenaStats, LaunchArena};
pub use metrics::{LatencyHistogram, LatencySummary, MetricsSnapshot};
pub use server::{CancelHandle, Completion, QueryTicket, ServerConfig, ServerError, UpServer};
pub use session::{SessionId, SessionManager, SessionStats};
