//! Session lifecycle: connect/disconnect, per-session execution profile,
//! and per-session counters.
//!
//! A session is the unit of client identity — the thing a per-tenant
//! quota or an audit log would hang off. Today it carries the execution
//! profile used for the session's queries (so one client can run
//! `PostgresLike` while another runs `UltraPrecise` against the same
//! data) and simple usage counters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use up_engine::Profile;

/// Opaque handle to a connected session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId(pub u64);

impl core::fmt::Display for SessionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Per-session usage counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Queries submitted by this session.
    pub queries: u64,
    /// Of those, how many errored.
    pub errors: u64,
}

struct SessionState {
    profile: Profile,
    /// Fair-share weight for arena scheduling (deficit round-robin).
    weight: f64,
    stats: SessionStats,
    /// Last submit/record against this session — the idle-eviction clock.
    last_active: Instant,
}

/// Tracks connected sessions. All methods take `&self`; the map is
/// mutex-guarded (session churn is rare next to query traffic).
pub struct SessionManager {
    next_id: AtomicU64,
    total: AtomicU64,
    sessions: Mutex<HashMap<u64, SessionState>>,
}

impl Default for SessionManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionManager {
    /// New empty manager.
    pub fn new() -> SessionManager {
        SessionManager {
            next_id: AtomicU64::new(1),
            total: AtomicU64::new(0),
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// Opens a session running under `profile`.
    pub fn connect(&self, profile: Profile) -> SessionId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().expect("session map poisoned").insert(
            id,
            SessionState {
                profile,
                weight: 1.0,
                stats: SessionStats::default(),
                last_active: Instant::now(),
            },
        );
        SessionId(id)
    }

    /// Closes a session; returns its final stats, or `None` if unknown.
    pub fn disconnect(&self, id: SessionId) -> Option<SessionStats> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .remove(&id.0)
            .map(|s| s.stats)
    }

    /// The profile a session's queries run under. Looking a session up
    /// on the submit path counts as activity for idle eviction.
    pub fn profile(&self, id: SessionId) -> Option<Profile> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .get_mut(&id.0)
            .map(|s| {
                s.last_active = Instant::now();
                s.profile
            })
    }

    /// Whether a session is still connected (no activity recorded).
    pub fn contains(&self, id: SessionId) -> bool {
        self.sessions.lock().expect("session map poisoned").contains_key(&id.0)
    }

    /// Sessions whose last activity is older than `max_idle` — the reap
    /// candidates for [`idle eviction`](crate::UpServer::reap_idle_sessions).
    pub fn idle_sessions(&self, max_idle: Duration) -> Vec<SessionId> {
        let now = Instant::now();
        self.sessions
            .lock()
            .expect("session map poisoned")
            .iter()
            .filter(|(_, s)| now.duration_since(s.last_active) >= max_idle)
            .map(|(&id, _)| SessionId(id))
            .collect()
    }

    /// Changes a session's profile; false if the session is unknown.
    pub fn set_profile(&self, id: SessionId, profile: Profile) -> bool {
        match self.sessions.lock().expect("session map poisoned").get_mut(&id.0) {
            Some(s) => {
                s.profile = profile;
                true
            }
            None => false,
        }
    }

    /// A session's fair-share scheduling weight (default 1.0).
    pub fn weight(&self, id: SessionId) -> Option<f64> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .get(&id.0)
            .map(|s| s.weight)
    }

    /// Changes a session's fair-share weight; false if the session is
    /// unknown. Non-finite or non-positive weights fall back to 1.0.
    pub fn set_weight(&self, id: SessionId, weight: f64) -> bool {
        match self.sessions.lock().expect("session map poisoned").get_mut(&id.0) {
            Some(s) => {
                s.weight = if weight.is_finite() && weight > 0.0 { weight } else { 1.0 };
                true
            }
            None => false,
        }
    }

    /// Records one query (and whether it errored) against a session.
    /// Disconnected sessions are ignored — their in-flight queries still
    /// finish, there is just nowhere to account them.
    pub fn record_query(&self, id: SessionId, ok: bool) {
        if let Some(s) = self.sessions.lock().expect("session map poisoned").get_mut(&id.0) {
            s.stats.queries += 1;
            if !ok {
                s.stats.errors += 1;
            }
            s.last_active = Instant::now();
        }
    }

    /// A session's current stats.
    pub fn stats(&self, id: SessionId) -> Option<SessionStats> {
        self.sessions
            .lock()
            .expect("session map poisoned")
            .get(&id.0)
            .map(|s| s.stats)
    }

    /// Sessions currently connected.
    pub fn active(&self) -> usize {
        self.sessions.lock().expect("session map poisoned").len()
    }

    /// Sessions ever connected.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_disconnect_lifecycle() {
        let m = SessionManager::new();
        let a = m.connect(Profile::UltraPrecise);
        let b = m.connect(Profile::PostgresLike);
        assert_ne!(a, b);
        assert_eq!(m.active(), 2);
        assert_eq!(m.total(), 2);
        assert_eq!(m.profile(a), Some(Profile::UltraPrecise));
        assert_eq!(m.profile(b), Some(Profile::PostgresLike));

        m.record_query(a, true);
        m.record_query(a, false);
        let stats = m.disconnect(a).unwrap();
        assert_eq!(stats.queries, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(m.active(), 1);
        assert_eq!(m.total(), 2, "total is monotonic");
        assert!(m.profile(a).is_none());
        assert!(m.disconnect(a).is_none(), "double disconnect is None");
    }

    #[test]
    fn weights_default_to_one_and_clamp_nonsense() {
        let m = SessionManager::new();
        let s = m.connect(Profile::UltraPrecise);
        assert_eq!(m.weight(s), Some(1.0));
        assert!(m.set_weight(s, 3.0));
        assert_eq!(m.weight(s), Some(3.0));
        assert!(m.set_weight(s, f64::NAN));
        assert_eq!(m.weight(s), Some(1.0), "non-finite falls back to 1");
        assert!(m.set_weight(s, -2.0));
        assert_eq!(m.weight(s), Some(1.0), "non-positive falls back to 1");
        assert!(!m.set_weight(SessionId(999), 2.0));
        assert!(m.weight(SessionId(999)).is_none());
    }

    #[test]
    fn idle_sessions_track_last_activity() {
        let m = SessionManager::new();
        let a = m.connect(Profile::UltraPrecise);
        let b = m.connect(Profile::UltraPrecise);
        // Everything is idle at threshold zero.
        let mut idle = m.idle_sessions(Duration::ZERO);
        idle.sort_by_key(|s| s.0);
        assert_eq!(idle, vec![a, b]);
        // Nothing is idle at a generous threshold.
        assert!(m.idle_sessions(Duration::from_secs(3600)).is_empty());
        std::thread::sleep(Duration::from_millis(15));
        // Activity (a query, or a submit-path profile lookup) resets the
        // clock for that session only.
        m.record_query(a, true);
        let idle = m.idle_sessions(Duration::from_millis(10));
        assert_eq!(idle, vec![b]);
        assert!(m.contains(a));
        m.disconnect(b);
        assert!(!m.contains(b));
    }

    #[test]
    fn set_profile_switches_only_known_sessions() {
        let m = SessionManager::new();
        let s = m.connect(Profile::UltraPrecise);
        assert!(m.set_profile(s, Profile::MonetLike));
        assert_eq!(m.profile(s), Some(Profile::MonetLike));
        assert!(!m.set_profile(SessionId(999), Profile::MonetLike));
    }

    #[test]
    fn ids_are_unique_under_concurrency() {
        let m = std::sync::Arc::new(SessionManager::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    (0..50).map(|_| m.connect(Profile::UltraPrecise).0).collect::<Vec<u64>>()
                })
            })
            .collect();
        let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
        assert_eq!(m.active(), 400);
        assert_eq!(m.total(), 400);
    }
}
