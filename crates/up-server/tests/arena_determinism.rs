//! Cross-query determinism of the pipeline arena.
//!
//! Eight sessions fire a shuffled fig08/fig09-style query mix at one
//! arena-mode server (admission-time compile prefetch, cross-query
//! dedup, DRR dispatch, shared launch pools, NVCC latency emulation on),
//! and every observable the arena is allowed to touch must match a
//! serial one-at-a-time replay bit for bit:
//!
//! - result rows,
//! - per-query modeled scan/PCIe/compile/kernel/CPU seconds (`queue_s`
//!   is excluded by design — it prices wall-clock arrival contention),
//! - aggregate JIT-cache hit/miss/compile counts.
//!
//! The replay runs in admission-sequence order, because that is the
//! arena's ownership order: the first query to register a signature owns
//! its compile (and its modeled miss), exactly like the first query to
//! execute serially.
//!
//! With emulation on, the first compile of each signature holds its
//! arena entry open for ≥ 0.25 s while all ~48 submissions land in
//! microseconds, so at least one cross-query dedup is guaranteed — the
//! acceptance criterion the test pins down explicitly.

use up_engine::{ColumnType, Database, Profile, QueryResult, Schema, Value};
use up_gpusim::{DeviceConfig, PipelineMode};
use up_jit::cache::JitEngine;
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

fn ty(p: u32, s: u32) -> DecimalType {
    DecimalType::new_unchecked(p, s)
}

fn schema() -> Schema {
    Schema::new(vec![
        ("x", ColumnType::Decimal(ty(30, 6))),
        ("y", ColumnType::Decimal(ty(30, 6))),
        ("z", ColumnType::Decimal(ty(20, 4))),
    ])
}

fn rows(n: usize) -> Vec<Vec<Value>> {
    let (tx, tyy, tz) = (ty(30, 6), ty(30, 6), ty(20, 4));
    (0..n as i64)
        .map(|i| {
            let x = UpDecimal::from_scaled_i64((i * 7919 - 500_000) % 99_999_999, tx).unwrap();
            let y = UpDecimal::from_scaled_i64((i * 104_729 + 77) % 9_999_999, tyy).unwrap();
            let z = UpDecimal::from_scaled_i64((i * 31 + 5) % 999_999, tz).unwrap();
            vec![Value::Decimal(x), Value::Decimal(y), Value::Decimal(z)]
        })
        .collect()
}

/// The per-session query mix: expression evaluation and aggregation over
/// decimals (the paper's fig. 8/9 workload shape). Several sessions
/// share signatures, so cross-query dedups must occur.
const QUERIES: [&str; 6] = [
    "SELECT x * y FROM ledger",
    "SELECT x + y FROM ledger",
    "SELECT (x * y) + z FROM ledger",
    "SELECT SUM(x * x), SUM(y + y) FROM ledger",
    "SELECT x - z FROM ledger",
    "SELECT COUNT(*) FROM ledger",
];

/// Deterministic shuffle (LCG) so each session submits the mix in a
/// different — but reproducible — order.
fn shuffled(session: u64) -> Vec<&'static str> {
    let mut order: Vec<&'static str> = QUERIES.to_vec();
    let mut state = session.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn fresh_db() -> Database {
    let mut jit = JitEngine::with_defaults();
    jit.set_nvcc_latency_emulation(true);
    let mut db = Database::with_config(Profile::UltraPrecise, DeviceConfig::a6000(), jit);
    db.create_table("ledger", schema());
    db.insert_many("ledger", rows(200)).unwrap();
    db
}

fn assert_identical(label: &str, serial: &QueryResult, arena: &QueryResult) {
    assert_eq!(serial.rows.len(), arena.rows.len(), "{label}: row count");
    for (a, b) in serial.rows.iter().zip(&arena.rows) {
        for (u, v) in a.iter().zip(b) {
            assert_eq!(u.render(), v.render(), "{label}: values");
        }
    }
    for (name, s, a) in [
        ("scan_s", serial.modeled.scan_s, arena.modeled.scan_s),
        ("pcie_s", serial.modeled.pcie_s, arena.modeled.pcie_s),
        ("compile_s", serial.modeled.compile_s, arena.modeled.compile_s),
        ("kernel_s", serial.modeled.kernel_s, arena.modeled.kernel_s),
        ("cpu_s", serial.modeled.cpu_s, arena.modeled.cpu_s),
    ] {
        assert_eq!(
            s.to_bits(),
            a.to_bits(),
            "{label}: {name} diverged (serial {s} vs arena {a})"
        );
    }
}

#[test]
fn arena_stress_is_bit_identical_to_serial_replay() {
    let n_sessions = 8u64;

    // --- Concurrent arena run: submit everything up front. ---
    let server = UpServer::with_database(
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            arena: true,
            compile_lanes: 8,
            pipeline: PipelineMode::On(4),
            ..ServerConfig::default()
        },
        fresh_db(),
    );
    // One comparator-backend session in the mix: its queries compile no
    // kernels and must not perturb the arena's accounting.
    let sessions: Vec<_> = (0..n_sessions)
        .map(|i| {
            server.connect(if i == n_sessions - 1 {
                Profile::PostgresLike
            } else {
                Profile::UltraPrecise
            })
        })
        .collect();
    // Skewed weights: fairness must never change results, only order.
    server.set_session_weight(sessions[0], 4.0);

    // Submission order (one thread) = arena admission-sequence order.
    let mut plan: Vec<(usize, &'static str)> = Vec::new();
    let mut tickets = Vec::new();
    for (i, &session) in sessions.iter().enumerate() {
        for sql in shuffled(i as u64 + 1) {
            let t = server.submit(session, sql).expect("admitted");
            assert_eq!(t.seq(), plan.len() as u64 + 1, "seq tracks admission order");
            plan.push((i, sql));
            tickets.push(t);
        }
    }
    let arena_results: Vec<QueryResult> =
        tickets.into_iter().map(|t| t.wait().expect("query ok")).collect();
    let m = server.metrics();
    let arena_cache = m.cache;
    assert!(m.arena_enabled);
    let stats = server.arena_stats().expect("arena on");
    assert!(
        stats.compile.cross_query_dedups >= 1,
        "expected at least one cross-query compile dedup, stats: {stats:?}"
    );
    assert_eq!(m.failed, 0);
    assert_eq!(m.completed, plan.len() as u64);

    // --- Serial replay: same mix, admission order, one at a time. ---
    let reference = UpServer::with_database(
        ServerConfig {
            workers: 1,
            queue_capacity: 256,
            arena: false,
            pipeline: PipelineMode::Off,
            ..ServerConfig::default()
        },
        fresh_db(),
    );
    let ref_sessions: Vec<_> = (0..n_sessions)
        .map(|i| {
            reference.connect(if i == n_sessions - 1 {
                Profile::PostgresLike
            } else {
                Profile::UltraPrecise
            })
        })
        .collect();
    let serial_results: Vec<QueryResult> = plan
        .iter()
        .map(|&(i, sql)| reference.query(ref_sessions[i], sql).expect("query ok"))
        .collect();
    let serial_cache = reference.metrics().cache;

    // --- Bit-exactness: rows, modeled time, cache accounting. ---
    for (k, (serial, arena)) in serial_results.iter().zip(&arena_results).enumerate() {
        let (i, sql) = plan[k];
        assert_identical(&format!("seq {} session {i} {sql:?}", k + 1), serial, arena);
    }
    assert_eq!(
        (arena_cache.misses, arena_cache.hits),
        (serial_cache.misses, serial_cache.hits),
        "aggregate cache accounting diverged: arena {arena_cache:?} vs serial {serial_cache:?}"
    );
    assert_eq!(arena_cache.evictions, 0, "capacity must cover the workload");
}
