//! Fleet-mode determinism: sharding across a simulated device fleet must
//! never change what a query computes or what the canonical cost model
//! reports.
//!
//! Eight sessions fire a shuffled fig08/fig09-style query mix at a
//! 4-device arena server (fleet sharding + round-robin launch routing +
//! per-device stream pools, NVCC latency emulation on), and every
//! canonical observable must match a single-device serial replay bit for
//! bit:
//!
//! - result rows,
//! - per-query modeled scan/PCIe/compile/kernel/CPU seconds (`queue_s`
//!   is excluded by design — it prices wall-clock arrival contention),
//! - per-query kernel-launch counts,
//! - aggregate JIT-cache hit/miss counts.
//!
//! The fleet is strictly side-band: it only *adds* a [`FleetReport`]
//! (partitioning, priced exchange, modeled makespan/speedup) to each
//! result, which this test checks for shape — devices, full row
//! coverage, and a makespan no worse than the single-device leg.
//!
//! [`FleetReport`]: up_engine::FleetReport

use up_engine::{ColumnType, Database, Profile, QueryResult, Schema, Value};
use up_gpusim::{DeviceConfig, PipelineMode};
use up_jit::cache::JitEngine;
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, UpServer};

const DEVICES: usize = 4;
const ROWS: usize = 200;

fn ty(p: u32, s: u32) -> DecimalType {
    DecimalType::new_unchecked(p, s)
}

fn schema() -> Schema {
    Schema::new(vec![
        ("x", ColumnType::Decimal(ty(30, 6))),
        ("y", ColumnType::Decimal(ty(30, 6))),
        ("z", ColumnType::Decimal(ty(20, 4))),
    ])
}

fn rows(n: usize) -> Vec<Vec<Value>> {
    let (tx, tyy, tz) = (ty(30, 6), ty(30, 6), ty(20, 4));
    (0..n as i64)
        .map(|i| {
            let x = UpDecimal::from_scaled_i64((i * 7919 - 500_000) % 99_999_999, tx).unwrap();
            let y = UpDecimal::from_scaled_i64((i * 104_729 + 77) % 9_999_999, tyy).unwrap();
            let z = UpDecimal::from_scaled_i64((i * 31 + 5) % 999_999, tz).unwrap();
            vec![Value::Decimal(x), Value::Decimal(y), Value::Decimal(z)]
        })
        .collect()
}

/// Expression evaluation plus the aggregation shapes the fleet actually
/// shards (SUM/AVG/MIN/MAX over decimals, COUNT), so the sharded
/// partial-merge path is exercised, not just the fall-through.
const QUERIES: [&str; 6] = [
    "SELECT x * y FROM ledger",
    "SELECT SUM(x), AVG(y) FROM ledger",
    "SELECT (x * y) + z FROM ledger",
    "SELECT SUM(x * x), SUM(y + y) FROM ledger",
    "SELECT MIN(x), MAX(z) FROM ledger",
    "SELECT COUNT(*) FROM ledger",
];

/// Deterministic shuffle (LCG) so each session submits the mix in a
/// different — but reproducible — order.
fn shuffled(session: u64) -> Vec<&'static str> {
    let mut order: Vec<&'static str> = QUERIES.to_vec();
    let mut state = session.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    for i in (1..order.len()).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

fn fresh_db() -> Database {
    let mut jit = JitEngine::with_defaults();
    jit.set_nvcc_latency_emulation(true);
    let mut db = Database::with_config(Profile::UltraPrecise, DeviceConfig::a6000(), jit);
    db.create_table("ledger", schema());
    db.insert_many("ledger", rows(ROWS)).unwrap();
    db
}

fn assert_identical(label: &str, serial: &QueryResult, fleet: &QueryResult) {
    assert_eq!(serial.rows.len(), fleet.rows.len(), "{label}: row count");
    for (a, b) in serial.rows.iter().zip(&fleet.rows) {
        for (u, v) in a.iter().zip(b) {
            assert_eq!(u.render(), v.render(), "{label}: values");
        }
    }
    assert_eq!(serial.kernels, fleet.kernels, "{label}: kernel launches");
    for (name, s, f) in [
        ("scan_s", serial.modeled.scan_s, fleet.modeled.scan_s),
        ("pcie_s", serial.modeled.pcie_s, fleet.modeled.pcie_s),
        ("compile_s", serial.modeled.compile_s, fleet.modeled.compile_s),
        ("kernel_s", serial.modeled.kernel_s, fleet.modeled.kernel_s),
        ("cpu_s", serial.modeled.cpu_s, fleet.modeled.cpu_s),
    ] {
        assert_eq!(
            s.to_bits(),
            f.to_bits(),
            "{label}: {name} diverged (serial {s} vs fleet {f})"
        );
    }
}

#[test]
fn fleet_stress_is_bit_identical_to_single_device_replay() {
    let n_sessions = 8u64;

    // --- Concurrent fleet run: 4 devices, arena pools, submit up front.
    let server = UpServer::with_database(
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            devices: DEVICES,
            arena: true,
            compile_lanes: 8,
            pipeline: PipelineMode::On(4),
            ..ServerConfig::default()
        },
        fresh_db(),
    );
    // One comparator-backend session in the mix: no kernels, no fleet
    // perturbation of the shared accounting.
    let sessions: Vec<_> = (0..n_sessions)
        .map(|i| {
            server.connect(if i == n_sessions - 1 {
                Profile::PostgresLike
            } else {
                Profile::UltraPrecise
            })
        })
        .collect();

    let mut plan: Vec<(usize, &'static str)> = Vec::new();
    let mut tickets = Vec::new();
    for (i, &session) in sessions.iter().enumerate() {
        for sql in shuffled(i as u64 + 1) {
            let t = server.submit(session, sql).expect("admitted");
            plan.push((i, sql));
            tickets.push(t);
        }
    }
    let fleet_results: Vec<QueryResult> =
        tickets.into_iter().map(|t| t.wait().expect("query ok")).collect();
    let m = server.metrics();
    let fleet_cache = m.cache;
    assert_eq!(m.failed, 0);
    assert_eq!(m.completed, plan.len() as u64);
    assert_eq!(m.fleet_devices, DEVICES);
    assert_eq!(
        m.fleet_routed.iter().sum::<u64>(),
        plan.len() as u64,
        "every executed query routed to exactly one device: {:?}",
        m.fleet_routed
    );
    assert!(
        m.fleet_routed.iter().all(|&n| n > 0),
        "round-robin spreads load over all devices: {:?}",
        m.fleet_routed
    );

    // --- Single-device serial replay: same mix, admission order. ---
    let reference = UpServer::with_database(
        ServerConfig {
            workers: 1,
            queue_capacity: 256,
            devices: 1,
            arena: false,
            pipeline: PipelineMode::Off,
            ..ServerConfig::default()
        },
        fresh_db(),
    );
    let ref_sessions: Vec<_> = (0..n_sessions)
        .map(|i| {
            reference.connect(if i == n_sessions - 1 {
                Profile::PostgresLike
            } else {
                Profile::UltraPrecise
            })
        })
        .collect();
    let serial_results: Vec<QueryResult> = plan
        .iter()
        .map(|&(i, sql)| reference.query(ref_sessions[i], sql).expect("query ok"))
        .collect();
    let serial_cache = reference.metrics().cache;

    // --- Bit-exactness of everything canonical. ---
    for (k, (serial, fleet)) in serial_results.iter().zip(&fleet_results).enumerate() {
        let (i, sql) = plan[k];
        assert_identical(&format!("seq {} session {i} {sql:?}", k + 1), serial, fleet);
        assert!(serial.fleet.is_none(), "single-device replay carries no fleet report");
        let f = fleet.fleet.as_ref().expect("fleet report rides every fleet-mode result");
        assert_eq!(f.devices, DEVICES, "seq {}: fleet size", k + 1);
        assert_eq!(
            f.partition_rows.iter().sum::<u64>(),
            ROWS as u64,
            "seq {}: shards cover the table exactly once",
            k + 1
        );
        assert!(
            f.makespan_s <= f.single_device_s,
            "seq {}: sharded makespan must not exceed the single-device leg: {f:?}",
            k + 1
        );
    }
    assert_eq!(
        (fleet_cache.misses, fleet_cache.hits),
        (serial_cache.misses, serial_cache.hits),
        "aggregate cache accounting diverged: fleet {fleet_cache:?} vs serial {serial_cache:?}"
    );
}
