//! Concurrency correctness of the query service.
//!
//! The two properties the ISSUE pins down:
//!
//! 1. N threads hammering one shared server produce results bit-identical
//!    to serial execution on a private engine — decimal arithmetic stays
//!    exact under concurrency.
//! 2. The shared JIT cache compiles each distinct kernel signature at
//!    most once, no matter how the threads race.

use std::sync::Arc;
use up_engine::{ColumnType, Database, Profile, Schema, Value};
use up_num::{DecimalType, UpDecimal};
use up_server::{ServerConfig, ServerError, UpServer};

fn ty(p: u32, s: u32) -> DecimalType {
    DecimalType::new_unchecked(p, s)
}

fn rows(n: usize) -> Vec<Vec<Value>> {
    // Deterministic, sign-mixed, differently-scaled data.
    let ta = ty(12, 4);
    let tb = ty(12, 2);
    (0..n as i64)
        .map(|i| {
            let a = UpDecimal::from_scaled_i64((i * 7919 - 40_000) % 9_999_999, ta).unwrap();
            let b = UpDecimal::from_scaled_i64((i * 104_729 + 13) % 999_999, tb).unwrap();
            vec![Value::Decimal(a), Value::Decimal(b)]
        })
        .collect()
}

fn schema() -> Schema {
    Schema::new(vec![
        ("a", ColumnType::Decimal(ty(12, 4))),
        ("b", ColumnType::Decimal(ty(12, 2))),
    ])
}

const QUERIES: [&str; 4] = [
    "SELECT a + b FROM t",
    "SELECT a * b FROM t",
    "SELECT SUM(a + b) FROM t",
    "SELECT a, b FROM t WHERE a > 0 ORDER BY a DESC LIMIT 5",
];

/// Kernel-bearing expression signatures among `QUERIES`: `a + b` appears
/// twice (projection and under SUM — same signature), `a * b` once, and
/// the bare-column query compiles nothing.
const DISTINCT_SIGNATURES: u64 = 2;

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let n_rows = 64;
    let n_threads = 8;
    let reps = 4;

    // Serial reference: a private engine, one query at a time.
    let mut reference = Database::new(Profile::UltraPrecise);
    reference.create_table("t", schema());
    reference.insert_many("t", rows(n_rows)).unwrap();
    let expected: Vec<Vec<Vec<Value>>> = QUERIES
        .iter()
        .map(|q| reference.query(q).unwrap().rows)
        .collect();

    // Shared server: every thread runs every query `reps` times.
    let server = Arc::new(UpServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServerConfig::default()
    }));
    server.create_table("t", schema());
    server.insert_many("t", rows(n_rows)).unwrap();

    let handles: Vec<_> = (0..n_threads)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let session = server.connect(Profile::UltraPrecise);
                let mut got = Vec::new();
                for _ in 0..reps {
                    for q in QUERIES {
                        got.push(server.query(session, q).unwrap().rows);
                    }
                }
                server.disconnect(session);
                got
            })
        })
        .collect();

    for h in handles {
        let got = h.join().unwrap();
        for (i, rows) in got.into_iter().enumerate() {
            assert_eq!(
                rows,
                expected[i % QUERIES.len()],
                "query {:?} diverged from serial execution",
                QUERIES[i % QUERIES.len()]
            );
        }
    }

    // Shared cache: compilations never exceed distinct signatures.
    let m = server.metrics();
    assert!(
        m.cache.misses <= DISTINCT_SIGNATURES,
        "expected ≤ {DISTINCT_SIGNATURES} compilations, saw {} ({:?})",
        m.cache.misses,
        m.cache
    );
    let total = (n_threads * reps * QUERIES.len()) as u64;
    assert_eq!(m.completed, total);
    assert_eq!(m.failed, 0);
    assert_eq!(m.latency.count, total);
    assert_eq!(m.queue_depth, 0, "queue drained");
    assert_eq!(m.sessions_active, 0, "all sessions disconnected");
    assert_eq!(m.sessions_total, n_threads as u64);
}

#[test]
fn metrics_snapshot_reports_every_required_dimension() {
    let server = UpServer::new(ServerConfig { workers: 2, ..ServerConfig::default() });
    server.create_table("t", schema());
    server.insert_many("t", rows(32)).unwrap();
    let s = server.connect(Profile::UltraPrecise);
    for _ in 0..6 {
        server.query(s, "SELECT a * b + a FROM t").unwrap();
    }
    let m = server.metrics();
    // Queue depth (drained), per-query latency, cache counters, stream
    // utilization: the acceptance criteria's four dimensions.
    assert_eq!(m.queue_depth, 0);
    assert!(m.queue_max_depth >= 1);
    assert_eq!(m.latency.count, 6);
    assert!(m.latency.p50_s > 0.0 && m.latency.max_s >= m.latency.p50_s);
    assert_eq!(m.cache.misses, 1);
    assert_eq!(m.cache.hits, 5);
    assert!(m.cache.hit_rate() > 0.8);
    assert_eq!(m.streams.launches, 6);
    assert!(m.streams.utilization > 0.0 && m.streams.utilization <= 1.0);
    assert!(m.gpu_kernel_s > 0.0);
    let text = m.report();
    for needle in ["queue:", "latency:", "jit cache:", "gpu streams:", "utilization"] {
        assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
    }
}

#[test]
fn backpressure_is_deterministic_with_no_workers() {
    let server = UpServer::new(ServerConfig {
        workers: 0,
        queue_capacity: 3,
        ..ServerConfig::default()
    });
    server.create_table("t", schema());
    server.insert_many("t", rows(8)).unwrap();
    let s = server.connect(Profile::UltraPrecise);
    let mut tickets = Vec::new();
    for _ in 0..3 {
        tickets.push(server.submit(s, "SELECT a FROM t").unwrap());
    }
    for _ in 0..2 {
        match server.submit(s, "SELECT a FROM t") {
            Err(ServerError::Rejected { queue_depth, retry_after_s }) => {
                assert_eq!(queue_depth, 3);
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected rejection, got {:?}", other.map(|_| "ticket")),
        }
    }
    let m = server.metrics();
    assert_eq!(m.submitted, 3);
    assert_eq!(m.rejected, 2);
    assert_eq!(m.queue_depth, 3);
}

#[test]
fn concurrent_writes_and_reads_stay_consistent() {
    // Writers append batches while readers count; every count observed
    // must be a multiple of the batch size (writes are atomic under the
    // write lock — readers never see a half-applied batch).
    let batch = 8;
    let server = Arc::new(UpServer::new(ServerConfig {
        workers: 4,
        queue_capacity: 256,
        ..ServerConfig::default()
    }));
    server.create_table("t", schema());
    server.insert_many("t", rows(batch)).unwrap(); // seed one batch
    let writer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for _ in 0..10 {
                server.insert_many("t", rows(batch)).unwrap();
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let s = server.connect(Profile::UltraPrecise);
                for _ in 0..20 {
                    let r = server.query(s, "SELECT COUNT(*) FROM t").unwrap();
                    let Value::Int64(n) = r.rows[0][0] else {
                        panic!("expected integer count, got {:?}", r.rows[0][0])
                    };
                    assert_eq!(n % batch as i64, 0, "torn batch visible: {n}");
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    let s = server.connect(Profile::UltraPrecise);
    let r = server.query(s, "SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(88));
}
