//! Property tests for the multi-pass aggregation (§III-E2) and the
//! thread-group arithmetic (§III-E1): results must equal naive folds at
//! every TPI and device geometry, and the pass plans must obey the
//! paper's shared-memory formulas.

use proptest::prelude::*;
use up_gpusim::cgbn::{group_eval, GroupOp, Tpi};
use up_gpusim::reduce::{aggregate, plan_aggregation, AggOp};
use up_gpusim::DeviceConfig;
use up_num::{BigInt, DecimalType, UpDecimal};

fn vals(raw: &[i64], s: u32) -> (Vec<UpDecimal>, DecimalType) {
    let ty = DecimalType::new_unchecked(19, s);
    (
        raw.iter()
            .map(|&v| UpDecimal::from_scaled_i64(v, ty).expect("19 digits fit"))
            .collect(),
        ty,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_equals_naive_fold_for_every_tpi(
        raw in prop::collection::vec(any::<i32>(), 1..400),
        s in 0u32..=6,
        tpi_idx in 0usize..5,
    ) {
        let raw: Vec<i64> = raw.iter().map(|&v| v as i64).collect();
        let (values, ty) = vals(&raw, s);
        let tpi = Tpi(up_gpusim::cgbn::TPI_VALUES[tpi_idx]);
        let out_ty = ty.sum_result(values.len() as u64);
        for device in [DeviceConfig::a6000(), DeviceConfig::tiny()] {
            let run = aggregate(AggOp::Sum, &values, out_ty, tpi, &device);
            let expect: i128 = raw.iter().map(|&v| v as i128).sum();
            prop_assert_eq!(run.result.unscaled(), &BigInt::from(expect));
            prop_assert!(run.total_s > 0.0);
            // The plan covers exactly the input.
            prop_assert_eq!(run.plan.passes[0].n_in, values.len() as u64);
            prop_assert_eq!(run.plan.passes.last().unwrap().n_out, 1);
        }
    }

    #[test]
    fn min_max_equal_iterator_extremes(
        raw in prop::collection::vec(any::<i32>(), 1..200),
        s in 0u32..=4,
    ) {
        let raw: Vec<i64> = raw.iter().map(|&v| v as i64).collect();
        let (values, ty) = vals(&raw, s);
        let device = DeviceConfig::tiny();
        let min = aggregate(AggOp::Min, &values, ty, Tpi(8), &device).result;
        let max = aggregate(AggOp::Max, &values, ty, Tpi(8), &device).result;
        let want_min = *raw.iter().min().expect("non-empty");
        let want_max = *raw.iter().max().expect("non-empty");
        prop_assert_eq!(min.unscaled(), &BigInt::from(want_min));
        prop_assert_eq!(max.unscaled(), &BigInt::from(want_max));
    }

    #[test]
    fn plan_formulas_hold(n in 1u64..5_000_000, lw in 1usize..=32, tpi_idx in 0usize..5) {
        let device = DeviceConfig::a6000();
        let tpi = Tpi(up_gpusim::cgbn::TPI_VALUES[tpi_idx]);
        let plan = plan_aggregation(n, lw, tpi, &device);
        let t_max = device.max_threads_per_block as u64;
        let s = device.shared_mem_per_block as u64;
        for pass in &plan.passes {
            // §III-E2 verbatim: Ng = Tmax/TPI; nt = ⌊S/(Ng(4Lw+1))⌋.
            prop_assert_eq!(pass.ng, (t_max / tpi.0 as u64).max(1));
            prop_assert_eq!(pass.nt, (s / (pass.ng * (4 * lw as u64 + 1))).max(1));
            prop_assert_eq!(pass.n_per_block, pass.nt * pass.ng);
            prop_assert_eq!(pass.blocks, pass.n_in.div_ceil(pass.n_per_block));
            prop_assert_eq!(pass.n_out, pass.blocks);
        }
        // Passes strictly shrink to one block.
        prop_assert_eq!(plan.passes.last().unwrap().blocks, 1);
        for w in plan.passes.windows(2) {
            prop_assert!(w[1].n_in < w[0].n_in);
        }
    }

    #[test]
    fn group_arithmetic_matches_scalar_for_all_tpi(
        a in any::<i64>(),
        b in any::<i64>(),
        sa in 0u32..=5,
        sb in 0u32..=5,
        op_idx in 0usize..3,
    ) {
        let ta = DecimalType::new_unchecked(19, sa);
        let tb = DecimalType::new_unchecked(19, sb);
        let va = UpDecimal::from_scaled_i64(a >> 1, ta).expect("fits");
        let vb = UpDecimal::from_scaled_i64(b >> 1, tb).expect("fits");
        let op = [GroupOp::Add, GroupOp::Mul, GroupOp::Div][op_idx];
        prop_assume!(!(op == GroupOp::Div && vb.is_zero()));
        let expect = match op {
            GroupOp::Add => Some(va.add(&vb)),
            GroupOp::Mul => Some(va.mul(&vb)),
            GroupOp::Div => va.div(&vb).ok(),
        };
        for tpi in up_gpusim::cgbn::TPI_VALUES {
            match (group_eval(op, &va, &vb, Tpi(tpi)), &expect) {
                (Ok((got, _)), Some(want)) => {
                    prop_assert_eq!(got.cmp_value(want), std::cmp::Ordering::Equal, "tpi={}", tpi);
                }
                (Err(_), _) => {} // CGBN division restriction — allowed
                (Ok(_), None) => prop_assert!(false, "scalar failed but group succeeded"),
            }
        }
    }
}
