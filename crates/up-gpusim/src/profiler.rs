//! Nsight-Compute-style profiling report.
//!
//! §IV-A profiles `a + b` and `a × b` kernels and reports SM utilization
//! and warp occupancy ("for additions, the SM utilization is 4.14% if LEN
//! is 8 even though the warp occupancy is 100% already… As LEN increases
//! to 32, the SM utilization decreases to 2.31%… the warp occupancy
//! becomes 50%"). This module packages the same two headline metrics from
//! a priced launch so the `prof_sm_util` harness can print the paper-style
//! table.

use crate::cost::KernelTime;
use crate::exec::ExecStats;
use crate::ptx::Kernel;

/// A per-kernel profile row, mirroring the Nsight metrics quoted in §IV-A.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    /// Kernel name.
    pub name: String,
    /// Achieved warp occupancy (0..=1).
    pub occupancy: f64,
    /// SM (compute-pipe) utilization (0..=1).
    pub sm_utilization: f64,
    /// Dynamic warp-level instruction issues.
    pub warp_issues: u64,
    /// Global-memory transactions.
    pub mem_transactions: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// Divergent branches observed.
    pub divergent_branches: u64,
    /// Estimated registers per thread.
    pub regs_per_thread: u32,
    /// Compiled-tier superblocks fully lowered to closures and mem
    /// thunks (0 when the kernel has not been closure-compiled).
    pub lowered_superblocks: usize,
    /// Compiled-tier superblocks still containing interpreter fallback
    /// steps.
    pub fallback_superblocks: usize,
    /// Global-memory instructions lowered to first-class mem thunks.
    pub lowered_mem_thunks: usize,
    /// Instructions kept as interpreter fallback frames.
    pub fallback_interp_insts: usize,
}

impl KernelProfile {
    /// Assembles a profile from a launch's statistics and priced time.
    /// The lowered/fallback shape is read from the kernel's compiled
    /// artifact when one exists; profiling never forces a compile.
    pub fn collect(kernel: &Kernel, stats: &ExecStats, time: &KernelTime) -> KernelProfile {
        let (lowered_sb, fallback_sb, mem_thunks, interp) = if kernel.compiled_tier_built() {
            let cp = kernel.compiled_program();
            (
                cp.lowered_superblock_count(),
                cp.fallback_superblock_count(),
                cp.mem_inst_count(),
                cp.interp_inst_count(),
            )
        } else {
            (0, 0, 0, 0)
        };
        KernelProfile {
            name: kernel.name.clone(),
            occupancy: time.occupancy,
            sm_utilization: time.sm_utilization,
            warp_issues: stats.warp_issues,
            mem_transactions: stats.mem_transactions,
            dram_bytes: stats.dram_bytes,
            divergent_branches: stats.divergent_branches,
            regs_per_thread: kernel.hw_regs_per_thread,
            lowered_superblocks: lowered_sb,
            fallback_superblocks: fallback_sb,
            lowered_mem_thunks: mem_thunks,
            fallback_interp_insts: interp,
        }
    }

    /// One-line report, percentage formatted like the paper's quotes.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "{}: occupancy {:.0}%, SM util {:.2}%, {} warp issues, {} mem txns, {} B DRAM",
            self.name,
            self.occupancy * 100.0,
            self.sm_utilization * 100.0,
            self.warp_issues,
            self.mem_transactions,
            self.dram_bytes,
        );
        if self.lowered_superblocks + self.fallback_superblocks > 0 {
            line.push_str(&format!(
                ", {}/{} superblocks lowered ({} mem thunks, {} fallback insts)",
                self.lowered_superblocks,
                self.lowered_superblocks + self.fallback_superblocks,
                self.lowered_mem_thunks,
                self.fallback_interp_insts,
            ));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kernel_time;
    use crate::device::DeviceConfig;
    use crate::ptx::KernelBuilder;

    #[test]
    fn profile_carries_through_metrics() {
        let d = DeviceConfig::a6000();
        let k = KernelBuilder::new().finish("add_len8", 34);
        let stats = ExecStats {
            warp_issue_cycles: 1e7,
            warp_issues: 9_000_000,
            dram_bytes: 500_000_000,
            mem_transactions: 15_000_000,
            warps: 312_500,
            sample_scale: 1.0,
            ..Default::default()
        };
        let t = kernel_time(&k, &stats, &d);
        let p = KernelProfile::collect(&k, &stats, &t);
        assert_eq!(p.name, "add_len8");
        assert!(p.summary().contains("occupancy"));
        assert!(p.occupancy > 0.9); // 34 regs → full occupancy
        assert!(p.sm_utilization < 0.2); // memory-bound
        // Never compiled → no lowering shape (and no forced compile).
        assert_eq!(p.lowered_superblocks, 0);
        assert_eq!(p.fallback_superblocks, 0);
        assert!(!p.summary().contains("superblocks lowered"));
    }

    #[test]
    fn profile_reports_lowering_shape_once_compiled() {
        use crate::ptx::{Inst as I, Special};
        let d = DeviceConfig::a6000();
        let mut kb = KernelBuilder::new();
        let t = kb.reg();
        kb.push(I::MovSpecial { d: t, s: Special::TidX });
        let v = kb.reg();
        kb.push(I::LdGlobalU8 { d: v, buf: 0, addr: t });
        kb.push(I::StGlobalU8 { buf: 1, addr: t, src: v });
        let k = kb.finish("codec_row", 8);
        let _ = k.compiled_program(); // force the build, as a hot launch would
        let stats = ExecStats { warps: 1, sample_scale: 1.0, ..Default::default() };
        let t = kernel_time(&k, &stats, &d);
        let p = KernelProfile::collect(&k, &stats, &t);
        assert_eq!(p.lowered_superblocks, 1);
        assert_eq!(p.fallback_superblocks, 0);
        assert_eq!(p.lowered_mem_thunks, 2);
        assert_eq!(p.fallback_interp_insts, 0);
        assert!(p.summary().contains("1/1 superblocks lowered (2 mem thunks, 0 fallback insts)"));
    }
}
