//! Warn-once environment-knob parsing, shared by every crate in the
//! workspace.
//!
//! One contract for `UP_SIM_THREADS`, `UP_SIM_EXEC`,
//! `UP_SIM_TIER_THRESHOLD`, `UP_PIPELINE`, `UP_ARENA`, `UP_DEVICES`, and
//! the `UP_NET_*` family: the variable is read once per process (call
//! sites cache in a `OnceLock`), a valid value overrides the default,
//! and a *set but unparsable* value warns once on stderr and behaves
//! like unset — never a panic, never silently meaning something else.
//! Values are trimmed before parsing, so `UP_DEVICES=" 4 "` works.

/// Reads and parses an environment-variable knob. Returns `None` when
/// the variable is unset or invalid; invalid values additionally warn on
/// stderr. Cache the result in a `OnceLock` so each knob warns at most
/// once per process.
pub fn knob<T>(
    name: &str,
    expected: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    parse_value(name, expected, std::env::var(name).ok().as_deref(), parse)
}

/// Testable core of [`knob`]: `raw` is the variable's value (`None` when
/// unset). The raw value is trimmed before `parse` sees it; the warning
/// quotes it untrimmed so the user sees exactly what was set.
pub fn parse_value<T>(
    name: &str,
    expected: &str,
    raw: Option<&str>,
    parse: impl Fn(&str) -> Option<T>,
) -> Option<T> {
    let raw = raw?;
    let parsed = parse(raw.trim());
    if parsed.is_none() {
        eprintln!("warning: ignoring invalid {name}={raw:?} (expected {expected})");
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none_without_warning() {
        assert_eq!(parse_value("UP_SIM_THREADS", "a thread count", None, |v| v
            .parse::<usize>()
            .ok()), None);
    }

    #[test]
    fn up_sim_threads_knob() {
        let parse = |v: &str| v.parse::<usize>().ok();
        assert_eq!(parse_value("UP_SIM_THREADS", "a thread count", Some("6"), parse), Some(6));
        assert_eq!(parse_value("UP_SIM_THREADS", "a thread count", Some(" 8 "), parse), Some(8));
        assert_eq!(
            parse_value("UP_SIM_THREADS", "a thread count", Some("fourteen"), parse),
            None
        );
    }

    #[test]
    fn up_pipeline_knob() {
        use crate::pipeline::PipelineMode;
        assert_eq!(
            parse_value("UP_PIPELINE", "off | on | <depth>", Some("4"), PipelineMode::parse),
            Some(PipelineMode::On(4))
        );
        assert_eq!(
            parse_value("UP_PIPELINE", "off | on | <depth>", Some("off"), PipelineMode::parse),
            Some(PipelineMode::Off)
        );
        assert_eq!(
            parse_value("UP_PIPELINE", "off | on | <depth>", Some("bogus"), PipelineMode::parse),
            None
        );
    }

    #[test]
    fn up_sim_exec_knob() {
        use crate::decoded::ExecBackend;
        assert_eq!(
            parse_value(
                "UP_SIM_EXEC",
                "tree | decoded | compiled | auto",
                Some("compiled"),
                ExecBackend::parse
            ),
            Some(ExecBackend::Compiled)
        );
        assert_eq!(
            parse_value(
                "UP_SIM_EXEC",
                "tree | decoded | compiled | auto",
                Some("turbo"),
                ExecBackend::parse
            ),
            None
        );
    }

    #[test]
    fn up_sim_tier_threshold_knob() {
        let parse = |v: &str| v.parse::<u64>().ok();
        assert_eq!(
            parse_value("UP_SIM_TIER_THRESHOLD", "a launch count", Some("5"), parse),
            Some(5)
        );
        assert_eq!(
            parse_value("UP_SIM_TIER_THRESHOLD", "a launch count", Some("soon"), parse),
            None
        );
    }

    #[test]
    fn up_devices_knob() {
        // The parse rule `up-server` uses for `UP_DEVICES`.
        let parse = |v: &str| v.parse::<usize>().ok().filter(|&n| (1..=64).contains(&n));
        assert_eq!(parse_value("UP_DEVICES", "a device count in 1..=64", Some("4"), parse), Some(4));
        assert_eq!(parse_value("UP_DEVICES", "a device count in 1..=64", Some("0"), parse), None);
        assert_eq!(
            parse_value("UP_DEVICES", "a device count in 1..=64", Some("lots"), parse),
            None
        );
    }
}
