//! CGBN-style thread-group (multi-threading) arithmetic — §III-E1.
//!
//! UltraPrecise extends NVIDIA's Cooperative Groups Big Numbers library so
//! a *group* of `TPI` (threads-per-instance ∈ {1, 4, 8, 16, 32}) threads
//! evaluates one expression instance: operands are loaded cooperatively
//! (Listing 3), carries cross threads through ballots/shuffles, products
//! are assembled from broadcast partial products, and division uses
//! Newton–Raphson with the library's restriction `LEN/TPI ≤ TPI`.
//!
//! Functionally the group computes exactly what the single-thread kernels
//! compute (we reuse `up-num` and validate against it); what changes is
//! the *work partitioning*, which this module models explicitly: per-thread
//! instruction counts, inter-thread communication, and the coalescing
//! benefit ("the memory accesses to a value array are coalesced in a
//! thread group"). Those counts feed the same roofline model as the
//! functional executor, producing Fig. 13's shape.

use crate::device::DeviceConfig;
use crate::exec::ExecStats;
use up_num::dtype::DecimalType;
use up_num::{BigInt, Sign, UpDecimal};

/// Threads cooperating on one arithmetic instance (§III-E1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tpi(pub u32);

/// The TPI values the evaluation sweeps (Fig. 13).
pub const TPI_VALUES: [u32; 5] = [1, 4, 8, 16, 32];

impl Tpi {
    /// Validates a TPI setting (must divide the warp).
    pub fn new(tpi: u32) -> Result<Tpi, String> {
        if TPI_VALUES.contains(&tpi) {
            Ok(Tpi(tpi))
        } else {
            Err(format!("TPI must be one of {TPI_VALUES:?}, got {tpi}"))
        }
    }

    /// Words each thread reads in the cooperative load (Listing 3):
    /// `lt = ceil(Lb / (4·TPI))`.
    pub fn words_per_thread(&self, lb: usize) -> usize {
        lb.div_ceil(4 * self.0 as usize)
    }

    /// Threads that perform a full `lt`-word read; the trailing thread
    /// reads the remainder (Listing 3's branch).
    pub fn full_load_threads(&self, lb: usize) -> (usize, usize) {
        let lt_bytes = 4 * self.words_per_thread(lb);
        let full = lb / lt_bytes;
        let tail = lb % lt_bytes;
        (full, tail)
    }
}

/// The arithmetic operators Fig. 13 sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupOp {
    /// `a + b` (subtraction is "almost the same", §IV-C1).
    Add,
    /// `a × b`.
    Mul,
    /// `a ÷ b` (Newton–Raphson; restricted).
    Div,
}

/// Why a group operation cannot run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroupError {
    /// The CGBN Newton–Raphson division requires `LEN/TPI ≤ TPI`; the
    /// paper presents no data for the violating configurations ("no data
    /// is presented when executing the 4-threading kernel and LEN is 32").
    DivRestriction {
        /// Operand word length.
        len: usize,
        /// Configured TPI.
        tpi: u32,
    },
    /// Division by zero.
    DivisionByZero,
}

impl core::fmt::Display for GroupError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GroupError::DivRestriction { len, tpi } => write!(
                f,
                "CGBN division restriction violated: LEN/TPI = {}/{} > TPI",
                len, tpi
            ),
            GroupError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for GroupError {}

/// Cost of one group-operation instance, in per-thread dynamic instructions
/// and warp-level communication events.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroupCost {
    /// Dynamic instructions executed by each thread of the group (lockstep
    /// maximum over lanes).
    pub insts_per_thread: f64,
    /// Warp shuffle reads (inter-thread word movement).
    pub shuffles: f64,
    /// Warp ballots (carry/sign resolution rounds).
    pub ballots: f64,
    /// Compact bytes read from global memory.
    pub bytes_read: u64,
    /// Compact bytes written to global memory.
    pub bytes_written: u64,
}

impl GroupCost {
    fn merge(&mut self, o: GroupCost) {
        self.insts_per_thread += o.insts_per_thread;
        self.shuffles += o.shuffles;
        self.ballots += o.ballots;
        self.bytes_read += o.bytes_read;
        self.bytes_written += o.bytes_written;
    }
}

/// Executes one group arithmetic instance functionally (bit-exact result)
/// and returns the cost model's view of the work.
///
/// `a` and `b` are full operand values; `tpi` controls the modeled
/// partitioning only — results are independent of it, which the tests
/// assert (lockstep semantics).
pub fn group_eval(
    op: GroupOp,
    a: &UpDecimal,
    b: &UpDecimal,
    tpi: Tpi,
) -> Result<(UpDecimal, GroupCost), GroupError> {
    let mut cost = GroupCost::default();
    cost.merge(load_cost(a.dtype(), tpi));
    cost.merge(load_cost(b.dtype(), tpi));

    // Signs are shared among group threads (§III-E1): one ballot each.
    cost.ballots += 2.0;
    cost.insts_per_thread += 4.0;

    let result = match op {
        GroupOp::Add => {
            let r = a.add(b);
            cost.merge(add_cost(a.dtype(), b.dtype(), tpi));
            r
        }
        GroupOp::Mul => {
            let r = a.mul(b);
            cost.merge(mul_cost(a.dtype(), b.dtype(), tpi));
            r
        }
        GroupOp::Div => {
            let len = a.dtype().lw().max(b.dtype().lw());
            if len as u32 > tpi.0 * tpi.0 {
                return Err(GroupError::DivRestriction { len, tpi: tpi.0 });
            }
            let r = a.div(b).map_err(|_| GroupError::DivisionByZero)?;
            cost.merge(div_cost(a.dtype(), b.dtype(), tpi));
            r
        }
    };
    cost.merge(store_cost(result.dtype(), tpi));
    Ok((result, cost))
}

/// Cooperative-load cost (Listing 3): each thread reads `lt` words of the
/// compact array; neighboring data goes to one thread to minimize carry
/// communication.
fn load_cost(ty: DecimalType, tpi: Tpi) -> GroupCost {
    let lb = ty.lb();
    let lt = tpi.words_per_thread(lb);
    GroupCost {
        // address computation + lt word loads + expansion masking
        insts_per_thread: 4.0 + 2.0 * lt as f64,
        shuffles: 0.0,
        ballots: 0.0,
        bytes_read: lb as u64,
        bytes_written: 0,
    }
}

fn store_cost(ty: DecimalType, tpi: Tpi) -> GroupCost {
    let lb = ty.lb();
    let lt = tpi.words_per_thread(lb);
    GroupCost {
        insts_per_thread: 3.0 + 2.0 * lt as f64,
        shuffles: 0.0,
        ballots: 0.0,
        bytes_read: 0,
        bytes_written: lb as u64,
    }
}

/// Group addition: per-thread `addc` chains over `lt` words plus one
/// ballot-based carry-resolution round (CGBN's scheme), plus the alignment
/// multiply when scales differ.
fn add_cost(t1: DecimalType, t2: DecimalType, tpi: Tpi) -> GroupCost {
    let out = t1.add_result(&t2);
    let lw = out.lw();
    let lt = lw.div_ceil(tpi.0 as usize);
    let mut c = GroupCost {
        insts_per_thread: 2.0 * lt as f64 + 6.0,
        shuffles: if tpi.0 > 1 { 1.0 } else { 0.0 },
        ballots: if tpi.0 > 1 { 1.0 } else { 0.0 },
        bytes_read: 0,
        bytes_written: 0,
    };
    if t1.scale != t2.scale {
        // Alignment = multiply by a power of ten (§II-B).
        let align = mul_cost(t1, t2, tpi);
        c.insts_per_thread += align.insts_per_thread * 0.5; // one operand only
        c.shuffles += align.shuffles * 0.5;
    }
    c
}

/// Group multiplication: every thread broadcasts its words to the group
/// (shuffles) while each thread accumulates the partial products of its
/// output columns — O(Lw²/TPI) multiply-adds per thread.
fn mul_cost(t1: DecimalType, t2: DecimalType, tpi: Tpi) -> GroupCost {
    let (l1, l2) = (t1.lw() as f64, t2.lw() as f64);
    let tpi_f = tpi.0 as f64;
    GroupCost {
        insts_per_thread: (l1 * l2 * 2.0) / tpi_f + 8.0,
        shuffles: if tpi.0 > 1 { l1.max(l2) * tpi_f.log2() } else { 0.0 },
        ballots: if tpi.0 > 1 { 2.0 } else { 0.0 },
        bytes_read: 0,
        bytes_written: 0,
    }
}

/// Group Newton–Raphson division (§IV-C1): ~log₂(32·Lw) reciprocal
/// iterations, each one group multiplication.
fn div_cost(t1: DecimalType, t2: DecimalType, tpi: Tpi) -> GroupCost {
    let iters = (32.0 * t1.lw().max(t2.lw()) as f64).log2().ceil() + 2.0;
    let per_mul = mul_cost(t1, t2, tpi);
    GroupCost {
        insts_per_thread: per_mul.insts_per_thread * iters + 24.0,
        shuffles: per_mul.shuffles * iters,
        ballots: per_mul.ballots * iters + 2.0,
        bytes_read: 0,
        bytes_written: 0,
    }
}

/// Cost of the *single-thread* (TPI = 1) binary-search division the paper
/// uses outside CGBN (§III-C2): the `bfind` range bracketing bounds the
/// search to the quotient's bit length, and every probe is a full
/// multiply-and-compare at the dividend's width.
pub fn single_thread_div_cost(t1: DecimalType, t2: DecimalType) -> GroupCost {
    // §III-B3: quotient digits ≈ (p1−s1)−(p2−s2)+1 integer + s1+4 fraction.
    let int_digits = (t1.int_digits() as i64 - t2.int_digits() as i64 + 1).max(1) as f64;
    let q_digits = int_digits + t1.scale as f64 + 4.0;
    let probes = q_digits * crate::LOG2_10_APPROX + 2.0;
    // Boosted dividend width: t1 plus 10^(s2+4).
    let wide = t1.lw() as f64 + (t2.scale + 4) as f64 / 9.0;
    let mul_and_cmp = 6.0 * wide * t2.lw() as f64 + 2.0 * wide;
    GroupCost {
        insts_per_thread: probes * mul_and_cmp + 48.0,
        shuffles: 0.0,
        ballots: 0.0,
        bytes_read: 0,
        bytes_written: 0,
    }
}

/// Converts `n` instances of a group operation into launch statistics for
/// the roofline pricer: `n·TPI` threads, coalesced bytes, communication
/// events priced as shuffle/ballot issues.
pub fn op_stats(cost: &GroupCost, n: u64, tpi: Tpi, device: &DeviceConfig) -> ExecStats {
    let threads = n * tpi.0 as u64;
    let warps = threads.div_ceil(device.warp_size as u64).max(1);
    let warp_issue_cycles =
        (cost.insts_per_thread + 2.0 * (cost.shuffles + cost.ballots)) * warps as f64;
    // Coalescing: a thread group reads contiguous bytes, so sectors are
    // bytes/32 when TPI > 1. The single-thread kernel strides by Lb per
    // lane and re-touches sectors once per word pass; model that as an
    // uncoalesced penalty capped by the L2's ability to merge (×4).
    let bytes = (cost.bytes_read + cost.bytes_written) * n;
    let penalty = if tpi.0 == 1 { 2.0 } else { 1.0 };
    let dram_bytes = (bytes as f64 * penalty) as u64;
    ExecStats {
        thread_insts: (cost.insts_per_thread * threads as f64) as u64,
        warp_issue_cycles,
        warp_issues: warp_issue_cycles as u64,
        mem_transactions: dram_bytes / 32,
        dram_bytes,
        divergent_branches: 0,
        warps,
        blocks: warps.div_ceil(8),
        sample_scale: 1.0,
    }
}

/// Estimated hardware registers per thread for a group kernel: each thread
/// holds `lt` words of up to three operands plus bookkeeping. Feeds the
/// occupancy model exactly like the single-thread kernels.
pub fn group_hw_regs(lw: usize, tpi: Tpi) -> u32 {
    let lt = lw.div_ceil(tpi.0 as usize) as u32;
    (16 + 7 * lt).min(255)
}

/// A convenience wrapper evaluating a whole column pairwise (used by tests
/// and the Fig. 13 harness): returns results plus aggregate cost.
pub fn eval_column(
    op: GroupOp,
    a: &[UpDecimal],
    b: &[UpDecimal],
    tpi: Tpi,
) -> Result<(Vec<UpDecimal>, GroupCost), GroupError> {
    assert_eq!(a.len(), b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut total = GroupCost::default();
    for (x, y) in a.iter().zip(b) {
        let (r, c) = group_eval(op, x, y, tpi)?;
        out.push(r);
        total.merge(c);
    }
    Ok((out, total))
}

/// Builds a signed decimal from raw parts — test helper for group inputs.
pub fn decimal_from_words(words: &[u32], negative: bool, ty: DecimalType) -> UpDecimal {
    let sign = if words.iter().all(|&w| w == 0) {
        Sign::Zero
    } else if negative {
        Sign::Minus
    } else {
        Sign::Plus
    };
    UpDecimal::from_parts_unchecked(BigInt::from_sign_mag(sign, words.to_vec()), ty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn listing3_load_partitioning() {
        // DECIMAL(64, 32): Lb = 27 bytes; TPI = 4 → lt = 2 words; threads
        // 0..2 load 8 bytes each, thread 3 loads 3 bytes.
        let t = ty(64, 32);
        assert_eq!(t.lb(), 27);
        let tpi = Tpi::new(4).unwrap();
        assert_eq!(tpi.words_per_thread(27), 2);
        assert_eq!(tpi.full_load_threads(27), (3, 3));
    }

    #[test]
    fn results_are_independent_of_tpi() {
        let ta = ty(38, 10);
        let tb = ty(38, 4);
        let a = UpDecimal::parse("-1234567890.0123456789", ta).unwrap();
        let b = UpDecimal::parse("987654321.4321", tb).unwrap();
        for op in [GroupOp::Add, GroupOp::Mul, GroupOp::Div] {
            let baseline = group_eval(op, &a, &b, Tpi(1)).map(|(r, _)| r);
            for tpi in [4, 8, 16, 32] {
                let r = group_eval(op, &a, &b, Tpi(tpi)).map(|(r, _)| r);
                match (&baseline, &r) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y, "op {op:?} tpi {tpi}"),
                    (Err(_), _) | (_, Err(_)) => {} // restriction may differ per TPI
                }
            }
        }
    }

    #[test]
    fn group_add_matches_scalar_reference() {
        let t = ty(18, 2);
        let a = UpDecimal::parse("123456.78", t).unwrap();
        let b = UpDecimal::parse("-99999999.99", t).unwrap();
        let (r, _) = group_eval(GroupOp::Add, &a, &b, Tpi(8)).unwrap();
        assert_eq!(r, a.add(&b));
    }

    #[test]
    fn div_restriction_matches_paper() {
        // LEN 32 with TPI 4: 32/4 = 8 > 4 → rejected (Fig. 13's gap).
        let t = ty(307, 10);
        assert_eq!(t.lw(), 32);
        let a = UpDecimal::parse("5", t).unwrap();
        let b = UpDecimal::parse("3", t).unwrap();
        let err = group_eval(GroupOp::Div, &a, &b, Tpi(4)).unwrap_err();
        assert!(matches!(err, GroupError::DivRestriction { len: 32, tpi: 4 }));
        // TPI 8: 32/8 = 4 ≤ 8 → allowed.
        assert!(group_eval(GroupOp::Div, &a, &b, Tpi(8)).is_ok());
        // TPI 1 is definitionally the non-CGBN path; LEN 2 fits 1·1? No:
        // 2 > 1, so group div at TPI 1 only supports LEN 1 — the harness
        // uses the binary-search cost for TPI 1 instead.
    }

    #[test]
    fn work_per_thread_shrinks_with_tpi() {
        let t = ty(307, 10); // LEN 32
        let c1 = mul_cost(t, t, Tpi(1));
        let c8 = mul_cost(t, t, Tpi(8));
        assert!(c8.insts_per_thread < c1.insts_per_thread / 4.0);
        // but communication appears
        assert_eq!(c1.shuffles, 0.0);
        assert!(c8.shuffles > 0.0);
    }

    #[test]
    fn fig13_shape_addition() {
        // At LEN 32, 8-threading beats single-threading; at LEN 4 they are
        // comparable (§IV-C1).
        let device = DeviceConfig::a6000();
        let n = 10_000_000u64;
        let time = |lw: usize, tpi: u32| {
            let p = up_num::max_precision_for_lw(lw);
            let t = ty(p, 10);
            let a = UpDecimal::parse("1.0000000001", ty(12, 10)).unwrap().cast(t).unwrap();
            let (_, cost) = group_eval(GroupOp::Add, &a, &a, Tpi(tpi)).unwrap();
            let stats = op_stats(&cost, n, Tpi(tpi), &device);
            let k = crate::ptx::KernelBuilder::new().finish("t", group_hw_regs(lw, Tpi(tpi)));
            crate::cost::kernel_time(&k, &stats, &device).total_s
        };
        let t1_len32 = time(32, 1);
        let t8_len32 = time(32, 8);
        assert!(
            t8_len32 < t1_len32 * 0.8,
            "8-threading should win at LEN 32: {t8_len32} vs {t1_len32}"
        );
        let t1_len4 = time(4, 1);
        let t4_len4 = time(4, 4);
        assert!(
            (0.4..=2.5).contains(&(t4_len4 / t1_len4)),
            "comparable at LEN 4: {t4_len4} vs {t1_len4}"
        );
    }

    #[test]
    fn eval_column_aggregates_cost() {
        let t = ty(18, 2);
        let a: Vec<_> = (1..=10)
            .map(|i| UpDecimal::from_scaled_i64(i * 100, t).unwrap())
            .collect();
        let (out, cost) = eval_column(GroupOp::Add, &a, &a, Tpi(4)).unwrap();
        assert_eq!(out.len(), 10);
        assert_eq!(out[4], a[4].add(&a[4]));
        assert_eq!(cost.bytes_read, 2 * 10 * t.lb() as u64);
    }
}
