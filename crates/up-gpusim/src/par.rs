//! Host-side parallelism control for the functional simulator.
//!
//! The simulator executes independent blocks on multiple host cores (see
//! [`crate::exec`]). Two pieces live here:
//!
//! * [`SimParallelism`] — the user-facing knob (`serial` | `threads(N)` |
//!   `auto`), carried by execution profiles and the server config.
//! * A **shared global worker budget**: every launch draws its extra
//!   worker threads from one process-wide token pool sized to the host's
//!   core count. Concurrent launches (e.g. `up-server` query workers that
//!   each run kernels) therefore share the machine instead of multiplying
//!   thread counts — the composition property a shared rayon pool would
//!   give, without nesting pools.
//!
//! `Auto` never oversubscribes: a launch runs on the caller thread plus
//! however many tokens it can get. An explicit `Threads(n)` is a demand
//! and always uses `n` workers (it still draws tokens so concurrent
//! `Auto` launches back off), which keeps the parallel code path
//! exercised even on small machines.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::OnceLock;

/// How many host threads a simulated launch may use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SimParallelism {
    /// Single-threaded reference mode: blocks run in index order on the
    /// calling thread, writing straight into [`crate::GlobalMem`].
    Serial,
    /// Exactly this many worker threads (including the caller).
    Threads(u32),
    /// Caller plus as many workers as the shared global budget allows,
    /// up to the host's core count (overridable via the
    /// `UP_SIM_THREADS` environment variable).
    #[default]
    Auto,
}

impl SimParallelism {
    /// The worker count this knob aims for (≥ 1, including the caller).
    pub fn worker_target(self) -> usize {
        match self {
            SimParallelism::Serial => 1,
            SimParallelism::Threads(n) => n.max(1) as usize,
            SimParallelism::Auto => auto_threads(),
        }
    }

    /// Parses `serial`, `auto`, or a thread count (for CLI flags).
    pub fn parse(s: &str) -> Option<SimParallelism> {
        match s {
            "serial" => Some(SimParallelism::Serial),
            "auto" => Some(SimParallelism::Auto),
            n => n.parse::<u32>().ok().map(SimParallelism::Threads),
        }
    }
}

impl std::fmt::Display for SimParallelism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimParallelism::Serial => write!(f, "serial"),
            SimParallelism::Threads(n) => write!(f, "threads({n})"),
            SimParallelism::Auto => write!(f, "auto"),
        }
    }
}

/// Host core count, honoring the `UP_SIM_THREADS` override (read once;
/// warn-once parsing via [`crate::env::knob`]).
pub fn auto_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        crate::env::knob("UP_SIM_THREADS", "a thread count", |v| v.parse::<usize>().ok())
            .map_or_else(host_cores, |n| n.max(1))
    })
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The process-wide budget of *extra* worker threads (the caller thread
/// of each launch is free). Sized to cores − 1 so the total number of
/// running simulator threads across all concurrent launches stays at the
/// core count.
fn extra_budget() -> &'static AtomicIsize {
    static POOL: OnceLock<AtomicIsize> = OnceLock::new();
    POOL.get_or_init(|| AtomicIsize::new(auto_threads() as isize - 1))
}

/// Tokens for extra worker threads, returned to the budget on drop.
pub struct WorkerTokens {
    granted: usize,
}

impl WorkerTokens {
    /// Extra workers actually granted.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for WorkerTokens {
    fn drop(&mut self) {
        if self.granted > 0 {
            extra_budget().fetch_add(self.granted as isize, Ordering::Release);
        }
    }
}

/// Takes up to `wanted` extra-worker tokens from the shared budget
/// (non-blocking — a saturated budget simply grants fewer).
pub fn acquire_extra(wanted: usize) -> WorkerTokens {
    if wanted == 0 {
        return WorkerTokens { granted: 0 };
    }
    let pool = extra_budget();
    let mut cur = pool.load(Ordering::Acquire);
    loop {
        let take = cur.clamp(0, wanted as isize);
        if take == 0 {
            return WorkerTokens { granted: 0 };
        }
        match pool.compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return WorkerTokens { granted: take as usize },
            Err(now) => cur = now,
        }
    }
}

/// A fast, non-cryptographic hasher (FxHash-style multiply-xor) for the
/// executor's hot per-warp sector sets and per-block write journals —
/// SipHash dominates profile time there.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
#[derive(Clone, Copy, Default)]
pub struct FxBuildHasher;

impl std::hash::BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parses_and_displays() {
        assert_eq!(SimParallelism::parse("serial"), Some(SimParallelism::Serial));
        assert_eq!(SimParallelism::parse("auto"), Some(SimParallelism::Auto));
        assert_eq!(SimParallelism::parse("6"), Some(SimParallelism::Threads(6)));
        assert_eq!(SimParallelism::parse("bogus"), None);
        assert_eq!(SimParallelism::Threads(6).to_string(), "threads(6)");
        assert_eq!(SimParallelism::Serial.worker_target(), 1);
        assert_eq!(SimParallelism::Threads(0).worker_target(), 1);
        assert!(SimParallelism::Auto.worker_target() >= 1);
    }

    #[test]
    fn budget_tokens_come_back() {
        let before = extra_budget().load(Ordering::Acquire);
        {
            let t = acquire_extra(usize::MAX / 2);
            assert_eq!(t.granted() as isize, before.max(0));
            let empty = acquire_extra(4);
            assert_eq!(empty.granted(), 0);
        }
        assert_eq!(extra_budget().load(Ordering::Acquire), before);
    }

    #[test]
    fn fx_hash_distinguishes_nearby_keys() {
        use std::hash::{BuildHasher, Hash};
        let bh = FxBuildHasher;
        let h = |k: (u8, u32)| {
            let mut hasher = bh.build_hasher();
            k.hash(&mut hasher);
            std::hash::Hasher::finish(&hasher)
        };
        assert_ne!(h((0, 1)), h((0, 2)));
        assert_ne!(h((0, 1)), h((1, 1)));
    }
}
