//! Kernel disassembly: renders the IR as PTX-flavoured assembly text.
//!
//! The paper's framework emits CUDA C++ with inline PTX (`asm volatile
//! ("add.cc.u32 %0, %1, %2;" …)`, Listing 2). Our JIT emits the IR of
//! [`crate::ptx`] directly; this module pretty-prints that IR in PTX
//! syntax so generated kernels can be inspected, diffed, and golden-
//! tested the way a real code generator's output would be.

use crate::ptx::{AddrForm, CmpOp, Inst, Kernel, Special, Stmt};
use core::fmt::Write as _;

/// Renders a kernel as PTX-flavoured text.
pub fn disassemble(kernel: &Kernel) -> String {
    render_kernel(kernel, &mut |_| None)
}

/// Renders a kernel like [`disassemble`], annotating every global-memory
/// access with the compiled tier's affine-address analysis result —
/// `; addr base+gid*3` when the address row is proven lane-affine, `;
/// addr unknown` otherwise. This is the metadata the mem-thunk lowering
/// uses to pick the warp-wide bulk fast path, surfaced for inspection
/// and golden tests.
pub fn disassemble_with_addr_forms(kernel: &Kernel) -> String {
    let forms = crate::compiled::addr_forms(kernel);
    // The decoded program flattens the tree in statement order (If arms
    // then-before-else, While condition-before-body), so the filtered
    // per-mem-op form sequence lines up with the tree walk below.
    let prog = kernel.decoded_program();
    let mut mem_forms = prog
        .ops()
        .iter()
        .zip(forms)
        .filter_map(|(op, f)| match op {
            crate::decoded::Op::I { dop, .. } if dop.mem_ref().is_some() => Some(f),
            _ => None,
        })
        .collect::<Vec<_>>()
        .into_iter();
    render_kernel(kernel, &mut |i| {
        is_global_mem(i).then(|| {
            let form = mem_forms.next().unwrap_or(AddrForm::Unknown);
            format!("  ; addr {form}")
        })
    })
}

fn is_global_mem(i: &Inst) -> bool {
    matches!(
        i,
        Inst::LdGlobal { .. } | Inst::LdGlobalU8 { .. } | Inst::StGlobal { .. } | Inst::StGlobalU8 { .. }
    )
}

fn render_kernel(kernel: &Kernel, ann: &mut dyn FnMut(&Inst) -> Option<String>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kernel {}  (regs/thread est. {}, {} virtual regs, {} preds, {} B smem)",
        kernel.name, kernel.hw_regs_per_thread, kernel.num_regs, kernel.num_preds, kernel.smem_bytes
    );
    let _ = writeln!(out, ".visible .entry {}()", kernel.name);
    let _ = writeln!(out, "{{");
    render_stmts(&kernel.body, 1, &mut out, ann);
    let _ = writeln!(out, "}}");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn render_stmts(
    stmts: &[Stmt],
    depth: usize,
    out: &mut String,
    ann: &mut dyn FnMut(&Inst) -> Option<String>,
) {
    for s in stmts {
        match s {
            Stmt::I(i) => {
                indent(depth, out);
                out.push_str(&render_inst(i));
                if let Some(note) = ann(i) {
                    out.push_str(&note);
                }
                out.push('\n');
            }
            Stmt::If { p, then_, else_ } => {
                indent(depth, out);
                let _ = writeln!(out, "@%p{p} {{");
                render_stmts(then_, depth + 1, out, ann);
                if else_.is_empty() {
                    indent(depth, out);
                    out.push_str("}\n");
                } else {
                    indent(depth, out);
                    out.push_str("} @!%p ");
                    let _ = writeln!(out, "{{");
                    render_stmts(else_, depth + 1, out, ann);
                    indent(depth, out);
                    out.push_str("}\n");
                }
            }
            Stmt::While { p, cond, body, max_iter } => {
                indent(depth, out);
                let _ = writeln!(out, "while %p{p} (max_iter {max_iter}) {{");
                indent(depth + 1, out);
                out.push_str("// condition:\n");
                render_stmts(cond, depth + 1, out, ann);
                indent(depth + 1, out);
                out.push_str("// body:\n");
                render_stmts(body, depth + 1, out, ann);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
    }
}

fn cmp_suffix(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn special_name(s: Special) -> &'static str {
    match s {
        Special::TidX => "%tid.x",
        Special::CtaIdX => "%ctaid.x",
        Special::NTidX => "%ntid.x",
        Special::NCtaIdX => "%nctaid.x",
    }
}

/// Renders one instruction in PTX syntax.
pub fn render_inst(i: &Inst) -> String {
    match i {
        Inst::MovImm { d, imm } => format!("mov.u32         %r{d}, {imm};"),
        Inst::Mov { d, a } => format!("mov.u32         %r{d}, %r{a};"),
        Inst::MovSpecial { d, s } => format!("mov.u32         %r{d}, {};", special_name(*s)),
        Inst::Add { d, a, b } => format!("add.u32         %r{d}, %r{a}, %r{b};"),
        Inst::AddCC { d, a, b } => format!("add.cc.u32      %r{d}, %r{a}, %r{b};"),
        Inst::AddC { d, a, b } => format!("addc.cc.u32     %r{d}, %r{a}, %r{b};"),
        Inst::Sub { d, a, b } => format!("sub.u32         %r{d}, %r{a}, %r{b};"),
        Inst::SubCC { d, a, b } => format!("sub.cc.u32      %r{d}, %r{a}, %r{b};"),
        Inst::SubC { d, a, b } => format!("subc.cc.u32     %r{d}, %r{a}, %r{b};"),
        Inst::MulLo { d, a, b } => format!("mul.lo.u32      %r{d}, %r{a}, %r{b};"),
        Inst::MulHi { d, a, b } => format!("mul.hi.u32      %r{d}, %r{a}, %r{b};"),
        Inst::MadLoCC { d, a, b, c } => {
            format!("mad.lo.cc.u32   %r{d}, %r{a}, %r{b}, %r{c};")
        }
        Inst::MadHiC { d, a, b, c } => {
            format!("madc.hi.u32     %r{d}, %r{a}, %r{b}, %r{c};")
        }
        Inst::Div { d, a, b } => format!("div.u32         %r{d}, %r{a}, %r{b};"),
        Inst::Rem { d, a, b } => format!("rem.u32         %r{d}, %r{a}, %r{b};"),
        Inst::Div64 { dlo, dhi, alo, ahi, blo, bhi } => format!(
            "div.u64         {{%r{dlo},%r{dhi}}}, {{%r{alo},%r{ahi}}}, {{%r{blo},%r{bhi}}};"
        ),
        Inst::Rem64 { dlo, dhi, alo, ahi, blo, bhi } => format!(
            "rem.u64         {{%r{dlo},%r{dhi}}}, {{%r{alo},%r{ahi}}}, {{%r{blo},%r{bhi}}};"
        ),
        Inst::DivBig { d, dn, a, an, b, bn } => format!(
            "call div_big    %r{d}..{}, %r{a}..{}, %r{b}..{}; // §III-C2 binary search",
            *d as u32 + *dn as u32 - 1,
            *a as u32 + *an as u32 - 1,
            *b as u32 + *bn as u32 - 1
        ),
        Inst::RemBig { d, dn, a, an, b, bn } => format!(
            "call rem_big    %r{d}..{}, %r{a}..{}, %r{b}..{};",
            *d as u32 + *dn as u32 - 1,
            *a as u32 + *an as u32 - 1,
            *b as u32 + *bn as u32 - 1
        ),
        Inst::Bfind { d, a } => format!("bfind.u32       %r{d}, %r{a};"),
        Inst::Shl { d, a, b } => format!("shl.b32         %r{d}, %r{a}, %r{b};"),
        Inst::Shr { d, a, b } => format!("shr.u32         %r{d}, %r{a}, %r{b};"),
        Inst::And { d, a, b } => format!("and.b32         %r{d}, %r{a}, %r{b};"),
        Inst::Or { d, a, b } => format!("or.b32          %r{d}, %r{a}, %r{b};"),
        Inst::Xor { d, a, b } => format!("xor.b32         %r{d}, %r{a}, %r{b};"),
        Inst::SetP { p, op, a, b } => {
            format!("setp.{}.u32     %p{p}, %r{a}, %r{b};", cmp_suffix(*op))
        }
        Inst::SetPImm { p, op, a, imm } => {
            format!("setp.{}.u32     %p{p}, %r{a}, {imm};", cmp_suffix(*op))
        }
        Inst::PAnd { p, a, b } => format!("and.pred        %p{p}, %p{a}, %p{b};"),
        Inst::PNot { p, a } => format!("not.pred        %p{p}, %p{a};"),
        Inst::Selp { d, a, b, p } => format!("selp.b32        %r{d}, %r{a}, %r{b}, %p{p};"),
        Inst::LdGlobal { d, buf, addr } => {
            format!("ld.global.u32   %r{d}, [buf{buf} + %r{addr}];")
        }
        Inst::LdGlobalU8 { d, buf, addr } => {
            format!("ld.global.u8    %r{d}, [buf{buf} + %r{addr}];")
        }
        Inst::StGlobal { buf, addr, src } => {
            format!("st.global.u32   [buf{buf} + %r{addr}], %r{src};")
        }
        Inst::StGlobalU8 { buf, addr, src } => {
            format!("st.global.u8    [buf{buf} + %r{addr}], %r{src};")
        }
        Inst::LdShared { d, addr } => format!("ld.shared.u32   %r{d}, [%r{addr}];"),
        Inst::StShared { addr, src } => format!("st.shared.u32   [%r{addr}], %r{src};"),
        Inst::LdParam { d, idx } => format!("ld.param.u32    %r{d}, [param{idx}];"),
        Inst::BarSync => "bar.sync        0;".to_string(),
        Inst::ShflIdx { d, a, lane } => {
            format!("shfl.sync.idx   %r{d}, %r{a}, %r{lane};")
        }
        Inst::Ballot { d, p } => format!("vote.sync.ballot %r{d}, %p{p};"),
    }
}

/// Static instruction histogram of a kernel — handy for asserting that an
/// optimization removed what it promised to remove.
pub fn histogram(kernel: &Kernel) -> std::collections::BTreeMap<&'static str, usize> {
    let mut h = std::collections::BTreeMap::new();
    fn walk(stmts: &[Stmt], h: &mut std::collections::BTreeMap<&'static str, usize>) {
        for s in stmts {
            match s {
                Stmt::I(i) => {
                    *h.entry(mnemonic(i)).or_insert(0) += 1;
                }
                Stmt::If { then_, else_, .. } => {
                    *h.entry("branch").or_insert(0) += 1;
                    walk(then_, h);
                    walk(else_, h);
                }
                Stmt::While { cond, body, .. } => {
                    *h.entry("loop").or_insert(0) += 1;
                    walk(cond, h);
                    walk(body, h);
                }
            }
        }
    }
    walk(&kernel.body, &mut h);
    h
}

fn mnemonic(i: &Inst) -> &'static str {
    match i {
        Inst::MovImm { .. } | Inst::Mov { .. } | Inst::MovSpecial { .. } => "mov",
        Inst::Add { .. } => "add",
        Inst::AddCC { .. } => "add.cc",
        Inst::AddC { .. } => "addc.cc",
        Inst::Sub { .. } => "sub",
        Inst::SubCC { .. } => "sub.cc",
        Inst::SubC { .. } => "subc.cc",
        Inst::MulLo { .. } => "mul.lo",
        Inst::MulHi { .. } => "mul.hi",
        Inst::MadLoCC { .. } => "mad.lo.cc",
        Inst::MadHiC { .. } => "madc.hi",
        Inst::Div { .. } | Inst::Div64 { .. } => "div",
        Inst::Rem { .. } | Inst::Rem64 { .. } => "rem",
        Inst::DivBig { .. } => "div_big",
        Inst::RemBig { .. } => "rem_big",
        Inst::Bfind { .. } => "bfind",
        Inst::Shl { .. } | Inst::Shr { .. } => "shift",
        Inst::And { .. } | Inst::Or { .. } | Inst::Xor { .. } => "logic",
        Inst::SetP { .. } | Inst::SetPImm { .. } | Inst::PAnd { .. } | Inst::PNot { .. } => "setp",
        Inst::Selp { .. } => "selp",
        Inst::LdGlobal { .. } | Inst::LdGlobalU8 { .. } => "ld.global",
        Inst::StGlobal { .. } | Inst::StGlobalU8 { .. } => "st.global",
        Inst::LdShared { .. } | Inst::StShared { .. } => "shared",
        Inst::LdParam { .. } => "ld.param",
        Inst::BarSync => "bar.sync",
        Inst::ShflIdx { .. } => "shfl",
        Inst::Ballot { .. } => "vote",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptx::{Inst as I, KernelBuilder};

    #[test]
    fn renders_listing2_style_carry_chain() {
        let mut kb = KernelBuilder::new();
        let a = kb.reg();
        let b = kb.reg();
        let d = kb.reg();
        kb.push(I::AddCC { d, a, b });
        kb.push(I::AddC { d, a, b });
        let k = kb.finish("add_chain", 16);
        let text = disassemble(&k);
        assert!(text.contains("add.cc.u32      %r2, %r0, %r1;"), "{text}");
        assert!(text.contains("addc.cc.u32     %r2, %r0, %r1;"), "{text}");
        assert!(text.contains(".visible .entry add_chain()"));
    }

    #[test]
    fn renders_control_flow() {
        let mut kb = KernelBuilder::new();
        let p = kb.pred();
        let r = kb.reg();
        kb.push(I::SetPImm { p, op: CmpOp::Lt, a: r, imm: 10 });
        let then_ = kb.block(|b| b.push(I::MovImm { d: r, imm: 1 }));
        let else_ = kb.block(|b| b.push(I::MovImm { d: r, imm: 2 }));
        kb.if_(p, then_, else_);
        let k = kb.finish("branchy", 16);
        let text = disassemble(&k);
        assert!(text.contains("setp.lt.u32"));
        assert!(text.contains("@%p0 {"));
    }

    #[test]
    fn histogram_counts() {
        let mut kb = KernelBuilder::new();
        let r = kb.reg();
        kb.push(I::MovImm { d: r, imm: 0 });
        kb.push(I::AddCC { d: r, a: r, b: r });
        kb.push(I::AddC { d: r, a: r, b: r });
        kb.push(I::AddC { d: r, a: r, b: r });
        let k = kb.finish("h", 16);
        let h = histogram(&k);
        assert_eq!(h.get("mov"), Some(&1));
        assert_eq!(h.get("add.cc"), Some(&1));
        assert_eq!(h.get("addc.cc"), Some(&2));
    }

    #[test]
    fn annotated_listing_marks_affine_addresses() {
        let mut kb = KernelBuilder::new();
        let t = kb.reg();
        kb.push(I::MovSpecial { d: t, s: Special::TidX });
        let lb = kb.reg();
        kb.push(I::MovImm { d: lb, imm: 3 });
        let addr = kb.reg();
        kb.push(I::MulLo { d: addr, a: t, b: lb });
        let v = kb.reg();
        kb.push(I::LdGlobalU8 { d: v, buf: 0, addr });
        kb.push(I::StGlobalU8 { buf: 1, addr, src: v });
        let scr = kb.reg();
        kb.push(I::LdGlobal { d: scr, buf: 0, addr: t });
        kb.push(I::LdGlobalU8 { d: v, buf: 1, addr: scr });
        let k = kb.finish("annotated", 8);
        let text = disassemble_with_addr_forms(&k);
        assert!(text.contains("; addr base+gid*3"), "{text}");
        assert!(text.contains("; addr base+gid*1"), "{text}");
        assert!(text.contains("; addr unknown"), "{text}");
        // The plain listing stays annotation-free.
        assert!(!disassemble(&k).contains("; addr"), "plain listing must not change");
    }

    #[test]
    fn every_instruction_renders() {
        // Exercise each variant once so the renderer can't panic on any.
        let insts = vec![
            I::MovImm { d: 0, imm: 7 },
            I::Mov { d: 0, a: 1 },
            I::MovSpecial { d: 0, s: Special::TidX },
            I::Add { d: 0, a: 1, b: 2 },
            I::AddCC { d: 0, a: 1, b: 2 },
            I::AddC { d: 0, a: 1, b: 2 },
            I::Sub { d: 0, a: 1, b: 2 },
            I::SubCC { d: 0, a: 1, b: 2 },
            I::SubC { d: 0, a: 1, b: 2 },
            I::MulLo { d: 0, a: 1, b: 2 },
            I::MulHi { d: 0, a: 1, b: 2 },
            I::MadLoCC { d: 0, a: 1, b: 2, c: 3 },
            I::MadHiC { d: 0, a: 1, b: 2, c: 3 },
            I::Div { d: 0, a: 1, b: 2 },
            I::Rem { d: 0, a: 1, b: 2 },
            I::Div64 { dlo: 0, dhi: 1, alo: 2, ahi: 3, blo: 4, bhi: 5 },
            I::Rem64 { dlo: 0, dhi: 1, alo: 2, ahi: 3, blo: 4, bhi: 5 },
            I::DivBig { d: 0, dn: 2, a: 2, an: 2, b: 4, bn: 2 },
            I::RemBig { d: 0, dn: 2, a: 2, an: 2, b: 4, bn: 2 },
            I::Bfind { d: 0, a: 1 },
            I::Shl { d: 0, a: 1, b: 2 },
            I::Shr { d: 0, a: 1, b: 2 },
            I::And { d: 0, a: 1, b: 2 },
            I::Or { d: 0, a: 1, b: 2 },
            I::Xor { d: 0, a: 1, b: 2 },
            I::SetP { p: 0, op: CmpOp::Ge, a: 1, b: 2 },
            I::SetPImm { p: 0, op: CmpOp::Eq, a: 1, imm: 3 },
            I::PAnd { p: 0, a: 0, b: 0 },
            I::PNot { p: 0, a: 0 },
            I::Selp { d: 0, a: 1, b: 2, p: 0 },
            I::LdGlobal { d: 0, buf: 1, addr: 2 },
            I::LdGlobalU8 { d: 0, buf: 1, addr: 2 },
            I::StGlobal { buf: 1, addr: 2, src: 0 },
            I::StGlobalU8 { buf: 1, addr: 2, src: 0 },
            I::LdShared { d: 0, addr: 1 },
            I::StShared { addr: 1, src: 0 },
            I::LdParam { d: 0, idx: 0 },
            I::BarSync,
            I::ShflIdx { d: 0, a: 1, lane: 2 },
            I::Ballot { d: 0, p: 0 },
        ];
        for i in insts {
            let text = render_inst(&i);
            assert!(text.ends_with(';') || text.contains("//"), "{text}");
            assert!(!mnemonic(&i).is_empty());
        }
    }
}
