#![warn(missing_docs)]
//! # up-gpusim — the simulated GPU substrate
//!
//! A SIMT GPU simulator standing in for the NVIDIA A6000 + CUDA stack the
//! paper evaluates on: a PTX-like ISA ([`ptx`]), a functional lockstep-warp
//! executor with coalescing-aware memory statistics ([`exec`]), an analytic
//! cost model turning those statistics into kernel times ([`cost`]),
//! CGBN-style thread-group big-number arithmetic ([`cgbn`], §III-E1),
//! multi-pass aggregation (§III-E2, [`reduce`]), an Nsight-like profiler
//! view ([`profiler`]), a CUDA-stream scheduler with queueing-delay
//! accounting for concurrent services ([`stream`]), and a plan-level
//! launch-DAG executor + modeled overlap timeline ([`pipeline`]).

pub mod cgbn;
pub mod compiled;
pub mod decoded;
pub mod disasm;
pub mod cost;
pub mod device;
pub mod env;
pub mod exec;
pub mod par;
pub mod pipeline;
pub mod profiler;
pub mod ptx;
pub mod reduce;
pub mod stream;

pub use compiled::{
    compile_counters, last_launch_tiers, tier_counters, tier_threshold, CompiledProgram, ExecTier,
    TierCounters,
};
pub use decoded::{decode_counters, DecodedProgram, ExecBackend};
pub use device::{CpuDevice, Device, DeviceConfig, Fleet, GpuDevice};
pub use exec::{
    launch, launch_opts, launch_sampled, launch_sampled_opts, launch_sampled_with, launch_with,
    planned_workers, ExecStats, GlobalMem, LaunchConfig, LaunchOpts, SimError,
};
pub use par::SimParallelism;
pub use pipeline::{
    plan_timeline, run_dag, DagNodeCost, DeficitRoundRobin, DeviceTimelineStats, PipelineMode,
    PipelineReport, SharedTimeline, SharedTimelineStats,
};
pub use ptx::{AddrForm, CmpOp, Inst, Kernel, KernelBuilder, PReg, Reg, Special, Stmt};

/// log₂(10) — bit-per-decimal-digit conversion used by cost formulas.
pub const LOG2_10_APPROX: f64 = core::f64::consts::LOG2_10;
