//! Device model: the simulated GPU's resources and cost constants, the
//! [`Device`] behavioral trait over them, and the multi-device [`Fleet`].
//!
//! The evaluation machine is an NVIDIA Quadro RTX A6000 (48 GB GDDR6, PCIe
//! 4.0) driven by CUDA 11.6 (§IV). [`DeviceConfig::a6000`] reproduces that
//! profile; all cost-model constants are collected here so the analytic
//! estimator in [`crate::cost`] has a single calibration surface.
//!
//! [`Device`] abstracts *how* a backend is priced — named profiles are
//! the A6000-class [`GpuDevice`], a `tiny()`-class small GPU, and the
//! PCIe-free [`CpuDevice`] baseline — so data-parallel scans can shard
//! over heterogeneous backends. A [`Fleet`] owns N devices, computes
//! throughput-weighted shard boundaries, and prices the cross-device
//! exchange (staged through host memory: one PCIe leg out of the sender,
//! one into the receiver).

/// Static resources and throughput constants of a simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// Threads per warp (fixed at 32 on all NVIDIA hardware).
    pub warp_size: u32,
    /// Warp schedulers per SM (instruction issue slots per cycle).
    pub schedulers_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_registers_per_thread: u32,
    /// Shared memory per block (bytes) — the `S` of §III-E2.
    pub shared_mem_per_block: u32,
    /// Core clock (GHz).
    pub clock_ghz: f64,
    /// Device-memory bandwidth (GB/s).
    pub mem_bandwidth_gbps: f64,
    /// Effective host↔device PCIe bandwidth (GB/s).
    pub pcie_bandwidth_gbps: f64,
    /// Fixed kernel-launch overhead (µs).
    pub launch_overhead_us: f64,
    /// Average DRAM access latency (cycles) — used when occupancy is too
    /// low to hide it.
    pub mem_latency_cycles: f64,
}

impl DeviceConfig {
    /// The paper's evaluation GPU: NVIDIA Quadro RTX A6000 (GA102: 84 SMs,
    /// 1.80 GHz boost, 768 GB/s GDDR6) on PCIe 4.0 ×16 (~25 GB/s effective).
    pub fn a6000() -> Self {
        DeviceConfig {
            name: "Quadro RTX A6000 (simulated)",
            sm_count: 84,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_block: 48 * 1024,
            clock_ghz: 1.80,
            mem_bandwidth_gbps: 768.0,
            pcie_bandwidth_gbps: 25.0,
            launch_overhead_us: 5.0,
            mem_latency_cycles: 450.0,
        }
    }

    /// A deliberately small device for fast functional tests (same ISA,
    /// tiny resources — more blocks per launch exercise the scheduler).
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "tiny-test-device",
            sm_count: 2,
            warp_size: 32,
            schedulers_per_sm: 1,
            max_threads_per_sm: 256,
            max_threads_per_block: 128,
            registers_per_sm: 8192,
            max_registers_per_thread: 255,
            shared_mem_per_block: 4 * 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 10.0,
            pcie_bandwidth_gbps: 2.0,
            launch_overhead_us: 1.0,
            mem_latency_cycles: 200.0,
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Occupancy (0..=1] achievable by a kernel using `regs_per_thread`
    /// registers: the register file bounds resident warps, exactly the
    /// effect the paper profiles ("more registers are required by a thread
    /// and the warp occupancy becomes 50%", §IV-A).
    pub fn occupancy(&self, regs_per_thread: u32) -> f64 {
        let regs = regs_per_thread.clamp(16, self.max_registers_per_thread);
        let warps_by_regs = self.registers_per_sm / (regs * self.warp_size);
        let warps = warps_by_regs.min(self.max_warps_per_sm()).max(1);
        warps as f64 / self.max_warps_per_sm() as f64
    }

    /// Time to move `bytes` across PCIe, in seconds.
    pub fn pcie_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_bandwidth_gbps * 1e9)
    }

    /// A CPU-baseline "device": kernels run on host cores reading host
    /// memory, so there is no PCIe hop and the memory system is a
    /// typical server DDR channel set. The SM/occupancy fields describe
    /// the host's core/SMT topology in GPU vocabulary so the same cost
    /// model prices it (one "SM" per core, one warp-wide issue slot).
    pub fn cpu_baseline() -> Self {
        DeviceConfig {
            name: "CPU baseline (host cores)",
            sm_count: 32,
            warp_size: 32,
            schedulers_per_sm: 1,
            max_threads_per_sm: 64,
            max_threads_per_block: 64,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_block: 256 * 1024,
            clock_ghz: 2.8,
            mem_bandwidth_gbps: 80.0,
            // No PCIe hop: data is already in host memory. The huge
            // bandwidth makes any priced transfer vanish; [`CpuDevice`]
            // zeroes it outright.
            pcie_bandwidth_gbps: f64::INFINITY,
            launch_overhead_us: 0.5,
            mem_latency_cycles: 300.0,
        }
    }
}

// ---------------------------------------------------------------------
// The Device trait and its named profiles
// ---------------------------------------------------------------------

/// A priced execution backend: one member of a [`Fleet`].
///
/// Implementations wrap a [`DeviceConfig`] and define the behavioral
/// bits that differ between backend classes — whether the device pays a
/// host↔device transfer at all, and its steady-state scan/aggregation
/// throughput weight (used to size its table shard). All pricing is
/// side-band: functional results never depend on which device "ran" a
/// shard.
pub trait Device: Send + Sync {
    /// The cost-model parameters of this device.
    fn config(&self) -> &DeviceConfig;

    /// Profile name, for reports.
    fn name(&self) -> &'static str {
        self.config().name
    }

    /// Whether this backend is a discrete GPU behind a PCIe link.
    fn is_gpu(&self) -> bool {
        true
    }

    /// Seconds to move `bytes` from host memory onto this device (0 for
    /// host-resident backends).
    fn h2d_time(&self, bytes: u64) -> f64 {
        self.config().pcie_time(bytes)
    }

    /// Relative steady-state scan/aggregation throughput. The paper's
    /// decimal workloads are memory-bound (§IV), so device-memory
    /// bandwidth is the shard-sizing proxy.
    fn throughput_weight(&self) -> f64 {
        self.config().mem_bandwidth_gbps.max(1e-9)
    }
}

/// A discrete GPU profile (A6000-class or `tiny()`-class).
#[derive(Clone, Debug)]
pub struct GpuDevice(pub DeviceConfig);

impl Device for GpuDevice {
    fn config(&self) -> &DeviceConfig {
        &self.0
    }
}

/// The CPU-baseline profile: host-resident, no PCIe hop.
#[derive(Clone, Debug)]
pub struct CpuDevice(pub DeviceConfig);

impl CpuDevice {
    /// The default CPU baseline ([`DeviceConfig::cpu_baseline`]).
    pub fn baseline() -> CpuDevice {
        CpuDevice(DeviceConfig::cpu_baseline())
    }
}

impl Device for CpuDevice {
    fn config(&self) -> &DeviceConfig {
        &self.0
    }

    fn is_gpu(&self) -> bool {
        false
    }

    fn h2d_time(&self, _bytes: u64) -> f64 {
        0.0
    }
}

/// An ordered set of N simulated devices sharing one host.
///
/// Device 0 is the *root*: non-sharded work runs there and partial
/// results from the other devices are exchanged to it. Shard boundaries
/// are throughput-weighted and deterministic, and the exchange is priced
/// as a staged host-memory hop (sender D2H leg + receiver H2D leg), both
/// at the devices' PCIe bandwidths.
pub struct Fleet {
    devices: Vec<Box<dyn Device>>,
}

impl Fleet {
    /// A fleet over explicit devices (at least one; device 0 is root).
    pub fn new(devices: Vec<Box<dyn Device>>) -> Fleet {
        assert!(!devices.is_empty(), "a fleet needs at least one device");
        Fleet { devices }
    }

    /// N identical GPUs of one profile.
    pub fn homogeneous(n: usize, cfg: DeviceConfig) -> Fleet {
        let n = n.max(1);
        Fleet::new((0..n).map(|_| Box::new(GpuDevice(cfg.clone())) as Box<dyn Device>).collect())
    }

    /// N simulated A6000s — the `bench_fleet` configuration.
    pub fn a6000s(n: usize) -> Fleet {
        Fleet::homogeneous(n, DeviceConfig::a6000())
    }

    /// Device count.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True for a single-device "fleet".
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th device.
    pub fn device(&self, i: usize) -> &dyn Device {
        self.devices[i].as_ref()
    }

    /// Iterates the devices in fixed (merge) order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Device> {
        self.devices.iter().map(|d| d.as_ref())
    }

    /// Normalized shard fractions per device (throughput-weighted;
    /// uniform for a homogeneous fleet). Sums to 1.
    pub fn shard_fractions(&self) -> Vec<f64> {
        let total: f64 = self.devices.iter().map(|d| d.throughput_weight()).sum();
        self.devices.iter().map(|d| d.throughput_weight() / total).collect()
    }

    /// Deterministic contiguous shard boundaries over `n` rows:
    /// `bounds[d]..bounds[d+1]` is device `d`'s range. Boundaries are
    /// cumulative-weight floors, so every row lands in exactly one shard
    /// and the result depends only on `(n, weights)`.
    pub fn shard_bounds(&self, n: usize) -> Vec<usize> {
        let fractions = self.shard_fractions();
        let mut bounds = Vec::with_capacity(self.len() + 1);
        bounds.push(0usize);
        let mut cum = 0.0f64;
        for f in &fractions[..fractions.len() - 1] {
            cum += f;
            bounds.push(((n as f64 * cum).floor() as usize).min(n));
        }
        bounds.push(n);
        // Floors are monotone because `cum` is, but make it explicit.
        for w in bounds.windows(2) {
            debug_assert!(w[0] <= w[1]);
        }
        bounds
    }

    /// Seconds to move `bytes` from device `from` to device `to`, staged
    /// through host memory: a D2H leg on the sender's link plus an H2D
    /// leg on the receiver's (either leg is free for a host-resident
    /// device). 0 for a self-transfer.
    pub fn exchange_time(&self, bytes: u64, from: usize, to: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        self.devices[from].h2d_time(bytes) + self.devices[to].h2d_time(bytes)
    }
}

impl core::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_list().entries(self.devices.iter().map(|d| d.name())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_profile_sanity() {
        let d = DeviceConfig::a6000();
        assert_eq!(d.max_warps_per_sm(), 48);
        assert!(d.occupancy(32) > 0.95); // light kernels reach full occupancy
    }

    #[test]
    fn occupancy_halves_with_register_pressure() {
        let d = DeviceConfig::a6000();
        // ~42 regs/thread is the last full-occupancy point on GA102.
        assert!((d.occupancy(42) - 1.0).abs() < 1e-9);
        // The paper's LEN=32 addition kernel drops to 50% occupancy.
        let half = d.occupancy(85);
        assert!((0.4..=0.55).contains(&half), "occupancy {half}");
        // And the LEN=32 multiplication kernel to 33%.
        let third = d.occupancy(128);
        assert!((0.30..=0.36).contains(&third), "occupancy {third}");
    }

    #[test]
    fn occupancy_is_monotonic_in_registers() {
        let d = DeviceConfig::a6000();
        let mut prev = 2.0;
        for regs in (16..=255).step_by(8) {
            let o = d.occupancy(regs);
            assert!(o <= prev + 1e-12, "regs={regs}");
            assert!(o > 0.0);
            prev = o;
        }
    }

    #[test]
    fn pcie_time_scales_linearly() {
        let d = DeviceConfig::a6000();
        let t1 = d.pcie_time(1 << 30);
        assert!((t1 - (1u64 << 30) as f64 / 25e9).abs() < 1e-12);
        assert!((d.pcie_time(2 << 30) / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn device_profiles_differ_where_they_should() {
        let gpu = GpuDevice(DeviceConfig::a6000());
        let cpu = CpuDevice::baseline();
        assert!(gpu.is_gpu() && !cpu.is_gpu());
        assert!(gpu.h2d_time(1 << 30) > 0.0);
        assert_eq!(cpu.h2d_time(1 << 30), 0.0, "host-resident data never crosses PCIe");
        // A6000 out-scans both the tiny GPU and the CPU baseline.
        let tiny = GpuDevice(DeviceConfig::tiny());
        assert!(gpu.throughput_weight() > tiny.throughput_weight());
        assert!(gpu.throughput_weight() > cpu.throughput_weight());
    }

    #[test]
    fn homogeneous_fleet_shards_evenly() {
        let fleet = Fleet::a6000s(4);
        assert_eq!(fleet.len(), 4);
        let b = fleet.shard_bounds(1000);
        assert_eq!(b, vec![0, 250, 500, 750, 1000]);
        // Non-divisible row counts still cover every row exactly once.
        let b = fleet.shard_bounds(1003);
        assert_eq!(*b.first().unwrap(), 0);
        assert_eq!(*b.last().unwrap(), 1003);
        assert!(b.windows(2).all(|w| w[0] <= w[1]));
        let f = fleet.shard_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_fleet_weights_shards_by_throughput() {
        let fleet = Fleet::new(vec![
            Box::new(GpuDevice(DeviceConfig::a6000())), // 768 GB/s
            Box::new(GpuDevice(DeviceConfig::tiny())),  // 10 GB/s
            Box::new(CpuDevice::baseline()),            // 80 GB/s
        ]);
        let f = fleet.shard_fractions();
        assert!(f[0] > 0.85, "the A6000 takes most rows: {f:?}");
        assert!(f[1] < f[2], "tiny GPU gets less than the CPU: {f:?}");
        let b = fleet.shard_bounds(10_000);
        assert_eq!(b.len(), 4);
        assert_eq!(*b.last().unwrap(), 10_000);
    }

    #[test]
    fn exchange_is_priced_as_two_staged_pcie_legs() {
        let fleet = Fleet::a6000s(2);
        let bytes = 1u64 << 30;
        let one_leg = DeviceConfig::a6000().pcie_time(bytes);
        assert!((fleet.exchange_time(bytes, 1, 0) - 2.0 * one_leg).abs() < 1e-12);
        assert_eq!(fleet.exchange_time(bytes, 0, 0), 0.0);
        // A CPU endpoint contributes no PCIe leg on its side.
        let mixed = Fleet::new(vec![
            Box::new(GpuDevice(DeviceConfig::a6000())),
            Box::new(CpuDevice::baseline()),
        ]);
        assert!((mixed.exchange_time(bytes, 1, 0) - one_leg).abs() < 1e-12);
    }
}
