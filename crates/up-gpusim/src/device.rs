//! Device model: the simulated GPU's resources and cost constants.
//!
//! The evaluation machine is an NVIDIA Quadro RTX A6000 (48 GB GDDR6, PCIe
//! 4.0) driven by CUDA 11.6 (§IV). [`DeviceConfig::a6000`] reproduces that
//! profile; all cost-model constants are collected here so the analytic
//! estimator in [`crate::cost`] has a single calibration surface.

/// Static resources and throughput constants of a simulated device.
#[derive(Clone, Debug)]
pub struct DeviceConfig {
    /// Marketing name, for reports.
    pub name: &'static str,
    /// Streaming multiprocessor count.
    pub sm_count: u32,
    /// Threads per warp (fixed at 32 on all NVIDIA hardware).
    pub warp_size: u32,
    /// Warp schedulers per SM (instruction issue slots per cycle).
    pub schedulers_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum registers addressable by one thread.
    pub max_registers_per_thread: u32,
    /// Shared memory per block (bytes) — the `S` of §III-E2.
    pub shared_mem_per_block: u32,
    /// Core clock (GHz).
    pub clock_ghz: f64,
    /// Device-memory bandwidth (GB/s).
    pub mem_bandwidth_gbps: f64,
    /// Effective host↔device PCIe bandwidth (GB/s).
    pub pcie_bandwidth_gbps: f64,
    /// Fixed kernel-launch overhead (µs).
    pub launch_overhead_us: f64,
    /// Average DRAM access latency (cycles) — used when occupancy is too
    /// low to hide it.
    pub mem_latency_cycles: f64,
}

impl DeviceConfig {
    /// The paper's evaluation GPU: NVIDIA Quadro RTX A6000 (GA102: 84 SMs,
    /// 1.80 GHz boost, 768 GB/s GDDR6) on PCIe 4.0 ×16 (~25 GB/s effective).
    pub fn a6000() -> Self {
        DeviceConfig {
            name: "Quadro RTX A6000 (simulated)",
            sm_count: 84,
            warp_size: 32,
            schedulers_per_sm: 4,
            max_threads_per_sm: 1536,
            max_threads_per_block: 1024,
            registers_per_sm: 65536,
            max_registers_per_thread: 255,
            shared_mem_per_block: 48 * 1024,
            clock_ghz: 1.80,
            mem_bandwidth_gbps: 768.0,
            pcie_bandwidth_gbps: 25.0,
            launch_overhead_us: 5.0,
            mem_latency_cycles: 450.0,
        }
    }

    /// A deliberately small device for fast functional tests (same ISA,
    /// tiny resources — more blocks per launch exercise the scheduler).
    pub fn tiny() -> Self {
        DeviceConfig {
            name: "tiny-test-device",
            sm_count: 2,
            warp_size: 32,
            schedulers_per_sm: 1,
            max_threads_per_sm: 256,
            max_threads_per_block: 128,
            registers_per_sm: 8192,
            max_registers_per_thread: 255,
            shared_mem_per_block: 4 * 1024,
            clock_ghz: 1.0,
            mem_bandwidth_gbps: 10.0,
            pcie_bandwidth_gbps: 2.0,
            launch_overhead_us: 1.0,
            mem_latency_cycles: 200.0,
        }
    }

    /// Maximum resident warps per SM.
    pub fn max_warps_per_sm(&self) -> u32 {
        self.max_threads_per_sm / self.warp_size
    }

    /// Occupancy (0..=1] achievable by a kernel using `regs_per_thread`
    /// registers: the register file bounds resident warps, exactly the
    /// effect the paper profiles ("more registers are required by a thread
    /// and the warp occupancy becomes 50%", §IV-A).
    pub fn occupancy(&self, regs_per_thread: u32) -> f64 {
        let regs = regs_per_thread.clamp(16, self.max_registers_per_thread);
        let warps_by_regs = self.registers_per_sm / (regs * self.warp_size);
        let warps = warps_by_regs.min(self.max_warps_per_sm()).max(1);
        warps as f64 / self.max_warps_per_sm() as f64
    }

    /// Time to move `bytes` across PCIe, in seconds.
    pub fn pcie_time(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.pcie_bandwidth_gbps * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a6000_profile_sanity() {
        let d = DeviceConfig::a6000();
        assert_eq!(d.max_warps_per_sm(), 48);
        assert!(d.occupancy(32) > 0.95); // light kernels reach full occupancy
    }

    #[test]
    fn occupancy_halves_with_register_pressure() {
        let d = DeviceConfig::a6000();
        // ~42 regs/thread is the last full-occupancy point on GA102.
        assert!((d.occupancy(42) - 1.0).abs() < 1e-9);
        // The paper's LEN=32 addition kernel drops to 50% occupancy.
        let half = d.occupancy(85);
        assert!((0.4..=0.55).contains(&half), "occupancy {half}");
        // And the LEN=32 multiplication kernel to 33%.
        let third = d.occupancy(128);
        assert!((0.30..=0.36).contains(&third), "occupancy {third}");
    }

    #[test]
    fn occupancy_is_monotonic_in_registers() {
        let d = DeviceConfig::a6000();
        let mut prev = 2.0;
        for regs in (16..=255).step_by(8) {
            let o = d.occupancy(regs);
            assert!(o <= prev + 1e-12, "regs={regs}");
            assert!(o > 0.0);
            prev = o;
        }
    }

    #[test]
    fn pcie_time_scales_linearly() {
        let d = DeviceConfig::a6000();
        let t1 = d.pcie_time(1 << 30);
        assert!((t1 - (1u64 << 30) as f64 / 25e9).abs() < 1e-12);
        assert!((d.pcie_time(2 << 30) / t1 - 2.0).abs() < 1e-9);
    }
}
