//! The PTX-like instruction set the JIT targets.
//!
//! UltraPrecise embeds PTX assembly in generated kernels to get hardware
//! carry chains (`add.cc.u32`/`addc.cc.u32`, Listing 2), MSB location
//! (`bfind`, §III-C2) and 64-bit division fast paths (`div`, §III-C2).
//! This module defines a register-based ISA with exactly those
//! capabilities, plus structured control flow (`If`/`While`) so the
//! functional executor can model warp divergence with a simple active-mask
//! discipline instead of a reconvergence stack.
//!
//! Loops with trip counts known at JIT time (they almost all are — `Lw` is
//! a compile-time constant, §III-B) are unrolled by the code generator,
//! mirroring the `#pragma unroll` in the paper's Listing 2.

/// A virtual 32-bit register index (per thread).
pub type Reg = u16;

/// A predicate (boolean) register index (per thread).
pub type PReg = u8;

/// Comparison operators for `setp`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Applies the comparison to unsigned operands.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Special (read-only) per-thread registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Special {
    /// `threadIdx.x`
    TidX,
    /// `blockIdx.x`
    CtaIdX,
    /// `blockDim.x`
    NTidX,
    /// `gridDim.x`
    NCtaIdX,
}

/// One straight-line instruction. `CC`-suffixed arithmetic reads/writes the
/// per-thread carry flag the way the PTX condition code does.
///
/// Operand fields follow PTX conventions throughout: `d` destination
/// register, `a`/`b`/`c` sources, `p` predicate, `buf` device buffer
/// index, `addr` byte-address register, `lo`/`hi` 64-bit register pairs,
/// `dn`/`an`/`bn` limb counts of multi-word register ranges.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `mov.u32 d, imm`
    MovImm { d: Reg, imm: u32 },
    /// `mov.u32 d, a`
    Mov { d: Reg, a: Reg },
    /// `mov.u32 d, %special`
    MovSpecial { d: Reg, s: Special },
    /// `add.u32 d, a, b` (no flags)
    Add { d: Reg, a: Reg, b: Reg },
    /// `add.cc.u32 d, a, b` — sets the carry flag (Listing 2).
    AddCC { d: Reg, a: Reg, b: Reg },
    /// `addc.cc.u32 d, a, b` — adds carry-in, sets carry-out (Listing 2).
    AddC { d: Reg, a: Reg, b: Reg },
    /// `sub.u32 d, a, b`
    Sub { d: Reg, a: Reg, b: Reg },
    /// `sub.cc.u32 d, a, b` — sets the borrow flag.
    SubCC { d: Reg, a: Reg, b: Reg },
    /// `subc.cc.u32 d, a, b` — subtracts borrow-in, sets borrow-out.
    SubC { d: Reg, a: Reg, b: Reg },
    /// `mul.lo.u32 d, a, b`
    MulLo { d: Reg, a: Reg, b: Reg },
    /// `mul.hi.u32 d, a, b`
    MulHi { d: Reg, a: Reg, b: Reg },
    /// `mad.lo.cc.u32 d, a, b, c` — multiply-add setting carry.
    MadLoCC { d: Reg, a: Reg, b: Reg, c: Reg },
    /// `madc.hi.u32`-style multiply-add-high with carry-in (the paper
    /// tested `madc` and found plain CUDA faster for multiplications, but
    /// the instruction exists in the ISA).
    MadHiC { d: Reg, a: Reg, b: Reg, c: Reg },
    /// `div.u32 d, a, b` (b must be nonzero; zero yields all-ones as on HW)
    Div { d: Reg, a: Reg, b: Reg },
    /// `rem.u32 d, a, b`
    Rem { d: Reg, a: Reg, b: Reg },
    /// 64-bit unsigned division on register pairs — the §III-C2 fast path
    /// "if the dividend and divisor could be contained in a 64-bit word".
    Div64 { dlo: Reg, dhi: Reg, alo: Reg, ahi: Reg, blo: Reg, bhi: Reg },
    /// 64-bit unsigned remainder on register pairs.
    Rem64 { dlo: Reg, dhi: Reg, alo: Reg, ahi: Reg, blo: Reg, bhi: Reg },
    /// `bfind.u32 d, a` — bit position of the most significant 1, or
    /// `0xffffffff` when `a` is zero (§III-C2).
    Bfind { d: Reg, a: Reg },
    /// Multi-word unsigned division macro-op: registers `[d..d+dn)` =
    /// `[a..a+an) / [b..b+bn)` (little-endian limbs). This stands for the
    /// §III-C2 generated division routine — `bfind` range bracketing plus
    /// binary-search probing — executed as one instruction for simulation
    /// speed and priced dynamically by the executor from the operands'
    /// actual bit lengths (probe count × multiply cost). A zero divisor
    /// aborts the launch, matching SQL division-by-zero semantics.
    DivBig { d: Reg, dn: u8, a: Reg, an: u8, b: Reg, bn: u8 },
    /// Multi-word unsigned remainder macro-op (see [`Inst::DivBig`]).
    RemBig { d: Reg, dn: u8, a: Reg, an: u8, b: Reg, bn: u8 },
    /// `shl.b32 d, a, b` (shift count taken modulo 32 silently, like HW).
    Shl { d: Reg, a: Reg, b: Reg },
    /// `shr.u32 d, a, b`
    Shr { d: Reg, a: Reg, b: Reg },
    /// `and.b32 d, a, b`
    And { d: Reg, a: Reg, b: Reg },
    /// `or.b32 d, a, b`
    Or { d: Reg, a: Reg, b: Reg },
    /// `xor.b32 d, a, b`
    Xor { d: Reg, a: Reg, b: Reg },
    /// `setp.<op>.u32 p, a, b`
    SetP { p: PReg, op: CmpOp, a: Reg, b: Reg },
    /// `setp.<op>.u32 p, a, imm`
    SetPImm { p: PReg, op: CmpOp, a: Reg, imm: u32 },
    /// Logical and of two predicates.
    PAnd { p: PReg, a: PReg, b: PReg },
    /// Logical negation of a predicate.
    PNot { p: PReg, a: PReg },
    /// `selp.b32 d, a, b, p` — d = p ? a : b.
    Selp { d: Reg, a: Reg, b: Reg, p: PReg },
    /// Load a 32-bit word from global buffer `buf` at byte address `addr`
    /// (register) — `ld.global.u32`.
    LdGlobal { d: Reg, buf: u8, addr: Reg },
    /// Load one byte (zero-extended) — compact representations are
    /// byte-aligned (§III-B), so expansion reads bytes.
    LdGlobalU8 { d: Reg, buf: u8, addr: Reg },
    /// Store a 32-bit word — `st.global.u32`.
    StGlobal { buf: u8, addr: Reg, src: Reg },
    /// Store one byte — writing back the compact result (§III-B2 step 3).
    StGlobalU8 { buf: u8, addr: Reg, src: Reg },
    /// Load a word from block-shared memory at byte address `addr`.
    LdShared { d: Reg, addr: Reg },
    /// Store a word to block-shared memory.
    StShared { addr: Reg, src: Reg },
    /// Read a 32-bit scalar kernel parameter.
    LdParam { d: Reg, idx: u8 },
    /// Block-wide barrier (`bar.sync`). Only meaningful at top level.
    BarSync,
    /// Warp shuffle: read `a` from lane `lane_imm` of the warp (models the
    /// CGBN inter-thread communication, §III-E1).
    ShflIdx { d: Reg, a: Reg, lane: Reg },
    /// Warp ballot: set `d` to a mask of lanes whose predicate `p` is true.
    Ballot { d: Reg, p: PReg },
}

/// Structured statements. The executor models divergence by running both
/// branches with complementary active masks whenever a warp disagrees.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// A single instruction.
    I(Inst),
    /// `if (p) { then } else { else }` on the per-thread predicate.
    If {
        /// Predicate register controlling the branch.
        p: PReg,
        /// Taken when `p` is true.
        then_: Vec<Stmt>,
        /// Taken when `p` is false (often empty).
        else_: Vec<Stmt>,
    },
    /// `do { cond } while-test p { body }` — executes `cond`, tests `p`
    /// per thread, and runs `body` for threads whose predicate held;
    /// repeats until the whole (active part of the) warp drops out.
    While {
        /// Predicate computed by `cond` each iteration.
        p: PReg,
        /// Statements recomputing the predicate.
        cond: Vec<Stmt>,
        /// Loop body for threads whose predicate holds.
        body: Vec<Stmt>,
        /// Safety bound on iterations (panic beyond — JIT bugs, not data,
        /// are the only way to exceed it).
        max_iter: u32,
    },
}

/// A compiled kernel: the statement list plus resource metadata.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Name for reports (e.g. `calc_expr_1` as in Listing 1).
    pub name: String,
    /// Kernel body.
    pub body: Vec<Stmt>,
    /// Virtual 32-bit registers per thread.
    pub num_regs: u16,
    /// Predicate registers per thread.
    pub num_preds: u8,
    /// Static shared memory per block (bytes).
    pub smem_bytes: u32,
    /// Estimated *hardware* registers per thread after register allocation
    /// — drives the occupancy model. Codegen sets this from the operand
    /// widths (see `up-jit::codegen::estimate_hw_regs`).
    pub hw_regs_per_thread: u32,
    /// Lazily-built decoded program for the flat interpreter (clones share
    /// the built program; see [`crate::decoded::DecodedProgram`]).
    pub(crate) decoded: crate::decoded::DecodedCache,
    /// Compiled-tier state: the per-kernel launch counter driving tier
    /// promotion and the lazily-built closure-compiled program (clones
    /// share a built artifact; see [`crate::compiled`]).
    pub(crate) tier: crate::compiled::TierCache,
}

impl Kernel {
    /// Counts static instructions (loop bodies counted once) — a proxy for
    /// generated-code size used by the compile-time model. Memoized on the
    /// decoded program, so repeated launches and compile-time estimates
    /// don't re-walk the statement tree.
    pub fn static_inst_count(&self) -> usize {
        self.decoded_program().static_inst_count()
    }

    /// The kernel's pre-decoded flat program, built on first use and cached
    /// on the kernel. Clones made after the first build (e.g. kernels held
    /// in the JIT cache behind `Arc`) share the same program.
    pub fn decoded_program(&self) -> &std::sync::Arc<crate::decoded::DecodedProgram> {
        self.decoded.get_or_decode(self)
    }

    /// The kernel's closure-compiled program (tier 3), built on first use
    /// and cached on the kernel. Under `ExecBackend::Auto` this is only
    /// called once the launch count crosses the promotion threshold, so
    /// cold kernels never pay compile cost; `ExecBackend::Compiled`
    /// forces it on the first launch.
    pub fn compiled_program(&self) -> &std::sync::Arc<crate::compiled::CompiledProgram> {
        self.tier.get_or_compile(self).0
    }

    /// Whether this kernel has paid closure-compile cost yet (i.e. its
    /// compiled-tier artifact exists).
    pub fn compiled_tier_built(&self) -> bool {
        self.tier.built()
    }
}

/// Issue cost (cycles per warp) of each instruction class, loosely modeled
/// on Ampere throughput tables. Memory instructions carry an extra cost in
/// the executor's transaction model; these are the pipeline issue costs.
pub fn issue_cycles(inst: &Inst) -> f64 {
    match inst {
        Inst::Div { .. } | Inst::Rem { .. } => 16.0, // emulated on ALU
        Inst::Div64 { .. } | Inst::Rem64 { .. } => 36.0,
        // Base cost only — the executor adds the dynamic binary-search
        // probe cost from the operands' actual bit lengths.
        Inst::DivBig { .. } | Inst::RemBig { .. } => 24.0,
        Inst::MulLo { .. } | Inst::MulHi { .. } | Inst::MadLoCC { .. } | Inst::MadHiC { .. } => 2.0,
        Inst::LdGlobal { .. } | Inst::LdGlobalU8 { .. } => 2.0,
        Inst::StGlobal { .. } | Inst::StGlobalU8 { .. } => 2.0,
        Inst::LdShared { .. } | Inst::StShared { .. } => 2.0,
        Inst::BarSync => 4.0,
        Inst::ShflIdx { .. } | Inst::Ballot { .. } => 2.0,
        _ => 1.0,
    }
}

/// Statically recognized shape of a global-memory address operand, per
/// warp: how consecutive lanes' addresses relate. Produced by the
/// compiled tier's affine-address analysis (see `crate::compiled`) and
/// rendered by [`crate::disasm::disassemble_with_addr_forms`].
///
/// The analysis is a *hint*: the compiled tier re-verifies the claimed
/// shape against the actual register values before taking any bulk
/// memory path, so a wrong or imprecise form can cost speed but never
/// correctness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AddrForm {
    /// Address shape not statically recognized (per-lane access path).
    #[default]
    Unknown,
    /// Lane-affine: lane `l`'s address is `base + l * stride` for a
    /// warp-uniform `base` — the shape every codec kernel emits
    /// (`tuple * lb` plus a per-byte increment). `stride` is the byte
    /// distance between adjacent lanes.
    LaneAffine {
        /// Byte distance between adjacent lanes' addresses.
        stride: u32,
    },
}

impl std::fmt::Display for AddrForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrForm::Unknown => write!(f, "unknown"),
            AddrForm::LaneAffine { stride } => write!(f, "base+gid*{stride}"),
        }
    }
}

/// A tiny builder making code generation readable: allocates registers and
/// predicates, and appends statements.
#[derive(Default)]
pub struct KernelBuilder {
    stmts: Vec<Stmt>,
    next_reg: u16,
    next_pred: u8,
    smem_bytes: u32,
}

impl KernelBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg = self.next_reg.checked_add(1).expect("register file exhausted");
        r
    }

    /// Allocates `n` consecutive registers and returns their indices.
    pub fn regs(&mut self, n: usize) -> Vec<Reg> {
        (0..n).map(|_| self.reg()).collect()
    }

    /// Allocates a fresh predicate register.
    pub fn pred(&mut self) -> PReg {
        let p = self.next_pred;
        self.next_pred = self.next_pred.checked_add(1).expect("predicate file exhausted");
        p
    }

    /// Reserves static shared memory, returning its byte offset.
    pub fn smem(&mut self, bytes: u32) -> u32 {
        let off = self.smem_bytes;
        self.smem_bytes += bytes;
        off
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Inst) {
        self.stmts.push(Stmt::I(i));
    }

    /// Appends a register preloaded with an immediate and returns it.
    pub fn imm(&mut self, v: u32) -> Reg {
        let r = self.reg();
        self.push(Inst::MovImm { d: r, imm: v });
        r
    }

    /// Appends an `If` statement built from sub-builders.
    pub fn if_(&mut self, p: PReg, then_: Vec<Stmt>, else_: Vec<Stmt>) {
        self.stmts.push(Stmt::If { p, then_, else_ });
    }

    /// Appends a `While` statement.
    pub fn while_(&mut self, p: PReg, cond: Vec<Stmt>, body: Vec<Stmt>, max_iter: u32) {
        self.stmts.push(Stmt::While { p, cond, body, max_iter });
    }

    /// Statements appended so far (used with [`KernelBuilder::drain_stmts`]
    /// to carve out branch bodies).
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }

    /// Removes and returns every statement appended at or after `from` —
    /// the code-generation idiom for building `If`/`While` bodies inline.
    pub fn drain_stmts(&mut self, from: usize) -> Vec<Stmt> {
        self.stmts.split_off(from)
    }

    /// Runs `f` against a scratch builder sharing this builder's register
    /// allocator, returning the statements it produced. Used to build
    /// branch bodies.
    pub fn block(&mut self, f: impl FnOnce(&mut KernelBuilder)) -> Vec<Stmt> {
        let mut inner = KernelBuilder {
            stmts: Vec::new(),
            next_reg: self.next_reg,
            next_pred: self.next_pred,
            smem_bytes: self.smem_bytes,
        };
        f(&mut inner);
        self.next_reg = inner.next_reg;
        self.next_pred = inner.next_pred;
        self.smem_bytes = inner.smem_bytes;
        inner.stmts
    }

    /// Finishes the kernel.
    pub fn finish(self, name: impl Into<String>, hw_regs_per_thread: u32) -> Kernel {
        Kernel {
            name: name.into(),
            body: self.stmts,
            num_regs: self.next_reg.max(1),
            num_preds: self.next_pred.max(1),
            smem_bytes: self.smem_bytes,
            hw_regs_per_thread,
            decoded: Default::default(),
            tier: Default::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_unsigned_semantics() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(u32::MAX, 2)); // unsigned, not signed
        assert!(CmpOp::Ge.eval(5, 5));
        assert!(CmpOp::Ne.eval(0, 1));
    }

    #[test]
    fn builder_allocates_and_counts() {
        let mut b = KernelBuilder::new();
        let r0 = b.reg();
        let r1 = b.reg();
        assert_eq!((r0, r1), (0, 1));
        b.push(Inst::Add { d: r1, a: r0, b: r0 });
        let p = b.pred();
        let then_ = b.block(|ib| {
            let t = ib.reg();
            ib.push(Inst::MovImm { d: t, imm: 7 });
        });
        b.if_(p, then_, vec![]);
        let k = b.finish("k", 32);
        assert_eq!(k.num_regs, 3);
        assert_eq!(k.static_inst_count(), 3); // add + if + mov
    }

    #[test]
    fn issue_costs_rank_sensibly() {
        let add = Inst::Add { d: 0, a: 0, b: 0 };
        let div = Inst::Div64 { dlo: 0, dhi: 0, alo: 0, ahi: 0, blo: 0, bhi: 0 };
        assert!(issue_cycles(&div) > 10.0 * issue_cycles(&add));
    }
}
