//! Analytic kernel-time estimator.
//!
//! The functional executor yields per-launch statistics; this module prices
//! them against a [`DeviceConfig`] with a roofline-style model:
//!
//! ```text
//! t_compute = warp_issue_cycles / (SMs · schedulers · clock)
//! t_memory  = dram_bytes / bandwidth
//! t_latency = transactions · mem_latency / (resident warps · clock)
//! t_kernel  = max(t_compute / occupancy_feed, t_memory, t_latency) + launch overhead
//! ```
//!
//! where `occupancy_feed` saturates at 1 once enough warps are resident to
//! keep the schedulers fed. The model is deliberately simple; its purpose
//! is reproducing the evaluation's *shapes* — memory-bound low-LEN
//! kernels (§IV-A's 4% SM utilization), occupancy cliffs at high LEN, and
//! the PCIe term of end-to-end queries — not absolute nanoseconds.

use crate::device::DeviceConfig;
use crate::exec::ExecStats;
use crate::ptx::Kernel;

/// A priced kernel execution.
#[derive(Clone, Copy, Debug)]
pub struct KernelTime {
    /// Seconds the kernel occupies the GPU.
    pub total_s: f64,
    /// Compute-pipeline component (seconds), after occupancy throttling.
    pub compute_s: f64,
    /// DRAM-bandwidth component (seconds).
    pub memory_s: f64,
    /// Latency-bound component (seconds).
    pub latency_s: f64,
    /// Fixed launch overhead (seconds).
    pub overhead_s: f64,
    /// Occupancy the register model allows (0..=1).
    pub occupancy: f64,
    /// Fraction of kernel time the compute pipes are busy — the "SM
    /// utilization" Nsight Compute reports in §IV-A.
    pub sm_utilization: f64,
}

/// Prices a launch on a device.
pub fn kernel_time(kernel: &Kernel, stats: &ExecStats, device: &DeviceConfig) -> KernelTime {
    let clock_hz = device.clock_ghz * 1e9;
    let issue_rate = device.sm_count as f64 * device.schedulers_per_sm as f64 * clock_hz;
    let occupancy = device.occupancy(kernel.hw_regs_per_thread);

    let compute_s = stats.warp_issue_cycles / issue_rate;
    let memory_s = stats.dram_bytes as f64 / (device.mem_bandwidth_gbps * 1e9);

    // Latency-bound term: each memory transaction stalls its warp for the
    // DRAM latency; resident warps across the device hide stalls in
    // parallel, and every warp keeps several transactions in flight
    // (memory-level parallelism — decimal kernels issue word/byte loads
    // back-to-back before consuming them).
    const MLP: f64 = 8.0;
    let resident_warps =
        (occupancy * device.max_warps_per_sm() as f64 * device.sm_count as f64).max(1.0);
    let resident_warps = resident_warps.min(stats.warps.max(1) as f64);
    let latency_s = stats.mem_transactions as f64 * device.mem_latency_cycles
        / (resident_warps * MLP * clock_hz);

    // Low occupancy also throttles the issue pipes: with fewer than ~8
    // resident warps per scheduler the pipes cannot stay fed.
    let feed = (occupancy * device.max_warps_per_sm() as f64
        / (device.schedulers_per_sm as f64 * 4.0))
        .min(1.0);
    let compute_eff = compute_s / feed.max(0.05);

    let overhead_s = device.launch_overhead_us * 1e-6;
    let busy = compute_eff.max(memory_s).max(latency_s);
    let total_s = busy + overhead_s;
    KernelTime {
        total_s,
        compute_s: compute_eff,
        memory_s,
        latency_s,
        overhead_s,
        occupancy,
        sm_utilization: if busy > 0.0 { (compute_s / busy).min(1.0) } else { 0.0 },
    }
}

/// Prices a host↔device transfer of `bytes` over PCIe.
pub fn pcie_transfer_time(bytes: u64, device: &DeviceConfig) -> f64 {
    device.pcie_time(bytes)
}

/// Models the NVCC/JIT compilation latency of a generated kernel: a fixed
/// front-end cost plus a per-instruction back-end cost. Calibrated against
/// the paper's TPC-H Q1 observation that compile time grows from 320 ms
/// (LEN=2) to 423 ms (LEN=32) "due to the longer code generated"
/// (§IV-D1). Our IR construction itself takes microseconds; this constant
/// models the real toolchain a deployment would invoke.
pub fn modeled_compile_time_s(static_insts: usize) -> f64 {
    0.300 + static_insts as f64 * 6.0e-6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptx::KernelBuilder;

    fn dummy_kernel(hw_regs: u32) -> Kernel {
        KernelBuilder::new().finish("k", hw_regs)
    }

    fn stats(warp_issue_cycles: f64, dram_bytes: u64, transactions: u64, warps: u64) -> ExecStats {
        ExecStats {
            warp_issue_cycles,
            dram_bytes,
            mem_transactions: transactions,
            warps,
            sample_scale: 1.0,
            ..Default::default()
        }
    }

    #[test]
    fn memory_bound_kernel_has_low_sm_utilization() {
        // Mirror §IV-A: simple additions — lots of bytes, few cycles.
        let d = DeviceConfig::a6000();
        let k = dummy_kernel(34);
        // 10M tuples × 3 × 8 bytes ≈ 240 MB moved, ~40 issue cycles/warp.
        let s = stats(40.0 * 312_500.0, 240_000_000, 7_500_000, 312_500);
        let t = kernel_time(&k, &s, &d);
        assert!(t.memory_s > t.compute_s, "{t:?}");
        assert!(t.sm_utilization < 0.15, "{t:?}");
    }

    #[test]
    fn compute_bound_kernel_has_high_utilization() {
        let d = DeviceConfig::a6000();
        let k = dummy_kernel(40);
        // Division-heavy: enormous cycle counts, modest memory.
        let s = stats(5_000.0 * 312_500.0, 240_000_000, 7_500_000, 312_500);
        let t = kernel_time(&k, &s, &d);
        assert!(t.compute_s > t.memory_s);
        assert!(t.sm_utilization > 0.9);
    }

    #[test]
    fn register_pressure_slows_compute_bound_kernels() {
        let d = DeviceConfig::a6000();
        let s = stats(5_000.0 * 312_500.0, 1_000_000, 31_250, 312_500);
        let light = kernel_time(&dummy_kernel(40), &s, &d);
        let heavy = kernel_time(&dummy_kernel(200), &s, &d);
        assert!(heavy.total_s > light.total_s, "{heavy:?} vs {light:?}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let d = DeviceConfig::a6000();
        let t = kernel_time(&dummy_kernel(32), &stats(10.0, 64, 2, 1), &d);
        assert!(t.total_s >= d.launch_overhead_us * 1e-6);
    }

    #[test]
    fn compile_time_model_matches_paper_range() {
        // LEN=2 kernels are a few thousand instructions; LEN=32 tens of
        // thousands — the paper reports 320 ms → 423 ms (§IV-D1).
        let small = modeled_compile_time_s(3_000);
        let large = modeled_compile_time_s(20_000);
        assert!((0.30..=0.35).contains(&small), "{small}");
        assert!((0.40..=0.50).contains(&large), "{large}");
    }
}
