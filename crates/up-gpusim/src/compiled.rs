//! Tier-3 executor: closure-compiled ("threaded code") kernel programs
//! with count-based tier promotion.
//!
//! The tier-2 interpreter in [`crate::decoded`] already runs full-mask
//! superblocks with no divergence bookkeeping, but it still pays one trip
//! through a ~40-arm `DOp` match per instruction and updates the stats
//! fields per instruction. This module *compiles* each superblock once
//! into a chain of small monomorphized Rust closures over the same
//! structure-of-arrays register file:
//!
//! * Register-only ops lower to one tiny closure each — the operand
//!   offsets are captured as constants and each closure body is a single
//!   lane-inner loop the autovectorizer can SIMD across the 32 lanes,
//!   instead of one arm buried inside a giant match.
//! * Maximal runs of carry-chain ops (`add.cc`/`addc`/`sub.cc`/`subc`/
//!   `mad.lo.cc`/`madc.hi` — the spine of every multi-limb add and
//!   school-book multiply) fuse into a *single* register-tiled closure
//!   that keeps the 32 carry flags in one local `u32` across the whole
//!   chain and writes the architectural carry register once at the end.
//! * Per-instruction stats collapse to one batched update per straight-
//!   line segment; the f64 `warp_issue_cycles` additions are replayed
//!   element-by-element in original program order, so the non-associative
//!   f64 sum stays bit-identical to the interpreter's.
//! * Global-memory ops (`ld`/`st`, word and byte) lower to first-class
//!   `Step::Mem` thunks monomorphized over [`MemAccess`] — one
//!   instantiation per backend (`GlobalMem` under serial execution,
//!   `JournaledMem` under threads). A flow-sensitive affine-address
//!   analysis recognizes the `base + gid·stride` shape every byte codec
//!   kernel emits; when the hint re-verifies against the live registers,
//!   the thunk does one warp-wide bounds check plus one `SectorSeen`
//!   coalescing pass and moves all 32 lanes with bulk strided copies
//!   (`load_*_affine`/`store_*_affine`) instead of per-lane per-byte
//!   calls. Stats, coalescing state, and the f64 `warp_issue_cycles`
//!   stream are replayed in program order, so the fast path is
//!   bit-identical to the interpreter; non-affine or out-of-bounds
//!   warps fall back to the interpreter's exact per-lane loop.
//! * Ops that touch shared memory or params, or add data-dependent
//!   cycles (`DivBig`), stay interpreter steps (`Step::Interp`) executed
//!   by the *same* `exec_dop` the decoded tier uses, frame-for-frame.
//!
//! Divergent regions and control flow never reach this module: the
//! decoded interpreter's `run_warp` only enters a compiled superblock
//! when the warp is fully converged, and falls back to its own loop
//! everywhere else. Outputs, [`crate::ExecStats`], and error surfaces are
//! therefore bit-identical across tree/decoded/compiled — the
//! differential fuzz suites in [`crate::decoded`] enforce it.
//!
//! **Promotion.** Compiling costs one pass over the decoded program plus
//! a closure allocation per instruction, so cold kernels should not pay
//! it. Under [`crate::ExecBackend::Auto`] each kernel counts its launches
//! ([`TierCache`]); once the count exceeds [`tier_threshold`] (default 2,
//! env `UP_SIM_TIER_THRESHOLD`) the kernel is promoted and the compiled
//! artifact is cached in an `OnceLock<Arc<_>>` on the kernel — shared by
//! clones, the `up-jit` kernel cache, and the cross-query arena, so one
//! compile serves every session that hits the same cached kernel.

use crate::decoded::{DCtx, DOp, DecodedProgram, MemOpKind, Op};
use crate::exec::{full_mask, note_transactions, Geometry, MemAccess, SimError};
use crate::env::knob as env_parse;
use crate::ptx::{AddrForm, Kernel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A compiled straight-line segment body: mutates registers, predicates,
/// and the carry mask of a fully-converged warp. Never touches memory or
/// stats, never fails.
type AluThunk = Box<dyn Fn(&mut [u32], &mut [u32], &mut u32, &Geometry, usize) + Send + Sync>;

/// One step of a compiled superblock.
enum Step {
    /// A run of register-only instructions: stats are applied in one
    /// batch (`cycles` replayed in order), then the closures run. A
    /// fused carry chain is one thunk covering several `cycles` entries.
    Alu { thunks: Box<[AluThunk]>, cycles: Box<[f64]> },
    /// A first-class lowered global-memory instruction, executed by
    /// [`exec_mem`] monomorphized over the launch's `MemAccess` backend.
    Mem(MemStep),
    /// A single instruction that touches shared memory/params or
    /// contributes data-dependent cycles — executed by the decoded tier's
    /// `exec_dop` with exactly the interpreter's per-instruction stats.
    Interp { dop: DOp, cycles: f64 },
}

/// One lowered global-memory instruction: operand rows pre-resolved to
/// SoA offsets, plus the static affine-address hint. A plain descriptor
/// rather than a closure because the compiled program is shared across
/// both `MemAccess` monomorphizations — the dispatch happens in
/// [`exec_mem`], which *is* monomorphized per backend.
struct MemStep {
    kind: MemOpKind,
    buf: u8,
    addr: u32,
    data: u32,
    /// Lane-affine stride from [`analyze_addr_forms`]; `exec_mem`
    /// re-verifies it against the live address row before taking the
    /// bulk path, so a stale or unsound hint can only cost speed, never
    /// correctness.
    affine: Option<u32>,
    cycles: f64,
}

/// A compiled superblock: the steps of one maximal straight-line run plus
/// its exclusive end pc (where the interpreter resumes).
pub(crate) struct SuperBlock {
    steps: Box<[Step]>,
    pub(crate) end: u32,
}

/// A kernel's closure-compiled program, indexed by superblock start pc.
/// Built once per kernel at promotion (see [`TierCache`]) and shared by
/// every clone through the `Arc`.
pub struct CompiledProgram {
    /// `blocks[pc]` is `Some` iff `pc` starts a superblock.
    blocks: Vec<Option<SuperBlock>>,
    superblocks: usize,
    fused_chains: usize,
    fused_insts: usize,
    alu_insts: usize,
    interp_insts: usize,
    mem_insts: usize,
    affine_mem_insts: usize,
    lowered_superblocks: usize,
}

impl CompiledProgram {
    /// The compiled superblock starting at `pc`, if any.
    #[inline]
    pub(crate) fn block_at(&self, pc: usize) -> Option<&SuperBlock> {
        self.blocks.get(pc).and_then(|b| b.as_ref())
    }

    /// Superblocks lowered (same count as the decoded program's).
    pub fn superblock_count(&self) -> usize {
        self.superblocks
    }

    /// Carry-chain runs (length ≥ 2) fused into single closures.
    pub fn fused_chain_count(&self) -> usize {
        self.fused_chains
    }

    /// Instructions covered by fused carry-chain closures.
    pub fn fused_inst_count(&self) -> usize {
        self.fused_insts
    }

    /// Instructions lowered to register-only closures (incl. fused).
    pub fn alu_inst_count(&self) -> usize {
        self.alu_insts
    }

    /// Instructions kept as interpreter fallback steps (shared memory,
    /// params, `DivBig`).
    pub fn interp_inst_count(&self) -> usize {
        self.interp_insts
    }

    /// Global-memory instructions lowered to first-class mem thunks.
    pub fn mem_inst_count(&self) -> usize {
        self.mem_insts
    }

    /// Lowered mem thunks carrying a lane-affine address hint (eligible
    /// for the warp-wide bulk fast path).
    pub fn affine_mem_inst_count(&self) -> usize {
        self.affine_mem_insts
    }

    /// Superblocks fully lowered to closures and mem thunks — no
    /// interpreter fallback steps at all.
    pub fn lowered_superblock_count(&self) -> usize {
        self.lowered_superblocks
    }

    /// Superblocks containing at least one interpreter fallback step.
    pub fn fallback_superblock_count(&self) -> usize {
        self.superblocks - self.lowered_superblocks
    }
}

impl std::fmt::Debug for CompiledProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CompiledProgram({} superblocks ({} lowered), {} alu + {} mem ({} affine) + {} interp insts, {} fused chains)",
            self.superblocks,
            self.lowered_superblocks,
            self.alu_insts,
            self.mem_insts,
            self.affine_mem_insts,
            self.interp_insts,
            self.fused_chains
        )
    }
}

// ---------------------------------------------------------------------------
// Tier promotion: per-kernel launch counters + process-wide tier counters.
// ---------------------------------------------------------------------------

/// Launches a kernel from decoded to compiled once its launch count
/// *exceeds* this bound (default 2: launches 1–2 interpret, 3+ run
/// compiled). Env `UP_SIM_TIER_THRESHOLD`, read once; an invalid value
/// warns on stderr like the other knobs and falls back to the default.
pub fn tier_threshold() -> u64 {
    static CACHE: OnceLock<u64> = OnceLock::new();
    *CACHE.get_or_init(|| {
        env_parse("UP_SIM_TIER_THRESHOLD", "a launch count", |v| v.parse::<u64>().ok())
            .unwrap_or(2)
    })
}

static COMPILE_BUILDS: AtomicU64 = AtomicU64::new(0);
static COMPILE_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide closure-compile counters: `(programs_built, cache_hits)`
/// — the tier-3 analogue of [`crate::decode_counters`].
pub fn compile_counters() -> (u64, u64) {
    (COMPILE_BUILDS.load(Ordering::Relaxed), COMPILE_HITS.load(Ordering::Relaxed))
}

/// Per-kernel compiled-tier cache: the launch counter driving promotion
/// and the `OnceLock`-cached compiled artifact. Clones share a built
/// artifact (the `Arc` is cloned); the JIT cache and the cross-query
/// arena hold kernels behind `Arc`, so one compile serves all sessions.
pub struct TierCache {
    program: OnceLock<Arc<CompiledProgram>>,
    launches: AtomicU64,
}

impl TierCache {
    /// Records one launch, returning its ordinal (1 for the first).
    pub(crate) fn record_launch(&self) -> u64 {
        self.launches.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether the compiled artifact has been built (i.e. the kernel has
    /// paid compile cost).
    pub(crate) fn built(&self) -> bool {
        self.program.get().is_some()
    }

    /// The compiled artifact, building it on first call. The second tuple
    /// element is `true` iff *this* call performed the build — the
    /// promotion event.
    pub(crate) fn get_or_compile(&self, kernel: &Kernel) -> (&Arc<CompiledProgram>, bool) {
        if let Some(p) = self.program.get() {
            COMPILE_HITS.fetch_add(1, Ordering::Relaxed);
            return (p, false);
        }
        let mut built = false;
        let p = self.program.get_or_init(|| {
            COMPILE_BUILDS.fetch_add(1, Ordering::Relaxed);
            built = true;
            Arc::new(compile(kernel))
        });
        (p, built)
    }
}

impl Default for TierCache {
    fn default() -> Self {
        TierCache { program: OnceLock::new(), launches: AtomicU64::new(0) }
    }
}

impl Clone for TierCache {
    fn clone(&self) -> Self {
        // Share a built artifact; the launch count is a per-kernel-object
        // statistic, so the clone starts from the source's current count.
        TierCache {
            program: self.program.clone(),
            launches: AtomicU64::new(self.launches.load(Ordering::Relaxed)),
        }
    }
}

impl std::fmt::Debug for TierCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.program.get() {
            Some(p) => write!(f, "TierCache(compiled: {p:?}, launches: {})", self.launches.load(Ordering::Relaxed)),
            None => write!(f, "TierCache(decoded, launches: {})", self.launches.load(Ordering::Relaxed)),
        }
    }
}

/// Which tier actually executed a launch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecTier {
    /// Reference `Stmt`-tree walker.
    Tree,
    /// Pre-decoded flat-program interpreter.
    Decoded,
    /// Closure-compiled superblocks (decoded fallback on divergence).
    Compiled,
}

/// Per-tier launch totals plus promotion events — process-wide via
/// [`tier_counters`], per-launch via [`last_launch_tiers`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Launches executed by the tree walker.
    pub tree: u64,
    /// Launches executed by the decoded interpreter.
    pub decoded: u64,
    /// Launches executed by the closure-compiled tier.
    pub compiled: u64,
    /// Promotion events (a kernel's compiled artifact getting built under
    /// `auto` tiering).
    pub promotions: u64,
    /// Superblocks of compiled launches that are fully lowered (no
    /// interpreter fallback steps), summed per launch.
    pub lowered_superblocks: u64,
    /// Superblocks of compiled launches containing at least one
    /// interpreter fallback step, summed per launch.
    pub fallback_superblocks: u64,
    /// First-class lowered memory thunks in compiled launches, summed
    /// per launch (static counts, not dynamic executions).
    pub lowered_mem_thunks: u64,
    /// Instructions still executed as interpreter fallback frames inside
    /// compiled launches, summed per launch (static counts).
    pub fallback_insts: u64,
}

impl TierCounters {
    /// Total launches across all tiers.
    pub fn total(&self) -> u64 {
        self.tree + self.decoded + self.compiled
    }
}

impl std::ops::AddAssign for TierCounters {
    fn add_assign(&mut self, rhs: TierCounters) {
        self.tree += rhs.tree;
        self.decoded += rhs.decoded;
        self.compiled += rhs.compiled;
        self.promotions += rhs.promotions;
        self.lowered_superblocks += rhs.lowered_superblocks;
        self.fallback_superblocks += rhs.fallback_superblocks;
        self.lowered_mem_thunks += rhs.lowered_mem_thunks;
        self.fallback_insts += rhs.fallback_insts;
    }
}

static TREE_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static DECODED_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static COMPILED_LAUNCHES: AtomicU64 = AtomicU64::new(0);
static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static LOWERED_SUPERBLOCKS: AtomicU64 = AtomicU64::new(0);
static FALLBACK_SUPERBLOCKS: AtomicU64 = AtomicU64::new(0);
static LOWERED_MEM_THUNKS: AtomicU64 = AtomicU64::new(0);
static FALLBACK_INSTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide per-tier launch counts and promotion events (e.g. for the
/// server metrics report).
pub fn tier_counters() -> TierCounters {
    TierCounters {
        tree: TREE_LAUNCHES.load(Ordering::Relaxed),
        decoded: DECODED_LAUNCHES.load(Ordering::Relaxed),
        compiled: COMPILED_LAUNCHES.load(Ordering::Relaxed),
        promotions: PROMOTIONS.load(Ordering::Relaxed),
        lowered_superblocks: LOWERED_SUPERBLOCKS.load(Ordering::Relaxed),
        fallback_superblocks: FALLBACK_SUPERBLOCKS.load(Ordering::Relaxed),
        lowered_mem_thunks: LOWERED_MEM_THUNKS.load(Ordering::Relaxed),
        fallback_insts: FALLBACK_INSTS.load(Ordering::Relaxed),
    }
}

thread_local! {
    static LAST_LAUNCH: std::cell::Cell<Option<TierCounters>> =
        const { std::cell::Cell::new(None) };
}

/// Records a launch's tier (and, for compiled launches, the program's
/// lowered/fallback shape) on the process-wide counters and as this
/// thread's most recent launch (launches are synchronous, so the caller
/// can attribute it right after `launch_opts` returns).
pub(crate) fn note_launch(tier: ExecTier, promoted: bool, program: Option<&CompiledProgram>) {
    let mut t = TierCounters::default();
    match tier {
        ExecTier::Tree => t.tree = 1,
        ExecTier::Decoded => t.decoded = 1,
        ExecTier::Compiled => t.compiled = 1,
    }
    if promoted {
        t.promotions = 1;
    }
    if let Some(p) = program {
        t.lowered_superblocks = p.lowered_superblock_count() as u64;
        t.fallback_superblocks = p.fallback_superblock_count() as u64;
        t.lowered_mem_thunks = p.mem_inst_count() as u64;
        t.fallback_insts = p.interp_inst_count() as u64;
    }
    TREE_LAUNCHES.fetch_add(t.tree, Ordering::Relaxed);
    DECODED_LAUNCHES.fetch_add(t.decoded, Ordering::Relaxed);
    COMPILED_LAUNCHES.fetch_add(t.compiled, Ordering::Relaxed);
    PROMOTIONS.fetch_add(t.promotions, Ordering::Relaxed);
    LOWERED_SUPERBLOCKS.fetch_add(t.lowered_superblocks, Ordering::Relaxed);
    FALLBACK_SUPERBLOCKS.fetch_add(t.fallback_superblocks, Ordering::Relaxed);
    LOWERED_MEM_THUNKS.fetch_add(t.lowered_mem_thunks, Ordering::Relaxed);
    FALLBACK_INSTS.fetch_add(t.fallback_insts, Ordering::Relaxed);
    LAST_LAUNCH.with(|c| c.set(Some(t)));
}

/// The most recent launch on *this* thread as a one-launch
/// [`TierCounters`] delta (all-zero if this thread has not launched).
/// Launches run synchronously on the calling thread, so reading this
/// immediately after a `launch_opts` call attributes that launch —
/// race-free even with concurrent launches on other threads. Compiled
/// launches also carry the program's lowered/fallback superblock and
/// mem-thunk shape.
pub fn last_launch_tiers() -> TierCounters {
    LAST_LAUNCH.with(|c| c.get()).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Execution.
// ---------------------------------------------------------------------------

/// Runs one compiled superblock over a fully-converged warp. Stats
/// batching is exact: integer stats are associative, and the f64
/// `warp_issue_cycles` additions replay element-by-element in the same
/// program order the interpreter uses (ALU thunks never touch stats, so
/// hoisting a segment's cycle additions ahead of its thunks preserves
/// the f64 addition sequence; `DivBig`'s data-dependent cycles stay an
/// `Interp` step in sequence).
pub(crate) fn run_superblock<M: MemAccess>(
    sb: &SuperBlock,
    c: &mut DCtx<'_, M>,
    geom: &Geometry,
    lanes_n: usize,
    full: u32,
) -> Result<(), SimError> {
    for step in sb.steps.iter() {
        match step {
            Step::Alu { thunks, cycles } => {
                let insts = cycles.len() as u64;
                c.stats.warp_issues += insts;
                c.stats.thread_insts += insts * lanes_n as u64;
                for cy in cycles.iter() {
                    c.stats.warp_issue_cycles += *cy;
                }
                for t in thunks.iter() {
                    t(&mut c.regs, &mut c.preds, &mut c.carry, geom, lanes_n);
                }
            }
            Step::Mem(m) => {
                c.stats.warp_issues += 1;
                c.stats.warp_issue_cycles += m.cycles;
                c.stats.thread_insts += lanes_n as u64;
                exec_mem(m, c, lanes_n)?;
            }
            Step::Interp { dop, cycles } => {
                c.stats.warp_issues += 1;
                c.stats.warp_issue_cycles += *cycles;
                c.stats.thread_insts += lanes_n as u64;
                crate::decoded::exec_dop::<true, M>(c, dop, geom, full, lanes_n)?;
            }
        }
    }
    Ok(())
}

/// Executes one lowered memory thunk over a fully-converged warp,
/// monomorphized over the launch's `MemAccess` backend.
///
/// The coalescing pass runs first with exactly the address slice the
/// interpreter would pass, so `SectorSeen` mutations and the transaction
/// stats are identical by construction — including the epoch window,
/// which is the warp's own `c.seen` and therefore carries dedup state
/// across consecutive lowered thunks just like consecutive interpreter
/// steps. If the static lane-affine hint re-verifies against the live
/// address row *and* the whole warp's span bounds-checks once in u64
/// (which rules out u32 wraparound anywhere in the span), the bulk
/// `load_*_affine`/`store_*_affine` entry points move all lanes at once;
/// otherwise the interpreter's exact per-lane loop runs — ascending
/// lanes, error surfaced at the first failing lane, with the same
/// partial effects before it.
fn exec_mem<M: MemAccess>(
    m: &MemStep,
    c: &mut DCtx<'_, M>,
    lanes_n: usize,
) -> Result<(), SimError> {
    let a = m.addr as usize;
    let d = m.data as usize;
    let n = lanes_n;
    let width = m.kind.width();
    note_transactions(&mut c.stats, &mut c.seen, m.buf, &c.regs[a..a + n], width);
    if let Some(stride) = m.affine {
        let base = c.regs[a];
        let affine_ok = c.regs[a..a + n]
            .iter()
            .enumerate()
            .all(|(l, &v)| v == base.wrapping_add(stride.wrapping_mul(l as u32)));
        let end = base as u64 + stride as u64 * (n as u64 - 1) + width as u64;
        if affine_ok && end <= c.mem.buf_len(m.buf) as u64 {
            return match m.kind {
                MemOpKind::LdWord => {
                    c.mem.load_words_affine(m.buf, base, stride, &mut c.regs[d..d + n])
                }
                MemOpKind::LdByte => {
                    c.mem.load_bytes_affine(m.buf, base, stride, &mut c.regs[d..d + n])
                }
                MemOpKind::StWord => {
                    c.mem.store_words_affine(m.buf, base, stride, &c.regs[d..d + n])
                }
                MemOpKind::StByte => {
                    c.mem.store_bytes_affine(m.buf, base, stride, &c.regs[d..d + n])
                }
            };
        }
    }
    match m.kind {
        MemOpKind::LdWord => {
            for l in 0..n {
                c.regs[d + l] = c.mem.load_word(m.buf, c.regs[a + l])?;
            }
        }
        MemOpKind::LdByte => {
            for l in 0..n {
                c.regs[d + l] = c.mem.load_byte(m.buf, c.regs[a + l])? as u32;
            }
        }
        MemOpKind::StWord => {
            for l in 0..n {
                c.mem.store_word(m.buf, c.regs[a + l], c.regs[d + l])?;
            }
        }
        MemOpKind::StByte => {
            for l in 0..n {
                c.mem.store_byte(m.buf, c.regs[a + l], c.regs[d + l] as u8)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Affine-address analysis.
// ---------------------------------------------------------------------------

/// Abstract lane shape of one register row: what value lane `l` of the
/// row holds, as a function of the lane index.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AbsVal {
    /// Never assigned on any path seen so far; reads observe the zeroed
    /// register file, i.e. the constant 0.
    Bottom,
    /// Lane `l` holds `base + l·stride` for some warp-uniform `base`
    /// (`stride == 0` means warp-uniform). `konst` is additionally the
    /// compile-time value when the row is a known immediate, so
    /// multiplies and shifts can scale strides.
    Affine { stride: u32, konst: Option<u32> },
    /// Anything: data-dependent, memory-loaded, or merged incompatibly.
    Top,
}

impl AbsVal {
    /// Reading a `Bottom` row observes the zero-initialized register
    /// file.
    fn read(self) -> AbsVal {
        match self {
            AbsVal::Bottom => AbsVal::Affine { stride: 0, konst: Some(0) },
            v => v,
        }
    }

    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bottom, v) | (v, AbsVal::Bottom) => v,
            (AbsVal::Affine { stride: s1, konst: k1 }, AbsVal::Affine { stride: s2, konst: k2 })
                if s1 == s2 =>
            {
                AbsVal::Affine { stride: s1, konst: if k1 == k2 { k1 } else { None } }
            }
            _ => AbsVal::Top,
        }
    }

    fn uniform() -> AbsVal {
        AbsVal::Affine { stride: 0, konst: None }
    }

    fn is_uniform(self) -> bool {
        matches!(self, AbsVal::Affine { stride: 0, .. })
    }
}

/// `a + b` lane-wise (wrapping, like the simulated ALU).
fn abs_add(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a.read(), b.read()) {
        (AbsVal::Affine { stride: s1, konst: k1 }, AbsVal::Affine { stride: s2, konst: k2 }) => {
            AbsVal::Affine {
                stride: s1.wrapping_add(s2),
                konst: k1.zip(k2).map(|(x, y)| x.wrapping_add(y)),
            }
        }
        _ => AbsVal::Top,
    }
}

/// `a - b` lane-wise.
fn abs_sub(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a.read(), b.read()) {
        (AbsVal::Affine { stride: s1, konst: k1 }, AbsVal::Affine { stride: s2, konst: k2 }) => {
            AbsVal::Affine {
                stride: s1.wrapping_sub(s2),
                konst: k1.zip(k2).map(|(x, y)| x.wrapping_sub(y)),
            }
        }
        _ => AbsVal::Top,
    }
}

/// `a * b` lane-wise: a known-constant factor scales the other side's
/// stride (the codec kernels' `addr = i·limb_bytes` shape); the product
/// of two warp-uniform rows stays warp-uniform.
fn abs_mul(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a.read(), b.read()) {
        (AbsVal::Affine { stride: sa, konst: ka }, AbsVal::Affine { stride: sb, konst: kb }) => {
            if let Some(k) = kb {
                AbsVal::Affine { stride: sa.wrapping_mul(k), konst: ka.map(|x| x.wrapping_mul(k)) }
            } else if let Some(k) = ka {
                AbsVal::Affine { stride: sb.wrapping_mul(k), konst: None }
            } else if sa == 0 && sb == 0 {
                AbsVal::uniform()
            } else {
                AbsVal::Top
            }
        }
        _ => AbsVal::Top,
    }
}

/// `a << b` lane-wise for a known shift amount; uniform-by-uniform stays
/// uniform.
fn abs_shl(a: AbsVal, b: AbsVal) -> AbsVal {
    match (a.read(), b.read()) {
        (AbsVal::Affine { stride: sa, konst: ka }, AbsVal::Affine { stride: 0, konst: Some(k) }) => {
            AbsVal::Affine { stride: sa << (k & 31), konst: ka.map(|x| x << (k & 31)) }
        }
        (va, vb) if va.is_uniform() && vb.is_uniform() => AbsVal::uniform(),
        _ => AbsVal::Top,
    }
}

/// Any other pure lane-wise ALU op: uniform inputs give a uniform
/// result, everything else is unknown.
fn abs_opaque2(a: AbsVal, b: AbsVal) -> AbsVal {
    if a.read().is_uniform() && b.read().is_uniform() {
        AbsVal::uniform()
    } else {
        AbsVal::Top
    }
}

/// State of the analysis: one [`AbsVal`] per register row.
struct AbsState {
    rows: Vec<AbsVal>,
}

impl AbsState {
    fn get(&self, off: u32) -> AbsVal {
        self.rows[off as usize / 32].read()
    }

    fn set(&mut self, off: u32, v: AbsVal, changed: &mut bool) {
        let slot = &mut self.rows[off as usize / 32];
        if *slot != v {
            *slot = v;
            *changed = true;
        }
    }

    /// Joins `other` into `self` row-wise; true if anything widened.
    fn join_from(&mut self, other: &AbsState) -> bool {
        let mut changed = false;
        for (s, o) in self.rows.iter_mut().zip(other.rows.iter()) {
            let j = s.join(*o);
            if *s != j {
                *s = j;
                changed = true;
            }
        }
        changed
    }

    fn clone_state(&self) -> AbsState {
        AbsState { rows: self.rows.clone() }
    }
}

/// Transfer function for one instruction.
fn abs_transfer(dop: &DOp, st: &mut AbsState, changed: &mut bool) {
    use crate::ptx::Special;
    match *dop {
        DOp::MovImm { d, imm } => {
            st.set(d, AbsVal::Affine { stride: 0, konst: Some(imm) }, changed)
        }
        DOp::Mov { d, a } => st.set(d, st.get(a), changed),
        DOp::MovSpecial { d, s } => {
            let v = match s {
                // tid.x is the canonical lane-affine row: lane l holds
                // `tid_base + l`.
                Special::TidX => AbsVal::Affine { stride: 1, konst: None },
                // Block/grid geometry is warp-uniform.
                Special::CtaIdX | Special::NTidX | Special::NCtaIdX => AbsVal::uniform(),
            };
            st.set(d, v, changed);
        }
        // Parameters are launch constants, identical across lanes.
        DOp::LdParam { d, .. } => st.set(d, AbsVal::uniform(), changed),
        DOp::Add { d, a, b } => st.set(d, abs_add(st.get(a), st.get(b)), changed),
        DOp::Sub { d, a, b } => st.set(d, abs_sub(st.get(a), st.get(b)), changed),
        DOp::MulLo { d, a, b } => st.set(d, abs_mul(st.get(a), st.get(b)), changed),
        DOp::Shl { d, a, b } => st.set(d, abs_shl(st.get(a), st.get(b)), changed),
        DOp::MulHi { d, a, b }
        | DOp::Div { d, a, b }
        | DOp::Rem { d, a, b }
        | DOp::Shr { d, a, b }
        | DOp::And { d, a, b }
        | DOp::Or { d, a, b }
        | DOp::Xor { d, a, b } => st.set(d, abs_opaque2(st.get(a), st.get(b)), changed),
        DOp::Bfind { d, a } => {
            let v = if st.get(a).is_uniform() { AbsVal::uniform() } else { AbsVal::Top };
            st.set(d, v, changed);
        }
        DOp::Div64 { dlo, dhi, .. } | DOp::Rem64 { dlo, dhi, .. } => {
            st.set(dlo, AbsVal::Top, changed);
            st.set(dhi, AbsVal::Top, changed);
        }
        // Carry results depend on per-lane flags; selects and shuffles on
        // per-lane predicates/indices.
        DOp::AddCC { d, .. }
        | DOp::AddC { d, .. }
        | DOp::SubCC { d, .. }
        | DOp::SubC { d, .. }
        | DOp::MadLoCC { d, .. }
        | DOp::MadHiC { d, .. }
        | DOp::Selp { d, .. }
        | DOp::ShflIdx { d, .. }
        | DOp::LdGlobal { d, .. }
        | DOp::LdGlobalU8 { d, .. }
        | DOp::LdShared { d, .. } => st.set(d, AbsVal::Top, changed),
        // A ballot broadcasts one value to every lane: warp-uniform.
        DOp::Ballot { d, .. } => st.set(d, AbsVal::uniform(), changed),
        DOp::DivBig { d, dn, .. } => {
            for k in 0..dn as u32 {
                st.set(d + k * 32, AbsVal::Top, changed);
            }
        }
        // No register destinations.
        DOp::SetP { .. }
        | DOp::SetPImm { .. }
        | DOp::PAnd { .. }
        | DOp::PNot { .. }
        | DOp::StGlobal { .. }
        | DOp::StGlobalU8 { .. }
        | DOp::StShared { .. }
        | DOp::BarSync => {}
    }
}

/// Flow-sensitive forward analysis over the structured flat program:
/// branch arms analyze from a snapshot and join at the reconvergence
/// point; loops iterate the condition+body to a fixpoint on the
/// back-edge join (the lattice has height 3 per row, so this converges
/// in a couple of rounds — a safety cap widens leftovers to `Top`).
///
/// Each visit of a memory instruction joins the address row's current
/// shape into `forms[pc]`, so a pc reached with incompatible shapes
/// degrades to `Unknown`. The result is a *hint*: [`exec_mem`]
/// re-verifies every stride against the live registers, so imprecision
/// here costs only the bulk fast path, never correctness.
fn abs_exec_range(
    ops: &[Op],
    forms: &mut [Option<AddrForm>],
    st: &mut AbsState,
    start: usize,
    end: usize,
) {
    let mut pc = start;
    while pc < end {
        match &ops[pc] {
            Op::I { dop, .. } => {
                if let Some(mr) = dop.mem_ref() {
                    let form = match st.get(mr.addr) {
                        AbsVal::Affine { stride, .. } => AddrForm::LaneAffine { stride },
                        _ => AddrForm::Unknown,
                    };
                    forms[pc] = Some(match forms[pc] {
                        None => form,
                        Some(prev) if prev == form => form,
                        Some(_) => AddrForm::Unknown,
                    });
                }
                let mut changed = false;
                abs_transfer(dop, st, &mut changed);
                pc += 1;
            }
            Op::If { else_pc, .. } => {
                let else_pc = *else_pc as usize;
                let Op::Else { end_pc } = ops[else_pc] else {
                    unreachable!("If.else_pc targets Else")
                };
                let endif_pc = end_pc as usize;
                let mut then_st = st.clone_state();
                abs_exec_range(ops, forms, &mut then_st, pc + 1, else_pc);
                abs_exec_range(ops, forms, st, else_pc + 1, endif_pc);
                st.join_from(&then_st);
                pc = endif_pc + 1;
            }
            Op::WhileBegin => {
                // Find this loop's test and end by depth-tracking nested
                // loops.
                let mut depth = 0usize;
                let mut test_pc = None;
                let mut end_pc = pc;
                for (j, op) in ops.iter().enumerate().take(end).skip(pc + 1) {
                    match op {
                        Op::WhileBegin => depth += 1,
                        Op::WhileTest { .. } if depth == 0 && test_pc.is_none() => {
                            test_pc = Some(j)
                        }
                        Op::WhileEnd { .. } => {
                            if depth == 0 {
                                end_pc = j;
                                break;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                let test_pc = test_pc.expect("loop has a WhileTest");
                for round in 0.. {
                    // Condition block runs on every round (including the
                    // final, exiting one).
                    abs_exec_range(ops, forms, st, pc + 1, test_pc);
                    let mut body_st = st.clone_state();
                    abs_exec_range(ops, forms, &mut body_st, test_pc + 1, end_pc);
                    if !st.join_from(&body_st) {
                        break;
                    }
                    if round >= 8 {
                        // Shouldn't happen (finite lattice), but cap
                        // defensively: widen everything the body touched.
                        st.join_from(&body_st);
                        for r in st.rows.iter_mut() {
                            if *r != AbsVal::Bottom {
                                *r = AbsVal::Top;
                            }
                        }
                        abs_exec_range(ops, forms, st, pc + 1, test_pc);
                        let mut body_st = st.clone_state();
                        abs_exec_range(ops, forms, &mut body_st, test_pc + 1, end_pc);
                        st.join_from(&body_st);
                        break;
                    }
                }
                pc = end_pc + 1;
            }
            // Handled by the enclosing If/While dispatch.
            Op::Else { .. } | Op::EndIf | Op::WhileTest { .. } | Op::WhileEnd { .. } => pc += 1,
        }
    }
}

/// Per-pc address forms for a kernel's flat decoded program: for every
/// global-memory instruction, whether the static analysis proves its
/// address row lane-affine (and with which stride). Non-memory pcs are
/// [`AddrForm::Unknown`].
pub(crate) fn analyze_addr_forms(ops: &[Op], num_regs: usize) -> Vec<AddrForm> {
    let mut st = AbsState { rows: vec![AbsVal::Bottom; num_regs] };
    let mut forms: Vec<Option<AddrForm>> = vec![None; ops.len()];
    abs_exec_range(ops, &mut forms, &mut st, 0, ops.len());
    forms.into_iter().map(|f| f.unwrap_or(AddrForm::Unknown)).collect()
}

/// [`analyze_addr_forms`] over a kernel (used by the disassembler's
/// annotated listing).
pub(crate) fn addr_forms(kernel: &Kernel) -> Vec<AddrForm> {
    analyze_addr_forms(kernel.decoded_program().ops(), kernel.num_regs as usize)
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

/// Fused carry-chain micro-ops: operand offsets pre-resolved to SoA rows.
#[derive(Clone, Copy)]
enum CarryKind {
    AddCC,
    AddC,
    SubCC,
    SubC,
    MadLoCC,
    MadHiC,
}

#[derive(Clone, Copy)]
struct CarryOp {
    kind: CarryKind,
    d: usize,
    a: usize,
    b: usize,
    c: usize,
}

fn carry_op(dop: &DOp) -> Option<CarryOp> {
    Some(match *dop {
        DOp::AddCC { d, a, b } => {
            CarryOp { kind: CarryKind::AddCC, d: d as usize, a: a as usize, b: b as usize, c: 0 }
        }
        DOp::AddC { d, a, b } => {
            CarryOp { kind: CarryKind::AddC, d: d as usize, a: a as usize, b: b as usize, c: 0 }
        }
        DOp::SubCC { d, a, b } => {
            CarryOp { kind: CarryKind::SubCC, d: d as usize, a: a as usize, b: b as usize, c: 0 }
        }
        DOp::SubC { d, a, b } => {
            CarryOp { kind: CarryKind::SubC, d: d as usize, a: a as usize, b: b as usize, c: 0 }
        }
        DOp::MadLoCC { d, a, b, c } => CarryOp {
            kind: CarryKind::MadLoCC,
            d: d as usize,
            a: a as usize,
            b: b as usize,
            c: c as usize,
        },
        DOp::MadHiC { d, a, b, c } => CarryOp {
            kind: CarryKind::MadHiC,
            d: d as usize,
            a: a as usize,
            b: b as usize,
            c: c as usize,
        },
        _ => return None,
    })
}

// Register-tiled codegen: every thunk reads its source rows as fixed
// `&[u32; 32]` tiles (the SoA register file always allocates rows at
// stride `LANES` = 32, so the casts are one length check each), computes
// all 32 lanes in a constant-trip loop, and writes the full destination
// row back in one 128-byte copy. Constant trip count + fixed-size arrays
// means no per-lane bounds checks, a fully-initialized local tile (the
// `[0u32; 32]` init is dead and elided), and exactly the shape LLVM's
// autovectorizer SIMDs across the warp — loops writing `regs[d + l]` in
// place cannot vectorize because two rows of one `&mut [u32]` might
// overlap as far as the compiler knows.
//
// Computing lanes ≥ `lanes_n` of a tail warp is deliberate: every lowered
// op is total (checked divides, masked shifts), those lanes' rows are
// dead storage no interpreter path ever reads (`lanes_apply`, gathers,
// and merges all stop at `lanes_n`), and anything architectural —
// predicates, the carry mask — is merged under `full_mask(n)`.
// Read-all-then-write-all per op is bit-identical to the interpreter's
// lane-by-lane order even when `d` aliases a source row: each lane only
// ever reads its own lane index from each row.

/// A register row as a fixed 32-lane tile.
#[inline(always)]
fn row(regs: &[u32], r: usize) -> &[u32; 32] {
    regs[r..r + 32].try_into().unwrap()
}

/// A register row as a mutable fixed 32-lane tile.
#[inline(always)]
fn row_mut(regs: &mut [u32], r: usize) -> &mut [u32; 32] {
    (&mut regs[r..r + 32]).try_into().unwrap()
}

/// Folds a tile of 0/1 flags into a lane bitmask.
#[inline(always)]
fn flag_bits(flags: &[u32; 32]) -> u32 {
    let mut bits = 0u32;
    for (l, f) in flags.iter().enumerate() {
        bits |= f << l;
    }
    bits
}

/// One fused closure for a run of carry-chain ops: the 32 carry flags
/// live in a local `u32` across the whole chain (the architectural carry
/// register is read once and written once), and each op runs a
/// register-tiled, constant-trip-count lane loop the autovectorizer can
/// SIMD across the warp. Bit-identical to executing the ops one at a time
/// through `exec_dop`: every lane < `n` computes the same flag sequence,
/// and lanes ≥ `n` keep their stale carry bits exactly like the
/// interpreter (their tile results exist but are masked off).
fn fuse_chain(chain: Vec<CarryOp>) -> AluThunk {
    let chain = chain.into_boxed_slice();
    Box::new(move |regs, _preds, carry, _geom, n| {
        let m = full_mask(n);
        let mut cb = *carry;
        for op in chain.iter() {
            let (d, a, b, cc) = (op.d, op.a, op.b, op.c);
            let mut td = [0u32; 32];
            let mut fl = [0u32; 32];
            {
                let ta = row(regs, a);
                let tb = row(regs, b);
                match op.kind {
                    CarryKind::AddCC => {
                        for l in 0..32 {
                            let (s, co) = ta[l].overflowing_add(tb[l]);
                            td[l] = s;
                            fl[l] = co as u32;
                        }
                    }
                    CarryKind::AddC => {
                        for l in 0..32 {
                            let (s1, c1) = ta[l].overflowing_add(tb[l]);
                            let (s2, c2) = s1.overflowing_add(cb >> l & 1);
                            td[l] = s2;
                            fl[l] = (c1 | c2) as u32;
                        }
                    }
                    CarryKind::SubCC => {
                        for l in 0..32 {
                            let (s, co) = ta[l].overflowing_sub(tb[l]);
                            td[l] = s;
                            fl[l] = co as u32;
                        }
                    }
                    CarryKind::SubC => {
                        for l in 0..32 {
                            let (s1, c1) = ta[l].overflowing_sub(tb[l]);
                            let (s2, c2) = s1.overflowing_sub(cb >> l & 1);
                            td[l] = s2;
                            fl[l] = (c1 | c2) as u32;
                        }
                    }
                    CarryKind::MadLoCC => {
                        let tc = row(regs, cc);
                        for l in 0..32 {
                            let prod_lo = (ta[l] as u64 * tb[l] as u64) as u32;
                            let sum = prod_lo as u64 + tc[l] as u64;
                            td[l] = sum as u32;
                            fl[l] = (sum >> 32) as u32;
                        }
                    }
                    CarryKind::MadHiC => {
                        let tc = row(regs, cc);
                        for l in 0..32 {
                            let hi = ((ta[l] as u64 * tb[l] as u64) >> 32) as u32;
                            let (s1, c1) = hi.overflowing_add(tc[l]);
                            let (s2, c2) = s1.overflowing_add(cb >> l & 1);
                            td[l] = s2;
                            fl[l] = (c1 | c2) as u32;
                        }
                    }
                }
            }
            *row_mut(regs, d) = td;
            cb = (cb & !m) | (flag_bits(&fl) & m);
        }
        *carry = cb;
    })
}

/// Builds a register-tiled thunk for a two-source ALU op, monomorphized
/// per operation (`f` inlines into the bounds-check-free lane loop).
#[inline]
fn bin_thunk(
    d: usize,
    a: usize,
    b: usize,
    f: impl Fn(u32, u32) -> u32 + Send + Sync + 'static,
) -> AluThunk {
    Box::new(move |regs, _, _, _, _| {
        let mut td = [0u32; 32];
        {
            let (ta, tb) = (row(regs, a), row(regs, b));
            for l in 0..32 {
                td[l] = f(ta[l], tb[l]);
            }
        }
        *row_mut(regs, d) = td;
    })
}

/// Register-tiled thunk for a one-source ALU op.
#[inline]
fn un_thunk(d: usize, a: usize, f: impl Fn(u32) -> u32 + Send + Sync + 'static) -> AluThunk {
    Box::new(move |regs, _, _, _, _| {
        let mut td = [0u32; 32];
        {
            let ta = row(regs, a);
            for l in 0..32 {
                td[l] = f(ta[l]);
            }
        }
        *row_mut(regs, d) = td;
    })
}

/// Register-tiled thunk for a 64-bit op over register pairs.
#[inline]
fn wide_thunk(
    dlo: usize,
    dhi: usize,
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
    f: impl Fn(u64, u64) -> u64 + Send + Sync + 'static,
) -> AluThunk {
    Box::new(move |regs, _, _, _, _| {
        let mut tdlo = [0u32; 32];
        let mut tdhi = [0u32; 32];
        {
            let (talo, tahi) = (row(regs, alo), row(regs, ahi));
            let (tblo, tbhi) = (row(regs, blo), row(regs, bhi));
            for l in 0..32 {
                let q = f(
                    talo[l] as u64 | (tahi[l] as u64) << 32,
                    tblo[l] as u64 | (tbhi[l] as u64) << 32,
                );
                tdlo[l] = q as u32;
                tdhi[l] = (q >> 32) as u32;
            }
        }
        *row_mut(regs, dlo) = tdlo;
        *row_mut(regs, dhi) = tdhi;
    })
}

/// Fused widening multiply: an adjacent `mul.lo`/`mul.hi` over one
/// operand pair — the backbone of limb-product inner loops — computes the
/// 64-bit product once and writes both halves. `lo_first` preserves
/// program order for the (degenerate) case where both halves target the
/// same row.
#[inline]
fn mul_pair_thunk(dlo: usize, dhi: usize, a: usize, b: usize, lo_first: bool) -> AluThunk {
    Box::new(move |regs, _, _, _, _| {
        let mut tlo = [0u32; 32];
        let mut thi = [0u32; 32];
        {
            let (ta, tb) = (row(regs, a), row(regs, b));
            for l in 0..32 {
                let q = ta[l] as u64 * tb[l] as u64;
                tlo[l] = q as u32;
                thi[l] = (q >> 32) as u32;
            }
        }
        if lo_first {
            *row_mut(regs, dlo) = tlo;
            *row_mut(regs, dhi) = thi;
        } else {
            *row_mut(regs, dhi) = thi;
            *row_mut(regs, dlo) = tlo;
        }
    })
}

/// Register-tiled predicate-setting thunk, monomorphized per [`CmpOp`]
/// (the comparison inlines instead of matching per lane).
#[inline]
fn cmp_thunk(
    p: usize,
    a: usize,
    b: BSource,
    f: impl Fn(u32, u32) -> bool + Send + Sync + 'static,
) -> AluThunk {
    Box::new(move |regs, preds, _, _, n| {
        let mut fl = [0u32; 32];
        let ta = row(regs, a);
        match b {
            BSource::Reg(b) => {
                let tb = row(regs, b);
                for l in 0..32 {
                    fl[l] = f(ta[l], tb[l]) as u32;
                }
            }
            BSource::Imm(imm) => {
                for l in 0..32 {
                    fl[l] = f(ta[l], imm) as u32;
                }
            }
        }
        let mask = full_mask(n);
        preds[p] = (preds[p] & !mask) | (flag_bits(&fl) & mask);
    })
}

/// A comparison's second operand: register row or immediate.
#[derive(Clone, Copy)]
enum BSource {
    Reg(usize),
    Imm(u32),
}

/// Dispatches a [`CmpOp`] to a monomorphized [`cmp_thunk`].
fn lower_cmp(p: usize, a: usize, b: BSource, op: crate::ptx::CmpOp) -> AluThunk {
    use crate::ptx::CmpOp;
    match op {
        CmpOp::Eq => cmp_thunk(p, a, b, |x, y| x == y),
        CmpOp::Ne => cmp_thunk(p, a, b, |x, y| x != y),
        CmpOp::Lt => cmp_thunk(p, a, b, |x, y| x < y),
        CmpOp::Le => cmp_thunk(p, a, b, |x, y| x <= y),
        CmpOp::Gt => cmp_thunk(p, a, b, |x, y| x > y),
        CmpOp::Ge => cmp_thunk(p, a, b, |x, y| x >= y),
    }
}

/// Lowers one register-only op to its monomorphized closure. `None` for
/// ops that must stay interpreter steps (memory, params, `DivBig` — and
/// the carry ops, which are handled by [`fuse_chain`]).
fn lower_thunk(dop: &DOp) -> Option<AluThunk> {
    use crate::ptx::Special;
    Some(match *dop {
        DOp::MovImm { d, imm } => {
            let d = d as usize;
            Box::new(move |regs, _, _, _, _| row_mut(regs, d).fill(imm))
        }
        DOp::Mov { d, a } => {
            let (d, a) = (d as usize, a as usize);
            Box::new(move |regs: &mut [u32], _, _, _, _| regs.copy_within(a..a + 32, d))
        }
        DOp::MovSpecial { d, s } => {
            let d = d as usize;
            match s {
                Special::TidX => Box::new(move |regs, _, _, geom: &Geometry, _| {
                    let base = geom.tid_base;
                    for (l, r) in row_mut(regs, d).iter_mut().enumerate() {
                        *r = base + l as u32;
                    }
                }),
                Special::CtaIdX => Box::new(move |regs, _, _, geom: &Geometry, _| {
                    row_mut(regs, d).fill(geom.ctaid)
                }),
                Special::NTidX => Box::new(move |regs, _, _, geom: &Geometry, _| {
                    row_mut(regs, d).fill(geom.ntid)
                }),
                Special::NCtaIdX => Box::new(move |regs, _, _, geom: &Geometry, _| {
                    row_mut(regs, d).fill(geom.nctaid)
                }),
            }
        }
        DOp::Add { d, a, b } => {
            bin_thunk(d as usize, a as usize, b as usize, |x, y| x.wrapping_add(y))
        }
        DOp::Sub { d, a, b } => {
            bin_thunk(d as usize, a as usize, b as usize, |x, y| x.wrapping_sub(y))
        }
        DOp::MulLo { d, a, b } => {
            bin_thunk(d as usize, a as usize, b as usize, |x, y| x.wrapping_mul(y))
        }
        DOp::MulHi { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| {
            ((x as u64 * y as u64) >> 32) as u32
        }),
        DOp::Div { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| {
            x.checked_div(y).unwrap_or(u32::MAX)
        }),
        DOp::Rem { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| {
            if y == 0 { x } else { x % y }
        }),
        DOp::Div64 { dlo, dhi, alo, ahi, blo, bhi } => wide_thunk(
            dlo as usize,
            dhi as usize,
            alo as usize,
            ahi as usize,
            blo as usize,
            bhi as usize,
            |x, y| x.checked_div(y).unwrap_or(u64::MAX),
        ),
        DOp::Rem64 { dlo, dhi, alo, ahi, blo, bhi } => wide_thunk(
            dlo as usize,
            dhi as usize,
            alo as usize,
            ahi as usize,
            blo as usize,
            bhi as usize,
            |x, y| if y == 0 { x } else { x % y },
        ),
        DOp::Bfind { d, a } => un_thunk(d as usize, a as usize, |v| {
            if v == 0 { u32::MAX } else { 31 - v.leading_zeros() }
        }),
        DOp::Shl { d, a, b } => {
            bin_thunk(d as usize, a as usize, b as usize, |x, y| x << (y & 31))
        }
        DOp::Shr { d, a, b } => {
            bin_thunk(d as usize, a as usize, b as usize, |x, y| x >> (y & 31))
        }
        DOp::And { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| x & y),
        DOp::Or { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| x | y),
        DOp::Xor { d, a, b } => bin_thunk(d as usize, a as usize, b as usize, |x, y| x ^ y),
        DOp::SetP { p, op, a, b } => {
            lower_cmp(p as usize, a as usize, BSource::Reg(b as usize), op)
        }
        DOp::SetPImm { p, op, a, imm } => {
            lower_cmp(p as usize, a as usize, BSource::Imm(imm), op)
        }
        DOp::PAnd { p, a, b } => {
            let (p, a, b) = (p as usize, a as usize, b as usize);
            Box::new(move |_, preds: &mut [u32], _, _, n| {
                let mask = full_mask(n);
                let computed = preds[a] & preds[b];
                preds[p] = (preds[p] & !mask) | (computed & mask);
            })
        }
        DOp::PNot { p, a } => {
            let (p, a) = (p as usize, a as usize);
            Box::new(move |_, preds: &mut [u32], _, _, n| {
                let mask = full_mask(n);
                let computed = !preds[a];
                preds[p] = (preds[p] & !mask) | (computed & mask);
            })
        }
        DOp::Selp { d, a, b, p } => {
            let (d, a, b, p) = (d as usize, a as usize, b as usize, p as usize);
            Box::new(move |regs: &mut [u32], preds: &mut [u32], _, _, _| {
                let pbits = preds[p];
                let mut td = [0u32; 32];
                {
                    let (ta, tb) = (row(regs, a), row(regs, b));
                    for l in 0..32 {
                        td[l] = if pbits >> l & 1 == 1 { ta[l] } else { tb[l] };
                    }
                }
                *row_mut(regs, d) = td;
            })
        }
        // Cost-only under sequential warps — same no-op as the interpreter.
        DOp::BarSync => Box::new(move |_, _, _, _, _| {}),
        DOp::ShflIdx { d, a, lane } => {
            let (d, a, lane) = (d as usize, a as usize, lane as usize);
            Box::new(move |regs, _, _, _, n| {
                // Gather before scattering so reads see pre-shuffle values.
                let mut vals = [0u32; 32];
                for l in 0..n {
                    let src_lane = regs[lane + l] as usize % n;
                    vals[l] = regs[a + src_lane];
                }
                regs[d..d + n].copy_from_slice(&vals[..n]);
            })
        }
        DOp::Ballot { d, p } => {
            let (d, p) = (d as usize, p as usize);
            Box::new(move |regs: &mut [u32], preds: &mut [u32], _, _, n| {
                let ballot = preds[p] & full_mask(n);
                regs[d..d + n].fill(ballot);
            })
        }
        // Memory, params, and data-dependent-cost ops stay interpreted.
        DOp::AddCC { .. }
        | DOp::AddC { .. }
        | DOp::SubCC { .. }
        | DOp::SubC { .. }
        | DOp::MadLoCC { .. }
        | DOp::MadHiC { .. }
        | DOp::LdGlobal { .. }
        | DOp::LdGlobalU8 { .. }
        | DOp::StGlobal { .. }
        | DOp::StGlobalU8 { .. }
        | DOp::LdShared { .. }
        | DOp::StShared { .. }
        | DOp::LdParam { .. }
        | DOp::DivBig { .. } => return None,
    })
}

/// Compiles a kernel's decoded program into closure chains, one
/// [`SuperBlock`] per maximal straight-line run.
pub(crate) fn compile(kernel: &Kernel) -> CompiledProgram {
    let prog: &Arc<DecodedProgram> = kernel.decoded_program();
    let ops = prog.ops();
    let forms = analyze_addr_forms(ops, kernel.num_regs as usize);
    let mut out = CompiledProgram {
        blocks: (0..ops.len()).map(|_| None).collect(),
        superblocks: 0,
        fused_chains: 0,
        fused_insts: 0,
        alu_insts: 0,
        interp_insts: 0,
        mem_insts: 0,
        affine_mem_insts: 0,
        lowered_superblocks: 0,
    };
    let mut i = 0usize;
    while i < ops.len() {
        let Op::I { run_end, .. } = &ops[i] else {
            i += 1;
            continue;
        };
        let end = *run_end as usize;
        let interp_before = out.interp_insts;
        let sb = lower_superblock(&ops[i..end], &forms[i..end], end as u32, &mut out);
        out.blocks[i] = Some(sb);
        out.superblocks += 1;
        if out.interp_insts == interp_before {
            out.lowered_superblocks += 1;
        }
        i = end;
    }
    out
}

/// Peephole over adjacent ops: `mul.lo` directly next to `mul.hi` on the
/// same operand pair (either order; the product is commutative) shares a
/// single widening multiply. The first destination must leave the second
/// op's sources intact, or the fused read-once would diverge from the
/// interpreter.
fn fuse_mul_pair(first: &DOp, next: Option<&Op>) -> Option<AluThunk> {
    let Some(Op::I { dop: second, .. }) = next else { return None };
    let same_pair =
        |a1: u32, b1: u32, a2: u32, b2: u32| (a1 == a2 && b1 == b2) || (a1 == b2 && b1 == a2);
    match (first, second) {
        (&DOp::MulLo { d: d1, a, b }, &DOp::MulHi { d: d2, a: a2, b: b2 })
            if same_pair(a, b, a2, b2) && d1 != a2 && d1 != b2 =>
        {
            Some(mul_pair_thunk(d1 as usize, d2 as usize, a as usize, b as usize, true))
        }
        (&DOp::MulHi { d: d1, a, b }, &DOp::MulLo { d: d2, a: a2, b: b2 })
            if same_pair(a, b, a2, b2) && d1 != a2 && d1 != b2 =>
        {
            Some(mul_pair_thunk(d2 as usize, d1 as usize, a as usize, b as usize, false))
        }
        _ => None,
    }
}

fn lower_superblock(
    run: &[Op],
    forms: &[AddrForm],
    end: u32,
    tally: &mut CompiledProgram,
) -> SuperBlock {
    let mut steps: Vec<Step> = Vec::new();
    let mut thunks: Vec<AluThunk> = Vec::new();
    let mut cycles: Vec<f64> = Vec::new();
    let mut chain: Vec<CarryOp> = Vec::new();

    fn flush_chain(
        chain: &mut Vec<CarryOp>,
        thunks: &mut Vec<AluThunk>,
        tally: &mut CompiledProgram,
    ) {
        if chain.is_empty() {
            return;
        }
        if chain.len() >= 2 {
            tally.fused_chains += 1;
            tally.fused_insts += chain.len();
        }
        thunks.push(fuse_chain(std::mem::take(chain)));
    }

    let mut i = 0;
    while i < run.len() {
        let Op::I { dop, cycles: cy, .. } = &run[i] else {
            unreachable!("superblock runs are all I")
        };
        if let Some(cop) = carry_op(dop) {
            chain.push(cop);
            cycles.push(*cy);
            tally.alu_insts += 1;
            i += 1;
            continue;
        }
        if let Some(thunk) = fuse_mul_pair(dop, run.get(i + 1)) {
            let Some(Op::I { cycles: cy2, .. }) = run.get(i + 1) else { unreachable!() };
            flush_chain(&mut chain, &mut thunks, tally);
            thunks.push(thunk);
            cycles.push(*cy);
            cycles.push(*cy2);
            tally.alu_insts += 2;
            i += 2;
            continue;
        }
        if let Some(thunk) = lower_thunk(dop) {
            flush_chain(&mut chain, &mut thunks, tally);
            thunks.push(thunk);
            cycles.push(*cy);
            tally.alu_insts += 1;
            i += 1;
            continue;
        }
        if let Some(mr) = dop.mem_ref() {
            // First-class lowered memory thunk: flush the pending
            // register-only segment so the stats replay stays in program
            // order.
            flush_chain(&mut chain, &mut thunks, tally);
            if !cycles.is_empty() {
                steps.push(Step::Alu {
                    thunks: std::mem::take(&mut thunks).into_boxed_slice(),
                    cycles: std::mem::take(&mut cycles).into_boxed_slice(),
                });
            }
            let affine = match forms[i] {
                AddrForm::LaneAffine { stride } => Some(stride),
                AddrForm::Unknown => None,
            };
            steps.push(Step::Mem(MemStep {
                kind: mr.kind,
                buf: mr.buf,
                addr: mr.addr,
                data: mr.data,
                affine,
                cycles: *cy,
            }));
            tally.mem_insts += 1;
            if affine.is_some() {
                tally.affine_mem_insts += 1;
            }
            i += 1;
            continue;
        }
        // Interpreter step: flush the pending register-only segment first.
        flush_chain(&mut chain, &mut thunks, tally);
        if !cycles.is_empty() {
            steps.push(Step::Alu {
                thunks: std::mem::take(&mut thunks).into_boxed_slice(),
                cycles: std::mem::take(&mut cycles).into_boxed_slice(),
            });
        }
        steps.push(Step::Interp { dop: dop.clone(), cycles: *cy });
        tally.interp_insts += 1;
        i += 1;
    }
    flush_chain(&mut chain, &mut thunks, tally);
    if !cycles.is_empty() {
        steps.push(Step::Alu {
            thunks: thunks.into_boxed_slice(),
            cycles: cycles.into_boxed_slice(),
        });
    }
    SuperBlock { steps: steps.into_boxed_slice(), end }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptx::{CmpOp, Inst as I, KernelBuilder, Special};

    fn carry_kernel() -> Kernel {
        let mut kb = KernelBuilder::new();
        let t = kb.reg();
        kb.push(I::MovSpecial { d: t, s: Special::TidX });
        let r = kb.regs(4);
        kb.push(I::MovImm { d: r[0], imm: 7 });
        kb.push(I::AddCC { d: r[1], a: r[0], b: t });
        kb.push(I::AddC { d: r[2], a: r[1], b: r[0] });
        kb.push(I::MadLoCC { d: r[1], a: r[1], b: r[2], c: r[0] });
        kb.push(I::MadHiC { d: r[2], a: r[1], b: r[2], c: r[0] });
        kb.push(I::StGlobal { buf: 0, addr: r[0], src: r[1] });
        let p = kb.pred();
        kb.push(I::SetPImm { p, op: CmpOp::Lt, a: t, imm: 4 });
        let then_ = kb.block(|b| b.push(I::Add { d: r[3], a: r[3], b: t }));
        kb.if_(p, then_, vec![]);
        kb.finish("carry_chain", 8)
    }

    #[test]
    fn compile_fuses_carry_chains_and_lowers_memory() {
        let kernel = carry_kernel();
        let (cp, built) = kernel.tier.get_or_compile(&kernel);
        assert!(built, "first call must build");
        assert_eq!(cp.superblock_count(), kernel.decoded_program().superblock_count());
        assert_eq!(cp.fused_chain_count(), 1, "the 4-op carry chain fuses once");
        assert_eq!(cp.fused_inst_count(), 4);
        assert_eq!(cp.interp_inst_count(), 0, "the store lowers to a mem thunk");
        assert_eq!(cp.mem_inst_count(), 1);
        assert_eq!(
            cp.affine_mem_inst_count(),
            1,
            "an immediate address is trivially lane-affine (stride 0)"
        );
        assert_eq!(cp.lowered_superblock_count(), cp.superblock_count());
        assert_eq!(cp.fallback_superblock_count(), 0);
        let (cp2, built2) = kernel.tier.get_or_compile(&kernel);
        assert!(!built2, "second call is a cache hit");
        assert!(Arc::ptr_eq(cp, cp2));
    }

    /// The codec-kernel address shape — `gid = ctaid·ntid + tid`, then
    /// `addr = gid·limb_bytes` bumped by one per byte, including through
    /// the grid-stride back-edge — must be recognized lane-affine with
    /// the right strides.
    #[test]
    fn affine_analysis_recognizes_codec_address_shape() {
        let mut kb = KernelBuilder::new();
        let (tid, ctaid, ntid, nctaid) = (kb.reg(), kb.reg(), kb.reg(), kb.reg());
        kb.push(I::MovSpecial { d: tid, s: Special::TidX });
        kb.push(I::MovSpecial { d: ctaid, s: Special::CtaIdX });
        kb.push(I::MovSpecial { d: ntid, s: Special::NTidX });
        kb.push(I::MovSpecial { d: nctaid, s: Special::NCtaIdX });
        let (i, step, n) = (kb.reg(), kb.reg(), kb.reg());
        kb.push(I::MulLo { d: i, a: ctaid, b: ntid });
        kb.push(I::Add { d: i, a: i, b: tid });
        kb.push(I::MulLo { d: step, a: ntid, b: nctaid });
        kb.push(I::LdParam { d: n, idx: 0 });
        let (lb, one, addr, v) = (kb.reg(), kb.reg(), kb.reg(), kb.reg());
        kb.push(I::MovImm { d: lb, imm: 3 });
        kb.push(I::MovImm { d: one, imm: 1 });
        let p = kb.pred();
        let cond = kb.block(|b| b.push(I::SetP { p, op: CmpOp::Lt, a: i, b: n }));
        let body = kb.block(|b| {
            b.push(I::MulLo { d: addr, a: i, b: lb });
            b.push(I::LdGlobalU8 { d: v, buf: 0, addr });
            b.push(I::StGlobalU8 { buf: 1, addr, src: v });
            b.push(I::Add { d: addr, a: addr, b: one });
            b.push(I::LdGlobalU8 { d: v, buf: 0, addr });
            b.push(I::StGlobalU8 { buf: 1, addr, src: v });
            b.push(I::Add { d: i, a: i, b: step });
        });
        kb.while_(p, cond, body, 64);
        let kernel = kb.finish("codec_shape", 16);
        let forms = addr_forms(&kernel);
        let ops = kernel.decoded_program().ops();
        let mem_forms: Vec<AddrForm> = ops
            .iter()
            .zip(forms.iter())
            .filter(|(op, _)| matches!(op, Op::I { dop, .. } if dop.mem_ref().is_some()))
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(
            mem_forms,
            vec![AddrForm::LaneAffine { stride: 3 }; 4],
            "all four byte accesses keep the gid·3 stride through the loop back-edge"
        );
        let (cp, _) = kernel.tier.get_or_compile(&kernel);
        assert_eq!(cp.mem_inst_count(), 4);
        assert_eq!(cp.affine_mem_inst_count(), 4);
        // Only the prologue superblock falls back (its `ld.param`); the
        // byte-dense loop body is fully lowered.
        assert_eq!(cp.fallback_superblock_count(), 1);
        assert_eq!(cp.interp_inst_count(), 1);
    }

    /// An address that mixes in loaded data must degrade to `Unknown`
    /// instead of producing a bogus hint shape.
    #[test]
    fn affine_analysis_rejects_data_dependent_addresses() {
        let mut kb = KernelBuilder::new();
        let t = kb.reg();
        kb.push(I::MovSpecial { d: t, s: Special::TidX });
        let (addr, v) = (kb.reg(), kb.reg());
        kb.push(I::LdGlobal { d: addr, buf: 0, addr: t });
        kb.push(I::LdGlobalU8 { d: v, buf: 1, addr });
        let kernel = kb.finish("data_dep_addr", 8);
        let forms = addr_forms(&kernel);
        let ops = kernel.decoded_program().ops();
        let mem_forms: Vec<AddrForm> = ops
            .iter()
            .zip(forms.iter())
            .filter(|(op, _)| matches!(op, Op::I { dop, .. } if dop.mem_ref().is_some()))
            .map(|(_, f)| *f)
            .collect();
        assert_eq!(
            mem_forms,
            vec![AddrForm::LaneAffine { stride: 1 }, AddrForm::Unknown],
            "the tid-addressed load is affine; the loaded-address access is not"
        );
    }

    #[test]
    fn tier_cache_clones_share_the_built_artifact() {
        let kernel = carry_kernel();
        let (p1, _) = kernel.tier.get_or_compile(&kernel);
        let p1 = Arc::clone(p1);
        let clone = kernel.clone();
        let (p2, built) = clone.tier.get_or_compile(&clone);
        assert!(!built, "clones share the compiled artifact");
        assert!(Arc::ptr_eq(&p1, p2));
    }

    #[test]
    fn launch_counter_survives_clone_and_counts_up() {
        let kernel = carry_kernel();
        assert_eq!(kernel.tier.record_launch(), 1);
        assert_eq!(kernel.tier.record_launch(), 2);
        let clone = kernel.clone();
        assert_eq!(clone.tier.record_launch(), 3);
        // The original keeps its own counter.
        assert_eq!(kernel.tier.record_launch(), 3);
    }

    #[test]
    fn tier_counter_arithmetic() {
        let mut t = TierCounters::default();
        t += TierCounters {
            tree: 1,
            decoded: 2,
            compiled: 3,
            promotions: 1,
            lowered_superblocks: 5,
            fallback_superblocks: 2,
            lowered_mem_thunks: 7,
            fallback_insts: 4,
        };
        t += TierCounters { compiled: 1, lowered_mem_thunks: 3, ..Default::default() };
        assert_eq!(t.total(), 7);
        assert_eq!(t.compiled, 4);
        assert_eq!(t.promotions, 1);
        assert_eq!(t.lowered_superblocks, 5);
        assert_eq!(t.fallback_superblocks, 2);
        assert_eq!(t.lowered_mem_thunks, 10);
        assert_eq!(t.fallback_insts, 4);
    }
}
