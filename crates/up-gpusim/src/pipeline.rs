//! Plan-level launch pipelining: a dependency-ordered DAG executor plus a
//! modeled overlap timeline.
//!
//! A query plan's independent kernel launches (one per expression slot,
//! plus the multi-pass aggregate reductions behind them) form a DAG. The
//! serial executor walks it one node at a time, so JIT compilation, PCIe
//! transfer, and kernel execution never overlap — neither on the host
//! (wall-clock) nor in the modeled timeline. This module supplies both
//! halves of the pipelined alternative:
//!
//! * [`run_dag`] — executes DAG nodes on a small host worker pool, drawing
//!   extra workers from the same process-wide token budget the parallel
//!   block executor uses ([`crate::par`]), so a pipelined plan and a
//!   parallel launch never multiply thread counts. Results are returned
//!   per node index, which lets the caller merge them in the exact order
//!   the serial executor would have produced — bit-exact outputs and
//!   modeled times by construction.
//! * [`plan_timeline`] — replays the DAG's node costs over three modeled
//!   engines (NVCC compile lanes, one H2D copy engine, N compute streams,
//!   all [`crate::stream::StreamScheduler`]s) in deterministic node-index
//!   order, yielding the makespan, overlap, and stream utilization a
//!   stream-pipelined deployment would see ([`PipelineReport`]).
//!
//! Pipelining never changes *what* is computed: every node runs the same
//! journaled launch machinery, and the merge order is fixed. Only host
//! wall-clock and the separately-reported pipeline timeline change.

use crate::stream::StreamScheduler;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Whether (and how wide) plan-level pipelining runs.
///
/// Like [`crate::par::SimParallelism::Threads`], `On(depth)` is a
/// *demand*: the DAG executor always runs `depth` host workers (it still
/// draws tokens from the shared budget so concurrent `Auto` launches back
/// off). `Off` is the serial reference mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PipelineMode {
    /// Serial reference mode: nodes run one at a time in index order.
    #[default]
    Off,
    /// Pipelined with this many host workers (clamped to ≥ 1).
    On(u32),
}

/// Default worker depth for `UP_PIPELINE=on`.
pub const DEFAULT_PIPELINE_DEPTH: u32 = 8;

impl PipelineMode {
    /// Whether the DAG path runs at all.
    pub fn enabled(self) -> bool {
        matches!(self, PipelineMode::On(_))
    }

    /// Host workers the DAG executor uses (≥ 1, including the caller).
    pub fn depth(self) -> usize {
        match self {
            PipelineMode::Off => 1,
            PipelineMode::On(d) => d.max(1) as usize,
        }
    }

    /// Parses `off`, `on` (default depth), or a worker count.
    pub fn parse(s: &str) -> Option<PipelineMode> {
        match s {
            "off" => Some(PipelineMode::Off),
            "on" => Some(PipelineMode::On(DEFAULT_PIPELINE_DEPTH)),
            n => n.parse::<u32>().ok().map(|d| {
                if d == 0 {
                    PipelineMode::Off
                } else {
                    PipelineMode::On(d)
                }
            }),
        }
    }

    /// The `UP_PIPELINE` environment override, read once per process
    /// (`off` | `on` | depth). `None` when unset; an unparsable value
    /// warns once on stderr and behaves like unset.
    pub fn from_env() -> Option<PipelineMode> {
        static CACHE: OnceLock<Option<PipelineMode>> = OnceLock::new();
        *CACHE.get_or_init(|| {
            crate::env::knob("UP_PIPELINE", "off | on | <depth>", PipelineMode::parse)
        })
    }
}

impl std::fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineMode::Off => write!(f, "off"),
            PipelineMode::On(d) => write!(f, "on({d})"),
        }
    }
}

/// Executes a DAG of jobs, returning each node's result by index.
///
/// `deps[i]` lists the nodes that must complete before node `i` starts;
/// every dependency index must be smaller than its dependent's (node
/// order is a topological order). Under [`PipelineMode::Off`] nodes run
/// on the caller in index order; under `On(depth)` a pool of `depth`
/// workers (caller included) drains the ready set. Every node runs even
/// when another fails — the caller collects the `Vec` in index order, so
/// the first error it observes is the same one serial execution would
/// have returned.
pub fn run_dag<T, E, F>(deps: &[Vec<usize>], mode: PipelineMode, job: F) -> Vec<Result<T, E>>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let n = deps.len();
    for (i, ds) in deps.iter().enumerate() {
        for &d in ds {
            assert!(d < i, "dag dependency {d} of node {i} is not earlier in node order");
        }
    }
    let workers = mode.depth().min(n.max(1));
    if workers <= 1 {
        return (0..n).map(&job).collect();
    }

    // Reverse adjacency + indegrees.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let indeg: Vec<AtomicUsize> = deps
        .iter()
        .enumerate()
        .map(|(i, ds)| {
            for &d in ds {
                children[d].push(i);
            }
            AtomicUsize::new(ds.len())
        })
        .collect();

    // Ready queue + completion count behind one lock; a condvar wakes
    // idle workers when nodes become ready (or everything finished).
    struct State {
        queue: Mutex<(VecDeque<usize>, usize)>,
        cv: Condvar,
    }
    let state = State { queue: Mutex::new((VecDeque::new(), 0)), cv: Condvar::new() };
    {
        let mut g = state.queue.lock().expect("dag queue poisoned");
        for (i, d) in indeg.iter().enumerate() {
            if d.load(Ordering::Relaxed) == 0 {
                g.0.push_back(i);
            }
        }
    }
    let results: Vec<Mutex<Option<Result<T, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    // Demand semantics: always spawn `workers − 1` extras, holding
    // whatever budget tokens are available so concurrent Auto launches
    // back off (see crate::par).
    let _tokens = crate::par::acquire_extra(workers - 1);
    let worker = || loop {
        let idx = {
            let mut g = state.queue.lock().expect("dag queue poisoned");
            loop {
                if let Some(i) = g.0.pop_front() {
                    break i;
                }
                if g.1 == n {
                    return;
                }
                g = state.cv.wait(g).expect("dag queue poisoned");
            }
        };
        let r = job(idx);
        *results[idx].lock().expect("dag result poisoned") = Some(r);
        let mut g = state.queue.lock().expect("dag queue poisoned");
        g.1 += 1;
        for &c in &children[idx] {
            if indeg[c].fetch_sub(1, Ordering::AcqRel) == 1 {
                g.0.push_back(c);
            }
        }
        drop(g);
        state.cv.notify_all();
    };
    std::thread::scope(|s| {
        for _ in 0..workers - 1 {
            s.spawn(worker);
        }
        worker();
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("dag result poisoned")
                .expect("every dag node runs to completion")
        })
        .collect()
}

/// Modeled cost of one DAG node, fed to [`plan_timeline`].
#[derive(Clone, Debug, Default)]
pub struct DagNodeCost {
    /// Earlier nodes whose completion gates this node's execution.
    pub deps: Vec<usize>,
    /// Modeled NVCC compile seconds (0 when cached / passthrough). The
    /// compile can start as soon as the plan arrives — it has no data
    /// dependencies — so it is placed at time 0 on a compile lane.
    pub compile_s: f64,
    /// Host→device transfer seconds, placed on the single copy engine
    /// once the node's dependencies have finished.
    pub h2d_s: f64,
    /// Execution seconds (kernel time; CPU profiles report their
    /// evaluator time here), placed on a compute stream after both the
    /// compile and the transfer complete.
    pub exec_s: f64,
}

/// The modeled pipeline timeline of one plan. Reported *alongside* the
/// engine's modeled-time totals, never folded into them — the serial
/// modeled breakdown stays bit-identical across pipeline modes.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineReport {
    /// DAG nodes placed on the timeline.
    pub nodes: u64,
    /// Compute streams of the modeled pool.
    pub streams: usize,
    /// Concurrent NVCC compile lanes of the modeled pool.
    pub compile_lanes: usize,
    /// Sum of all node costs — the no-overlap (serial) timeline length.
    pub serial_s: f64,
    /// Modeled completion time of the pipelined timeline.
    pub makespan_s: f64,
    /// `serial_s − makespan_s` (clamped at 0): seconds hidden by overlap.
    pub overlap_s: f64,
    /// Total compile seconds placed on the compile lanes.
    pub compile_s: f64,
    /// Total H2D seconds placed on the copy engine.
    pub h2d_s: f64,
    /// Total execution seconds placed on the compute streams.
    pub exec_s: f64,
    /// Total queueing delay across all three engines.
    pub queue_s: f64,
    /// Compute-stream utilization: `exec_s / (streams × makespan_s)`
    /// (0 when nothing ran).
    pub utilization: f64,
}

/// Replays a DAG's node costs over modeled compile lanes, one H2D copy
/// engine, and `streams` compute streams, in node-index order (a
/// topological order, so placement is deterministic). Returns the
/// timeline summary.
pub fn plan_timeline(nodes: &[DagNodeCost], streams: usize, compile_lanes: usize) -> PipelineReport {
    let streams = streams.max(1);
    let compile_lanes = compile_lanes.max(1);
    let mut compile = StreamScheduler::new(compile_lanes);
    let mut copy = StreamScheduler::new(1);
    let mut compute = StreamScheduler::new(streams);
    let mut finish = vec![0.0f64; nodes.len()];
    let mut makespan = 0.0f64;
    for (i, nd) in nodes.iter().enumerate() {
        let ready = nd.deps.iter().map(|&d| finish[d]).fold(0.0, f64::max);
        // Compilation has no data dependencies: it is issued at plan
        // arrival (time 0) on the earliest-available compile lane.
        let c_end = if nd.compile_s > 0.0 { compile.submit(0.0, nd.compile_s).end_s } else { 0.0 };
        let h_end = if nd.h2d_s > 0.0 { copy.submit(ready, nd.h2d_s).end_s } else { ready };
        let start = ready.max(c_end).max(h_end);
        finish[i] = if nd.exec_s > 0.0 { compute.submit(start, nd.exec_s).end_s } else { start };
        makespan = makespan.max(finish[i]);
    }
    let compile_total: f64 = nodes.iter().map(|n| n.compile_s).sum();
    let h2d_total: f64 = nodes.iter().map(|n| n.h2d_s).sum();
    let exec_total: f64 = nodes.iter().map(|n| n.exec_s).sum();
    let serial_s = compile_total + h2d_total + exec_total;
    let queue_s = compile.stats().queue_delay_total_s
        + copy.stats().queue_delay_total_s
        + compute.stats().queue_delay_total_s;
    let cap = streams as f64 * makespan;
    PipelineReport {
        nodes: nodes.len() as u64,
        streams,
        compile_lanes,
        serial_s,
        makespan_s: makespan,
        overlap_s: (serial_s - makespan).max(0.0),
        compile_s: compile_total,
        h2d_s: h2d_total,
        exec_s: exec_total,
        queue_s,
        utilization: if cap > 0.0 { exec_total / cap } else { 0.0 },
    }
}

/// Weighted deficit round-robin over session ids.
///
/// Each registered session accrues `weight` units of deficit per
/// scheduling round and pays one unit per grant, so over time session
/// *i* receives `wᵢ / Σw` of the grants — a wide analytic session
/// cannot starve short interactive ones. A session with no queued work
/// forfeits its accumulated deficit (classic DRR), which keeps the
/// scheduler work-conserving: grants never idle waiting for an empty
/// queue to "catch up".
#[derive(Debug)]
pub struct DeficitRoundRobin {
    sessions: Vec<DrrSession>,
    cursor: usize,
    /// Whether the session at `cursor` still needs its per-round
    /// deficit replenishment (set when the cursor arrives there).
    fresh: bool,
}

impl Default for DeficitRoundRobin {
    fn default() -> DeficitRoundRobin {
        DeficitRoundRobin { sessions: Vec::new(), cursor: 0, fresh: true }
    }
}

#[derive(Debug)]
struct DrrSession {
    id: u64,
    weight: f64,
    deficit: f64,
}

impl DeficitRoundRobin {
    /// An empty scheduler.
    pub fn new() -> DeficitRoundRobin {
        DeficitRoundRobin::default()
    }

    /// Registers `id` (or updates its weight). Weights are clamped to
    /// `[0.01, 100]`; non-finite weights fall back to 1.
    pub fn set_weight(&mut self, id: u64, weight: f64) {
        let weight = if weight.is_finite() { weight.clamp(0.01, 100.0) } else { 1.0 };
        match self.sessions.iter_mut().find(|s| s.id == id) {
            Some(s) => s.weight = weight,
            None => self.sessions.push(DrrSession { id, weight, deficit: 0.0 }),
        }
    }

    /// Registers `id` with the default weight (1) if unknown.
    pub fn ensure(&mut self, id: u64) {
        if !self.sessions.iter().any(|s| s.id == id) {
            self.sessions.push(DrrSession { id, weight: 1.0, deficit: 0.0 });
        }
    }

    /// Forgets `id` entirely.
    pub fn remove(&mut self, id: u64) {
        if let Some(pos) = self.sessions.iter().position(|s| s.id == id) {
            self.sessions.remove(pos);
            if self.cursor > pos {
                self.cursor -= 1;
            } else if self.cursor == pos {
                self.fresh = true;
            }
        }
    }

    /// Picks the next session to serve among those for which `eligible`
    /// returns true (i.e. sessions with queued work). The cursor visits
    /// sessions round-robin; on arrival a session's deficit is topped up
    /// by its weight, each grant costs one unit, and the cursor stays
    /// put while the deficit lasts (so weight-3 sessions get ~3 grants
    /// per round). Returns `None` when no registered session is
    /// eligible.
    pub fn next(&mut self, eligible: &dyn Fn(u64) -> bool) -> Option<u64> {
        if !self.sessions.iter().any(|s| eligible(s.id)) {
            return None;
        }
        loop {
            if self.cursor >= self.sessions.len() {
                self.cursor = 0;
                self.fresh = true;
            }
            let s = &mut self.sessions[self.cursor];
            if !eligible(s.id) {
                s.deficit = 0.0;
                self.cursor += 1;
                self.fresh = true;
                continue;
            }
            if self.fresh {
                s.deficit += s.weight;
                self.fresh = false;
            }
            if s.deficit >= 1.0 {
                s.deficit -= 1.0;
                return Some(s.id);
            }
            self.cursor += 1;
            self.fresh = true;
        }
    }
}

/// A server-wide modeled pipeline timeline: one shared compile-lane
/// pool plus, *per device*, an H2D copy engine and a compute-stream
/// pool, all against one global clock. Queries place their launch-DAG
/// node costs at their modeled arrival second on their home device, so
/// contention *between* queries shows up as queue delay on the shared
/// engines — the cross-query analogue of [`plan_timeline`]. The
/// single-device [`SharedTimeline::new`] constructor is the degenerate
/// fleet of one. Like the per-plan report, this is a side-band model:
/// engine results and `ModeledTime` totals never depend on it.
pub struct SharedTimeline {
    state: Mutex<SharedState>,
    streams: usize,
    compile_lanes: usize,
    devices: usize,
}

/// Per-device engine pair plus its placement accumulators.
struct DeviceLanes {
    copy: StreamScheduler,
    compute: StreamScheduler,
    queries: u64,
    nodes: u64,
    h2d_s: f64,
    exec_s: f64,
}

struct SharedState {
    compile: StreamScheduler,
    devices: Vec<DeviceLanes>,
    queries: u64,
    nodes: u64,
    compile_s: f64,
    makespan_s: f64,
}

impl SharedState {
    fn queue_total(&self) -> f64 {
        self.compile.stats().queue_delay_total_s
            + self
                .devices
                .iter()
                .map(|d| {
                    d.copy.stats().queue_delay_total_s + d.compute.stats().queue_delay_total_s
                })
                .sum::<f64>()
    }

    fn h2d_total(&self) -> f64 {
        self.devices.iter().map(|d| d.h2d_s).sum()
    }

    fn exec_total(&self) -> f64 {
        self.devices.iter().map(|d| d.exec_s).sum()
    }
}

/// Aggregate view of everything placed on a [`SharedTimeline`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SharedTimelineStats {
    /// Queries that placed a DAG on the shared pools.
    pub queries: u64,
    /// Total DAG nodes placed.
    pub nodes: u64,
    /// Simulated devices sharing the timeline.
    pub devices: usize,
    /// Compute streams *per device*.
    pub streams: usize,
    /// Concurrent NVCC compile lanes of the shared pool.
    pub compile_lanes: usize,
    /// Total compile seconds placed on the compile lanes.
    pub compile_s: f64,
    /// Total H2D seconds placed across every device's copy engine.
    pub h2d_s: f64,
    /// Total execution seconds placed across every device's streams.
    pub exec_s: f64,
    /// Total queueing delay across all shared engines.
    pub queue_s: f64,
    /// Modeled completion time of the whole server timeline.
    pub makespan_s: f64,
    /// `compile_s / (compile_lanes × makespan_s)` (0 when idle).
    pub compile_utilization: f64,
    /// `h2d_s / (devices × makespan_s)` (one copy engine per device).
    pub copy_utilization: f64,
    /// `exec_s / (devices × streams × makespan_s)` (0 when idle).
    pub stream_utilization: f64,
}

/// One device's slice of a [`SharedTimeline`]: what was routed to it
/// and how busy its private copy engine and compute streams were over
/// the *global* makespan (so an idle device reads as low utilization,
/// not a short local clock).
#[derive(Clone, Copy, Debug, Default)]
pub struct DeviceTimelineStats {
    /// Device index within the fleet.
    pub device: usize,
    /// Queries whose DAG was placed on this device.
    pub queries: u64,
    /// DAG nodes placed on this device.
    pub nodes: u64,
    /// H2D seconds placed on this device's copy engine.
    pub h2d_s: f64,
    /// Execution seconds placed on this device's compute streams.
    pub exec_s: f64,
    /// Queueing delay accrued on this device's two engines.
    pub queue_s: f64,
    /// `h2d_s / makespan_s` against the global clock (0 when idle).
    pub copy_utilization: f64,
    /// `exec_s / (streams × makespan_s)` against the global clock.
    pub stream_utilization: f64,
}

impl SharedTimeline {
    /// A fresh single-device timeline with `streams` compute streams
    /// and `compile_lanes` NVCC lanes (both clamped to ≥ 1).
    pub fn new(streams: usize, compile_lanes: usize) -> SharedTimeline {
        SharedTimeline::fleet(1, streams, compile_lanes)
    }

    /// A fresh timeline over `devices` simulated devices, each with its
    /// own H2D copy engine and `streams` compute streams, sharing one
    /// NVCC compile-lane pool and one global clock (all clamped ≥ 1).
    pub fn fleet(devices: usize, streams: usize, compile_lanes: usize) -> SharedTimeline {
        let devices = devices.max(1);
        let streams = streams.max(1);
        let compile_lanes = compile_lanes.max(1);
        SharedTimeline {
            state: Mutex::new(SharedState {
                compile: StreamScheduler::new(compile_lanes),
                devices: (0..devices)
                    .map(|_| DeviceLanes {
                        copy: StreamScheduler::new(1),
                        compute: StreamScheduler::new(streams),
                        queries: 0,
                        nodes: 0,
                        h2d_s: 0.0,
                        exec_s: 0.0,
                    })
                    .collect(),
                queries: 0,
                nodes: 0,
                compile_s: 0.0,
                makespan_s: 0.0,
            }),
            streams,
            compile_lanes,
            devices,
        }
    }

    /// Number of simulated devices sharing this timeline.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Places one query's DAG on device 0 — the single-device
    /// compatibility form of [`SharedTimeline::place_on`].
    pub fn place(&self, arrival_s: f64, nodes: &[DagNodeCost]) -> PipelineReport {
        self.place_on(0, arrival_s, nodes)
    }

    /// Places one query's DAG node costs on `device`'s engines in
    /// node-index order, with compiles issued at the query's modeled
    /// `arrival_s` on the *shared* compile lanes (they have no data
    /// dependencies and NVCC runs on the host either way). Returns the
    /// query's own report: `makespan_s` and `queue_s` are relative to
    /// its arrival, so they include whatever delay *other* in-flight
    /// queries imposed on the engines it touched. A `device` index past
    /// the fleet wraps modulo the device count.
    pub fn place_on(&self, device: usize, arrival_s: f64, nodes: &[DagNodeCost]) -> PipelineReport {
        let arrival_s = if arrival_s.is_finite() { arrival_s.max(0.0) } else { 0.0 };
        let device = device % self.devices;
        let mut st = self.state.lock().expect("shared timeline poisoned");
        let q0 = st.queue_total();
        let mut finish = vec![arrival_s; nodes.len()];
        let mut makespan = arrival_s;
        for (i, nd) in nodes.iter().enumerate() {
            let ready = nd.deps.iter().map(|&d| finish[d]).fold(arrival_s, f64::max);
            let c_end = if nd.compile_s > 0.0 {
                st.compile.submit(arrival_s, nd.compile_s).end_s
            } else {
                arrival_s
            };
            let lanes = &mut st.devices[device];
            let h_end =
                if nd.h2d_s > 0.0 { lanes.copy.submit(ready, nd.h2d_s).end_s } else { ready };
            let start = ready.max(c_end).max(h_end);
            finish[i] = if nd.exec_s > 0.0 {
                lanes.compute.submit(start, nd.exec_s).end_s
            } else {
                start
            };
            makespan = makespan.max(finish[i]);
        }
        let compile_total: f64 = nodes.iter().map(|n| n.compile_s).sum();
        let h2d_total: f64 = nodes.iter().map(|n| n.h2d_s).sum();
        let exec_total: f64 = nodes.iter().map(|n| n.exec_s).sum();
        let serial_s = compile_total + h2d_total + exec_total;
        let queue_s = st.queue_total() - q0;
        st.queries += 1;
        st.nodes += nodes.len() as u64;
        st.compile_s += compile_total;
        let lanes = &mut st.devices[device];
        lanes.queries += 1;
        lanes.nodes += nodes.len() as u64;
        lanes.h2d_s += h2d_total;
        lanes.exec_s += exec_total;
        st.makespan_s = st.makespan_s.max(makespan);
        let span = makespan - arrival_s;
        let cap = self.streams as f64 * span;
        PipelineReport {
            nodes: nodes.len() as u64,
            streams: self.streams,
            compile_lanes: self.compile_lanes,
            serial_s,
            makespan_s: span,
            overlap_s: (serial_s - span).max(0.0),
            compile_s: compile_total,
            h2d_s: h2d_total,
            exec_s: exec_total,
            queue_s,
            utilization: if cap > 0.0 { exec_total / cap } else { 0.0 },
        }
    }

    /// Aggregate stats over everything placed so far.
    pub fn stats(&self) -> SharedTimelineStats {
        let st = self.state.lock().expect("shared timeline poisoned");
        let span = st.makespan_s;
        let frac = |busy: f64, engines: usize| {
            if span > 0.0 {
                busy / (engines as f64 * span)
            } else {
                0.0
            }
        };
        SharedTimelineStats {
            queries: st.queries,
            nodes: st.nodes,
            devices: self.devices,
            streams: self.streams,
            compile_lanes: self.compile_lanes,
            compile_s: st.compile_s,
            h2d_s: st.h2d_total(),
            exec_s: st.exec_total(),
            queue_s: st.queue_total(),
            makespan_s: span,
            compile_utilization: frac(st.compile_s, self.compile_lanes),
            copy_utilization: frac(st.h2d_total(), self.devices),
            stream_utilization: frac(st.exec_total(), self.devices * self.streams),
        }
    }

    /// Per-device breakdown of everything placed so far, in device
    /// order; utilizations are against the global makespan.
    pub fn device_stats(&self) -> Vec<DeviceTimelineStats> {
        let st = self.state.lock().expect("shared timeline poisoned");
        let span = st.makespan_s;
        st.devices
            .iter()
            .enumerate()
            .map(|(i, d)| DeviceTimelineStats {
                device: i,
                queries: d.queries,
                nodes: d.nodes,
                h2d_s: d.h2d_s,
                exec_s: d.exec_s,
                queue_s: d.copy.stats().queue_delay_total_s
                    + d.compute.stats().queue_delay_total_s,
                copy_utilization: if span > 0.0 { d.h2d_s / span } else { 0.0 },
                stream_utilization: if span > 0.0 {
                    d.exec_s / (self.streams as f64 * span)
                } else {
                    0.0
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_parses_and_displays() {
        assert_eq!(PipelineMode::parse("off"), Some(PipelineMode::Off));
        assert_eq!(PipelineMode::parse("on"), Some(PipelineMode::On(DEFAULT_PIPELINE_DEPTH)));
        assert_eq!(PipelineMode::parse("3"), Some(PipelineMode::On(3)));
        assert_eq!(PipelineMode::parse("0"), Some(PipelineMode::Off));
        assert_eq!(PipelineMode::parse("bogus"), None);
        assert_eq!(PipelineMode::On(4).to_string(), "on(4)");
        assert_eq!(PipelineMode::Off.to_string(), "off");
        assert!(!PipelineMode::Off.enabled());
        assert_eq!(PipelineMode::Off.depth(), 1);
        assert_eq!(PipelineMode::On(0).depth(), 1);
        assert_eq!(PipelineMode::On(6).depth(), 6);
    }

    #[test]
    fn dag_results_match_serial_in_every_mode() {
        // A diamond plus a tail: 0 → {1, 2} → 3 → 4.
        let deps = vec![vec![], vec![0], vec![0], vec![1, 2], vec![3]];
        let job = |i: usize| -> Result<usize, ()> { Ok(i * i + 1) };
        let serial: Vec<_> = run_dag(&deps, PipelineMode::Off, job);
        for mode in [PipelineMode::On(1), PipelineMode::On(2), PipelineMode::On(8)] {
            let got: Vec<_> = run_dag(&deps, mode, job);
            assert_eq!(serial, got, "{mode}");
        }
    }

    #[test]
    fn dag_dependencies_complete_before_dependents_start() {
        use std::sync::atomic::AtomicU64;
        // Chain with a fan-out: completion stamps must respect edges.
        let deps = vec![vec![], vec![0], vec![0], vec![1], vec![2, 3]];
        let clock = AtomicU64::new(0);
        let stamps: Vec<AtomicU64> = (0..deps.len()).map(|_| AtomicU64::new(0)).collect();
        let starts: Vec<AtomicU64> = (0..deps.len()).map(|_| AtomicU64::new(0)).collect();
        let _: Vec<Result<(), ()>> = run_dag(&deps, PipelineMode::On(4), |i| {
            starts[i].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            stamps[i].store(clock.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            Ok(())
        });
        for (i, ds) in deps.iter().enumerate() {
            for &d in ds {
                assert!(
                    stamps[d].load(Ordering::SeqCst) < starts[i].load(Ordering::SeqCst),
                    "node {i} started before dependency {d} finished"
                );
            }
        }
    }

    #[test]
    fn dag_runs_every_node_even_after_an_error() {
        let deps = vec![vec![], vec![], vec![0]];
        let ran = AtomicUsize::new(0);
        let out: Vec<Result<usize, String>> = run_dag(&deps, PipelineMode::On(2), |i| {
            ran.fetch_add(1, Ordering::SeqCst);
            if i == 1 {
                Err("boom".to_string())
            } else {
                Ok(i)
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 3);
        assert!(out[1].is_err());
        // Index-order collect surfaces the same error serial would.
        let first_err = out.into_iter().collect::<Result<Vec<_>, _>>().unwrap_err();
        assert_eq!(first_err, "boom");
    }

    #[test]
    fn empty_dag_is_fine() {
        let out: Vec<Result<(), ()>> = run_dag(&[], PipelineMode::On(4), |_| Ok(()));
        assert!(out.is_empty());
    }

    #[test]
    fn timeline_overlaps_independent_nodes() {
        // Four independent nodes, each 0.3 s compile + 0.01 s copy +
        // 0.1 s exec. Serial: 1.64 s. Pipelined over 4 streams/lanes:
        // compiles run concurrently, copies serialize on the one engine.
        let nodes: Vec<DagNodeCost> = (0..4)
            .map(|_| DagNodeCost { deps: vec![], compile_s: 0.3, h2d_s: 0.01, exec_s: 0.1 })
            .collect();
        let r = plan_timeline(&nodes, 4, 4);
        assert_eq!(r.nodes, 4);
        assert!((r.serial_s - 1.64).abs() < 1e-12, "{r:?}");
        // All compiles end at 0.3; copies end by 0.04 ≤ 0.3; execs run
        // concurrently on 4 streams → makespan 0.4.
        assert!((r.makespan_s - 0.4).abs() < 1e-12, "{r:?}");
        assert!(r.overlap_s > 1.2, "{r:?}");
        assert!(r.utilization > 0.2, "{r:?}");
        // Serial placement (1 stream, 1 lane) cannot beat the sum of
        // compute+compile on their single engines.
        let s = plan_timeline(&nodes, 1, 1);
        assert!(s.makespan_s >= 1.2, "{s:?}");
        assert!(s.makespan_s <= s.serial_s + 1e-12, "{s:?}");
    }

    #[test]
    fn timeline_respects_dependencies() {
        let nodes = vec![
            DagNodeCost { deps: vec![], compile_s: 0.0, h2d_s: 0.0, exec_s: 1.0 },
            DagNodeCost { deps: vec![0], compile_s: 0.0, h2d_s: 0.0, exec_s: 1.0 },
        ];
        let r = plan_timeline(&nodes, 8, 8);
        // The chain cannot overlap: makespan is the full 2 s.
        assert!((r.makespan_s - 2.0).abs() < 1e-12, "{r:?}");
        assert_eq!(r.overlap_s, 0.0);
    }

    #[test]
    fn drr_splits_grants_by_weight_without_starvation() {
        let mut drr = DeficitRoundRobin::new();
        drr.set_weight(1, 3.0);
        drr.set_weight(2, 1.0);
        let mut grants = [0u32; 3];
        for _ in 0..400 {
            let id = drr.next(&|_| true).expect("both eligible");
            grants[id as usize] += 1;
        }
        // 3:1 weights → ~300/100 grants; allow slack for round phase.
        assert!((295..=305).contains(&grants[1]), "{grants:?}");
        assert!((95..=105).contains(&grants[2]), "{grants:?}");

        // A session with no queued work is skipped and forfeits deficit.
        let only_two = |id: u64| id == 2;
        for _ in 0..10 {
            assert_eq!(drr.next(&only_two), Some(2));
        }
        // Nothing eligible → None, not a spin.
        assert_eq!(drr.next(&|_| false), None);
        let mut empty = DeficitRoundRobin::new();
        assert_eq!(empty.next(&|_| true), None);

        // Removal keeps the cursor consistent.
        drr.ensure(7);
        drr.remove(1);
        assert_eq!(drr.next(&|id| id == 7), Some(7));
    }

    #[test]
    fn shared_timeline_charges_cross_query_contention_as_queue_delay() {
        // One stream, one lane: two queries arriving together contend.
        let tl = SharedTimeline::new(1, 1);
        let nodes =
            vec![DagNodeCost { deps: vec![], compile_s: 0.3, h2d_s: 0.01, exec_s: 0.1 }];
        let a = tl.place(0.0, &nodes);
        let b = tl.place(0.0, &nodes);
        // Query A runs uncontended; B queues behind A's compile + exec.
        assert!(a.queue_s.abs() < 1e-12, "{a:?}");
        assert!(b.queue_s > 0.25, "{b:?}");
        assert!(b.makespan_s > a.makespan_s, "{b:?} vs {a:?}");
        let s = tl.stats();
        assert_eq!(s.queries, 2);
        assert_eq!(s.nodes, 2);
        assert!((s.compile_s - 0.6).abs() < 1e-12, "{s:?}");
        assert!(s.makespan_s >= b.makespan_s, "{s:?}");
        assert!(s.stream_utilization > 0.0 && s.stream_utilization <= 1.0, "{s:?}");
        assert!(s.compile_utilization > 0.0 && s.compile_utilization <= 1.0, "{s:?}");

        // With wide pools the same two queries overlap instead.
        let wide = SharedTimeline::new(4, 4);
        let wa = wide.place(0.0, &nodes);
        let wb = wide.place(0.0, &nodes);
        assert!(wa.queue_s.abs() < 1e-12 && wb.queue_s < 0.02, "{wa:?} {wb:?}");

        // Empty timeline: no NaNs.
        let idle = SharedTimeline::new(2, 2).stats();
        assert_eq!(idle.makespan_s, 0.0);
        assert!(!idle.stream_utilization.is_nan());
    }

    #[test]
    fn fleet_timeline_isolates_devices_but_shares_compile_lanes() {
        // Two queries, no compile: on one device they contend on its
        // stream; spread over two devices they run fully in parallel.
        let nodes = vec![DagNodeCost { deps: vec![], compile_s: 0.0, h2d_s: 0.01, exec_s: 0.1 }];
        let one = SharedTimeline::fleet(1, 1, 1);
        one.place_on(0, 0.0, &nodes);
        let contended = one.place_on(0, 0.0, &nodes);
        assert!(contended.queue_s > 0.05, "{contended:?}");

        let two = SharedTimeline::fleet(2, 1, 1);
        let a = two.place_on(0, 0.0, &nodes);
        let b = two.place_on(1, 0.0, &nodes);
        assert!(a.queue_s.abs() < 1e-12 && b.queue_s.abs() < 1e-12, "{a:?} {b:?}");
        assert_eq!(two.devices(), 2);
        let s = two.stats();
        assert_eq!(s.devices, 2);
        assert_eq!(s.queries, 2);
        let per = two.device_stats();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].queries, 1);
        assert_eq!(per[1].queries, 1);
        assert!((per[0].exec_s - 0.1).abs() < 1e-12, "{:?}", per[0]);
        assert!((per[1].h2d_s - 0.01).abs() < 1e-12, "{:?}", per[1]);
        assert!(per[0].stream_utilization > 0.0 && per[0].stream_utilization <= 1.0);

        // Compile lanes stay shared across devices: with one lane, a
        // compile placed from device 1 queues behind device 0's.
        let lanes = SharedTimeline::fleet(2, 4, 1);
        let heavy = vec![DagNodeCost { deps: vec![], compile_s: 0.3, h2d_s: 0.0, exec_s: 0.01 }];
        let c0 = lanes.place_on(0, 0.0, &heavy);
        let c1 = lanes.place_on(1, 0.0, &heavy);
        assert!(c0.queue_s.abs() < 1e-12, "{c0:?}");
        assert!(c1.queue_s > 0.25, "{c1:?}");

        // Out-of-range device wraps instead of panicking.
        let w = two.place_on(5, 0.0, &nodes);
        assert!(w.makespan_s > 0.0);
        assert_eq!(two.device_stats()[1].queries, 2);
    }

    #[test]
    fn timeline_of_nothing_is_zero_not_nan() {
        let r = plan_timeline(&[], 4, 2);
        assert_eq!(r.makespan_s, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert!(!r.utilization.is_nan());
        let z = plan_timeline(
            &[DagNodeCost { deps: vec![], compile_s: 0.0, h2d_s: 0.0, exec_s: 0.0 }],
            4,
            2,
        );
        assert_eq!(z.makespan_s, 0.0);
        assert_eq!(z.utilization, 0.0);
        assert!(!z.utilization.is_nan());
    }
}
