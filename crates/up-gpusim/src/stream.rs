//! Simulated CUDA-stream scheduler with queueing-delay accounting.
//!
//! A real deployment multiplexes concurrent queries' kernels over a small
//! number of CUDA streams; when every stream is busy, a launch waits. The
//! standalone cost model ([`crate::cost`]) prices a kernel as if it owned
//! the device — correct for the paper's single-query experiments, but a
//! concurrent service must also charge the *queueing delay* a launch
//! accrues before its stream frees up. This module models exactly that:
//! N streams in modeled time, each submission routed to the
//! earliest-available stream (the greedy list-scheduling discipline CUDA's
//! round-robin approximates under saturation), returning the delay so the
//! caller can fold it into its `ModeledTime`.
//!
//! The scheduler is deliberately functional-only: it never sleeps. All
//! times are modeled seconds on the caller's timeline.

/// Placement of one submission on a stream.
#[derive(Clone, Copy, Debug)]
pub struct StreamSlot {
    /// Index of the stream the work ran on.
    pub stream: usize,
    /// Modeled start time (≥ arrival; later when the stream was busy).
    pub start_s: f64,
    /// Modeled completion time.
    pub end_s: f64,
    /// `start_s − arrival_s`: time spent waiting for the stream.
    pub queue_delay_s: f64,
}

/// Point-in-time scheduler statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Number of streams.
    pub streams: usize,
    /// Kernels submitted so far.
    pub launches: u64,
    /// Total modeled busy seconds across all streams (SM-seconds of
    /// stream occupancy).
    pub busy_s: f64,
    /// Latest modeled completion time seen (the makespan of the
    /// workload so far).
    pub makespan_s: f64,
    /// `busy_s / (streams × makespan_s)` — how well the workload kept
    /// the streams fed (0 when nothing ran).
    pub utilization: f64,
    /// Sum of all queueing delays.
    pub queue_delay_total_s: f64,
    /// Largest single queueing delay.
    pub queue_delay_max_s: f64,
}

/// An N-stream earliest-available scheduler over modeled time.
#[derive(Clone, Debug)]
pub struct StreamScheduler {
    busy_until: Vec<f64>,
    busy_total: f64,
    launches: u64,
    makespan: f64,
    queue_delay_total: f64,
    queue_delay_max: f64,
}

impl StreamScheduler {
    /// New scheduler with `streams` streams (clamped to ≥ 1).
    pub fn new(streams: usize) -> StreamScheduler {
        StreamScheduler {
            busy_until: vec![0.0; streams.max(1)],
            busy_total: 0.0,
            launches: 0,
            makespan: 0.0,
            queue_delay_total: 0.0,
            queue_delay_max: 0.0,
        }
    }

    /// Number of streams.
    pub fn streams(&self) -> usize {
        self.busy_until.len()
    }

    /// Places a kernel of `duration_s` modeled seconds arriving at
    /// `arrival_s` on the earliest-available stream.
    pub fn submit(&mut self, arrival_s: f64, duration_s: f64) -> StreamSlot {
        // Defensive clamps: a negative, NaN, or infinite input would
        // poison every later placement (an ∞ makespan turns utilization
        // into NaN), so both flatten to 0 here.
        let arrival_s = if arrival_s.is_finite() { arrival_s.max(0.0) } else { 0.0 };
        let duration_s = if duration_s.is_finite() { duration_s.max(0.0) } else { 0.0 };
        // Earliest-available stream; ties break toward the lowest index.
        let (stream, free_at) = self
            .busy_until
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("at least one stream");
        let start_s = arrival_s.max(free_at);
        let end_s = start_s + duration_s;
        self.busy_until[stream] = end_s;
        self.busy_total += duration_s;
        self.launches += 1;
        self.makespan = self.makespan.max(end_s);
        let queue_delay_s = start_s - arrival_s;
        self.queue_delay_total += queue_delay_s;
        self.queue_delay_max = self.queue_delay_max.max(queue_delay_s);
        StreamSlot { stream, start_s, end_s, queue_delay_s }
    }

    /// Current statistics.
    pub fn stats(&self) -> StreamStats {
        // `cap` is 0 both before any submission and when every
        // submission had zero duration (makespan never advanced) — the
        // streams were never occupied, so utilization is 0, not NaN.
        let cap = self.busy_until.len() as f64 * self.makespan;
        let utilization =
            if cap > 0.0 { (self.busy_total / cap).clamp(0.0, 1.0) } else { 0.0 };
        StreamStats {
            streams: self.busy_until.len(),
            launches: self.launches,
            busy_s: self.busy_total,
            makespan_s: self.makespan,
            utilization,
            queue_delay_total_s: self.queue_delay_total,
            queue_delay_max_s: self.queue_delay_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_submissions_have_no_delay() {
        let mut s = StreamScheduler::new(2);
        let a = s.submit(0.0, 1.0);
        let b = s.submit(0.0, 1.0);
        assert_eq!(a.queue_delay_s, 0.0);
        assert_eq!(b.queue_delay_s, 0.0);
        assert_ne!(a.stream, b.stream, "second kernel takes the free stream");
    }

    #[test]
    fn contention_queues_on_the_earliest_available_stream() {
        let mut s = StreamScheduler::new(2);
        s.submit(0.0, 1.0); // stream 0: busy until 1.0
        s.submit(0.0, 3.0); // stream 1: busy until 3.0
        let c = s.submit(0.0, 1.0); // must wait for stream 0
        assert_eq!(c.stream, 0);
        assert_eq!(c.start_s, 1.0);
        assert_eq!(c.queue_delay_s, 1.0);
        let st = s.stats();
        assert_eq!(st.launches, 3);
        assert_eq!(st.queue_delay_total_s, 1.0);
        assert_eq!(st.queue_delay_max_s, 1.0);
        // busy 5 s over 2 streams × makespan 3 s.
        assert!((st.utilization - 5.0 / 6.0).abs() < 1e-12, "{st:?}");
    }

    #[test]
    fn later_arrivals_start_on_time_when_streams_are_free() {
        let mut s = StreamScheduler::new(1);
        s.submit(0.0, 1.0);
        let b = s.submit(5.0, 1.0); // arrives after the stream drained
        assert_eq!(b.start_s, 5.0);
        assert_eq!(b.queue_delay_s, 0.0);
        let st = s.stats();
        // 2 s busy over a 6 s makespan on one stream.
        assert!((st.utilization - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn zero_streams_clamps_to_one() {
        let mut s = StreamScheduler::new(0);
        assert_eq!(s.streams(), 1);
        let a = s.submit(0.0, 1.0);
        assert_eq!(a.stream, 0);
    }

    #[test]
    fn utilization_is_zero_before_any_work() {
        let s = StreamScheduler::new(4);
        assert_eq!(s.stats().utilization, 0.0);
        assert_eq!(s.stats().launches, 0);
    }

    #[test]
    fn zero_duration_submissions_report_zero_utilization_not_nan() {
        // Launches happened but never occupied a stream: makespan stays
        // 0, and busy/(streams × makespan) must come back 0.0, not NaN.
        let mut s = StreamScheduler::new(3);
        for _ in 0..5 {
            s.submit(0.0, 0.0);
        }
        let st = s.stats();
        assert_eq!(st.launches, 5);
        assert_eq!(st.busy_s, 0.0);
        assert_eq!(st.makespan_s, 0.0);
        assert!(!st.utilization.is_nan(), "{st:?}");
        assert_eq!(st.utilization, 0.0, "{st:?}");
    }

    #[test]
    fn zero_duration_after_real_work_keeps_utilization_finite() {
        let mut s = StreamScheduler::new(2);
        s.submit(0.0, 2.0);
        let z = s.submit(1.0, 0.0); // zero-width probe mid-timeline
        assert_eq!(z.end_s, z.start_s);
        let st = s.stats();
        assert!((st.utilization - 2.0 / 4.0).abs() < 1e-12, "{st:?}");
        assert!(!st.utilization.is_nan());
    }

    #[test]
    fn non_finite_inputs_are_flattened_to_zero() {
        let mut s = StreamScheduler::new(1);
        let a = s.submit(f64::NAN, f64::INFINITY);
        assert_eq!(a.start_s, 0.0);
        assert_eq!(a.end_s, 0.0);
        let b = s.submit(f64::NEG_INFINITY, 1.0);
        assert_eq!(b.start_s, 0.0);
        let st = s.stats();
        assert!(st.makespan_s.is_finite(), "{st:?}");
        assert!(!st.utilization.is_nan(), "{st:?}");
        assert!((st.utilization - 1.0).abs() < 1e-12, "{st:?}");
    }
}
