//! Tier-2 executor: pre-decoded kernel programs and a warp-batched
//! superblock interpreter.
//!
//! The reference tree-walker in [`crate::exec`] re-traverses the `Stmt`
//! tree for every warp and re-matches the `Inst` enum once *per lane*
//! (the match sits inside the per-lane closure). This module flattens a
//! [`Kernel`] once into a flat array of decoded ops with explicit branch
//! targets, memoized per-op issue cycles, and a static straight-line
//! "superblock" analysis (`run_end`), then interprets that array with an
//! instruction-outer/lane-inner loop over a structure-of-arrays register
//! file. Inside full-mask superblocks no divergence stack or mask test
//! runs at all.
//!
//! The decoded program is built once per kernel and cached on the kernel
//! itself (see [`DecodedCache`]); since `up-jit` keeps compiled kernels in
//! its shared cache behind an `Arc`, JIT cache hits amortize decode the
//! same way they amortize compiles.
//!
//! **Bit-exactness contract**: for every kernel, the decoded interpreter
//! produces byte-identical [`crate::GlobalMem`] contents, a
//! field-identical [`crate::ExecStats`] (including the f64
//! `warp_issue_cycles` sum, which is accumulated in the exact same
//! per-instruction order), and the same error value on the same failing
//! launch as the tree-walker. The differential fuzz tests below enforce
//! this across divergence, `While` loops, shared memory, byte stores,
//! carry chains, and all three error classes.

use crate::exec::{
    full_mask, note_transactions, shared_store, shared_word, ExecStats, Geometry, LaunchConfig,
    MemAccess, SectorSeen, SimError,
};
use crate::env::knob as env_parse;
use crate::ptx::{issue_cycles, CmpOp, Inst, Kernel, Special, Stmt};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Which functional interpreter executes launches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecBackend {
    /// The reference `Stmt`-tree walker (slow, kept as the oracle the
    /// decoded interpreter is differentially tested against).
    Tree,
    /// The pre-decoded flat-program interpreter (fast path).
    Decoded,
    /// The closure-compiled tier (see [`crate::compiled`]), forced from
    /// the first launch: full-mask superblocks run compiled closures,
    /// divergent regions fall back to the decoded interpreter.
    Compiled,
    /// Tiered promotion: launches start on the decoded interpreter and
    /// promote to the compiled tier once the kernel's launch count
    /// exceeds [`crate::compiled::tier_threshold`] (so cold kernels never
    /// pay closure-compile cost). Combined with `SimParallelism::Auto`,
    /// small launches also stay serial (see `exec::AUTO_MIN_THREADS`),
    /// so they stop paying thread-spawn overhead.
    #[default]
    Auto,
}

impl ExecBackend {
    /// Parses `tree`, `decoded`, `compiled`, or `auto` (CLI flags and
    /// `UP_SIM_EXEC`).
    pub fn parse(s: &str) -> Option<ExecBackend> {
        match s {
            "tree" => Some(ExecBackend::Tree),
            "decoded" => Some(ExecBackend::Decoded),
            "compiled" => Some(ExecBackend::Compiled),
            "auto" => Some(ExecBackend::Auto),
            _ => None,
        }
    }

    /// The `UP_SIM_EXEC` environment knob, read and parsed once per
    /// process (a set-but-invalid value warns on stderr, like
    /// `UP_SIM_THREADS`). `None` when unset or invalid.
    pub fn from_env() -> Option<ExecBackend> {
        static CACHE: OnceLock<Option<ExecBackend>> = OnceLock::new();
        *CACHE.get_or_init(|| {
            env_parse("UP_SIM_EXEC", "tree | decoded | compiled | auto", ExecBackend::parse)
        })
    }

    /// `UP_SIM_EXEC` if set, else [`ExecBackend::Auto`].
    pub fn env_default() -> ExecBackend {
        ExecBackend::from_env().unwrap_or_default()
    }

    /// Whether launches under this knob run the decoded interpreter.
    pub fn uses_decoded(self) -> bool {
        !matches!(self, ExecBackend::Tree)
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Tree => write!(f, "tree"),
            ExecBackend::Decoded => write!(f, "decoded"),
            ExecBackend::Compiled => write!(f, "compiled"),
            ExecBackend::Auto => write!(f, "auto"),
        }
    }
}

/// Lane stride of the structure-of-arrays register file: register `r` of
/// lane `l` lives at `r * LANES + l`. Fixed at the warp width so decode
/// is independent of launch geometry (partial warps just use a prefix).
const LANES: usize = 32;

/// A decoded instruction: the [`Inst`] operands resolved to
/// structure-of-arrays offsets (`reg * 32`) so the interpreter indexes the
/// flat register file directly, with no per-lane enum match.
#[derive(Clone, Debug)]
pub(crate) enum DOp {
    MovImm { d: u32, imm: u32 },
    Mov { d: u32, a: u32 },
    MovSpecial { d: u32, s: Special },
    Add { d: u32, a: u32, b: u32 },
    AddCC { d: u32, a: u32, b: u32 },
    AddC { d: u32, a: u32, b: u32 },
    Sub { d: u32, a: u32, b: u32 },
    SubCC { d: u32, a: u32, b: u32 },
    SubC { d: u32, a: u32, b: u32 },
    MulLo { d: u32, a: u32, b: u32 },
    MulHi { d: u32, a: u32, b: u32 },
    MadLoCC { d: u32, a: u32, b: u32, c: u32 },
    MadHiC { d: u32, a: u32, b: u32, c: u32 },
    Div { d: u32, a: u32, b: u32 },
    Rem { d: u32, a: u32, b: u32 },
    Div64 { dlo: u32, dhi: u32, alo: u32, ahi: u32, blo: u32, bhi: u32 },
    Rem64 { dlo: u32, dhi: u32, alo: u32, ahi: u32, blo: u32, bhi: u32 },
    Bfind { d: u32, a: u32 },
    DivBig { d: u32, dn: u8, a: u32, an: u8, b: u32, bn: u8, rem: bool },
    Shl { d: u32, a: u32, b: u32 },
    Shr { d: u32, a: u32, b: u32 },
    And { d: u32, a: u32, b: u32 },
    Or { d: u32, a: u32, b: u32 },
    Xor { d: u32, a: u32, b: u32 },
    SetP { p: u8, op: CmpOp, a: u32, b: u32 },
    SetPImm { p: u8, op: CmpOp, a: u32, imm: u32 },
    PAnd { p: u8, a: u8, b: u8 },
    PNot { p: u8, a: u8 },
    Selp { d: u32, a: u32, b: u32, p: u8 },
    LdGlobal { d: u32, buf: u8, addr: u32 },
    LdGlobalU8 { d: u32, buf: u8, addr: u32 },
    StGlobal { buf: u8, addr: u32, src: u32 },
    StGlobalU8 { buf: u8, addr: u32, src: u32 },
    LdShared { d: u32, addr: u32 },
    StShared { addr: u32, src: u32 },
    LdParam { d: u32, idx: u8 },
    BarSync,
    ShflIdx { d: u32, a: u32, lane: u32 },
    Ballot { d: u32, p: u8 },
}

/// Access class of a global-memory [`DOp`] (see [`DOp::mem_ref`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum MemOpKind {
    /// `ld.global` — 4-byte load into a register row.
    LdWord,
    /// `ld.global.u8` — byte load zero-extended into a register row.
    LdByte,
    /// `st.global` — 4-byte store from a register row.
    StWord,
    /// `st.global.u8` — byte store (low byte of the source row).
    StByte,
}

impl MemOpKind {
    /// Access width in bytes (the coalescing model's `width` argument).
    pub(crate) fn width(self) -> u32 {
        match self {
            MemOpKind::LdWord | MemOpKind::StWord => 4,
            MemOpKind::LdByte | MemOpKind::StByte => 1,
        }
    }
}

/// Per-op address metadata of a global-memory access: which rows of the
/// SoA register file hold the address and the data, and the access
/// class. This is the decoded program's contribution to the compiled
/// tier's mem-thunk lowering and affine-address analysis.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MemRef {
    pub(crate) kind: MemOpKind,
    /// Device buffer index.
    pub(crate) buf: u8,
    /// SoA row offset (pre-scaled ×32) of the address operand.
    pub(crate) addr: u32,
    /// SoA row offset of the destination (loads) or source (stores).
    pub(crate) data: u32,
}

impl DOp {
    /// The global-memory access this op performs, if any. Shared and
    /// per-block memory (`LdShared`/`StShared`) and parameters stay
    /// outside the coalescing/lowering machinery.
    pub(crate) fn mem_ref(&self) -> Option<MemRef> {
        Some(match *self {
            DOp::LdGlobal { d, buf, addr } => {
                MemRef { kind: MemOpKind::LdWord, buf, addr, data: d }
            }
            DOp::LdGlobalU8 { d, buf, addr } => {
                MemRef { kind: MemOpKind::LdByte, buf, addr, data: d }
            }
            DOp::StGlobal { buf, addr, src } => {
                MemRef { kind: MemOpKind::StWord, buf, addr, data: src }
            }
            DOp::StGlobalU8 { buf, addr, src } => {
                MemRef { kind: MemOpKind::StByte, buf, addr, data: src }
            }
            _ => return None,
        })
    }
}

/// One op of the flat program. Control ops carry explicit targets; the
/// interpreter *jumps over* zero-mask regions instead of masking through
/// them, which is exactly how the tree-walker's `if mask == 0 {{ return }}`
/// early-outs behave (no stats, no effects).
#[derive(Clone, Debug)]
pub(crate) enum Op {
    /// A plain instruction: the decoded op, its memoized issue cycles,
    /// and the end (exclusive) of the maximal straight-line run of `I`
    /// ops it belongs to — the static superblock bound.
    I { dop: DOp, cycles: f64, run_end: u32 },
    /// Branch head: computes taken/not-taken, pays the 1-cycle branch
    /// issue, pushes a frame, and either falls through into `then` or
    /// jumps to `else_pc` (the matching [`Op::Else`]).
    If { p: u8, else_pc: u32 },
    /// Then/else seam: switches the mask to the frame's not-taken set,
    /// jumping to `end_pc` (the matching [`Op::EndIf`]) when it is empty.
    Else { end_pc: u32 },
    /// Branch reconvergence: restores the outer mask and pops the frame.
    EndIf,
    /// Loop head: pushes a loop frame capturing the outer mask.
    WhileBegin,
    /// Loop test (placed after the condition block): drops lanes whose
    /// predicate cleared, counts divergence, and exits to `end_pc` when
    /// no lane remains.
    WhileTest { p: u8, end_pc: u32 },
    /// Loop backedge: bumps the iteration count, enforces `max_iter`, and
    /// jumps back to `cond_pc`.
    WhileEnd { cond_pc: u32, max_iter: u32 },
}

/// A kernel pre-decoded for the warp-batched interpreter: flat ops with
/// branch targets, memoized issue cycles, and superblock run bounds.
/// Built once per kernel (see [`Kernel::decoded_program`]) and shared by
/// every launch and every clone of the kernel.
#[derive(Debug)]
pub struct DecodedProgram {
    ops: Vec<Op>,
    /// Static instruction count (loop bodies once) — memoized here so
    /// `Kernel::static_inst_count` and the compile-time model stop
    /// re-walking the tree.
    static_insts: usize,
    /// Number of maximal straight-line `I` runs (superblocks).
    superblocks: usize,
}

impl DecodedProgram {
    /// Static instructions (same count as the tree walk: each `I`, `If`,
    /// and `While` is one).
    pub fn static_inst_count(&self) -> usize {
        self.static_insts
    }

    /// Flat ops in the program (instructions plus control markers).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Maximal straight-line instruction runs — the regions the
    /// interpreter executes with no control or mask checks when the warp
    /// is converged.
    pub fn superblock_count(&self) -> usize {
        self.superblocks
    }

    /// The flat op array — the closure compiler's input.
    pub(crate) fn ops(&self) -> &[Op] {
        &self.ops
    }
}

static DECODE_BUILDS: AtomicU64 = AtomicU64::new(0);
static DECODE_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide decode counters: `(programs_built, cache_hits)`. A hit is
/// any [`Kernel::decoded_program`] call answered by the kernel's cache —
/// JIT-cached kernels hit once per launch after the first.
pub fn decode_counters() -> (u64, u64) {
    (DECODE_BUILDS.load(Ordering::Relaxed), DECODE_HITS.load(Ordering::Relaxed))
}

/// Per-kernel decode cache. Cloning a kernel after its program is built
/// shares the `Arc`; the JIT cache holds kernels behind `Arc` anyway, so
/// every cache hit reuses the same decoded program.
#[derive(Clone, Default)]
pub struct DecodedCache(OnceLock<Arc<DecodedProgram>>);

impl DecodedCache {
    pub(crate) fn get_or_decode(&self, kernel: &Kernel) -> &Arc<DecodedProgram> {
        if let Some(p) = self.0.get() {
            DECODE_HITS.fetch_add(1, Ordering::Relaxed);
            return p;
        }
        self.0.get_or_init(|| {
            DECODE_BUILDS.fetch_add(1, Ordering::Relaxed);
            Arc::new(decode(kernel))
        })
    }
}

impl std::fmt::Debug for DecodedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.get() {
            Some(p) => write!(f, "DecodedCache({} ops)", p.op_count()),
            None => write!(f, "DecodedCache(empty)"),
        }
    }
}

/// Flattens a kernel's statement tree into a [`DecodedProgram`].
fn decode(kernel: &Kernel) -> DecodedProgram {
    let mut ops = Vec::new();
    let mut static_insts = 0usize;
    flatten(&kernel.body, &mut ops, &mut static_insts);
    // Superblock analysis: run_end[i] = end (exclusive) of the maximal
    // consecutive run of `I` ops containing i.
    let mut superblocks = 0usize;
    let mut end = 0u32;
    for i in (0..ops.len()).rev() {
        if let Op::I { run_end, .. } = &mut ops[i] {
            if end as usize <= i {
                end = i as u32 + 1;
                superblocks += 1;
            }
            *run_end = end;
        } else {
            end = 0;
        }
    }
    DecodedProgram { ops, static_insts, superblocks }
}

fn flatten(stmts: &[Stmt], ops: &mut Vec<Op>, static_insts: &mut usize) {
    for stmt in stmts {
        match stmt {
            Stmt::I(inst) => {
                *static_insts += 1;
                ops.push(Op::I { dop: decode_inst(inst), cycles: issue_cycles(inst), run_end: 0 });
            }
            Stmt::If { p, then_, else_ } => {
                *static_insts += 1;
                let if_at = ops.len();
                ops.push(Op::If { p: *p, else_pc: 0 });
                flatten(then_, ops, static_insts);
                let else_at = ops.len();
                ops.push(Op::Else { end_pc: 0 });
                flatten(else_, ops, static_insts);
                let end_at = ops.len();
                ops.push(Op::EndIf);
                let Op::If { else_pc, .. } = &mut ops[if_at] else { unreachable!() };
                *else_pc = else_at as u32;
                let Op::Else { end_pc } = &mut ops[else_at] else { unreachable!() };
                *end_pc = end_at as u32;
            }
            Stmt::While { p, cond, body, max_iter } => {
                *static_insts += 1;
                ops.push(Op::WhileBegin);
                let cond_pc = ops.len() as u32;
                flatten(cond, ops, static_insts);
                let test_at = ops.len();
                ops.push(Op::WhileTest { p: *p, end_pc: 0 });
                flatten(body, ops, static_insts);
                let end_at = ops.len();
                ops.push(Op::WhileEnd { cond_pc, max_iter: *max_iter });
                let Op::WhileTest { end_pc, .. } = &mut ops[test_at] else { unreachable!() };
                *end_pc = end_at as u32 + 1;
            }
        }
    }
}

fn decode_inst(inst: &Inst) -> DOp {
    // Pre-scale register operands by the SoA lane stride.
    let r = |x: &u16| *x as u32 * LANES as u32;
    match inst {
        Inst::MovImm { d, imm } => DOp::MovImm { d: r(d), imm: *imm },
        Inst::Mov { d, a } => DOp::Mov { d: r(d), a: r(a) },
        Inst::MovSpecial { d, s } => DOp::MovSpecial { d: r(d), s: *s },
        Inst::Add { d, a, b } => DOp::Add { d: r(d), a: r(a), b: r(b) },
        Inst::AddCC { d, a, b } => DOp::AddCC { d: r(d), a: r(a), b: r(b) },
        Inst::AddC { d, a, b } => DOp::AddC { d: r(d), a: r(a), b: r(b) },
        Inst::Sub { d, a, b } => DOp::Sub { d: r(d), a: r(a), b: r(b) },
        Inst::SubCC { d, a, b } => DOp::SubCC { d: r(d), a: r(a), b: r(b) },
        Inst::SubC { d, a, b } => DOp::SubC { d: r(d), a: r(a), b: r(b) },
        Inst::MulLo { d, a, b } => DOp::MulLo { d: r(d), a: r(a), b: r(b) },
        Inst::MulHi { d, a, b } => DOp::MulHi { d: r(d), a: r(a), b: r(b) },
        Inst::MadLoCC { d, a, b, c } => DOp::MadLoCC { d: r(d), a: r(a), b: r(b), c: r(c) },
        Inst::MadHiC { d, a, b, c } => DOp::MadHiC { d: r(d), a: r(a), b: r(b), c: r(c) },
        Inst::Div { d, a, b } => DOp::Div { d: r(d), a: r(a), b: r(b) },
        Inst::Rem { d, a, b } => DOp::Rem { d: r(d), a: r(a), b: r(b) },
        Inst::Div64 { dlo, dhi, alo, ahi, blo, bhi } => DOp::Div64 {
            dlo: r(dlo),
            dhi: r(dhi),
            alo: r(alo),
            ahi: r(ahi),
            blo: r(blo),
            bhi: r(bhi),
        },
        Inst::Rem64 { dlo, dhi, alo, ahi, blo, bhi } => DOp::Rem64 {
            dlo: r(dlo),
            dhi: r(dhi),
            alo: r(alo),
            ahi: r(ahi),
            blo: r(blo),
            bhi: r(bhi),
        },
        Inst::Bfind { d, a } => DOp::Bfind { d: r(d), a: r(a) },
        Inst::DivBig { d, dn, a, an, b, bn } => {
            DOp::DivBig { d: r(d), dn: *dn, a: r(a), an: *an, b: r(b), bn: *bn, rem: false }
        }
        Inst::RemBig { d, dn, a, an, b, bn } => {
            DOp::DivBig { d: r(d), dn: *dn, a: r(a), an: *an, b: r(b), bn: *bn, rem: true }
        }
        Inst::Shl { d, a, b } => DOp::Shl { d: r(d), a: r(a), b: r(b) },
        Inst::Shr { d, a, b } => DOp::Shr { d: r(d), a: r(a), b: r(b) },
        Inst::And { d, a, b } => DOp::And { d: r(d), a: r(a), b: r(b) },
        Inst::Or { d, a, b } => DOp::Or { d: r(d), a: r(a), b: r(b) },
        Inst::Xor { d, a, b } => DOp::Xor { d: r(d), a: r(a), b: r(b) },
        Inst::SetP { p, op, a, b } => DOp::SetP { p: *p, op: *op, a: r(a), b: r(b) },
        Inst::SetPImm { p, op, a, imm } => DOp::SetPImm { p: *p, op: *op, a: r(a), imm: *imm },
        Inst::PAnd { p, a, b } => DOp::PAnd { p: *p, a: *a, b: *b },
        Inst::PNot { p, a } => DOp::PNot { p: *p, a: *a },
        Inst::Selp { d, a, b, p } => DOp::Selp { d: r(d), a: r(a), b: r(b), p: *p },
        Inst::LdGlobal { d, buf, addr } => DOp::LdGlobal { d: r(d), buf: *buf, addr: r(addr) },
        Inst::LdGlobalU8 { d, buf, addr } => DOp::LdGlobalU8 { d: r(d), buf: *buf, addr: r(addr) },
        Inst::StGlobal { buf, addr, src } => DOp::StGlobal { buf: *buf, addr: r(addr), src: r(src) },
        Inst::StGlobalU8 { buf, addr, src } => {
            DOp::StGlobalU8 { buf: *buf, addr: r(addr), src: r(src) }
        }
        Inst::LdShared { d, addr } => DOp::LdShared { d: r(d), addr: r(addr) },
        Inst::StShared { addr, src } => DOp::StShared { addr: r(addr), src: r(src) },
        Inst::LdParam { d, idx } => DOp::LdParam { d: r(d), idx: *idx },
        Inst::BarSync => DOp::BarSync,
        Inst::ShflIdx { d, a, lane } => DOp::ShflIdx { d: r(d), a: r(a), lane: r(lane) },
        Inst::Ballot { d, p } => DOp::Ballot { d: r(d), p: *p },
    }
}

/// Divergence frames of the flat interpreter — the explicit equivalent of
/// the tree-walker's recursion.
enum Frame {
    If { outer: u32, not_taken: u32 },
    While { outer: u32, iters: u32 },
}

/// Warp state in structure-of-arrays layout: contiguous lane rows per
/// register (`regs[r*32 + l]`), predicate registers as 32-bit lane masks,
/// and the carry flags as one lane mask.
pub(crate) struct DCtx<'a, M: MemAccess> {
    pub(crate) regs: Vec<u32>,
    pub(crate) preds: Vec<u32>,
    pub(crate) carry: u32,
    pub(crate) smem: Vec<u8>,
    pub(crate) mem: &'a mut M,
    pub(crate) params: &'a [u32],
    pub(crate) stats: ExecStats,
    /// Warp-lifetime seen-sector set: cleared once per warp (in
    /// [`run_block_decoded`]) and shared by every memory instruction the
    /// warp executes — interpreter steps and the compiled tier's lowered
    /// mem thunks alike — so sector dedup spans the whole warp.
    pub(crate) seen: SectorSeen,
    pub(crate) kernel_name: &'a str,
}

/// Runs the active lanes in ascending order: a plain prefix loop when the
/// compiler knows the warp is converged (`FULL`), a set-bit walk otherwise.
#[inline(always)]
fn lanes_apply<const FULL: bool>(mask: u32, lanes_n: usize, mut f: impl FnMut(usize)) {
    if FULL {
        for l in 0..lanes_n {
            f(l);
        }
    } else {
        let mut m = mask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            f(l);
        }
    }
}

/// Runs one block's warps through the decoded program. Mirrors
/// `exec::run_block` exactly: warps sequential, shared memory per block,
/// sector set cleared per warp, stats accumulated per instruction in
/// program order. With `compiled` set (the tier-3 path), full-mask
/// superblocks execute the closure-compiled steps instead of the
/// per-instruction fast path — bit-identical either way.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_block_decoded<M: MemAccess>(
    prog: &DecodedProgram,
    compiled: Option<&crate::compiled::CompiledProgram>,
    kernel: &Kernel,
    cfg: LaunchConfig,
    block: u32,
    mem: &mut M,
    params: &[u32],
    warp: usize,
) -> Result<ExecStats, SimError> {
    let mut c = DCtx {
        regs: vec![0u32; kernel.num_regs as usize * LANES],
        preds: vec![0u32; kernel.num_preds as usize],
        carry: 0,
        smem: vec![0u8; kernel.smem_bytes as usize],
        mem,
        params,
        stats: ExecStats { sample_scale: 1.0, ..Default::default() },
        seen: SectorSeen::new(),
        kernel_name: &kernel.name,
    };
    let threads = cfg.block_threads as usize;
    let mut frames: Vec<Frame> = Vec::with_capacity(8);
    for warp_start in (0..threads).step_by(warp) {
        let lanes_n = warp.min(threads - warp_start);
        c.regs.fill(0);
        c.preds.fill(0);
        c.carry = 0;
        c.seen.clear();
        frames.clear();
        let geom = Geometry {
            tid_base: warp_start as u32,
            ctaid: block,
            ntid: cfg.block_threads,
            nctaid: cfg.grid_blocks,
        };
        run_warp(prog, compiled, &mut c, &mut frames, &geom, lanes_n)?;
        c.stats.warps += 1;
    }
    c.stats.blocks += 1;
    Ok(c.stats)
}

/// The flat-program interpreter loop. Invariant: `mask != 0` whenever an
/// `I` op executes — control ops jump over empty regions, reproducing the
/// tree-walker's zero-mask early-outs (which contribute no stats at all).
fn run_warp<M: MemAccess>(
    prog: &DecodedProgram,
    compiled: Option<&crate::compiled::CompiledProgram>,
    c: &mut DCtx<'_, M>,
    frames: &mut Vec<Frame>,
    geom: &Geometry,
    lanes_n: usize,
) -> Result<(), SimError> {
    let ops = &prog.ops[..];
    let full = full_mask(lanes_n);
    let mut mask = full;
    let mut pc = 0usize;
    while pc < ops.len() {
        match &ops[pc] {
            Op::I { dop, cycles, run_end } => {
                if mask == full {
                    // A full mask at an `I` op is always a run *start*
                    // (masks only change at control ops, and the fast
                    // paths below consume whole runs), so the compiled
                    // tier can take over the entire superblock here.
                    if let Some(cp) = compiled {
                        if let Some(sb) = cp.block_at(pc) {
                            crate::compiled::run_superblock(sb, c, geom, lanes_n, full)?;
                            pc = sb.end as usize;
                            continue;
                        }
                    }
                    // Superblock fast path: the whole straight-line run
                    // executes converged, with no mask or control tests.
                    let end = *run_end as usize;
                    let (mut dop, mut cycles) = (dop, cycles);
                    loop {
                        c.stats.warp_issues += 1;
                        c.stats.warp_issue_cycles += *cycles;
                        c.stats.thread_insts += lanes_n as u64;
                        exec_dop::<true, M>(c, dop, geom, full, lanes_n)?;
                        pc += 1;
                        if pc >= end {
                            break;
                        }
                        let Op::I { dop: d, cycles: cy, .. } = &ops[pc] else { unreachable!() };
                        (dop, cycles) = (d, cy);
                    }
                } else {
                    c.stats.warp_issues += 1;
                    c.stats.warp_issue_cycles += *cycles;
                    c.stats.thread_insts += mask.count_ones() as u64;
                    exec_dop::<false, M>(c, dop, geom, mask, lanes_n)?;
                    pc += 1;
                }
            }
            Op::If { p, else_pc } => {
                let taken = c.preds[*p as usize] & mask;
                let not_taken = mask & !taken;
                if taken != 0 && not_taken != 0 {
                    c.stats.divergent_branches += 1;
                }
                // Branch issue cost — paid whenever the branch is reached
                // with a live mask, exactly like the tree-walker.
                c.stats.warp_issues += 1;
                c.stats.warp_issue_cycles += 1.0;
                frames.push(Frame::If { outer: mask, not_taken });
                if taken != 0 {
                    mask = taken;
                    pc += 1;
                } else {
                    pc = *else_pc as usize;
                }
            }
            Op::Else { end_pc } => {
                let Some(Frame::If { not_taken, .. }) = frames.last() else { unreachable!() };
                mask = *not_taken;
                if mask == 0 {
                    pc = *end_pc as usize;
                } else {
                    pc += 1;
                }
            }
            Op::EndIf => {
                let Some(Frame::If { outer, .. }) = frames.pop() else { unreachable!() };
                mask = outer;
                pc += 1;
            }
            Op::WhileBegin => {
                frames.push(Frame::While { outer: mask, iters: 0 });
                pc += 1;
            }
            Op::WhileTest { p, end_pc } => {
                let still = c.preds[*p as usize] & mask;
                if still != mask && still != 0 {
                    c.stats.divergent_branches += 1;
                }
                if still == 0 {
                    let Some(Frame::While { outer, .. }) = frames.pop() else { unreachable!() };
                    mask = outer;
                    pc = *end_pc as usize;
                } else {
                    mask = still;
                    pc += 1;
                }
            }
            Op::WhileEnd { cond_pc, max_iter } => {
                let Some(Frame::While { iters, .. }) = frames.last_mut() else { unreachable!() };
                *iters += 1;
                if *iters > *max_iter {
                    return Err(SimError::MaxIterExceeded {
                        kernel: c.kernel_name.to_string(),
                        bound: *max_iter,
                    });
                }
                pc = *cond_pc as usize;
            }
        }
    }
    Ok(())
}

/// Executes one decoded op over the active lanes. Instruction-outer,
/// lane-inner: the opcode dispatch happens once per warp, and each arm
/// runs a tight lane loop over contiguous SoA rows.
#[allow(clippy::needless_range_loop)]
pub(crate) fn exec_dop<const FULL: bool, M: MemAccess>(
    c: &mut DCtx<'_, M>,
    dop: &DOp,
    geom: &Geometry,
    mask: u32,
    n: usize,
) -> Result<(), SimError> {
    let DCtx { regs, preds, carry, smem, mem, params, stats, seen, kernel_name } = c;
    let regs = &mut regs[..];
    match dop {
        DOp::MovImm { d, imm } => {
            let d = *d as usize;
            let imm = *imm;
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = imm);
        }
        DOp::Mov { d, a } => {
            let (d, a) = (*d as usize, *a as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l]);
        }
        DOp::MovSpecial { d, s } => {
            let d = *d as usize;
            match s {
                Special::TidX => {
                    let base = geom.tid_base;
                    lanes_apply::<FULL>(mask, n, |l| regs[d + l] = base + l as u32);
                }
                Special::CtaIdX => {
                    let v = geom.ctaid;
                    lanes_apply::<FULL>(mask, n, |l| regs[d + l] = v);
                }
                Special::NTidX => {
                    let v = geom.ntid;
                    lanes_apply::<FULL>(mask, n, |l| regs[d + l] = v);
                }
                Special::NCtaIdX => {
                    let v = geom.nctaid;
                    lanes_apply::<FULL>(mask, n, |l| regs[d + l] = v);
                }
            }
        }
        DOp::Add { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l].wrapping_add(regs[b + l]));
        }
        DOp::AddCC { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let mut cbits = *carry;
            lanes_apply::<FULL>(mask, n, |l| {
                let (s, co) = regs[a + l].overflowing_add(regs[b + l]);
                regs[d + l] = s;
                let bit = 1u32 << l;
                if co {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::AddC { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let old = *carry;
            let mut cbits = old;
            lanes_apply::<FULL>(mask, n, |l| {
                let (s1, c1) = regs[a + l].overflowing_add(regs[b + l]);
                let (s2, c2) = s1.overflowing_add(old >> l & 1);
                regs[d + l] = s2;
                let bit = 1u32 << l;
                if c1 | c2 {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::Sub { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l].wrapping_sub(regs[b + l]));
        }
        DOp::SubCC { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let mut cbits = *carry;
            lanes_apply::<FULL>(mask, n, |l| {
                let (s, co) = regs[a + l].overflowing_sub(regs[b + l]);
                regs[d + l] = s;
                let bit = 1u32 << l;
                if co {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::SubC { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let old = *carry;
            let mut cbits = old;
            lanes_apply::<FULL>(mask, n, |l| {
                let (s1, c1) = regs[a + l].overflowing_sub(regs[b + l]);
                let (s2, c2) = s1.overflowing_sub(old >> l & 1);
                regs[d + l] = s2;
                let bit = 1u32 << l;
                if c1 | c2 {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::MulLo { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l].wrapping_mul(regs[b + l]));
        }
        DOp::MulHi { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                regs[d + l] = ((regs[a + l] as u64 * regs[b + l] as u64) >> 32) as u32;
            });
        }
        DOp::MadLoCC { d, a, b, c: cc } => {
            let (d, a, b, cc) = (*d as usize, *a as usize, *b as usize, *cc as usize);
            let mut cbits = *carry;
            lanes_apply::<FULL>(mask, n, |l| {
                let prod_lo = (regs[a + l] as u64 * regs[b + l] as u64) as u32;
                let sum = prod_lo as u64 + regs[cc + l] as u64;
                regs[d + l] = sum as u32;
                let bit = 1u32 << l;
                if sum > u32::MAX as u64 {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::MadHiC { d, a, b, c: cc } => {
            let (d, a, b, cc) = (*d as usize, *a as usize, *b as usize, *cc as usize);
            let old = *carry;
            let mut cbits = old;
            lanes_apply::<FULL>(mask, n, |l| {
                let hi = ((regs[a + l] as u64 * regs[b + l] as u64) >> 32) as u32;
                let (s1, c1) = hi.overflowing_add(regs[cc + l]);
                let (s2, c2) = s1.overflowing_add(old >> l & 1);
                regs[d + l] = s2;
                let bit = 1u32 << l;
                if c1 | c2 {
                    cbits |= bit;
                } else {
                    cbits &= !bit;
                }
            });
            *carry = cbits;
        }
        DOp::Div { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                regs[d + l] = regs[a + l].checked_div(regs[b + l]).unwrap_or(u32::MAX);
            });
        }
        DOp::Rem { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                let bv = regs[b + l];
                regs[d + l] = if bv == 0 { regs[a + l] } else { regs[a + l] % bv };
            });
        }
        DOp::Div64 { dlo, dhi, alo, ahi, blo, bhi } => {
            let (dlo, dhi) = (*dlo as usize, *dhi as usize);
            let (alo, ahi, blo, bhi) = (*alo as usize, *ahi as usize, *blo as usize, *bhi as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                let a64 = regs[alo + l] as u64 | (regs[ahi + l] as u64) << 32;
                let b64 = regs[blo + l] as u64 | (regs[bhi + l] as u64) << 32;
                let q = a64.checked_div(b64).unwrap_or(u64::MAX);
                regs[dlo + l] = q as u32;
                regs[dhi + l] = (q >> 32) as u32;
            });
        }
        DOp::Rem64 { dlo, dhi, alo, ahi, blo, bhi } => {
            let (dlo, dhi) = (*dlo as usize, *dhi as usize);
            let (alo, ahi, blo, bhi) = (*alo as usize, *ahi as usize, *blo as usize, *bhi as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                let a64 = regs[alo + l] as u64 | (regs[ahi + l] as u64) << 32;
                let b64 = regs[blo + l] as u64 | (regs[bhi + l] as u64) << 32;
                let q = if b64 == 0 { a64 } else { a64 % b64 };
                regs[dlo + l] = q as u32;
                regs[dhi + l] = (q >> 32) as u32;
            });
        }
        DOp::Bfind { d, a } => {
            let (d, a) = (*d as usize, *a as usize);
            lanes_apply::<FULL>(mask, n, |l| {
                let v = regs[a + l];
                regs[d + l] = if v == 0 { u32::MAX } else { 31 - v.leading_zeros() };
            });
        }
        DOp::DivBig { d, dn, a, an, b, bn, rem } => {
            // Ascending-lane order and the post-loop lockstep probe cost
            // mirror the tree-walker, so both the error surface and the
            // f64 cycle accumulation are identical.
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let (dn, an, bn) = (*dn as usize, *an as usize, *bn as usize);
            let mut max_probe_cycles = 0.0f64;
            let mut m = mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                let av: Vec<u32> = (0..an).map(|i| regs[a + i * LANES + l]).collect();
                let bv: Vec<u32> = (0..bn).map(|i| regs[b + i * LANES + l]).collect();
                if up_num::limbs::is_zero(&bv) {
                    return Err(SimError::DivisionByZero { kernel: kernel_name.to_string() });
                }
                let la = up_num::limbs::bit_len(&av);
                let lb = up_num::limbs::bit_len(&bv);
                let probes = la.saturating_sub(lb) as f64 + 2.0;
                let mul_cost = 2.0 * (an as f64) * (bn as f64) + 4.0 * an as f64;
                max_probe_cycles = max_probe_cycles.max(probes * mul_cost);
                let (q, r) = up_num::div::div_rem(&av, &bv);
                let out = if *rem { r } else { q };
                for i in 0..dn {
                    regs[d + i * LANES + l] = out.get(i).copied().unwrap_or(0);
                }
            }
            stats.warp_issue_cycles += max_probe_cycles;
        }
        DOp::Shl { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l] << (regs[b + l] & 31));
        }
        DOp::Shr { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l] >> (regs[b + l] & 31));
        }
        DOp::And { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l] & regs[b + l]);
        }
        DOp::Or { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l] | regs[b + l]);
        }
        DOp::Xor { d, a, b } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = regs[a + l] ^ regs[b + l]);
        }
        DOp::SetP { p, op, a, b } => {
            let (a, b) = (*a as usize, *b as usize);
            let mut bits = 0u32;
            lanes_apply::<FULL>(mask, n, |l| {
                if op.eval(regs[a + l], regs[b + l]) {
                    bits |= 1 << l;
                }
            });
            let p = *p as usize;
            preds[p] = (preds[p] & !mask) | bits;
        }
        DOp::SetPImm { p, op, a, imm } => {
            let a = *a as usize;
            let imm = *imm;
            let mut bits = 0u32;
            lanes_apply::<FULL>(mask, n, |l| {
                if op.eval(regs[a + l], imm) {
                    bits |= 1 << l;
                }
            });
            let p = *p as usize;
            preds[p] = (preds[p] & !mask) | bits;
        }
        DOp::PAnd { p, a, b } => {
            let computed = preds[*a as usize] & preds[*b as usize];
            let p = *p as usize;
            preds[p] = (preds[p] & !mask) | (computed & mask);
        }
        DOp::PNot { p, a } => {
            let computed = !preds[*a as usize];
            let p = *p as usize;
            preds[p] = (preds[p] & !mask) | (computed & mask);
        }
        DOp::Selp { d, a, b, p } => {
            let (d, a, b) = (*d as usize, *a as usize, *b as usize);
            let pbits = preds[*p as usize];
            lanes_apply::<FULL>(mask, n, |l| {
                regs[d + l] = if pbits >> l & 1 == 1 { regs[a + l] } else { regs[b + l] };
            });
        }
        DOp::LdGlobal { d, buf, addr } => {
            let (d, a) = (*d as usize, *addr as usize);
            if FULL {
                note_transactions(stats, seen, *buf, &regs[a..a + n], 4);
                for l in 0..n {
                    regs[d + l] = mem.load_word(*buf, regs[a + l])?;
                }
            } else {
                let (abuf, cnt) = gather(regs, a, mask, n);
                note_transactions(stats, seen, *buf, &abuf[..cnt], 4);
                let mut i = 0;
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    regs[d + l] = mem.load_word(*buf, abuf[i])?;
                    i += 1;
                }
            }
        }
        DOp::LdGlobalU8 { d, buf, addr } => {
            let (d, a) = (*d as usize, *addr as usize);
            if FULL {
                note_transactions(stats, seen, *buf, &regs[a..a + n], 1);
                for l in 0..n {
                    regs[d + l] = mem.load_byte(*buf, regs[a + l])? as u32;
                }
            } else {
                let (abuf, cnt) = gather(regs, a, mask, n);
                note_transactions(stats, seen, *buf, &abuf[..cnt], 1);
                let mut i = 0;
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    regs[d + l] = mem.load_byte(*buf, abuf[i])? as u32;
                    i += 1;
                }
            }
        }
        DOp::StGlobal { buf, addr, src } => {
            let (a, s) = (*addr as usize, *src as usize);
            if FULL {
                note_transactions(stats, seen, *buf, &regs[a..a + n], 4);
                for l in 0..n {
                    mem.store_word(*buf, regs[a + l], regs[s + l])?;
                }
            } else {
                let (abuf, cnt) = gather(regs, a, mask, n);
                note_transactions(stats, seen, *buf, &abuf[..cnt], 4);
                let mut i = 0;
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    mem.store_word(*buf, abuf[i], regs[s + l])?;
                    i += 1;
                }
            }
        }
        DOp::StGlobalU8 { buf, addr, src } => {
            let (a, s) = (*addr as usize, *src as usize);
            if FULL {
                note_transactions(stats, seen, *buf, &regs[a..a + n], 1);
                for l in 0..n {
                    mem.store_byte(*buf, regs[a + l], regs[s + l] as u8)?;
                }
            } else {
                let (abuf, cnt) = gather(regs, a, mask, n);
                note_transactions(stats, seen, *buf, &abuf[..cnt], 1);
                let mut i = 0;
                let mut m = mask;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    mem.store_byte(*buf, abuf[i], regs[s + l] as u8)?;
                    i += 1;
                }
            }
        }
        DOp::LdShared { d, addr } => {
            let (d, a) = (*d as usize, *addr as usize);
            let mut m = mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                regs[d + l] = shared_word(smem, regs[a + l])?;
            }
        }
        DOp::StShared { addr, src } => {
            let (a, s) = (*addr as usize, *src as usize);
            let mut m = mask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                shared_store(smem, regs[a + l], regs[s + l])?;
            }
        }
        DOp::LdParam { d, idx } => {
            let v = *params.get(*idx as usize).ok_or(SimError::BadParam(*idx))?;
            let d = *d as usize;
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = v);
        }
        DOp::BarSync => {} // cost only; warps run sequentially
        DOp::ShflIdx { d, a, lane } => {
            // Gather before scattering so all reads see pre-shuffle values.
            let (d, a, lane) = (*d as usize, *a as usize, *lane as usize);
            let mut vals = [0u32; 32];
            let mut cnt = 0;
            lanes_apply::<FULL>(mask, n, |l| {
                let src_lane = regs[lane + l] as usize % n;
                vals[cnt] = regs[a + src_lane];
                cnt += 1;
            });
            let mut i = 0;
            lanes_apply::<FULL>(mask, n, |l| {
                regs[d + l] = vals[i];
                i += 1;
            });
        }
        DOp::Ballot { d, p } => {
            let ballot = preds[*p as usize] & mask;
            let d = *d as usize;
            lanes_apply::<FULL>(mask, n, |l| regs[d + l] = ballot);
        }
    }
    Ok(())
}

/// Collects the active lanes' values of SoA row `row` (ascending lane
/// order) — the partial-mask analogue of passing the row slice directly.
#[inline]
fn gather(regs: &[u32], row: usize, mask: u32, _lanes_n: usize) -> ([u32; 32], usize) {
    let mut buf = [0u32; 32];
    let mut cnt = 0;
    let mut m = mask;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        buf[cnt] = regs[row + l];
        cnt += 1;
    }
    (buf, cnt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;
    use crate::exec::{launch_opts, GlobalMem, LaunchConfig, LaunchOpts};
    use crate::par::SimParallelism;
    use crate::ptx::{Inst as I, KernelBuilder, PReg, Reg};

    /// Deterministic 64-bit LCG so fuzz failures reproduce exactly.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (self.0 >> 33) as u32
        }
        fn below(&mut self, n: u32) -> u32 {
            self.next() % n
        }
        fn chance(&mut self, one_in: u32) -> bool {
            self.below(one_in) == 0
        }
    }

    const GRID: LaunchConfig = LaunchConfig { grid_blocks: 4, block_threads: 64 };
    const N_THREADS: usize = 256;

    /// A random kernel over a fixed shape: three word buffers of
    /// `N_THREADS` words (two inputs, one output), 256 B of shared memory,
    /// a register pool seeded from the inputs, and a random sequence of
    /// gadgets covering ALU ops, carry chains, divergent `If`s, `While`
    /// loops, shared memory, byte stores, warp ops, and big-int division.
    /// When `with_errors` is set, one gadget may provoke `OutOfBounds`,
    /// `MaxIterExceeded`, or `DivisionByZero` on a data-dependent lane.
    fn random_kernel(rng: &mut Rng, idx: usize, with_errors: bool) -> Kernel {
        let mut kb = KernelBuilder::new();
        let tid = kb.reg();
        let ctaid = kb.reg();
        let ntid = kb.reg();
        kb.push(I::MovSpecial { d: tid, s: Special::TidX });
        kb.push(I::MovSpecial { d: ctaid, s: Special::CtaIdX });
        kb.push(I::MovSpecial { d: ntid, s: Special::NTidX });
        let gid = kb.reg();
        kb.push(I::MulLo { d: gid, a: ctaid, b: ntid });
        kb.push(I::Add { d: gid, a: gid, b: tid });
        let four = kb.imm(4);
        let addr4 = kb.reg();
        kb.push(I::MulLo { d: addr4, a: gid, b: four });
        let smem_base = kb.smem(256);
        assert_eq!(smem_base, 0);

        // Register pool, seeded with input data and thread-varying values.
        let pool: Vec<Reg> = (0..8).map(|_| kb.reg()).collect();
        kb.push(I::LdGlobal { d: pool[0], buf: 0, addr: addr4 });
        kb.push(I::LdGlobal { d: pool[1], buf: 1, addr: addr4 });
        kb.push(I::Mov { d: pool[2], a: gid });
        kb.push(I::MovImm { d: pool[3], imm: 0x9e3779b9 });
        kb.push(I::Mov { d: pool[4], a: tid });
        kb.push(I::MovImm { d: pool[5], imm: 7 });
        kb.push(I::Xor { d: pool[6], a: pool[0], b: pool[1] });
        kb.push(I::MovImm { d: pool[7], imm: 1 });
        let preds: Vec<PReg> = (0..3).map(|_| kb.pred()).collect();
        kb.push(I::SetP { p: preds[0], op: CmpOp::Lt, a: pool[0], b: pool[1] });
        let one = kb.imm(1);
        let n_gadgets = 8 + rng.below(10);
        let error_gadget = if with_errors { Some(rng.below(n_gadgets)) } else { None };

        for g in 0..n_gadgets {
            if error_gadget == Some(g) {
                match rng.below(3) {
                    0 => {
                        // Out-of-bounds word store on one specific thread.
                        let k = rng.below(N_THREADS as u32 + 32);
                        let p = preds[rng.below(3) as usize];
                        kb.push(I::SetPImm { p, op: CmpOp::Eq, a: gid, imm: k });
                        let bad = kb.imm(1 << 20);
                        let body = kb.block(|b| b.push(I::StGlobal { buf: 2, addr: bad, src: gid }));
                        kb.if_(p, body, vec![]);
                    }
                    1 => {
                        // Runaway loop: predicate never clears, max_iter 3.
                        let p = preds[0];
                        let cond =
                            kb.block(|b| b.push(I::SetPImm { p, op: CmpOp::Ge, a: gid, imm: 0 }));
                        let body = kb.block(|b| {
                            b.push(I::Add { d: pool[3], a: pool[3], b: one });
                        });
                        kb.while_(p, cond, body, 3);
                    }
                    _ => {
                        // Zero divisor on lanes where gid % 4 == 0.
                        let big = kb.regs(5);
                        kb.push(I::Mov { d: big[0], a: pool[0] });
                        kb.push(I::Mov { d: big[1], a: pool[6] });
                        let three = kb.imm(3);
                        kb.push(I::And { d: big[2], a: gid, b: three });
                        kb.push(I::DivBig { d: big[3], dn: 2, a: big[0], an: 2, b: big[2], bn: 1 });
                    }
                }
                continue;
            }
            match rng.below(9) {
                0 => {
                    // Random ALU op over pool registers.
                    let d = pool[rng.below(8) as usize];
                    let a = pool[rng.below(8) as usize];
                    let b = pool[rng.below(8) as usize];
                    kb.push(match rng.below(10) {
                        0 => I::Add { d, a, b },
                        1 => I::Sub { d, a, b },
                        2 => I::MulLo { d, a, b },
                        3 => I::MulHi { d, a, b },
                        4 => I::And { d, a, b },
                        5 => I::Or { d, a, b },
                        6 => I::Xor { d, a, b },
                        7 => I::Shl { d, a, b },
                        8 => I::Div { d, a, b },
                        _ => I::Rem { d, a, b },
                    });
                }
                1 => {
                    // Carry chain: add-with-carry across two limbs.
                    let d0 = pool[rng.below(4) as usize];
                    let d1 = pool[4 + rng.below(4) as usize];
                    let a = pool[rng.below(8) as usize];
                    let b = pool[rng.below(8) as usize];
                    kb.push(I::AddCC { d: d0, a, b });
                    kb.push(I::AddC { d: d1, a: d1, b });
                    kb.push(I::MadLoCC { d: d0, a: d0, b, c: a });
                    kb.push(I::MadHiC { d: d1, a: d0, b, c: d1 });
                    kb.push(I::SubCC { d: d0, a: d0, b: a });
                    kb.push(I::SubC { d: d1, a: d1, b: a });
                }
                2 => {
                    // In-bounds word store to the output buffer.
                    kb.push(I::StGlobal { buf: 2, addr: addr4, src: pool[rng.below(8) as usize] });
                }
                3 => {
                    // Byte load + byte store at a per-thread byte address.
                    let d = pool[rng.below(8) as usize];
                    kb.push(I::LdGlobalU8 { d, buf: rng.below(2) as u8, addr: gid });
                    kb.push(I::StGlobalU8 { buf: 2, addr: gid, src: pool[rng.below(8) as usize] });
                }
                4 => {
                    // Shared memory round trip at (tid & 63) * 4.
                    let m63 = kb.imm(63);
                    let saddr = kb.reg();
                    kb.push(I::And { d: saddr, a: tid, b: m63 });
                    kb.push(I::MulLo { d: saddr, a: saddr, b: four });
                    kb.push(I::StShared { addr: saddr, src: pool[rng.below(8) as usize] });
                    kb.push(I::LdShared { d: pool[rng.below(8) as usize], addr: saddr });
                }
                5 => {
                    // Divergent If with nested work in both arms.
                    let p = preds[rng.below(3) as usize];
                    let a = pool[rng.below(8) as usize];
                    let b = pool[rng.below(8) as usize];
                    let op = [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne][rng.below(4) as usize];
                    kb.push(I::SetP { p, op, a, b });
                    let d = pool[rng.below(8) as usize];
                    let then_ = kb.block(|bb| {
                        bb.push(I::Add { d, a: d, b: a });
                        bb.push(I::StGlobal { buf: 2, addr: addr4, src: d });
                    });
                    let else_ = if rng.chance(2) {
                        kb.block(|bb| bb.push(I::Xor { d, a: d, b }))
                    } else {
                        vec![]
                    };
                    kb.if_(p, then_, else_);
                }
                6 => {
                    // Bounded divergent loop: count down tid & 7.
                    let m7 = kb.imm(7);
                    let ctr = kb.reg();
                    kb.push(I::And { d: ctr, a: tid, b: m7 });
                    let p = preds[rng.below(3) as usize];
                    let cond = kb.block(|b| b.push(I::SetPImm { p, op: CmpOp::Ne, a: ctr, imm: 0 }));
                    let d = pool[rng.below(8) as usize];
                    let body = kb.block(|b| {
                        b.push(I::Sub { d: ctr, a: ctr, b: one });
                        b.push(I::Add { d, a: d, b: ctr });
                    });
                    kb.while_(p, cond, body, 16);
                }
                7 => {
                    // Warp ops: ballot and shuffle.
                    let p = preds[rng.below(3) as usize];
                    let d = pool[rng.below(8) as usize];
                    kb.push(I::Ballot { d, p });
                    let lane = pool[rng.below(8) as usize];
                    let a = pool[rng.below(8) as usize];
                    kb.push(I::ShflIdx { d: pool[rng.below(8) as usize], a, lane });
                }
                _ => {
                    // Big-int division with a forced-nonzero divisor.
                    let big = kb.regs(6);
                    kb.push(I::Mov { d: big[0], a: pool[rng.below(8) as usize] });
                    kb.push(I::Mov { d: big[1], a: pool[rng.below(8) as usize] });
                    kb.push(I::Or { d: big[2], a: pool[rng.below(8) as usize], b: one });
                    let inst = if rng.chance(2) {
                        I::DivBig { d: big[3], dn: 2, a: big[0], an: 2, b: big[2], bn: 1 }
                    } else {
                        I::RemBig { d: big[3], dn: 1, a: big[0], an: 2, b: big[2], bn: 1 }
                    };
                    kb.push(inst);
                }
            }
        }
        // Make every pool register observable.
        for (i, &r) in pool.iter().enumerate() {
            if i % 2 == 0 {
                kb.push(I::StGlobal { buf: 2, addr: addr4, src: r });
            }
        }
        kb.finish(format!("fuzz_{idx}"), 24)
    }

    fn fuzz_mem(rng: &mut Rng) -> GlobalMem {
        let mut mem = GlobalMem::new();
        for _ in 0..2 {
            let bytes: Vec<u8> = (0..4 * N_THREADS).map(|_| rng.next() as u8).collect();
            mem.add_buffer(bytes);
        }
        mem.alloc(4 * N_THREADS);
        mem
    }

    fn run_mode(
        kernel: &Kernel,
        base: &GlobalMem,
        backend: ExecBackend,
        par: SimParallelism,
    ) -> (Result<ExecStats, SimError>, GlobalMem) {
        let device = DeviceConfig::tiny();
        let mut mem = base.clone();
        let res = launch_opts(kernel, GRID, &device, &mut mem, &[N_THREADS as u32], LaunchOpts {
            par,
            backend,
            auto_serial_below: None,
        });
        (res, mem)
    }

    /// The tentpole differential guarantee: for random kernels covering
    /// divergence, loops, shared memory, byte stores, carry chains, and
    /// warp ops, the decoded interpreter *and* the closure-compiled tier
    /// are bit-identical to the tree walker — memory, stats, and errors —
    /// under both serial and threaded execution.
    #[test]
    fn fuzz_decoded_matches_tree_bit_exact() {
        let mut rng = Rng(0x5eed_cafe_f00d_0001);
        let mut errors_seen = 0usize;
        for idx in 0..48 {
            let with_errors = idx % 7 == 3;
            let kernel = random_kernel(&mut rng, idx, with_errors);
            let base = fuzz_mem(&mut rng);
            let (oracle_res, oracle_mem) =
                run_mode(&kernel, &base, ExecBackend::Tree, SimParallelism::Serial);
            if oracle_res.is_err() {
                errors_seen += 1;
            }
            for (backend, par) in [
                (ExecBackend::Decoded, SimParallelism::Serial),
                (ExecBackend::Tree, SimParallelism::Threads(4)),
                (ExecBackend::Decoded, SimParallelism::Threads(4)),
                (ExecBackend::Compiled, SimParallelism::Serial),
                (ExecBackend::Compiled, SimParallelism::Threads(4)),
            ] {
                let (res, mem) = run_mode(&kernel, &base, backend, par);
                assert_eq!(
                    res, oracle_res,
                    "kernel {idx}: result diverged under {backend}/{par}"
                );
                if oracle_res.is_ok() {
                    for b in 0..3 {
                        assert_eq!(
                            mem.buffer(b),
                            oracle_mem.buffer(b),
                            "kernel {idx}: buffer {b} diverged under {backend}/{par}"
                        );
                    }
                }
            }
        }
        // The error-injecting kernels must actually exercise error paths.
        assert!(errors_seen >= 2, "fuzz generated only {errors_seen} failing kernels");
    }

    /// A byte-store-dense kernel in the shape of the §III-D codec
    /// kernels: a lane-affine base address (`gid · lb`) walked byte by
    /// byte through load/store runs, salted with the compiled tier's
    /// hard cases — interpreter-fallback steps (shared memory) inside
    /// otherwise-lowered superblocks, data-dependent (non-affine)
    /// scatter addresses, and divergent byte stores that keep the warp
    /// off the full-mask path entirely.
    fn byte_dense_kernel(rng: &mut Rng, idx: usize) -> Kernel {
        let mut kb = KernelBuilder::new();
        let tid = kb.reg();
        let ctaid = kb.reg();
        let ntid = kb.reg();
        kb.push(I::MovSpecial { d: tid, s: Special::TidX });
        kb.push(I::MovSpecial { d: ctaid, s: Special::CtaIdX });
        kb.push(I::MovSpecial { d: ntid, s: Special::NTidX });
        let gid = kb.reg();
        kb.push(I::MulLo { d: gid, a: ctaid, b: ntid });
        kb.push(I::Add { d: gid, a: gid, b: tid });
        let lb = 1 + rng.below(4); // limb width in bytes: 1..=4
        let lbr = kb.imm(lb);
        let one = kb.imm(1);
        let addr = kb.reg();
        kb.push(I::MulLo { d: addr, a: gid, b: lbr });
        let smem_base = kb.smem(256);
        assert_eq!(smem_base, 0);
        let acc = kb.reg();
        kb.push(I::MovImm { d: acc, imm: 0 });
        let v = kb.reg();
        let p = kb.pred();

        let n_runs = 2 + rng.below(4);
        for _ in 0..n_runs {
            // One codec-style byte run: lb loads + stores, bumping the
            // affine address between bytes.
            kb.push(I::MulLo { d: addr, a: gid, b: lbr });
            for _ in 0..lb {
                kb.push(I::LdGlobalU8 { d: v, buf: rng.below(2) as u8, addr });
                kb.push(I::Add { d: acc, a: acc, b: v });
                kb.push(I::StGlobalU8 { buf: 2, addr, src: acc });
                kb.push(I::Add { d: addr, a: addr, b: one });
            }
            match rng.below(4) {
                0 => {
                    // Interpreter fallback mid-superblock: a shared-memory
                    // round trip between byte runs (mixed lowered/fallback
                    // superblock).
                    let m63 = kb.imm(63);
                    let four = kb.imm(4);
                    let saddr = kb.reg();
                    kb.push(I::And { d: saddr, a: tid, b: m63 });
                    kb.push(I::MulLo { d: saddr, a: saddr, b: four });
                    kb.push(I::StShared { addr: saddr, src: acc });
                    kb.push(I::LdShared { d: acc, addr: saddr });
                }
                1 => {
                    // Non-affine scatter: a data-dependent byte store the
                    // runtime verification must reject into the per-lane
                    // path (masked in-bounds).
                    let m = kb.imm(4 * N_THREADS as u32 - 1);
                    let sc = kb.reg();
                    kb.push(I::And { d: sc, a: acc, b: m });
                    kb.push(I::StGlobalU8 { buf: 2, addr: sc, src: v });
                }
                2 => {
                    // Divergent byte store: the warp leaves the full-mask
                    // path, so these frames interpret per-lane.
                    let thr = rng.below(N_THREADS as u32);
                    kb.push(I::SetPImm { p, op: CmpOp::Lt, a: gid, imm: thr });
                    let body = kb.block(|b| {
                        b.push(I::StGlobalU8 { buf: 2, addr: gid, src: acc });
                    });
                    kb.if_(p, body, vec![]);
                }
                _ => {}
            }
        }
        // Word-granular epilogue over the same data.
        let four = kb.imm(4);
        let addr4 = kb.reg();
        kb.push(I::MulLo { d: addr4, a: gid, b: four });
        kb.push(I::StGlobal { buf: 2, addr: addr4, src: acc });
        kb.finish(format!("byte_dense_{idx}"), 24)
    }

    fn run_cfg(
        kernel: &Kernel,
        base: &GlobalMem,
        backend: ExecBackend,
        par: SimParallelism,
        cfg: LaunchConfig,
    ) -> (Result<ExecStats, SimError>, GlobalMem) {
        let device = DeviceConfig::tiny();
        let mut mem = base.clone();
        let res = launch_opts(kernel, cfg, &device, &mut mem, &[N_THREADS as u32], LaunchOpts {
            par,
            backend,
            auto_serial_below: None,
        });
        (res, mem)
    }

    /// Satellite of the mem-thunk lowering: the byte-store-dense class
    /// across the full backend × parallelism matrix, including a tail
    /// warp geometry (`block_threads` not a multiple of 32) so the bulk
    /// paths run with `lanes_n < 32`. `assert_eq!` on `res` covers the
    /// whole `ExecStats` — coalescing counts and the f64 cycle stream —
    /// so a lowered thunk that dedups or prices differently from the
    /// tree walker fails here.
    #[test]
    fn fuzz_byte_dense_matches_tree_bit_exact() {
        let mut rng = Rng(0x5eed_beef_c0de_c0de);
        for idx in 0..32 {
            let kernel = byte_dense_kernel(&mut rng, idx);
            let base = fuzz_mem(&mut rng);
            for cfg in [GRID, LaunchConfig { grid_blocks: 4, block_threads: 48 }] {
                let (oracle_res, oracle_mem) =
                    run_cfg(&kernel, &base, ExecBackend::Tree, SimParallelism::Serial, cfg);
                for (backend, par) in [
                    (ExecBackend::Decoded, SimParallelism::Serial),
                    (ExecBackend::Decoded, SimParallelism::Threads(4)),
                    (ExecBackend::Compiled, SimParallelism::Serial),
                    (ExecBackend::Compiled, SimParallelism::Threads(2)),
                    (ExecBackend::Compiled, SimParallelism::Threads(4)),
                ] {
                    let (res, mem) = run_cfg(&kernel, &base, backend, par, cfg);
                    assert_eq!(
                        res, oracle_res,
                        "kernel {idx}: stats diverged under {backend}/{par} ({} threads/block)",
                        cfg.block_threads
                    );
                    for b in 0..3 {
                        assert_eq!(
                            mem.buffer(b),
                            oracle_mem.buffer(b),
                            "kernel {idx}: buffer {b} diverged under {backend}/{par} ({} threads/block)",
                            cfg.block_threads
                        );
                    }
                }
            }
        }
    }

    /// Regression for the `SectorSeen` epoch window: consecutive lowered
    /// mem thunks within a warp must share the warp's seen-sector state
    /// (dedup across ops), not re-initialize per op — the dedup counts
    /// must match the tree walker exactly, and revisiting the same
    /// sectors must actually dedup.
    #[test]
    fn lowered_mem_thunks_share_sector_window_with_tree_dedup_counts() {
        let mut kb = KernelBuilder::new();
        let tid = kb.reg();
        let ctaid = kb.reg();
        let ntid = kb.reg();
        kb.push(I::MovSpecial { d: tid, s: Special::TidX });
        kb.push(I::MovSpecial { d: ctaid, s: Special::CtaIdX });
        kb.push(I::MovSpecial { d: ntid, s: Special::NTidX });
        let gid = kb.reg();
        kb.push(I::MulLo { d: gid, a: ctaid, b: ntid });
        kb.push(I::Add { d: gid, a: gid, b: tid });
        let v = kb.reg();
        // Eight straight-line byte ops over the same warp-wide sector:
        // only the first load and first store may open transactions; the
        // rest must hit the warp's seen-sector window.
        for _ in 0..4 {
            kb.push(I::LdGlobalU8 { d: v, buf: 0, addr: gid });
            kb.push(I::StGlobalU8 { buf: 2, addr: gid, src: v });
        }
        let kernel = kb.finish("sector_reuse", 8);
        let mut rng = Rng(0x0420_5ec7_0e5e_0001);
        let base = fuzz_mem(&mut rng);
        let (tree_res, _) = run_mode(&kernel, &base, ExecBackend::Tree, SimParallelism::Serial);
        let tree_stats = tree_res.expect("in-bounds kernel");
        let (comp_res, _) = run_mode(&kernel, &base, ExecBackend::Compiled, SimParallelism::Serial);
        let comp_stats = comp_res.expect("in-bounds kernel");
        assert_eq!(comp_stats, tree_stats, "lowered thunks must replay coalescing exactly");
        // 8 warps × 8 byte ops = 64 op-warps, but each warp touches one
        // 32 B sector per buffer: 2 transactions per warp, not 8.
        let warps = (N_THREADS / 32) as u64;
        assert_eq!(
            comp_stats.mem_transactions, 2 * warps,
            "repeat accesses within the warp's epoch window must dedup"
        );
    }

    /// A kernel with no memory ops at all compiles to pure ALU thunks:
    /// the per-launch tier report must show zero fallback superblocks
    /// and zero fallback instructions.
    #[test]
    fn pure_alu_kernel_reports_zero_fallbacks() {
        let mut kb = KernelBuilder::new();
        let t = kb.reg();
        kb.push(I::MovSpecial { d: t, s: Special::TidX });
        let r = kb.regs(2);
        kb.push(I::MovImm { d: r[0], imm: 5 });
        kb.push(I::MulLo { d: r[1], a: t, b: r[0] });
        kb.push(I::AddCC { d: r[0], a: r[1], b: t });
        kb.push(I::AddC { d: r[1], a: r[0], b: t });
        let kernel = kb.finish("pure_alu", 8);
        let cp = kernel.compiled_program();
        assert_eq!(cp.interp_inst_count(), 0);
        assert_eq!(cp.mem_inst_count(), 0);
        assert_eq!(cp.fallback_superblock_count(), 0);
        let mut rng = Rng(0x0a10_0a10_0a10_0a10);
        let base = fuzz_mem(&mut rng);
        let (res, _) = run_mode(&kernel, &base, ExecBackend::Compiled, SimParallelism::Serial);
        res.expect("pure ALU kernel runs clean");
        let t = crate::compiled::last_launch_tiers();
        assert_eq!(t.compiled, 1);
        assert_eq!(t.fallback_superblocks, 0, "pure-ALU kernel must report zero fallbacks");
        assert_eq!(t.fallback_insts, 0);
        assert!(t.lowered_superblocks >= 1);
        assert_eq!(t.lowered_mem_thunks, 0);
    }

    /// Error variants surface identically (not just "both failed"): drive
    /// each injected class (OOB / MaxIter / DivByZero, raised
    /// mid-superblock) explicitly through the decoded and compiled tiers.
    #[test]
    fn fuzz_error_surfaces_match_by_class() {
        let mut rng = Rng(0xdead_beef_0bad_cafe);
        let mut classes = std::collections::HashSet::new();
        for idx in 0..60 {
            let kernel = random_kernel(&mut rng, 1000 + idx, true);
            let base = fuzz_mem(&mut rng);
            let (oracle_res, _) =
                run_mode(&kernel, &base, ExecBackend::Tree, SimParallelism::Serial);
            let Err(oracle_err) = oracle_res else { continue };
            classes.insert(std::mem::discriminant(&oracle_err));
            for (backend, par) in [
                (ExecBackend::Decoded, SimParallelism::Serial),
                (ExecBackend::Decoded, SimParallelism::Threads(4)),
                (ExecBackend::Compiled, SimParallelism::Serial),
                (ExecBackend::Compiled, SimParallelism::Threads(4)),
            ] {
                let (res, _) = run_mode(&kernel, &base, backend, par);
                assert_eq!(res, Err(oracle_err.clone()), "kernel {idx} under {backend}/{par}");
            }
        }
        assert!(
            classes.len() >= 2,
            "error fuzz hit only {} error classes — generator too tame",
            classes.len()
        );
    }

    #[test]
    fn backend_knob_parses() {
        assert_eq!(ExecBackend::parse("tree"), Some(ExecBackend::Tree));
        assert_eq!(ExecBackend::parse("decoded"), Some(ExecBackend::Decoded));
        assert_eq!(ExecBackend::parse("compiled"), Some(ExecBackend::Compiled));
        assert_eq!(ExecBackend::parse("auto"), Some(ExecBackend::Auto));
        assert_eq!(ExecBackend::parse("fast"), None);
        assert!(ExecBackend::Auto.uses_decoded());
        assert!(ExecBackend::Decoded.uses_decoded());
        assert!(ExecBackend::Compiled.uses_decoded());
        assert!(!ExecBackend::Tree.uses_decoded());
        assert_eq!(ExecBackend::Decoded.to_string(), "decoded");
        assert_eq!(ExecBackend::Compiled.to_string(), "compiled");
    }

    #[test]
    fn decode_flattens_structure_and_counts_superblocks() {
        let mut kb = KernelBuilder::new();
        let a = kb.reg();
        let b = kb.reg();
        kb.push(I::MovImm { d: a, imm: 1 });
        kb.push(I::MovImm { d: b, imm: 2 });
        kb.push(I::Add { d: a, a, b });
        let p = kb.pred();
        kb.push(I::SetPImm { p, op: CmpOp::Lt, a, imm: 10 });
        let then_ = kb.block(|bb| bb.push(I::Add { d: a, a, b }));
        let else_ = kb.block(|bb| bb.push(I::Sub { d: a, a, b }));
        kb.if_(p, then_, else_);
        kb.push(I::Mov { d: b, a });
        let kernel = kb.finish("structured", 8);

        let prog = kernel.decoded_program();
        // 4 leading + If(3 markers) + 1 then + 1 else + 1 trailing.
        assert_eq!(prog.op_count(), 4 + 3 + 1 + 1 + 1);
        // Straight-line runs: [4 leading], [then], [else], [trailing].
        assert_eq!(prog.superblock_count(), 4);
        // Static count matches the tree walk: 4 + If + then + else + 1.
        assert_eq!(prog.static_inst_count(), 8);
        assert_eq!(kernel.static_inst_count(), 8);
    }

    /// Clones made after the program is built share it; repeated access
    /// is counted as cache hits.
    #[test]
    fn decoded_program_is_cached_and_shared_across_clones() {
        let mut kb = KernelBuilder::new();
        let r = kb.reg();
        kb.push(I::MovImm { d: r, imm: 42 });
        let kernel = kb.finish("cached", 4);

        // Counters are process-global (other tests build programs
        // concurrently), so assert only monotonic movement plus pointer
        // identity — ptr_eq alone proves this kernel was not re-decoded.
        let (builds0, _) = decode_counters();
        let p1 = Arc::clone(kernel.decoded_program());
        let (builds1, hits1) = decode_counters();
        assert!(builds1 > builds0, "first access must build");
        let p2 = Arc::clone(kernel.decoded_program());
        let (_, hits2) = decode_counters();
        assert!(hits2 > hits1, "second access must count as a hit");
        assert!(Arc::ptr_eq(&p1, &p2));

        let clone = kernel.clone();
        let p3 = Arc::clone(clone.decoded_program());
        assert!(Arc::ptr_eq(&p1, &p3), "clones share the built program");
    }
}
