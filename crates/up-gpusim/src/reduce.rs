//! Multi-pass, multi-threading aggregation — §III-E2.
//!
//! DECIMAL values are aggregated "in rounds for exploiting massive
//! parallelism": each pass arranges values into thread blocks, every block
//! reduces its slice in shared memory (first inner-thread, then
//! inter-thread), and the per-block results feed the next pass until one
//! block can process everything. The shared-memory sizing follows the
//! paper's formulas verbatim:
//!
//! ```text
//! Ng = Tmax / TPI                  thread groups per block
//! nt = ⌊S / (Ng·(4·Lw + 1))⌋       values per thread
//! nT = nt · Ng                     values per block
//! blocks = ⌈N / nT⌉
//! ```

use crate::cgbn::Tpi;
use crate::cost::{kernel_time, KernelTime};
use crate::device::DeviceConfig;
use crate::exec::ExecStats;
use crate::ptx::KernelBuilder;
use up_num::dtype::DecimalType;
use up_num::UpDecimal;

/// Aggregation operators with DECIMAL inputs (§III-B3 lists their result
/// types; AVG is SUM followed by a division at the engine level).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum with widened precision `p + ceil(log10 N)`.
    Sum,
    /// Minimum (type unchanged).
    Min,
    /// Maximum (type unchanged).
    Max,
}

/// Geometry of one aggregation pass.
#[derive(Clone, Copy, Debug)]
pub struct PassPlan {
    /// Values entering this pass.
    pub n_in: u64,
    /// Values leaving (one per block).
    pub n_out: u64,
    /// Values per thread (`nt`).
    pub nt: u64,
    /// Thread groups per block (`Ng`).
    pub ng: u64,
    /// Values per block (`nT`).
    pub n_per_block: u64,
    /// Blocks launched.
    pub blocks: u64,
}

/// The full multi-pass plan.
#[derive(Clone, Debug)]
pub struct AggPlan {
    /// TPI used.
    pub tpi: u32,
    /// Word length of the values being reduced.
    pub lw: usize,
    /// Per-pass geometry, first to last.
    pub passes: Vec<PassPlan>,
}

/// Plans the passes for aggregating `n` values of `lw` words at `tpi`.
pub fn plan_aggregation(n: u64, lw: usize, tpi: Tpi, device: &DeviceConfig) -> AggPlan {
    let t_max = device.max_threads_per_block as u64;
    let s = device.shared_mem_per_block as u64;
    let ng = (t_max / tpi.0 as u64).max(1);
    let nt = (s / (ng * (4 * lw as u64 + 1))).max(1);
    let n_per_block = nt * ng;

    let mut passes = Vec::new();
    let mut remaining = n.max(1);
    loop {
        let blocks = remaining.div_ceil(n_per_block);
        passes.push(PassPlan {
            n_in: remaining,
            n_out: blocks,
            nt,
            ng,
            n_per_block,
            blocks,
        });
        if blocks == 1 {
            break;
        }
        remaining = blocks;
    }
    AggPlan { tpi: tpi.0, lw, passes }
}

/// Result of a priced aggregation run.
#[derive(Clone, Debug)]
pub struct AggRun {
    /// The aggregate value (exact).
    pub result: UpDecimal,
    /// The plan executed.
    pub plan: AggPlan,
    /// Priced time of each pass.
    pub pass_times: Vec<KernelTime>,
    /// Sum of pass times (seconds).
    pub total_s: f64,
}

/// Prices the multi-pass aggregation of `n` values of width `lw` without
/// running it — used when the functional reduction happens elsewhere
/// (e.g. per group, while the device reduces all groups in one launch).
pub fn priced(n: u64, lw: usize, tpi: Tpi, device: &DeviceConfig) -> (AggPlan, Vec<KernelTime>, f64) {
    let plan = plan_aggregation(n, lw, tpi, device);
    let mut times = Vec::with_capacity(plan.passes.len());
    let mut total_s = 0.0;
    for pass in &plan.passes {
        let stats = pass_stats(pass, lw, tpi, device);
        let hw_regs = crate::cgbn::group_hw_regs(lw, tpi);
        let mut kb = KernelBuilder::new();
        let smem = (pass.ng * pass.nt * (4 * lw as u64 + 1)) as u32;
        kb.smem(smem.min(device.shared_mem_per_block));
        let k = kb.finish(format!("agg_pass_n{}", pass.n_in), hw_regs);
        let t = kernel_time(&k, &stats, device);
        total_s += t.total_s;
        times.push(t);
    }
    (plan, times, total_s)
}

/// Aggregates a column functionally while pricing the multi-pass GPU
/// execution. `out_ty` must be the §III-B3 result type (SUM widens; the
/// caller computes it via [`DecimalType::sum_result`]).
pub fn aggregate(
    op: AggOp,
    values: &[UpDecimal],
    out_ty: DecimalType,
    tpi: Tpi,
    device: &DeviceConfig,
) -> AggRun {
    let lw = out_ty.lw();
    let plan = plan_aggregation(values.len() as u64, lw, tpi, device);

    // Functional reduction, pass by pass, mirroring the block structure so
    // MIN/MAX tie-breaking and SUM grouping match the device order.
    let mut current: Vec<UpDecimal> = values.to_vec();
    for pass in &plan.passes {
        let mut next = Vec::with_capacity(pass.blocks as usize);
        for chunk in current.chunks(pass.n_per_block.max(1) as usize) {
            next.push(reduce_chunk(op, chunk, out_ty));
        }
        current = next;
    }
    debug_assert_eq!(current.len(), 1);
    let result = current.pop().expect("aggregation of non-empty plan");

    // Price each pass.
    let mut pass_times = Vec::with_capacity(plan.passes.len());
    let mut total_s = 0.0;
    for pass in &plan.passes {
        let stats = pass_stats(pass, lw, tpi, device);
        let hw_regs = crate::cgbn::group_hw_regs(lw, tpi);
        let mut kb = KernelBuilder::new();
        let smem = (pass.ng * pass.nt * (4 * lw as u64 + 1)) as u32;
        kb.smem(smem.min(device.shared_mem_per_block));
        let k = kb.finish(format!("agg_pass_n{}", pass.n_in), hw_regs);
        let t = kernel_time(&k, &stats, device);
        total_s += t.total_s;
        pass_times.push(t);
    }
    AggRun { result, plan, pass_times, total_s }
}

fn reduce_chunk(op: AggOp, chunk: &[UpDecimal], out_ty: DecimalType) -> UpDecimal {
    let mut it = chunk.iter();
    let first = it.next().expect("non-empty chunk");
    match op {
        AggOp::Sum => {
            let mut acc = first.align_up(out_ty.scale);
            for v in it {
                acc = acc.add(&v.align_up(out_ty.scale));
            }
            UpDecimal::from_parts_unchecked(acc, out_ty)
        }
        AggOp::Min => it
            .fold(first.clone(), |m, v| {
                if v.cmp_value(&m) == core::cmp::Ordering::Less { v.clone() } else { m }
            })
            .cast(out_ty)
            .unwrap_or_else(|_| first.clone()),
        AggOp::Max => it
            .fold(first.clone(), |m, v| {
                if v.cmp_value(&m) == core::cmp::Ordering::Greater { v.clone() } else { m }
            })
            .cast(out_ty)
            .unwrap_or_else(|_| first.clone()),
    }
}

/// Launch statistics of one pass: every value is read once into shared
/// memory ("the DECIMAL values are first read into the shared memory and
/// then aggregated"), reduced inner-thread then inter-thread.
fn pass_stats(pass: &PassPlan, lw: usize, tpi: Tpi, device: &DeviceConfig) -> ExecStats {
    let bytes_per_value = (4 * lw + 1) as u64;
    let bytes = pass.n_in * bytes_per_value;
    let threads = pass.blocks * pass.ng * tpi.0 as u64;
    let warps = threads.div_ceil(device.warp_size as u64).max(1);
    let lt = lw.div_ceil(tpi.0 as usize) as f64;
    // Inner-thread: nt−1 additions of lt words each; inter-thread:
    // log2(Ng·TPI) rounds through shared memory.
    let inner = (pass.nt.max(1) - 1) as f64 * (2.0 * lt + 2.0);
    let inter = ((pass.ng * tpi.0 as u64) as f64).log2().ceil() * (2.0 * lt + 6.0);
    let per_thread = inner + inter + 3.0 * lt + 8.0;
    ExecStats {
        thread_insts: (per_thread * threads as f64) as u64,
        warp_issue_cycles: per_thread * warps as f64,
        warp_issues: (per_thread * warps as f64) as u64,
        mem_transactions: bytes / 32 + 1,
        dram_bytes: bytes + pass.n_out * bytes_per_value,
        divergent_branches: 0,
        warps,
        blocks: pass.blocks,
        sample_scale: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn plan_follows_paper_formulas() {
        let d = DeviceConfig::a6000();
        let tpi = Tpi(8);
        let lw = 4;
        let plan = plan_aggregation(10_000_000, lw, tpi, &d);
        let ng = 1024 / 8;
        assert_eq!(plan.passes[0].ng, ng);
        let nt = (48 * 1024) as u64 / (ng * (4 * 4 + 1));
        assert_eq!(plan.passes[0].nt, nt);
        assert_eq!(plan.passes[0].n_per_block, nt * ng);
        // Passes shrink geometrically and end at one block.
        assert!(plan.passes.len() >= 2);
        assert_eq!(plan.passes.last().unwrap().blocks, 1);
        for w in plan.passes.windows(2) {
            assert_eq!(w[0].n_out, w[1].n_in);
            assert!(w[1].n_in < w[0].n_in);
        }
    }

    #[test]
    fn sum_is_exact_and_widened() {
        let d = DeviceConfig::tiny();
        let t = ty(11, 7);
        let n = 5000i64;
        let values: Vec<_> = (1..=n)
            .map(|i| UpDecimal::from_scaled_i64(i, t).unwrap())
            .collect();
        let out_ty = t.sum_result(n as u64);
        let run = aggregate(AggOp::Sum, &values, out_ty, Tpi(8), &d);
        // Σ 1..5000 scaled by 10^-7.
        let expect = UpDecimal::from_scaled_i64(n * (n + 1) / 2, ty(out_ty.precision, 7)).unwrap();
        assert_eq!(run.result.cmp_value(&expect), core::cmp::Ordering::Equal);
        assert_eq!(run.result.dtype(), out_ty);
        assert!(run.total_s > 0.0);
    }

    #[test]
    fn min_max_pick_extremes() {
        let d = DeviceConfig::tiny();
        let t = ty(8, 2);
        let values: Vec<_> = [-50i64, 320, 7, -9999, 9998]
            .iter()
            .map(|&i| UpDecimal::from_scaled_i64(i, t).unwrap())
            .collect();
        let min = aggregate(AggOp::Min, &values, t, Tpi(4), &d).result;
        let max = aggregate(AggOp::Max, &values, t, Tpi(4), &d).result;
        assert_eq!(min.to_string(), "-99.99");
        assert_eq!(max.to_string(), "99.98");
    }

    #[test]
    fn sum_matches_across_tpi() {
        let d = DeviceConfig::tiny();
        let t = ty(29, 11);
        let values: Vec<_> = (0..1000)
            .map(|i| UpDecimal::from_scaled_i64((i * 7919) % 100_000 - 50_000, t).unwrap())
            .collect();
        let out_ty = t.sum_result(1000);
        let r1 = aggregate(AggOp::Sum, &values, out_ty, Tpi(1), &d).result;
        for tpi in [4, 8, 16, 32] {
            let r = aggregate(AggOp::Sum, &values, out_ty, Tpi(tpi), &d).result;
            assert_eq!(r, r1, "tpi={tpi}");
        }
    }

    #[test]
    fn bigger_lw_means_fewer_values_per_block() {
        let d = DeviceConfig::a6000();
        let small = plan_aggregation(1_000_000, 2, Tpi(8), &d);
        let big = plan_aggregation(1_000_000, 32, Tpi(8), &d);
        assert!(big.passes[0].n_per_block < small.passes[0].n_per_block);
    }

    #[test]
    fn single_value_aggregation() {
        let d = DeviceConfig::tiny();
        let t = ty(5, 1);
        let v = vec![UpDecimal::parse("7.5", t).unwrap()];
        let run = aggregate(AggOp::Sum, &v, t.sum_result(1), Tpi(8), &d);
        assert_eq!(run.result.to_string(), "7.5");
        assert_eq!(run.plan.passes.len(), 1);
    }
}
