//! The database facade: catalog + JIT engine + device + profile, with a
//! one-call SQL entry point.
//!
//! Read-only queries take `&self`: the JIT engine's cache and counters use
//! interior mutability, so one `Database` behind an `Arc`/`RwLock` can
//! serve many concurrent sessions (the `up-server` crate builds exactly
//! that). Only DDL and insert paths — which mutate the catalog — still
//! require `&mut self`.

use crate::exec::{execute, ExecCtx, QueryError, QueryResult};
use crate::plan::plan;
use crate::profiles::Profile;
use crate::sql::parse_select;
use crate::storage::{Catalog, Schema, Table, Value};
use std::sync::Arc;
use up_gpusim::DeviceConfig;
use up_jit::cache::{CacheStats, JitEngine, SharedKernelCache};
use up_num::NumError;

/// A database instance bound to one execution profile.
pub struct Database {
    catalog: Catalog,
    device: DeviceConfig,
    profile: Profile,
    jit: JitEngine,
    /// TPI used by the multi-threaded aggregation (§IV-C2 uses 8).
    pub agg_tpi: u32,
    /// TPI for multi-threaded expression evaluation (1 = single-thread
    /// kernels; §IV-C1 sweeps 1/4/8/16/32).
    pub expr_tpi: u32,
    /// Host-side simulator parallelism for kernel launches. Results and
    /// modeled times are bit-identical across settings; only host wall
    /// time changes.
    pub sim_par: up_gpusim::SimParallelism,
    /// Plan-level launch pipelining (see `up_gpusim::pipeline`): overlaps
    /// JIT compilation, transfers, and execution across a query's
    /// independent expression slots. Rows and modeled times stay
    /// bit-identical across modes. Defaults from `UP_PIPELINE`.
    pub pipeline: up_gpusim::PipelineMode,
    /// Functional-interpreter backend for kernel launches (tree walker
    /// vs. pre-decoded flat programs). Results, stats, and modeled times
    /// are bit-identical across backends. Defaults from `UP_SIM_EXEC`.
    pub exec_backend: up_gpusim::ExecBackend,
    /// Simulated device fleet for data-parallel scans (see
    /// `up_gpusim::Fleet`). `None` = classic single-device execution.
    /// Rows, `ModeledTime`, kernel counts, and cache stats stay
    /// bit-identical to single-device; the fleet only adds the
    /// side-band `FleetReport` with sharded makespans and speedup.
    fleet: Option<Arc<up_gpusim::Fleet>>,
}

impl Database {
    /// New database on the A6000-like device.
    pub fn new(profile: Profile) -> Database {
        Database {
            catalog: Catalog::new(),
            device: DeviceConfig::a6000(),
            profile,
            jit: JitEngine::with_defaults(),
            agg_tpi: 8,
            expr_tpi: 1,
            sim_par: up_gpusim::SimParallelism::default(),
            pipeline: up_gpusim::PipelineMode::from_env().unwrap_or_default(),
            exec_backend: up_gpusim::ExecBackend::env_default(),
            fleet: None,
        }
    }

    /// New database with explicit device and JIT options (ablations).
    pub fn with_config(
        profile: Profile,
        device: DeviceConfig,
        jit: JitEngine,
    ) -> Database {
        Database {
            catalog: Catalog::new(),
            device,
            profile,
            jit,
            agg_tpi: 8,
            expr_tpi: 1,
            sim_par: up_gpusim::SimParallelism::default(),
            pipeline: up_gpusim::PipelineMode::from_env().unwrap_or_default(),
            exec_backend: up_gpusim::ExecBackend::env_default(),
            fleet: None,
        }
    }

    /// The active profile.
    pub fn profile(&self) -> Profile {
        self.profile
    }

    /// Switches profile (kernel cache survives — kernels are profile-
    /// independent and only UltraPrecise uses them).
    pub fn set_profile(&mut self, profile: Profile) {
        self.profile = profile;
    }

    /// Installs (or clears) the simulated device fleet. Queries shard
    /// scans across it and attach a `FleetReport`; rows and `ModeledTime`
    /// stay bit-identical to single-device execution.
    pub fn set_fleet(&mut self, fleet: Option<Arc<up_gpusim::Fleet>>) {
        self.fleet = fleet;
    }

    /// The installed fleet, if any.
    pub fn fleet(&self) -> Option<&Arc<up_gpusim::Fleet>> {
        self.fleet.as_ref()
    }

    /// Creates (or replaces) a table. DDL: needs exclusive database
    /// access (the catalog map itself changes).
    pub fn create_table(&mut self, name: &str, schema: Schema) {
        self.catalog.put(Table::new(name, schema));
    }

    /// Appends one row. Takes `&self`: the catalog is lock-striped, so
    /// this only write-locks the target table — inserts into disjoint
    /// tables (and queries over other tables) proceed in parallel.
    pub fn insert(&self, table: &str, row: Vec<Value>) -> Result<(), NumError> {
        self.catalog
            .write(table)
            .unwrap_or_else(|| panic!("unknown table {table}"))
            .push_row(row)
    }

    /// Bulk-appends rows under one per-table write lock.
    pub fn insert_many(
        &self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<(), NumError> {
        let mut t = self
            .catalog
            .write(table)
            .unwrap_or_else(|| panic!("unknown table {table}"));
        for row in rows {
            t.push_row(row)?;
        }
        Ok(())
    }

    /// Write access to one table (workload generators write columns in
    /// bulk). Holds that table's write lock for the guard's lifetime.
    pub fn table_mut(&self, name: &str) -> Option<std::sync::RwLockWriteGuard<'_, Table>> {
        self.catalog.write(name)
    }

    /// Read-only table access (holds the table's read lock).
    pub fn table(&self, name: &str) -> Option<std::sync::RwLockReadGuard<'_, Table>> {
        self.catalog.read(name)
    }

    /// Parses, plans, and executes one `SELECT` under the database's
    /// default profile. Read-only: safe to call from many threads when the
    /// `Database` is behind a shared reference.
    pub fn query(&self, sql: &str) -> Result<QueryResult, QueryError> {
        self.query_as(self.profile, sql)
    }

    /// Executes one `SELECT` under an explicit profile (per-session
    /// profiles in the concurrent service override the default this way).
    pub fn query_as(&self, profile: Profile, sql: &str) -> Result<QueryResult, QueryError> {
        self.run(profile, sql, None)
    }

    /// Executes one `SELECT` bound to the server-wide pipeline arena:
    /// JIT compiles rendezvous with the admission-time prefetch and the
    /// side-band timeline uses the shared engine pools. `up-server`'s
    /// workers route queries here when `ServerConfig::arena` is on.
    /// Results, `ModeledTime`, and cache stats are bit-identical to
    /// [`Database::query_as`].
    pub fn query_with_arena(
        &self,
        profile: Profile,
        sql: &str,
        arena: crate::exec::ArenaCtx<'_>,
    ) -> Result<QueryResult, QueryError> {
        self.run(profile, sql, Some(arena))
    }

    fn run(
        &self,
        profile: Profile,
        sql: &str,
        arena: Option<crate::exec::ArenaCtx<'_>>,
    ) -> Result<QueryResult, QueryError> {
        let select = parse_select(sql).map_err(QueryError::Parse)?;
        let plan = plan(&select, &self.catalog).map_err(QueryError::Plan)?;
        let ctx = ExecCtx {
            catalog: &self.catalog,
            profile,
            device: &self.device,
            jit: &self.jit,
            agg_tpi: self.agg_tpi,
            expr_tpi: self.expr_tpi,
            sim_par: self.sim_par,
            pipeline: self.pipeline,
            exec_backend: self.exec_backend,
            arena,
            fleet: self.fleet.as_deref(),
        };
        execute(&plan, &ctx)
    }

    /// The JIT kernel references `sql` would compile under `profile`, in
    /// the exact order serial evaluation reaches them (`(signature,
    /// expression)` pairs, duplicates included). Empty when the profile
    /// doesn't route through single-thread JIT kernels. The server calls
    /// this at admission to prefetch compiles into the arena.
    pub fn plan_kernels(
        &self,
        profile: Profile,
        sql: &str,
    ) -> Result<Vec<(String, up_jit::Expr)>, QueryError> {
        let select = parse_select(sql).map_err(QueryError::Parse)?;
        let plan = plan(&select, &self.catalog).map_err(QueryError::Plan)?;
        Ok(crate::exec::plan_kernel_refs(&plan, &self.jit, profile, self.expr_tpi))
    }

    /// The database's JIT engine (shared cache, NVCC-emulation flag).
    /// The server forks this to build the arena's compile lanes.
    pub fn jit(&self) -> &JitEngine {
        &self.jit
    }

    /// JIT kernel-cache statistics (hits, misses, evictions, occupancy).
    pub fn jit_stats(&self) -> CacheStats {
        self.jit.cache_stats()
    }

    /// A handle to this database's kernel cache; share it with other
    /// engines (via [`JitEngine::with_cache`]) so sessions reuse each
    /// other's compiled kernels.
    pub fn jit_cache_handle(&self) -> Arc<SharedKernelCache> {
        self.jit.cache_handle()
    }

    /// Renders the bound plan of a query without executing it — which
    /// tables and joins run, how each decimal expression is typed and
    /// routed (JIT kernel vs comparator backend), and what the §III-D
    /// optimizer did to it.
    pub fn explain(&self, sql: &str) -> Result<String, QueryError> {
        use crate::plan::{OutputKind, Scalar};
        use core::fmt::Write as _;
        let select = parse_select(sql).map_err(QueryError::Parse)?;
        let plan = plan(&select, &self.catalog).map_err(QueryError::Plan)?;
        let mut out = String::new();
        let _ = writeln!(out, "profile: {}", self.profile.name());
        let _ = writeln!(out, "scan: {}", plan.tables[0]);
        for (k, edges) in plan.joins.iter().enumerate() {
            let _ = writeln!(
                out,
                "hash join: {} ({} key{})",
                plan.tables[k + 1],
                edges.len(),
                if edges.len() == 1 { "" } else { "s" }
            );
        }
        if plan.filter.is_some() {
            let _ = writeln!(out, "filter: <predicate>");
        }
        if !plan.group_by.is_empty() {
            let _ = writeln!(out, "group by: {} key(s)", plan.group_by.len());
        }
        let describe_scalar = |out: &mut String, name: &str, s: &Scalar| {
            match s {
                Scalar::Decimal { expr, inputs } => {
                    let optimized = self.jit.optimize(expr);
                    let route = if self.profile.uses_jit() {
                        if matches!(optimized, up_jit::Expr::Col { .. } | up_jit::Expr::Const(_)) {
                            "passthrough (no kernel)"
                        } else {
                            "JIT kernel"
                        }
                    } else {
                        "comparator backend"
                    };
                    let _ = writeln!(
                        out,
                        "  {name}: {expr} :: {} → {route} ({} input col{})",
                        expr.dtype(),
                        inputs.len(),
                        if inputs.len() == 1 { "" } else { "s" }
                    );
                    if optimized != *expr {
                        let _ = writeln!(out, "    optimized: {optimized}");
                    }
                }
                Scalar::Cpu(_) => {
                    let _ = writeln!(out, "  {name}: <cpu scalar>");
                }
                Scalar::Case { branches, .. } => {
                    let _ = writeln!(
                        out,
                        "  {name}: CASE with {} branch(es) — predicated execution",
                        branches.len()
                    );
                }
                Scalar::Cast { ty, .. } => {
                    let _ = writeln!(out, "  {name}: CAST → {ty}");
                }
            }
        };
        let _ = writeln!(out, "project:");
        for item in &plan.items {
            match &item.kind {
                OutputKind::Scalar(s) => describe_scalar(&mut out, &item.name, s),
                OutputKind::Agg(f, s) => {
                    let _ = writeln!(out, "  {}: {:?} over:", item.name, f);
                    describe_scalar(&mut out, "    input", s);
                }
                OutputKind::AggCombo { aggs, .. } => {
                    let _ = writeln!(
                        out,
                        "  {}: arithmetic over {} aggregate(s)",
                        item.name,
                        aggs.len()
                    );
                }
                OutputKind::CountStar => {
                    let _ = writeln!(out, "  {}: COUNT(*)", item.name);
                }
                OutputKind::Key(_) => {
                    let _ = writeln!(out, "  {}: group key", item.name);
                }
            }
        }
        if plan.having.is_some() {
            let _ = writeln!(out, "having: <predicate over outputs>");
        }
        if !plan.order_by.is_empty() {
            let _ = writeln!(out, "order by: {} key(s)", plan.order_by.len());
        }
        if let Some(l) = plan.limit {
            let _ = writeln!(out, "limit: {l}");
        }
        Ok(out)
    }

    /// Saves a table to a file in the compact binary format.
    pub fn save_table(
        &self,
        name: &str,
        path: &std::path::Path,
    ) -> Result<(), crate::persist::PersistError> {
        let t = self
            .table(name)
            .ok_or_else(|| crate::persist::PersistError::Corrupt(format!("no table {name}")))?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        crate::persist::save(&t, &mut f)
    }

    /// Loads a table file into the catalog (replacing any same-named
    /// table).
    pub fn load_table(
        &mut self,
        path: &std::path::Path,
    ) -> Result<String, crate::persist::PersistError> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let t = crate::persist::load(&mut f)?;
        let name = t.name.clone();
        self.catalog.put(t);
        Ok(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::ColumnType;
    use up_num::{DecimalType, UpDecimal};

    fn dt(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn dec(s: &str, p: u32, sc: u32) -> Value {
        Value::Decimal(UpDecimal::parse(s, dt(p, sc)).unwrap())
    }

    fn small_db(profile: Profile) -> Database {
        let mut db = Database::new(profile);
        db.create_table(
            "r",
            Schema::new(vec![
                ("c1", ColumnType::Decimal(dt(4, 2))),
                ("c2", ColumnType::Decimal(dt(4, 1))),
                ("g", ColumnType::Str),
            ]),
        );
        let rows = [
            ("1.23", "1.1", "a"),
            ("-5.00", "2.5", "a"),
            ("99.99", "-9.9", "b"),
            ("0.01", "0.0", "b"),
            ("10.00", "10.0", "a"),
        ];
        for (c1, c2, g) in rows {
            db.insert("r", vec![dec(c1, 4, 2), dec(c2, 4, 1), Value::Str(g.into())])
                .unwrap();
        }
        db
    }

    #[test]
    fn projection_on_gpu_matches_reference() {
        let db = small_db(Profile::UltraPrecise);
        let r = db.query("SELECT c1 + c2 FROM r").unwrap();
        let got: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert_eq!(got, vec!["2.33", "-2.50", "90.09", "0.01", "20.00"]);
        assert_eq!(r.kernels, 1);
        assert!(r.modeled.compile_s > 0.0);
        assert!(r.modeled.kernel_s > 0.0);
        assert!(r.modeled.pcie_s > 0.0);
    }

    #[test]
    fn all_profiles_agree_on_add_values() {
        let mut expected: Option<Vec<f64>> = None;
        for p in [
            Profile::UltraPrecise,
            Profile::RateupLike,
            Profile::HeavyAiLike,
            Profile::MonetLike,
            Profile::PostgresLike,
            Profile::H2Like,
            Profile::CockroachLike,
        ] {
            let db = small_db(p);
            let r = db.query("SELECT c1 + c2 FROM r").unwrap();
            let vals: Vec<f64> = r
                .rows
                .iter()
                .map(|row| match &row[0] {
                    Value::Decimal(d) => d.to_f64(),
                    other => panic!("{other:?}"),
                })
                .collect();
            match &expected {
                None => expected = Some(vals),
                Some(e) => {
                    for (a, b) in e.iter().zip(&vals) {
                        assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", p.name());
                    }
                }
            }
        }
    }

    #[test]
    fn filter_and_order_and_limit() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query("SELECT c1 FROM r WHERE c1 > 0 ORDER BY c1 DESC LIMIT 2")
            .unwrap();
        let got: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert_eq!(got, vec!["99.99", "10.00"]);
    }

    #[test]
    fn group_by_with_sum_and_count() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query("SELECT g, SUM(c1) AS s, COUNT(*) AS n FROM r GROUP BY g ORDER BY g")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0].render(), "a");
        assert_eq!(r.rows[0][1].render(), "6.23"); // 1.23 - 5.00 + 10.00
        assert_eq!(r.rows[0][2].render(), "3");
        assert_eq!(r.rows[1][1].render(), "100.00");
    }

    #[test]
    fn global_aggregates() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query("SELECT SUM(c1), MIN(c1), MAX(c1), AVG(c1), COUNT(*) FROM r")
            .unwrap();
        let row = &r.rows[0];
        assert_eq!(row[0].render(), "106.23");
        assert_eq!(row[1].render(), "-5.00");
        assert_eq!(row[2].render(), "99.99");
        // AVG = 106.23 / 5 at scale 2+4.
        assert_eq!(row[3].render(), "21.246000");
        assert_eq!(row[4].render(), "5");
    }

    #[test]
    fn heavyai_rejects_wide_types() {
        let mut db = Database::new(Profile::HeavyAiLike);
        db.create_table("w", Schema::new(vec![("c", ColumnType::Decimal(dt(35, 5)))]));
        db.insert("w", vec![dec("1.00000", 35, 5)]).unwrap();
        let err = db.query("SELECT c + c FROM w").unwrap_err();
        assert!(matches!(err, QueryError::Capability(_)), "{err}");
    }

    #[test]
    fn division_by_zero_aborts_query() {
        let db = small_db(Profile::UltraPrecise);
        let err = db.query("SELECT c1 / c2 FROM r").unwrap_err(); // c2 has a 0.0
        assert!(matches!(err, QueryError::Num(NumError::DivisionByZero)), "{err}");
    }

    #[test]
    fn kernel_cache_reused_across_queries() {
        let db = small_db(Profile::UltraPrecise);
        db.query("SELECT c1 + c2 FROM r").unwrap();
        db.query("SELECT c1 + c2 FROM r").unwrap();
        let s = db.jit_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn joins_work() {
        let mut db = small_db(Profile::UltraPrecise);
        db.create_table(
            "s",
            Schema::new(vec![("g", ColumnType::Str), ("w", ColumnType::Decimal(dt(4, 1)))]),
        );
        db.insert("s", vec![Value::Str("a".into()), dec("2.0", 4, 1)]).unwrap();
        db.insert("s", vec![Value::Str("b".into()), dec("3.0", 4, 1)]).unwrap();
        let r = db
            .query("SELECT SUM(r.c1 * s.w) FROM r JOIN s ON r.g = s.g")
            .unwrap();
        // a-rows: (1.23 - 5.00 + 10.00)*2 = 12.46; b-rows: (99.99+0.01)*3 = 300.
        assert_eq!(r.rows[0][0].render(), "312.460");
    }

    #[test]
    fn double_profile_is_inexact() {
        let mut db = Database::new(Profile::DoubleF64);
        db.create_table("d", Schema::new(vec![("x", ColumnType::Decimal(dt(3, 1)))]));
        for _ in 0..100 {
            db.insert("d", vec![dec("0.1", 3, 1)]).unwrap();
        }
        let r = db.query("SELECT SUM(x + x) FROM d").unwrap();
        let Value::Float64(v) = r.rows[0][0] else { panic!("expected double") };
        assert!((v - 20.0).abs() < 1e-9);
        assert_ne!(v, 20.0, "f64 accumulation should drift");
    }

    #[test]
    fn case_when_predicated_selection() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query(
                "SELECT CASE WHEN g = 'a' THEN c1 ELSE 0 END FROM r ORDER BY 1 DESC LIMIT 2",
            )
            .unwrap();
        // a-rows' c1: 1.23, -5.00, 10.00; others → 0.
        assert_eq!(r.rows[0][0].render(), "10.00");
        assert_eq!(r.rows[1][0].render(), "1.23");
    }

    #[test]
    fn case_sum_counts_like_q12() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query(
                "SELECT SUM(CASE WHEN g = 'a' THEN 1 ELSE 0 END) AS a_cnt,                  SUM(CASE WHEN g = 'b' THEN 1 ELSE 0 END) AS b_cnt FROM r",
            )
            .unwrap();
        assert_eq!(r.rows[0][0].render(), "3");
        assert_eq!(r.rows[0][1].render(), "2");
    }

    #[test]
    fn aggregate_arithmetic_like_q14() {
        let db = small_db(Profile::UltraPrecise);
        // 100 * SUM(a-branch c1)/SUM(c1): a-rows sum 6.23, total 106.23.
        let r = db
            .query(
                "SELECT 100.00 * SUM(CASE WHEN g = 'a' THEN c1 ELSE 0 END) / SUM(c1) FROM r",
            )
            .unwrap();
        let Value::Decimal(d) = &r.rows[0][0] else { panic!("{:?}", r.rows[0][0]) };
        assert!((d.to_f64() - 100.0 * 6.23 / 106.23).abs() < 1e-3, "{d}");
    }

    #[test]
    fn cast_in_projection_and_aggregate() {
        let db = small_db(Profile::UltraPrecise);
        let r = db.query("SELECT CAST(c1 AS DECIMAL(10, 4)) FROM r LIMIT 1").unwrap();
        assert_eq!(r.rows[0][0].render(), "1.2300");
        let r2 = db.query("SELECT SUM(CAST(c1 AS DECIMAL(10, 0))) FROM r").unwrap();
        // rounded per value: 1, -5, 100, 0, 10 → 106
        assert_eq!(r2.rows[0][0].render(), "106");
        // Overflowing cast errors.
        assert!(db.query("SELECT CAST(c1 AS DECIMAL(2, 1)) FROM r").is_err());
    }

    #[test]
    fn sum_divided_by_literal_like_q17() {
        let db = small_db(Profile::UltraPrecise);
        let r = db.query("SELECT SUM(c1) / 7.0 FROM r").unwrap();
        let Value::Decimal(d) = &r.rows[0][0] else { panic!() };
        assert!((d.to_f64() - 106.23 / 7.0).abs() < 1e-4, "{d}");
    }

    #[test]
    fn mt_expression_path_matches_single_thread() {
        // §III-E1: results are independent of TPI; only the work
        // partitioning (and therefore the modeled time) changes.
        let wide = dt(70, 10);
        let make = |tpi: u32| {
            let mut db = Database::new(Profile::UltraPrecise);
            db.expr_tpi = tpi;
            db.create_table("w", Schema::new(vec![("x", ColumnType::Decimal(wide))]));
            for i in 1..=20i64 {
                db.insert(
                    "w",
                    vec![Value::Decimal(
                        UpDecimal::from_scaled_i64(i * 987_654_321, wide).unwrap(),
                    )],
                )
                .unwrap();
            }
            db
        };
        let single = make(1);
        let r1 = single.query("SELECT x * x + x FROM w").unwrap();
        for tpi in [4u32, 8, 32] {
            let mt = make(tpi);
            let r = mt.query("SELECT x * x + x FROM w").unwrap();
            for (a, b) in r1.rows.iter().zip(&r.rows) {
                let (Value::Decimal(x), Value::Decimal(y)) = (&a[0], &b[0]) else { panic!() };
                assert_eq!(x.cmp_value(y), std::cmp::Ordering::Equal, "tpi={tpi}");
            }
            assert!(r.modeled.kernel_s > 0.0);
        }
    }

    #[test]
    fn sim_parallelism_keeps_results_and_modeled_time_bit_identical() {
        use up_gpusim::SimParallelism;
        // Enough rows that `Auto` would actually go parallel on a
        // multi-core host (past the small-launch threshold); explicit
        // `Threads(n)` exercises the journaled parallel path everywhere.
        let wide = dt(40, 4);
        let run = |par: SimParallelism| {
            let mut db = Database::new(Profile::UltraPrecise);
            db.sim_par = par;
            db.create_table("w", Schema::new(vec![("x", ColumnType::Decimal(wide))]));
            let rows = (1..=4096i64).map(|i| {
                vec![Value::Decimal(
                    UpDecimal::from_scaled_i64(i * 123_456_789, wide).unwrap(),
                )]
            });
            db.insert_many("w", rows).unwrap();
            db.query("SELECT x * x + x FROM w").unwrap()
        };
        let serial = run(SimParallelism::Serial);
        for par in [
            SimParallelism::Threads(1),
            SimParallelism::Threads(8),
            SimParallelism::Auto,
        ] {
            let r = run(par);
            assert_eq!(serial.rows.len(), r.rows.len(), "{par}");
            for (a, b) in serial.rows.iter().zip(&r.rows) {
                assert_eq!(a[0].render(), b[0].render(), "{par}");
            }
            assert_eq!(
                serial.modeled.kernel_s.to_bits(),
                r.modeled.kernel_s.to_bits(),
                "{par}: modeled kernel time must be bit-equal to serial"
            );
            assert_eq!(serial.modeled.pcie_s.to_bits(), r.modeled.pcie_s.to_bits(), "{par}");
            assert_eq!(r.kernels, serial.kernels, "{par}");
        }
    }

    #[test]
    fn fleet_keeps_results_and_modeled_time_bit_identical() {
        use up_gpusim::Fleet;
        // Sharded aggregation across N simulated devices must be
        // invisible in every canonical output: rows, the full modeled
        // breakdown, kernel counts, and cache stats. Only the side-band
        // FleetReport may differ — and its speedup must grow with the
        // fleet on this aggregation shape.
        let wide = dt(40, 4);
        let sql = "SELECT g, SUM(x), AVG(x), MIN(x), MAX(x), COUNT(*) FROM w GROUP BY g ORDER BY g";
        let run = |devices: usize| {
            let mut db = Database::new(Profile::UltraPrecise);
            if devices > 1 {
                db.set_fleet(Some(Arc::new(Fleet::a6000s(devices))));
            }
            db.create_table(
                "w",
                Schema::new(vec![("x", ColumnType::Decimal(wide)), ("g", ColumnType::Str)]),
            );
            let rows = (1..=4096i64).map(|i| {
                vec![
                    Value::Decimal(UpDecimal::from_scaled_i64(i * 123_456_789, wide).unwrap()),
                    Value::Str(if i % 3 == 0 { "a".into() } else { "b".into() }),
                ]
            });
            db.insert_many("w", rows).unwrap();
            let r = db.query(sql).unwrap();
            (r, db.jit_stats())
        };
        let (single, single_stats) = run(1);
        assert!(single.fleet.is_none(), "no fleet installed → no report");
        for devices in [2usize, 4, 8] {
            let (r, stats) = run(devices);
            assert_eq!(single.rows.len(), r.rows.len(), "{devices} devices");
            for (a, b) in single.rows.iter().zip(&r.rows) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.render(), y.render(), "{devices} devices");
                }
            }
            for (name, a, b) in [
                ("scan", single.modeled.scan_s, r.modeled.scan_s),
                ("pcie", single.modeled.pcie_s, r.modeled.pcie_s),
                ("compile", single.modeled.compile_s, r.modeled.compile_s),
                ("kernel", single.modeled.kernel_s, r.modeled.kernel_s),
                ("cpu", single.modeled.cpu_s, r.modeled.cpu_s),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "{devices} devices: {name}_s");
            }
            assert_eq!(single.kernels, r.kernels, "{devices} devices");
            assert_eq!(
                (single_stats.hits, single_stats.misses),
                (stats.hits, stats.misses),
                "{devices} devices"
            );
            let f = r.fleet.expect("fleet installed → report attached");
            assert_eq!(f.devices, devices);
            assert_eq!(f.partition_rows.iter().sum::<u64>(), 4096);
            assert!(
                f.speedup > 1.2,
                "{devices} devices: sharding must beat one device, got {:.2}×",
                f.speedup
            );
            assert!(
                f.makespan_s < f.single_device_s,
                "{devices} devices: {f:?}"
            );
        }
    }

    #[test]
    fn exec_backend_keeps_results_and_modeled_time_bit_identical() {
        use up_gpusim::ExecBackend;
        // The decoded interpreter must be invisible at the query level:
        // same rows, same modeled times, same kernel attribution as the
        // reference tree walker, under serial and threaded hosts alike.
        let wide = dt(40, 4);
        let run = |backend: ExecBackend, par: up_gpusim::SimParallelism| {
            let mut db = Database::new(Profile::UltraPrecise);
            db.exec_backend = backend;
            db.sim_par = par;
            db.create_table("w", Schema::new(vec![("x", ColumnType::Decimal(wide))]));
            let rows = (1..=4096i64).map(|i| {
                vec![Value::Decimal(
                    UpDecimal::from_scaled_i64(i * 987_654_321, wide).unwrap(),
                )]
            });
            db.insert_many("w", rows).unwrap();
            db.query("SELECT x * x + x FROM w").unwrap()
        };
        let oracle = run(ExecBackend::Tree, up_gpusim::SimParallelism::Serial);
        assert_eq!(oracle.tiers.tree, 1, "tree launch attributed");
        for (backend, par) in [
            (ExecBackend::Decoded, up_gpusim::SimParallelism::Serial),
            (ExecBackend::Decoded, up_gpusim::SimParallelism::Threads(8)),
            (ExecBackend::Compiled, up_gpusim::SimParallelism::Serial),
            (ExecBackend::Compiled, up_gpusim::SimParallelism::Threads(8)),
            (ExecBackend::Auto, up_gpusim::SimParallelism::Auto),
        ] {
            let r = run(backend, par);
            assert_eq!(oracle.rows.len(), r.rows.len(), "{backend}/{par}");
            for (a, b) in oracle.rows.iter().zip(&r.rows) {
                assert_eq!(a[0].render(), b[0].render(), "{backend}/{par}");
            }
            assert_eq!(
                oracle.modeled.kernel_s.to_bits(),
                r.modeled.kernel_s.to_bits(),
                "{backend}/{par}: modeled kernel time must be bit-equal to tree/serial"
            );
            assert_eq!(r.kernels, oracle.kernels, "{backend}/{par}");
            // Tier attribution matches the backend that actually ran.
            match backend {
                ExecBackend::Decoded => assert_eq!(r.tiers.decoded, 1, "{backend}/{par}"),
                ExecBackend::Compiled => assert_eq!(r.tiers.compiled, 1, "{backend}/{par}"),
                _ => assert_eq!(r.tiers.total(), 1, "{backend}/{par}"),
            }
        }
    }

    #[test]
    fn pipeline_mode_keeps_results_and_modeled_time_bit_identical() {
        use up_gpusim::PipelineMode;
        // Four expression slots: two distinct kernels, one duplicate
        // signature (forces a DAG dependency edge + guaranteed cache
        // hit), one more distinct — plus COUNT(*), which is not a slot.
        let wide = dt(40, 4);
        let sql = "SELECT SUM(x * x + x), SUM(x + x), MIN(x * x + x), MAX(x - x * x), COUNT(*) FROM w";
        let run = |mode: PipelineMode| {
            let mut db = Database::new(Profile::UltraPrecise);
            db.pipeline = mode;
            db.create_table("w", Schema::new(vec![("x", ColumnType::Decimal(wide))]));
            let rows = (1..=512i64).map(|i| {
                vec![Value::Decimal(
                    UpDecimal::from_scaled_i64(i * 123_456_789, wide).unwrap(),
                )]
            });
            db.insert_many("w", rows).unwrap();
            let r = db.query(sql).unwrap();
            (r, db.jit_stats())
        };
        let (off, off_stats) = run(PipelineMode::Off);
        assert!(off.pipeline.is_none());
        for mode in [PipelineMode::On(2), PipelineMode::On(8)] {
            let (r, stats) = run(mode);
            assert_eq!(off.rows.len(), r.rows.len(), "{mode}");
            for (a, b) in off.rows.iter().zip(&r.rows) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.render(), y.render(), "{mode}");
                }
            }
            // The full modeled breakdown — including compile attribution —
            // must be bit-equal, not just close.
            assert_eq!(off.modeled.compile_s.to_bits(), r.modeled.compile_s.to_bits(), "{mode}");
            assert_eq!(off.modeled.kernel_s.to_bits(), r.modeled.kernel_s.to_bits(), "{mode}");
            assert_eq!(off.modeled.pcie_s.to_bits(), r.modeled.pcie_s.to_bits(), "{mode}");
            assert_eq!(off.modeled.cpu_s.to_bits(), r.modeled.cpu_s.to_bits(), "{mode}");
            assert_eq!(off.kernels, r.kernels, "{mode}");
            // Same compile miss/hit pattern as serial (duplicate
            // signature hits the cache in both modes).
            assert_eq!((off_stats.hits, off_stats.misses), (stats.hits, stats.misses), "{mode}");
            // The side-band report is present and self-consistent.
            let p = r.pipeline.expect("pipelined run reports a timeline");
            assert!(p.nodes >= 4, "{mode}: {p:?}");
            assert!(p.makespan_s <= p.serial_s + 1e-12, "{mode}: {p:?}");
            assert!(p.utilization >= 0.0 && p.utilization <= 1.0, "{mode}");
        }
    }

    #[test]
    fn group_by_decimal_column_uses_decimal_comparison() {
        // §III-A: "for the tuples grouped according to DECIMAL columns …
        // we implement the comparison operators of DECIMAL".
        let mut db = Database::new(Profile::UltraPrecise);
        db.create_table(
            "t",
            Schema::new(vec![("k", ColumnType::Decimal(dt(6, 2))), ("v", ColumnType::Decimal(dt(6, 2)))]),
        );
        for (k, v) in [("1.50", "1.00"), ("1.50", "2.00"), ("-0.25", "4.00"), ("1.50", "3.00")] {
            db.insert("t", vec![dec(k, 6, 2), dec(v, 6, 2)]).unwrap();
        }
        let r = db.query("SELECT k, SUM(v), COUNT(*) FROM t GROUP BY k ORDER BY k").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0].render(), "-0.25");
        assert_eq!(r.rows[1][0].render(), "1.50");
        assert_eq!(r.rows[1][1].render(), "6.00");
        assert_eq!(r.rows[1][2].render(), "3");
    }

    #[test]
    fn save_and_load_table_through_database() {
        let db = small_db(Profile::UltraPrecise);
        let dir = std::env::temp_dir().join("up_engine_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.uptb");
        db.save_table("r", &path).unwrap();

        let mut db2 = Database::new(Profile::UltraPrecise);
        let name = db2.load_table(&path).unwrap();
        assert_eq!(name, "r");
        let r1 = db.query("SELECT SUM(c1 + c2) FROM r").unwrap();
        let r2 = db2.query("SELECT SUM(c1 + c2) FROM r").unwrap();
        assert_eq!(r1.rows[0][0].render(), r2.rows[0][0].render());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn having_filters_groups() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query(
                "SELECT g, SUM(c1) AS total FROM r GROUP BY g                  HAVING total > 50 ORDER BY g",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0].render(), "b");
        // HAVING over COUNT(*).
        let r2 = db
            .query("SELECT g, COUNT(*) AS n FROM r GROUP BY g HAVING n >= 3")
            .unwrap();
        assert_eq!(r2.rows.len(), 1);
        assert_eq!(r2.rows[0][0].render(), "a");
        // Unknown HAVING column is a plan error.
        assert!(db.query("SELECT g FROM r GROUP BY g HAVING zzz > 1").is_err());
    }

    #[test]
    fn count_distinct() {
        let db = small_db(Profile::UltraPrecise);
        let r = db
            .query("SELECT COUNT(DISTINCT g), COUNT(*) FROM r")
            .unwrap();
        assert_eq!(r.rows[0][0].render(), "2");
        assert_eq!(r.rows[0][1].render(), "5");
        // Distinct decimals group by value, not representation.
        let r2 = db.query("SELECT COUNT(DISTINCT c2) FROM r").unwrap();
        // c2 values: 1.1, 2.5, -9.9, 0.0, 10.0 — all distinct.
        assert_eq!(r2.rows[0][0].render(), "5");
    }

    #[test]
    fn explain_describes_routing_and_optimization() {
        let db = {
            let mut db = small_db(Profile::UltraPrecise);
            db.set_profile(Profile::UltraPrecise);
            db
        };
        let text = db
            .explain("SELECT g, SUM(c1 + 1 + 2) AS s FROM r GROUP BY g HAVING s > 0 ORDER BY g LIMIT 5")
            .unwrap();
        assert!(text.contains("profile: UltraPrecise"), "{text}");
        assert!(text.contains("scan: r"));
        assert!(text.contains("group by: 1 key(s)"));
        assert!(text.contains("JIT kernel"));
        assert!(text.contains("optimized:"), "constant folding should show: {text}");
        assert!(text.contains("having:"));
        assert!(text.contains("limit: 5"));
        // A comparator profile reports its routing.
        let mut pg = small_db(Profile::PostgresLike);
        pg.set_profile(Profile::PostgresLike);
        let t2 = pg.explain("SELECT c1 + c2 FROM r").unwrap();
        assert!(t2.contains("comparator backend"), "{t2}");
    }

    #[test]
    fn constant_only_projection() {
        let db = small_db(Profile::UltraPrecise);
        let r = db.query("SELECT 1 + 2 FROM r LIMIT 3").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0].render(), "3");
        assert_eq!(r.kernels, 0); // folded away — no kernel generated
    }
}
