//! Column-store storage: schemas, compact decimal columns, tables, and
//! the catalog.
//!
//! DECIMAL columns are stored in the compact byte-aligned representation
//! of §III-B (Fig. 4) — `Lb` bytes per value, sign folded into one bit —
//! exactly the buffers the generated kernels read. Precision and scale
//! live in the column metadata ("the precision and scale are contained in
//! the metadata of the relation"), never per value.

use std::collections::HashMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use up_num::{encode_compact_into, DecimalType, NumError, UpDecimal};

/// A column's declared type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// `DECIMAL(p, s)` stored compact.
    Decimal(DecimalType),
    /// 64-bit integer.
    Int64,
    /// 64-bit float (the DOUBLE baseline).
    Float64,
    /// Variable-length string (dictionary-free, for TPC-H flags/dates).
    Str,
}

/// A named column.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name (lowercase).
    pub name: String,
    /// Type.
    pub ty: ColumnType,
}

/// A table schema.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    /// Ordered columns.
    pub columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from (name, type) pairs.
    pub fn new(cols: Vec<(&str, ColumnType)>) -> Schema {
        Schema {
            columns: cols
                .into_iter()
                .map(|(n, ty)| ColumnDef { name: n.to_lowercase(), ty })
                .collect(),
        }
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lname = name.to_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }
}

/// Column storage.
#[derive(Clone, Debug)]
pub enum ColumnData {
    /// Compact decimal bytes, `lb` per value.
    Decimal {
        /// The declared type.
        ty: DecimalType,
        /// Packed compact values.
        bytes: Vec<u8>,
    },
    /// Integers.
    Int64(Vec<i64>),
    /// Floats.
    Float64(Vec<f64>),
    /// Strings.
    Str(Vec<String>),
}

impl ColumnData {
    /// Empty storage for a column type.
    pub fn new(ty: ColumnType) -> ColumnData {
        match ty {
            ColumnType::Decimal(t) => ColumnData::Decimal { ty: t, bytes: Vec::new() },
            ColumnType::Int64 => ColumnData::Int64(Vec::new()),
            ColumnType::Float64 => ColumnData::Float64(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Decimal { ty, bytes } => bytes.len() / ty.lb(),
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes this column occupies in storage — what PCIe transfers move.
    pub fn byte_size(&self) -> u64 {
        match self {
            ColumnData::Decimal { bytes, .. } => bytes.len() as u64,
            ColumnData::Int64(v) => 8 * v.len() as u64,
            ColumnData::Float64(v) => 8 * v.len() as u64,
            ColumnData::Str(v) => v.iter().map(|s| s.len() as u64 + 4).sum(),
        }
    }

    /// Appends a decimal (must match the column type).
    pub fn push_decimal(&mut self, v: &UpDecimal) -> Result<(), NumError> {
        match self {
            ColumnData::Decimal { ty, bytes } => {
                debug_assert_eq!(v.dtype(), *ty, "value type must match column");
                let lb = ty.lb();
                let start = bytes.len();
                bytes.resize(start + lb, 0);
                encode_compact_into(v, *ty, &mut bytes[start..])
            }
            _ => panic!("push_decimal on a non-decimal column"),
        }
    }

    /// Reads a decimal by row index.
    pub fn get_decimal(&self, row: usize) -> UpDecimal {
        match self {
            ColumnData::Decimal { ty, bytes } => {
                let lb = ty.lb();
                up_num::decode_compact(&bytes[row * lb..(row + 1) * lb], *ty)
            }
            _ => panic!("get_decimal on a non-decimal column"),
        }
    }

    /// The raw compact buffer of a decimal column (kernel input).
    pub fn decimal_bytes(&self) -> (&[u8], DecimalType) {
        match self {
            ColumnData::Decimal { ty, bytes } => (bytes, *ty),
            _ => panic!("decimal_bytes on a non-decimal column"),
        }
    }
}

/// An in-memory table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Name (lowercase).
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// One [`ColumnData`] per schema column.
    pub columns: Vec<ColumnData>,
    /// Row count.
    pub rows: usize,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str, schema: Schema) -> Table {
        let columns = schema.columns.iter().map(|c| ColumnData::new(c.ty)).collect();
        Table { name: name.to_lowercase(), schema, columns, rows: 0 }
    }

    /// Total storage bytes (for scan/PCIe models).
    pub fn byte_size(&self) -> u64 {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// Appends one row of [`Value`]s.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), NumError> {
        assert_eq!(row.len(), self.columns.len(), "row arity");
        for (col, v) in self.columns.iter_mut().zip(row) {
            match (col, v) {
                (c @ ColumnData::Decimal { .. }, Value::Decimal(d)) => c.push_decimal(&d)?,
                (ColumnData::Int64(vs), Value::Int64(i)) => vs.push(i),
                (ColumnData::Float64(vs), Value::Float64(f)) => vs.push(f),
                (ColumnData::Str(vs), Value::Str(s)) => vs.push(s),
                (c, v) => panic!("type mismatch: column {c:?} value {v:?}"),
            }
        }
        self.rows += 1;
        Ok(())
    }
}

/// How a table's rows are split across a simulated device fleet.
///
/// Partitioning is deterministic — the same table and spec always yield
/// the same assignment — so fleet runs stay bit-reproducible. `Range`
/// is the scan/aggregation default (contiguous shards keep per-device
/// work coalesced and merge order fixed); `Hash` is the co-location
/// spec for key-partitioned exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Contiguous row ranges, split at caller-provided cumulative
    /// bounds (e.g. throughput-weighted fleet shard bounds).
    Range,
    /// FNV-1a hash of the key column's canonical bytes, modulo the
    /// partition count.
    Hash {
        /// Schema index of the key column.
        column: usize,
    },
}

/// FNV-1a over a canonical byte rendering of one stored value — the
/// stable row→partition hash behind [`PartitionSpec::Hash`].
fn fnv1a_value(col: &ColumnData, row: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    match col {
        ColumnData::Decimal { ty, bytes } => {
            let lb = ty.lb();
            eat(&bytes[row * lb..(row + 1) * lb]);
        }
        ColumnData::Int64(v) => eat(&v[row].to_le_bytes()),
        ColumnData::Float64(v) => eat(&v[row].to_bits().to_le_bytes()),
        ColumnData::Str(v) => eat(v[row].as_bytes()),
    }
    h
}

impl Table {
    /// Splits this table's row indices into `bounds.len() - 1`
    /// partitions. `bounds` must be cumulative and end at `self.rows`
    /// (the shape `Fleet::shard_bounds` produces). `Range` slices rows
    /// contiguously at the bounds; `Hash` buckets each row by its key
    /// column, ignoring the bound positions but using their count.
    pub fn partition(&self, spec: PartitionSpec, bounds: &[usize]) -> Vec<Vec<usize>> {
        assert!(bounds.len() >= 2, "need at least one partition");
        assert_eq!(*bounds.last().unwrap(), self.rows, "bounds must cover the table");
        let parts = bounds.len() - 1;
        match spec {
            PartitionSpec::Range => bounds
                .windows(2)
                .map(|w| {
                    assert!(w[0] <= w[1], "bounds must be non-decreasing");
                    (w[0]..w[1]).collect()
                })
                .collect(),
            PartitionSpec::Hash { column } => {
                let col = &self.columns[column];
                let mut out = vec![Vec::new(); parts];
                for row in 0..self.rows {
                    out[(fnv1a_value(col, row) % parts as u64) as usize].push(row);
                }
                out
            }
        }
    }
}

/// A scalar value crossing the engine's boundaries.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Decimal.
    Decimal(UpDecimal),
    /// Integer.
    Int64(i64),
    /// Float.
    Float64(f64),
    /// String.
    Str(String),
    /// SQL NULL (only produced by empty aggregates).
    Null,
}

impl Value {
    /// Renders for result display.
    pub fn render(&self) -> String {
        match self {
            Value::Decimal(d) => d.to_string(),
            Value::Int64(i) => i.to_string(),
            Value::Float64(f) => format!("{f}"),
            Value::Str(s) => s.clone(),
            Value::Null => "NULL".to_string(),
        }
    }
}

/// The table catalog, lock-striped per table.
///
/// Each table sits behind its own `RwLock`, so row appends into
/// *different* tables proceed in parallel and never block readers of
/// other tables — only the catalog map itself (DDL: create/replace)
/// needs `&mut Catalog`. Callers that lock **more than one** table must
/// acquire the guards in sorted lowercase-name order; that single global
/// order is what makes multi-table queries deadlock-free against each
/// other (see `exec::execute` and `plan::plan`).
#[derive(Default)]
pub struct Catalog {
    tables: HashMap<String, Arc<RwLock<Table>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table (replacing any previous one of the same name).
    /// DDL: requires exclusive catalog access.
    pub fn put(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), Arc::new(RwLock::new(table)));
    }

    /// The per-table lock handle (survives even if the catalog entry is
    /// later replaced).
    pub fn handle(&self, name: &str) -> Option<Arc<RwLock<Table>>> {
        self.tables.get(&name.to_lowercase()).cloned()
    }

    /// Read-locks a table.
    pub fn read(&self, name: &str) -> Option<RwLockReadGuard<'_, Table>> {
        self.tables
            .get(&name.to_lowercase())
            .map(|t| t.read().expect("table lock poisoned"))
    }

    /// Write-locks a table (row appends; schema edits still go through
    /// [`Catalog::put`]).
    pub fn write(&self, name: &str) -> Option<RwLockWriteGuard<'_, Table>> {
        self.tables
            .get(&name.to_lowercase())
            .map(|t| t.write().expect("table lock poisoned"))
    }

    /// Table names.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dt(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    #[test]
    fn decimal_column_round_trip() {
        let mut col = ColumnData::new(ColumnType::Decimal(dt(10, 2)));
        let vals = ["1.23", "-99999999.99", "0.00", "42.00"];
        for s in vals {
            col.push_decimal(&UpDecimal::parse(s, dt(10, 2)).unwrap()).unwrap();
        }
        assert_eq!(col.len(), 4);
        for (i, s) in vals.iter().enumerate() {
            assert_eq!(col.get_decimal(i).to_string(), *s);
        }
        // Storage is exactly Lb per value.
        assert_eq!(col.byte_size(), 4 * dt(10, 2).lb() as u64);
    }

    #[test]
    fn table_push_and_schema_lookup() {
        let schema = Schema::new(vec![
            ("c1", ColumnType::Decimal(dt(4, 2))),
            ("n", ColumnType::Int64),
            ("tag", ColumnType::Str),
        ]);
        let mut t = Table::new("R", schema);
        t.push_row(vec![
            Value::Decimal(UpDecimal::parse("1.23", dt(4, 2)).unwrap()),
            Value::Int64(7),
            Value::Str("x".into()),
        ])
        .unwrap();
        assert_eq!(t.rows, 1);
        assert_eq!(t.schema.index_of("C1"), Some(0));
        assert_eq!(t.schema.index_of("missing"), None);
        assert_eq!(t.columns[0].get_decimal(0).to_string(), "1.23");
    }

    #[test]
    fn catalog_is_case_insensitive() {
        let mut cat = Catalog::new();
        cat.put(Table::new("LineItem", Schema::default()));
        assert!(cat.read("lineitem").is_some());
        assert!(cat.read("LINEITEM").is_some());
    }

    #[test]
    fn range_partition_slices_rows_at_the_bounds() {
        let mut t =
            Table::new("r", Schema::new(vec![("n", ColumnType::Int64)]));
        for i in 0..10 {
            t.push_row(vec![Value::Int64(i)]).unwrap();
        }
        let parts = t.partition(PartitionSpec::Range, &[0, 3, 7, 10]);
        assert_eq!(parts, vec![vec![0, 1, 2], vec![3, 4, 5, 6], vec![7, 8, 9]]);
        // Degenerate single partition covers everything.
        let whole = t.partition(PartitionSpec::Range, &[0, 10]);
        assert_eq!(whole[0].len(), 10);
    }

    #[test]
    fn hash_partition_is_deterministic_and_covers_every_row() {
        let mut t = Table::new(
            "r",
            Schema::new(vec![("k", ColumnType::Str), ("n", ColumnType::Int64)]),
        );
        for i in 0..64 {
            t.push_row(vec![Value::Str(format!("key-{i}")), Value::Int64(i)]).unwrap();
        }
        let spec = PartitionSpec::Hash { column: 0 };
        let a = t.partition(spec, &[0, 16, 32, 48, 64]);
        let b = t.partition(spec, &[0, 16, 32, 48, 64]);
        assert_eq!(a, b, "hash partitioning must be deterministic");
        let mut all: Vec<usize> = a.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>(), "every row lands in exactly one part");
        // 64 distinct keys over 4 buckets: no bucket may swallow everything.
        assert!(a.iter().all(|p| p.len() < 64), "{:?}", a.iter().map(Vec::len).collect::<Vec<_>>());
        // Equal keys co-locate: hashing the constant-free int column of
        // identical values puts every row in one bucket.
        let mut same = Table::new("s", Schema::new(vec![("n", ColumnType::Int64)]));
        for _ in 0..8 {
            same.push_row(vec![Value::Int64(42)]).unwrap();
        }
        let parts = same.partition(PartitionSpec::Hash { column: 0 }, &[0, 4, 8]);
        assert!(parts.iter().filter(|p| !p.is_empty()).count() == 1);
    }

    #[test]
    fn table_locks_stripe_independently() {
        let mut cat = Catalog::new();
        cat.put(Table::new("a", Schema::default()));
        cat.put(Table::new("b", Schema::default()));
        // Holding a write lock on one table must not block the other.
        let _wa = cat.write("a").unwrap();
        let rb = cat.read("b").unwrap();
        assert_eq!(rb.rows, 0);
    }
}
