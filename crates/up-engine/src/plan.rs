//! Query planning: name resolution and expression binding.
//!
//! A parsed [`Select`] is resolved against the catalog into a
//! [`QueryPlan`] over a *wide row* — the base table's columns followed by
//! each joined table's columns. Decimal arithmetic binds to
//! [`up_jit::Expr`] trees (typed bottom-up per §III-B3, with literals
//! converted to `DECIMAL` at plan time per §III-D2); non-decimal
//! arithmetic binds to a small CPU-interpreted form.

use crate::sql::{AggFunc, BinOp, CmpOp, Join, Pred, Select, SqlExpr};
use crate::storage::{Catalog, ColumnType, Table};
use up_jit::Expr;
use up_num::{DecimalType, UpDecimal};

/// A planning failure.
#[derive(Clone, Debug)]
pub struct PlanError(pub String);

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "planning error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// A column of the wide row: which table of the join chain, which column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WideCol {
    /// Table position (0 = base, 1.. = joins in order).
    pub table: usize,
    /// Column index within that table.
    pub column: usize,
    /// The column's type.
    pub ty: ColumnType,
}

/// A bound scalar expression.
#[derive(Clone, Debug)]
pub enum Scalar {
    /// Pure-decimal arithmetic compiled to a JIT expression. `inputs[k]`
    /// is the wide column feeding the expression's column slot `k`.
    Decimal {
        /// The typed expression (slot indices refer to `inputs`).
        expr: Expr,
        /// Wide columns backing each expression slot.
        inputs: Vec<WideCol>,
    },
    /// Non-decimal (int/float/string) expression, CPU-interpreted.
    Cpu(CpuExpr),
    /// `CASE WHEN … THEN … END` — on a GPU this is predicated execution:
    /// every branch evaluates column-wise and a select picks per row.
    Case {
        /// (condition, value) branches in order.
        branches: Vec<(BoundPred, Scalar)>,
        /// `ELSE` value; `None` defaults to zero.
        else_: Option<Box<Scalar>>,
        /// When all branch values are decimal: the union type results are
        /// cast to (so mixed-scale branches aggregate consistently).
        unified: Option<DecimalType>,
    },
    /// `CAST(inner AS DECIMAL(p, s))`.
    Cast {
        /// The casted scalar.
        inner: Box<Scalar>,
        /// Target type.
        ty: DecimalType,
    },
}

/// CPU-interpreted scalar expressions over non-decimal columns.
#[derive(Clone, Debug)]
pub enum CpuExpr {
    /// Wide column reference.
    Col(WideCol),
    /// Integer literal.
    I64(i64),
    /// Float literal.
    F64(f64),
    /// String literal.
    Str(String),
    /// Negation.
    Neg(Box<CpuExpr>),
    /// Arithmetic.
    Bin(BinOp, Box<CpuExpr>, Box<CpuExpr>),
}

/// A bound predicate.
#[derive(Clone, Debug)]
pub enum BoundPred {
    /// Comparison of two scalars.
    Cmp(CmpOp, BoundOperand, BoundOperand),
    /// Conjunction.
    And(Box<BoundPred>, Box<BoundPred>),
    /// Disjunction.
    Or(Box<BoundPred>, Box<BoundPred>),
    /// Negation.
    Not(Box<BoundPred>),
    /// Range test.
    Between(BoundOperand, BoundOperand, BoundOperand),
    /// Pattern match on a string column.
    Like(BoundOperand, String),
}

/// One side of a comparison: a column, a literal, or a bound scalar.
#[derive(Clone, Debug)]
pub enum BoundOperand {
    /// Wide column.
    Col(WideCol),
    /// Decimal literal (typed minimally).
    Dec(UpDecimal),
    /// Integer literal.
    I64(i64),
    /// Float literal.
    F64(f64),
    /// String literal.
    Str(String),
}

/// One projected output.
#[derive(Clone, Debug)]
pub struct OutputItem {
    /// Display name.
    pub name: String,
    /// The computation.
    pub kind: OutputKind,
}

/// What an output item computes.
#[derive(Clone, Debug)]
pub enum OutputKind {
    /// Per-row scalar.
    Scalar(Scalar),
    /// Aggregate over a scalar.
    Agg(AggFunc, Scalar),
    /// `COUNT(*)`.
    CountStar,
    /// A plain group-by key column.
    Key(WideCol),
    /// Arithmetic over aggregates — TPC-H Q14's
    /// `100 * SUM(promo)/SUM(all)` shape. `aggs` lists the aggregate
    /// inputs (`None` scalar = `COUNT(*)`); `combo` combines their
    /// per-group results.
    AggCombo {
        /// The aggregates feeding the combination.
        aggs: Vec<(AggFunc, Option<Scalar>)>,
        /// The combining expression over `aggs` slots.
        combo: ComboExpr,
    },
}

/// Scalar arithmetic over per-group aggregate results.
#[derive(Clone, Debug)]
pub enum ComboExpr {
    /// Slot index into the item's `aggs`.
    Agg(usize),
    /// Decimal literal.
    Dec(UpDecimal),
    /// Integer literal.
    I64(i64),
    /// Negation.
    Neg(Box<ComboExpr>),
    /// Arithmetic.
    Bin(BinOp, Box<ComboExpr>, Box<ComboExpr>),
}

/// HAVING predicate over the output row.
#[derive(Clone, Debug)]
pub enum HavingPred {
    /// Compare output item `item` against a literal.
    Cmp(CmpOp, usize, BoundOperand),
    /// Conjunction.
    And(Box<HavingPred>, Box<HavingPred>),
    /// Disjunction.
    Or(Box<HavingPred>, Box<HavingPred>),
    /// Negation.
    Not(Box<HavingPred>),
}

/// A resolved join edge: equality of two wide columns.
#[derive(Clone, Copy, Debug)]
pub struct BoundJoin {
    /// Probe-side wide column (from tables 0..k).
    pub left: WideCol,
    /// Build-side column within the joined table (local index).
    pub right_column: usize,
}

/// The fully-bound plan.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Tables in join order (base first).
    pub tables: Vec<String>,
    /// Join edges: `joins[i]` connects table `i+1` into the chain.
    pub joins: Vec<Vec<BoundJoin>>,
    /// Filter.
    pub filter: Option<BoundPred>,
    /// Group-by keys (wide columns).
    pub group_by: Vec<WideCol>,
    /// Projected items.
    pub items: Vec<OutputItem>,
    /// HAVING: comparisons over output items (item index vs literal),
    /// pre-resolved conjunctions/disjunctions.
    pub having: Option<HavingPred>,
    /// ORDER BY: (output item index, descending).
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// Whether any item aggregates.
    pub has_aggregates: bool,
}

/// One independently-evaluable scalar slot of a plan — the unit the
/// launch-DAG pipeline schedules. Slots are emitted in the exact order
/// the serial executor walks them (items in plan order; an `AggCombo`'s
/// aggregate inputs in slot order), which is what lets pipelined results
/// merge back bit-identically.
#[derive(Clone, Copy, Debug)]
pub struct EvalSlot<'a> {
    /// Index of the owning output item.
    pub item: usize,
    /// Aggregate-input slot within the item (0 for plain items).
    pub slot: usize,
    /// The scalar to evaluate over the selection.
    pub scalar: &'a Scalar,
    /// The aggregate consuming this slot's column, if any (its reduction
    /// is priced together with the evaluation on the same DAG node).
    pub agg: Option<AggFunc>,
}

impl QueryPlan {
    /// The plan's independent scalar-evaluation slots, in serial
    /// evaluation order. Group keys and `COUNT(*)` need no evaluation
    /// and are not slots.
    pub fn eval_slots(&self) -> Vec<EvalSlot<'_>> {
        let mut out = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            match &item.kind {
                OutputKind::Scalar(s) => {
                    out.push(EvalSlot { item: i, slot: 0, scalar: s, agg: None });
                }
                OutputKind::Agg(f, s) => {
                    out.push(EvalSlot { item: i, slot: 0, scalar: s, agg: Some(*f) });
                }
                OutputKind::AggCombo { aggs, .. } => {
                    for (k, (f, sc)) in aggs.iter().enumerate() {
                        if let Some(s) = sc {
                            out.push(EvalSlot { item: i, slot: k, scalar: s, agg: Some(*f) });
                        }
                    }
                }
                OutputKind::CountStar | OutputKind::Key(_) => {}
            }
        }
        out
    }
}

struct Binder<'a> {
    /// (alias, table name, table ref, table position).
    tables: Vec<(Option<String>, String, &'a Table)>,
}

impl<'a> Binder<'a> {
    fn resolve_ident(&self, parts: &[String]) -> Result<WideCol, PlanError> {
        match parts {
            [col] => {
                let mut found = None;
                for (ti, (_, _, t)) in self.tables.iter().enumerate() {
                    if let Some(ci) = t.schema.index_of(col) {
                        if found.is_some() {
                            return Err(PlanError(format!("ambiguous column {col}")));
                        }
                        found = Some(WideCol { table: ti, column: ci, ty: t.schema.columns[ci].ty });
                    }
                }
                found.ok_or_else(|| PlanError(format!("unknown column {col}")))
            }
            [qual, col] => {
                for (ti, (alias, name, t)) in self.tables.iter().enumerate() {
                    let matches = alias.as_deref() == Some(qual.as_str()) || name == qual;
                    if matches {
                        let ci = t
                            .schema
                            .index_of(col)
                            .ok_or_else(|| PlanError(format!("unknown column {qual}.{col}")))?;
                        return Ok(WideCol { table: ti, column: ci, ty: t.schema.columns[ci].ty });
                    }
                }
                Err(PlanError(format!("unknown table or alias {qual}")))
            }
            _ => Err(PlanError("over-qualified identifier".into())),
        }
    }

    /// Does the expression touch only decimal columns and numeric
    /// literals? Then it binds to the JIT path.
    fn is_decimal_expr(&self, e: &SqlExpr) -> bool {
        match e {
            SqlExpr::Num(_) => true,
            SqlExpr::Str(_) => false,
            SqlExpr::Ident(parts) => matches!(
                self.resolve_ident(parts).map(|w| w.ty),
                Ok(ColumnType::Decimal(_))
            ),
            SqlExpr::Neg(x) => self.is_decimal_expr(x),
            SqlExpr::Bin(_, a, b) => self.is_decimal_expr(a) && self.is_decimal_expr(b),
            SqlExpr::Agg(..) | SqlExpr::CountStar => false,
            SqlExpr::Case { .. } | SqlExpr::Cast(..) => false, // bound separately
        }
    }

    fn bind_scalar(&self, e: &SqlExpr) -> Result<Scalar, PlanError> {
        match e {
            SqlExpr::Case { branches, else_ } => {
                let bound: Vec<(BoundPred, Scalar)> = branches
                    .iter()
                    .map(|(p, v)| Ok((self.bind_pred(p)?, self.bind_scalar(v)?)))
                    .collect::<Result<_, PlanError>>()?;
                let else_bound = else_
                    .as_ref()
                    .map(|v| self.bind_scalar(v))
                    .transpose()?
                    .map(Box::new);
                // Unify decimal branch types so per-row selection yields a
                // homogeneous column.
                let mut unified: Option<DecimalType> = None;
                let mut all_decimal = true;
                let mut consider = |s: &Scalar| match scalar_decimal_type(s) {
                    Some(t) => {
                        unified = Some(match unified {
                            None => t,
                            Some(u) => u.union_type(&t),
                        })
                    }
                    None => all_decimal = false,
                };
                for (_, v) in &bound {
                    consider(v);
                }
                if let Some(v) = &else_bound {
                    consider(v);
                }
                Ok(Scalar::Case {
                    branches: bound,
                    else_: else_bound,
                    unified: if all_decimal { unified } else { None },
                })
            }
            SqlExpr::Cast(inner, p, sc) => {
                let ty = DecimalType::new(*p, *sc)
                    .map_err(|e| PlanError(format!("bad CAST target: {e}")))?;
                Ok(Scalar::Cast { inner: Box::new(self.bind_scalar(inner)?), ty })
            }
            _ if self.is_decimal_expr(e) => {
                let mut inputs: Vec<WideCol> = Vec::new();
                let expr = self.bind_decimal(e, &mut inputs)?;
                Ok(Scalar::Decimal { expr, inputs })
            }
            _ => Ok(Scalar::Cpu(self.bind_cpu(e)?)),
        }
    }

    /// Does the expression contain an aggregate anywhere?
    fn has_agg(e: &SqlExpr) -> bool {
        match e {
            SqlExpr::Agg(..) | SqlExpr::CountStar => true,
            SqlExpr::Num(_) | SqlExpr::Str(_) | SqlExpr::Ident(_) => false,
            SqlExpr::Neg(x) => Self::has_agg(x),
            SqlExpr::Bin(_, a, b) => Self::has_agg(a) || Self::has_agg(b),
            SqlExpr::Case { branches, else_ } => {
                branches.iter().any(|(_, v)| Self::has_agg(v))
                    || else_.as_ref().is_some_and(|v| Self::has_agg(v))
            }
            SqlExpr::Cast(x, _, _) => Self::has_agg(x),
        }
    }

    /// Binds arithmetic over aggregates into a combo expression.
    fn bind_combo(
        &self,
        e: &SqlExpr,
        aggs: &mut Vec<(AggFunc, Option<Scalar>)>,
    ) -> Result<ComboExpr, PlanError> {
        match e {
            SqlExpr::Agg(f, inner) => {
                aggs.push((*f, Some(self.bind_scalar(inner)?)));
                Ok(ComboExpr::Agg(aggs.len() - 1))
            }
            SqlExpr::CountStar => {
                aggs.push((AggFunc::Count, None));
                Ok(ComboExpr::Agg(aggs.len() - 1))
            }
            SqlExpr::Num(text) => {
                if text.contains('.') {
                    Ok(ComboExpr::Dec(
                        UpDecimal::parse_literal(text)
                            .map_err(|e| PlanError(format!("bad literal: {e}")))?,
                    ))
                } else {
                    Ok(ComboExpr::I64(
                        text.parse().map_err(|_| PlanError(format!("bad int {text}")))?,
                    ))
                }
            }
            SqlExpr::Neg(x) => Ok(ComboExpr::Neg(Box::new(self.bind_combo(x, aggs)?))),
            SqlExpr::Bin(op, a, b) => Ok(ComboExpr::Bin(
                *op,
                Box::new(self.bind_combo(a, aggs)?),
                Box::new(self.bind_combo(b, aggs)?),
            )),
            other => Err(PlanError(format!(
                "aggregate arithmetic supports aggregates and literals, got {other:?}"
            ))),
        }
    }

    fn bind_decimal(&self, e: &SqlExpr, inputs: &mut Vec<WideCol>) -> Result<Expr, PlanError> {
        match e {
            SqlExpr::Num(text) => {
                // §III-D2: constants convert to DECIMAL at compile time.
                let c = UpDecimal::parse_literal(text)
                    .map_err(|err| PlanError(format!("bad literal {text}: {err}")))?;
                Ok(Expr::Const(c))
            }
            SqlExpr::Ident(parts) => {
                let w = self.resolve_ident(parts)?;
                let ColumnType::Decimal(ty) = w.ty else {
                    return Err(PlanError(format!("{parts:?} is not a decimal column")));
                };
                let slot = match inputs.iter().position(|x| x == &w) {
                    Some(i) => i,
                    None => {
                        inputs.push(w);
                        inputs.len() - 1
                    }
                };
                Ok(Expr::col(slot, ty, parts.join(".")))
            }
            SqlExpr::Neg(x) => Ok(self.bind_decimal(x, inputs)?.neg()),
            SqlExpr::Bin(op, a, b) => {
                let (a, b) = (self.bind_decimal(a, inputs)?, self.bind_decimal(b, inputs)?);
                Ok(match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Div => a.div(b),
                    BinOp::Mod => a.rem(b),
                })
            }
            other => Err(PlanError(format!("not a decimal scalar: {other:?}"))),
        }
    }

    fn bind_cpu(&self, e: &SqlExpr) -> Result<CpuExpr, PlanError> {
        match e {
            SqlExpr::Num(text) => {
                if text.contains('.') {
                    text.parse::<f64>()
                        .map(CpuExpr::F64)
                        .map_err(|_| PlanError(format!("bad float {text}")))
                } else {
                    text.parse::<i64>()
                        .map(CpuExpr::I64)
                        .map_err(|_| PlanError(format!("bad integer {text}")))
                }
            }
            SqlExpr::Str(s) => Ok(CpuExpr::Str(s.clone())),
            SqlExpr::Ident(parts) => Ok(CpuExpr::Col(self.resolve_ident(parts)?)),
            SqlExpr::Neg(x) => Ok(CpuExpr::Neg(Box::new(self.bind_cpu(x)?))),
            SqlExpr::Bin(op, a, b) => Ok(CpuExpr::Bin(
                *op,
                Box::new(self.bind_cpu(a)?),
                Box::new(self.bind_cpu(b)?),
            )),
            other => Err(PlanError(format!("not a scalar: {other:?}"))),
        }
    }

    fn bind_operand(&self, e: &SqlExpr) -> Result<BoundOperand, PlanError> {
        match e {
            SqlExpr::Ident(parts) => Ok(BoundOperand::Col(self.resolve_ident(parts)?)),
            SqlExpr::Num(text) => {
                if text.contains('.') {
                    Ok(BoundOperand::Dec(
                        UpDecimal::parse_literal(text)
                            .map_err(|err| PlanError(format!("bad literal: {err}")))?,
                    ))
                } else {
                    Ok(BoundOperand::I64(
                        text.parse().map_err(|_| PlanError(format!("bad int {text}")))?,
                    ))
                }
            }
            SqlExpr::Str(s) => Ok(BoundOperand::Str(s.clone())),
            SqlExpr::Neg(inner) => match self.bind_operand(inner)? {
                BoundOperand::I64(v) => Ok(BoundOperand::I64(-v)),
                BoundOperand::F64(v) => Ok(BoundOperand::F64(-v)),
                BoundOperand::Dec(v) => Ok(BoundOperand::Dec(v.neg())),
                _ => Err(PlanError("cannot negate".into())),
            },
            other => Err(PlanError(format!(
                "predicates compare columns and literals only, got {other:?}"
            ))),
        }
    }

    fn bind_pred(&self, p: &Pred) -> Result<BoundPred, PlanError> {
        Ok(match p {
            Pred::Cmp(op, a, b) => BoundPred::Cmp(*op, self.bind_operand(a)?, self.bind_operand(b)?),
            Pred::And(a, b) => BoundPred::And(Box::new(self.bind_pred(a)?), Box::new(self.bind_pred(b)?)),
            Pred::Or(a, b) => BoundPred::Or(Box::new(self.bind_pred(a)?), Box::new(self.bind_pred(b)?)),
            Pred::Not(a) => BoundPred::Not(Box::new(self.bind_pred(a)?)),
            Pred::Between(x, lo, hi) => BoundPred::Between(
                self.bind_operand(x)?,
                self.bind_operand(lo)?,
                self.bind_operand(hi)?,
            ),
            Pred::Like(x, pat) => BoundPred::Like(self.bind_operand(x)?, pat.clone()),
        })
    }
}

/// Plans a parsed select against the catalog.
pub fn plan(select: &Select, catalog: &Catalog) -> Result<QueryPlan, PlanError> {
    // Read-lock every referenced table in sorted lowercase-name order —
    // the same global lock order `exec::execute` uses, so concurrent
    // multi-table queries cannot deadlock (the catalog is lock-striped
    // per table).
    let mut lock_names: Vec<String> = std::iter::once(select.from.to_lowercase())
        .chain(select.joins.iter().map(|j| j.table.to_lowercase()))
        .collect();
    lock_names.sort();
    lock_names.dedup();
    let guards: Vec<_> = lock_names
        .iter()
        .map(|n| {
            catalog
                .read(n)
                .ok_or_else(|| PlanError(format!("unknown table {n}")))
        })
        .collect::<Result<_, _>>()?;
    let table_ref = |name: &str| -> &Table {
        let i = lock_names
            .binary_search(&name.to_lowercase())
            .expect("locked above");
        &guards[i]
    };

    let base = table_ref(&select.from);
    let mut binder = Binder {
        tables: vec![(select.from_alias.clone(), select.from.clone(), base)],
    };
    let mut tables = vec![select.from.clone()];
    let mut joins = Vec::new();
    for Join { table, alias, on } in &select.joins {
        let t = table_ref(table);
        binder.tables.push((alias.clone(), table.clone(), t));
        tables.push(table.clone());
        let this_ti = binder.tables.len() - 1;
        let mut edges = Vec::new();
        for (l, r) in on {
            let (SqlExpr::Ident(lp), SqlExpr::Ident(rp)) = (l, r) else {
                return Err(PlanError("JOIN ON requires column = column".into()));
            };
            let lw = binder.resolve_ident(lp)?;
            let rw = binder.resolve_ident(rp)?;
            // Exactly one side must come from the newly joined table.
            let (probe, build) = if rw.table == this_ti && lw.table < this_ti {
                (lw, rw)
            } else if lw.table == this_ti && rw.table < this_ti {
                (rw, lw)
            } else {
                return Err(PlanError("JOIN ON must link the new table to earlier ones".into()));
            };
            edges.push(BoundJoin { left: probe, right_column: build.column });
        }
        if edges.is_empty() {
            return Err(PlanError("JOIN needs at least one equality".into()));
        }
        joins.push(edges);
    }

    let filter = select.where_.as_ref().map(|p| binder.bind_pred(p)).transpose()?;

    let mut group_by = Vec::new();
    for g in &select.group_by {
        let SqlExpr::Ident(parts) = g else {
            return Err(PlanError("GROUP BY supports plain columns".into()));
        };
        group_by.push(binder.resolve_ident(parts)?);
    }

    let mut has_aggregates = false;
    let mut items = Vec::new();
    for (i, (e, alias)) in select.items.iter().enumerate() {
        let name = alias.clone().unwrap_or_else(|| render_name(e, i));
        let kind = match e {
            SqlExpr::CountStar => {
                has_aggregates = true;
                OutputKind::CountStar
            }
            SqlExpr::Agg(f, inner) => {
                has_aggregates = true;
                OutputKind::Agg(*f, binder.bind_scalar(inner)?)
            }
            other if Binder::has_agg(other) => {
                has_aggregates = true;
                let mut aggs = Vec::new();
                let combo = binder.bind_combo(other, &mut aggs)?;
                OutputKind::AggCombo { aggs, combo }
            }
            SqlExpr::Ident(parts) if !group_by.is_empty() => {
                // In a grouped query a bare ident must be a key.
                let w = binder.resolve_ident(parts)?;
                if !group_by.contains(&w) {
                    return Err(PlanError(format!(
                        "{} must appear in GROUP BY or an aggregate",
                        parts.join(".")
                    )));
                }
                OutputKind::Key(w)
            }
            other => OutputKind::Scalar(binder.bind_scalar(other)?),
        };
        items.push(OutputItem { name, kind });
    }
    if has_aggregates {
        for item in &items {
            if matches!(item.kind, OutputKind::Scalar(_)) {
                return Err(PlanError(format!(
                    "{} must appear in GROUP BY or an aggregate",
                    item.name
                )));
            }
        }
    }

    let having = select
        .having
        .as_ref()
        .map(|p| bind_having(p, &items, &binder))
        .transpose()?;

    // ORDER BY: resolve to output positions by alias or by matching a
    // group key name.
    let mut order_by = Vec::new();
    for (e, desc) in &select.order_by {
        let idx = match e {
            SqlExpr::Num(n) => {
                let i: usize = n
                    .parse()
                    .map_err(|_| PlanError(format!("bad ORDER BY position {n}")))?;
                i.checked_sub(1)
                    .filter(|i| *i < items.len())
                    .ok_or_else(|| PlanError(format!("ORDER BY position {i} out of range")))?
            }
            SqlExpr::Ident(parts) => {
                let name = parts.join(".");
                let short = parts.last().expect("ident has parts").clone();
                items
                    .iter()
                    .position(|it| it.name == name || it.name == short)
                    .ok_or_else(|| {
                        PlanError(format!("ORDER BY {name} does not match an output column"))
                    })?
            }
            other => return Err(PlanError(format!("unsupported ORDER BY expression {other:?}"))),
        };
        order_by.push((idx, *desc));
    }

    Ok(QueryPlan {
        tables,
        joins,
        filter,
        group_by,
        items,
        having,
        order_by,
        limit: select.limit,
        has_aggregates,
    })
}

/// Binds a HAVING predicate: the left side must name an output item (by
/// alias or key name); the right side is a literal.
fn bind_having(
    p: &Pred,
    items: &[OutputItem],
    binder: &Binder<'_>,
) -> Result<HavingPred, PlanError> {
    let item_index = |e: &SqlExpr| -> Result<usize, PlanError> {
        let SqlExpr::Ident(parts) = e else {
            return Err(PlanError(format!("HAVING compares an output column, got {e:?}")));
        };
        let name = parts.join(".");
        let short = parts.last().expect("ident has parts").clone();
        items
            .iter()
            .position(|it| it.name == name || it.name == short)
            .ok_or_else(|| PlanError(format!("HAVING column {name} is not an output")))
    };
    Ok(match p {
        Pred::Cmp(op, l, r) => HavingPred::Cmp(*op, item_index(l)?, binder.bind_operand(r)?),
        Pred::And(a, b) => HavingPred::And(
            Box::new(bind_having(a, items, binder)?),
            Box::new(bind_having(b, items, binder)?),
        ),
        Pred::Or(a, b) => HavingPred::Or(
            Box::new(bind_having(a, items, binder)?),
            Box::new(bind_having(b, items, binder)?),
        ),
        Pred::Not(a) => HavingPred::Not(Box::new(bind_having(a, items, binder)?)),
        other => return Err(PlanError(format!("unsupported HAVING form {other:?}"))),
    })
}

fn render_name(e: &SqlExpr, i: usize) -> String {
    match e {
        SqlExpr::Ident(parts) => parts.join("."),
        SqlExpr::Agg(f, _) => format!("{f:?}").to_lowercase(),
        SqlExpr::CountStar => "count".to_string(),
        _ => format!("col{i}"),
    }
}

/// Decimal type of an output item when it is decimal-valued; used by the
/// executor to size result buffers.
pub fn scalar_decimal_type(s: &Scalar) -> Option<DecimalType> {
    match s {
        Scalar::Decimal { expr, .. } => Some(expr.dtype()),
        Scalar::Cpu(_) => None,
        Scalar::Case { unified, .. } => *unified,
        Scalar::Cast { ty, .. } => Some(*ty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse_select;
    use crate::storage::{Schema, Table, Value};

    fn dt(p: u32, s: u32) -> DecimalType {
        DecimalType::new_unchecked(p, s)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut r = Table::new(
            "r",
            Schema::new(vec![
                ("c1", ColumnType::Decimal(dt(4, 2))),
                ("c2", ColumnType::Decimal(dt(4, 1))),
                ("k", ColumnType::Int64),
                ("tag", ColumnType::Str),
            ]),
        );
        r.push_row(vec![
            Value::Decimal(UpDecimal::parse("1.23", dt(4, 2)).unwrap()),
            Value::Decimal(UpDecimal::parse("1.1", dt(4, 1)).unwrap()),
            Value::Int64(1),
            Value::Str("x".into()),
        ])
        .unwrap();
        c.put(r);
        let s = Table::new(
            "s",
            Schema::new(vec![("k", ColumnType::Int64), ("v", ColumnType::Decimal(dt(6, 2)))]),
        );
        c.put(s);
        c
    }

    #[test]
    fn binds_decimal_expression_with_types() {
        let cat = catalog();
        let sel = parse_select("SELECT c1 + c2 FROM r").unwrap();
        let p = plan(&sel, &cat).unwrap();
        let OutputKind::Scalar(Scalar::Decimal { expr, inputs }) = &p.items[0].kind else {
            panic!("expected decimal scalar");
        };
        assert_eq!(inputs.len(), 2);
        assert_eq!(expr.dtype(), dt(6, 2)); // Listing 1's inferred type
    }

    #[test]
    fn repeated_column_shares_a_slot() {
        let cat = catalog();
        let sel = parse_select("SELECT c1 * c1 % 97 FROM r").unwrap();
        let p = plan(&sel, &cat).unwrap();
        let OutputKind::Scalar(Scalar::Decimal { inputs, .. }) = &p.items[0].kind else {
            panic!()
        };
        assert_eq!(inputs.len(), 1);
    }

    #[test]
    fn literals_become_decimal_constants() {
        let cat = catalog();
        let sel = parse_select("SELECT 0.25 * c1 FROM r").unwrap();
        let p = plan(&sel, &cat).unwrap();
        let OutputKind::Scalar(Scalar::Decimal { expr, .. }) = &p.items[0].kind else { panic!() };
        assert!(matches!(expr, Expr::Mul(a, _) if matches!(**a, Expr::Const(_))));
    }

    #[test]
    fn group_by_validation() {
        let cat = catalog();
        let sel = parse_select("SELECT k, SUM(c1) FROM r GROUP BY k").unwrap();
        let p = plan(&sel, &cat).unwrap();
        assert!(p.has_aggregates);
        assert!(matches!(p.items[0].kind, OutputKind::Key(_)));
        // Non-key bare column is rejected.
        let bad = parse_select("SELECT tag, SUM(c1) FROM r GROUP BY k").unwrap();
        assert!(plan(&bad, &cat).is_err());
        // Aggregate mixed with a bare scalar (no GROUP BY) is rejected.
        let bad2 = parse_select("SELECT c1, SUM(c1) FROM r").unwrap();
        assert!(plan(&bad2, &cat).is_err());
    }

    #[test]
    fn join_resolution() {
        let cat = catalog();
        let sel = parse_select("SELECT r.c1 FROM r JOIN s ON r.k = s.k").unwrap();
        let p = plan(&sel, &cat).unwrap();
        assert_eq!(p.tables, vec!["r", "s"]);
        assert_eq!(p.joins.len(), 1);
        assert_eq!(p.joins[0][0].left.table, 0);
    }

    #[test]
    fn unknown_names_error() {
        let cat = catalog();
        assert!(plan(&parse_select("SELECT zzz FROM r").unwrap(), &cat).is_err());
        assert!(plan(&parse_select("SELECT c1 FROM nope").unwrap(), &cat).is_err());
        assert!(plan(&parse_select("SELECT q.c1 FROM r").unwrap(), &cat).is_err());
    }

    #[test]
    fn order_by_resolves_aliases_and_positions() {
        let cat = catalog();
        let sel =
            parse_select("SELECT k, SUM(c1) AS total FROM r GROUP BY k ORDER BY total DESC, 1")
                .unwrap();
        let p = plan(&sel, &cat).unwrap();
        assert_eq!(p.order_by, vec![(1, true), (0, false)]);
    }
}
