//! SQL front end: lexer, AST, and a recursive-descent parser for the
//! query subset the evaluation exercises — arithmetic expressions over
//! DECIMAL columns, aggregates, filters, equi-joins, grouping, ordering,
//! and limits (Queries 1–5 of the paper, TPC-H Q1, and the Table I
//! workloads).

use core::fmt;

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// Aggregate functions (§III-B3 lists their result-type rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// `SUM`
    Sum,
    /// `AVG`
    Avg,
    /// `MIN`
    Min,
    /// `MAX`
    Max,
    /// `COUNT`
    Count,
    /// `COUNT(DISTINCT …)`
    CountDistinct,
}

/// Comparison operators in predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A parsed scalar expression.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// Numeric literal (kept textual; typed during planning).
    Num(String),
    /// String literal.
    Str(String),
    /// Possibly-qualified identifier (`c1` or `l.l_tax`).
    Ident(Vec<String>),
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// Binary arithmetic.
    Bin(BinOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Aggregate call.
    Agg(AggFunc, Box<SqlExpr>),
    /// `COUNT(*)`.
    CountStar,
    /// `CASE WHEN p THEN e … [ELSE e] END`.
    Case {
        /// (condition, result) branches in order.
        branches: Vec<(Pred, SqlExpr)>,
        /// `ELSE` result (NULL-free subset: defaults to 0 when omitted).
        else_: Option<Box<SqlExpr>>,
    },
    /// `CAST(e AS DECIMAL(p, s))`.
    Cast(Box<SqlExpr>, u32, u32),
}

/// A predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Pred {
    /// Comparison.
    Cmp(CmpOp, SqlExpr, SqlExpr),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
    /// Negation.
    Not(Box<Pred>),
    /// `x BETWEEN lo AND hi`.
    Between(SqlExpr, SqlExpr, SqlExpr),
    /// `x LIKE 'pattern'` (`%` wildcards at the ends only).
    Like(SqlExpr, String),
}

/// An inner equi-join clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// Joined table.
    pub table: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// Equality pairs `(left ident, right ident)`.
    pub on: Vec<(SqlExpr, SqlExpr)>,
}

/// A parsed `SELECT`.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Projected items with optional aliases.
    pub items: Vec<(SqlExpr, Option<String>)>,
    /// Base table.
    pub from: String,
    /// Base-table alias.
    pub from_alias: Option<String>,
    /// Inner joins.
    pub joins: Vec<Join>,
    /// `WHERE`.
    pub where_: Option<Pred>,
    /// `GROUP BY` identifiers.
    pub group_by: Vec<SqlExpr>,
    /// `HAVING` predicate (over output columns).
    pub having: Option<Pred>,
    /// `ORDER BY` (expression, descending?).
    pub order_by: Vec<(SqlExpr, bool)>,
    /// `LIMIT`.
    pub limit: Option<u64>,
}

/// A parse failure with position context.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Message.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(String),
    Str(String),
    Sym(char),
    // two-char symbols
    Le,
    Ge,
    Ne,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < b.len() {
        let c = b[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' {
            let mut j = i + 1;
            while j < b.len() && ((b[j] as char).is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            out.push((Tok::Ident(src[i..j].to_string()), start));
            i = j;
        } else if c.is_ascii_digit() || (c == '.' && i + 1 < b.len() && (b[i + 1] as char).is_ascii_digit()) {
            let mut j = i;
            let mut seen_dot = false;
            while j < b.len() {
                let cj = b[j] as char;
                if cj.is_ascii_digit() {
                    j += 1;
                } else if cj == '.' && !seen_dot {
                    seen_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            out.push((Tok::Num(src[i..j].to_string()), start));
            i = j;
        } else if c == '\'' {
            let mut j = i + 1;
            while j < b.len() && b[j] != b'\'' {
                j += 1;
            }
            if j >= b.len() {
                return Err(ParseError { msg: "unterminated string".into(), at: start });
            }
            out.push((Tok::Str(src[i + 1..j].to_string()), start));
            i = j + 1;
        } else if c == '<' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push((Tok::Le, start));
            i += 2;
        } else if c == '>' && i + 1 < b.len() && b[i + 1] == b'=' {
            out.push((Tok::Ge, start));
            i += 2;
        } else if (c == '<' && i + 1 < b.len() && b[i + 1] == b'>')
            || (c == '!' && i + 1 < b.len() && b[i + 1] == b'=')
        {
            out.push((Tok::Ne, start));
            i += 2;
        } else if "+-*/%(),.;=<>".contains(c) {
            out.push((Tok::Sym(c), start));
            i += 1;
        } else {
            return Err(ParseError { msg: format!("unexpected character {c:?}"), at: start });
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map(|(_, a)| *a).unwrap_or(usize::MAX)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { msg: msg.into(), at: self.at() })
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {kw}"))
        }
    }

    fn eat_sym(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Sym(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_sym(c) {
            Ok(())
        } else {
            self.err(format!("expected {c:?}"))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.to_lowercase()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected identifier")
            }
        }
    }

    const KEYWORDS: &'static [&'static str] = &[
        "select", "from", "where", "group", "order", "by", "limit", "as", "and",
        "or", "not", "between", "like", "join", "on", "inner", "asc", "desc",
        "case", "when", "then", "else", "end", "cast", "decimal", "distinct",
        "having",
    ];

    fn is_kw(s: &str) -> bool {
        Self::KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(s))
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            if self.eat_sym('+') {
                lhs = SqlExpr::Bin(BinOp::Add, Box::new(lhs), Box::new(self.term()?));
            } else if self.eat_sym('-') {
                lhs = SqlExpr::Bin(BinOp::Sub, Box::new(lhs), Box::new(self.term()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn term(&mut self) -> Result<SqlExpr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            if self.eat_sym('*') {
                lhs = SqlExpr::Bin(BinOp::Mul, Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat_sym('/') {
                lhs = SqlExpr::Bin(BinOp::Div, Box::new(lhs), Box::new(self.factor()?));
            } else if self.eat_sym('%') {
                lhs = SqlExpr::Bin(BinOp::Mod, Box::new(lhs), Box::new(self.factor()?));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn factor(&mut self) -> Result<SqlExpr, ParseError> {
        if self.eat_sym('-') {
            return Ok(SqlExpr::Neg(Box::new(self.factor()?)));
        }
        if self.eat_sym('+') {
            return self.factor();
        }
        if self.eat_sym('(') {
            let e = self.expr()?;
            self.expect_sym(')')?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Num(n)) => Ok(SqlExpr::Num(n)),
            Some(Tok::Str(s)) => Ok(SqlExpr::Str(s)),
            Some(Tok::Ident(name)) => {
                let lname = name.to_lowercase();
                if lname == "case" {
                    return self.case_expr();
                }
                if lname == "cast" {
                    return self.cast_expr();
                }
                // Aggregate call?
                let agg = match lname.as_str() {
                    "sum" => Some(AggFunc::Sum),
                    "avg" => Some(AggFunc::Avg),
                    "min" => Some(AggFunc::Min),
                    "max" => Some(AggFunc::Max),
                    "count" => Some(AggFunc::Count),
                    _ => None,
                };
                if let Some(f) = agg {
                    if self.eat_sym('(') {
                        if f == AggFunc::Count && self.eat_sym('*') {
                            self.expect_sym(')')?;
                            return Ok(SqlExpr::CountStar);
                        }
                        let f = if f == AggFunc::Count && self.eat_kw("distinct") {
                            AggFunc::CountDistinct
                        } else {
                            f
                        };
                        let inner = self.expr()?;
                        self.expect_sym(')')?;
                        return Ok(SqlExpr::Agg(f, Box::new(inner)));
                    }
                }
                if Self::is_kw(&lname) {
                    return self.err(format!("unexpected keyword {lname}"));
                }
                let mut parts = vec![lname];
                while self.eat_sym('.') {
                    parts.push(self.ident()?);
                }
                Ok(SqlExpr::Ident(parts))
            }
            _ => self.err("expected expression"),
        }
    }

    /// `CASE WHEN p THEN e … [ELSE e] END` (the CASE keyword is consumed).
    fn case_expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let p = self.pred()?;
            self.expect_kw("then")?;
            let e = self.expr()?;
            branches.push((p, e));
        }
        if branches.is_empty() {
            return self.err("CASE needs at least one WHEN");
        }
        let else_ = if self.eat_kw("else") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("end")?;
        Ok(SqlExpr::Case { branches, else_ })
    }

    /// `CAST(e AS DECIMAL(p, s))` (the CAST keyword is consumed).
    fn cast_expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expect_sym('(')?;
        let e = self.expr()?;
        self.expect_kw("as")?;
        self.expect_kw("decimal")?;
        self.expect_sym('(')?;
        let p = match self.next() {
            Some(Tok::Num(n)) => n
                .parse()
                .map_err(|_| ParseError { msg: "bad precision".into(), at: self.at() })?,
            _ => return self.err("expected precision"),
        };
        self.expect_sym(',')?;
        let sc = match self.next() {
            Some(Tok::Num(n)) => n
                .parse()
                .map_err(|_| ParseError { msg: "bad scale".into(), at: self.at() })?,
            _ => return self.err("expected scale"),
        };
        self.expect_sym(')')?;
        self.expect_sym(')')?;
        Ok(SqlExpr::Cast(Box::new(e), p, sc))
    }

    // ---- predicates ----

    fn pred(&mut self) -> Result<Pred, ParseError> {
        let mut lhs = self.pred_and()?;
        while self.eat_kw("or") {
            lhs = Pred::Or(Box::new(lhs), Box::new(self.pred_and()?));
        }
        Ok(lhs)
    }

    fn pred_and(&mut self) -> Result<Pred, ParseError> {
        let mut lhs = self.pred_atom()?;
        while self.eat_kw("and") {
            lhs = Pred::And(Box::new(lhs), Box::new(self.pred_atom()?));
        }
        Ok(lhs)
    }

    fn pred_atom(&mut self) -> Result<Pred, ParseError> {
        if self.eat_kw("not") {
            return Ok(Pred::Not(Box::new(self.pred_atom()?)));
        }
        if self.eat_sym('(') {
            let p = self.pred()?;
            self.expect_sym(')')?;
            return Ok(p);
        }
        let lhs = self.expr()?;
        if self.eat_kw("between") {
            let lo = self.expr()?;
            self.expect_kw("and")?;
            let hi = self.expr()?;
            return Ok(Pred::Between(lhs, lo, hi));
        }
        if self.eat_kw("like") {
            match self.next() {
                Some(Tok::Str(p)) => return Ok(Pred::Like(lhs, p)),
                _ => return self.err("expected string pattern after LIKE"),
            }
        }
        let op = match self.next() {
            Some(Tok::Sym('=')) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Sym('<')) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Sym('>')) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            _ => return self.err("expected comparison operator"),
        };
        let rhs = self.expr()?;
        Ok(Pred::Cmp(op, lhs, rhs))
    }

    // ---- select ----

    fn select(&mut self) -> Result<Select, ParseError> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            let e = self.expr()?;
            let alias = if self.eat_kw("as") { Some(self.ident()?) } else { None };
            items.push((e, alias));
            if !self.eat_sym(',') {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.ident()?;
        let from_alias = self.opt_alias()?;
        let mut joins = Vec::new();
        loop {
            let _ = self.eat_kw("inner");
            if !self.eat_kw("join") {
                break;
            }
            let table = self.ident()?;
            let alias = self.opt_alias()?;
            self.expect_kw("on")?;
            let mut on = Vec::new();
            loop {
                let l = self.expr()?;
                self.expect_sym('=')?;
                let r = self.expr()?;
                on.push((l, r));
                if !self.eat_kw("and") {
                    break;
                }
            }
            joins.push(Join { table, alias, on });
        }
        let where_ = if self.eat_kw("where") { Some(self.pred()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.pred()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    let _ = self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_sym(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Tok::Num(n)) => {
                    Some(n.parse().map_err(|_| ParseError { msg: "bad limit".into(), at: self.at() })?)
                }
                _ => return self.err("expected number after LIMIT"),
            }
        } else {
            None
        };
        let _ = self.eat_sym(';');
        if self.pos != self.toks.len() {
            return self.err("trailing tokens after statement");
        }
        Ok(Select { items, from, from_alias, joins, where_, group_by, having, order_by, limit })
    }

    fn opt_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_kw("as") {
            return Ok(Some(self.ident()?));
        }
        if let Some(Tok::Ident(s)) = self.peek() {
            if !Self::is_kw(s) {
                let a = s.to_lowercase();
                self.pos += 1;
                return Ok(Some(a));
            }
        }
        Ok(None)
    }
}

/// Parses one `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<Select, ParseError> {
    let toks = lex(sql)?;
    let mut p = Parser { toks, pos: 0 };
    p.select()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_query1() {
        let s = parse_select("SELECT c1+c2+c3 FROM R1;").unwrap();
        assert_eq!(s.from, "r1");
        assert_eq!(s.items.len(), 1);
        assert!(matches!(s.items[0].0, SqlExpr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn parses_paper_query3_aggregate() {
        let s = parse_select("SELECT SUM(c1) FROM R3").unwrap();
        assert!(matches!(s.items[0].0, SqlExpr::Agg(AggFunc::Sum, _)));
    }

    #[test]
    fn parses_paper_query4_rsa() {
        let s = parse_select("SELECT c1 * c1 % 1000003 * c1 % 1000003 FROM R4").unwrap();
        // Left associativity: (((c1*c1) % N) * c1) % N.
        let SqlExpr::Bin(BinOp::Mod, inner, _) = &s.items[0].0 else {
            panic!("expected outer %");
        };
        assert!(matches!(**inner, SqlExpr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_paper_query5_taylor() {
        let s = parse_select(
            "SELECT c1 - c1*c1*c1/6 + c1*c1*c1*c1*c1/120 FROM R5",
        )
        .unwrap();
        assert!(matches!(s.items[0].0, SqlExpr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn parses_tpch_q1_shape() {
        let s = parse_select(
            "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, \
             SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
             SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, \
             AVG(l_quantity) AS avg_qty, COUNT(*) AS count_order \
             FROM lineitem WHERE l_shipdate <= '1998-09-02' \
             GROUP BY l_returnflag, l_linestatus \
             ORDER BY l_returnflag, l_linestatus",
        )
        .unwrap();
        assert_eq!(s.items.len(), 7);
        assert_eq!(s.group_by.len(), 2);
        assert_eq!(s.order_by.len(), 2);
        assert!(s.where_.is_some());
        assert_eq!(s.items[2].1.as_deref(), Some("sum_qty"));
    }

    #[test]
    fn parses_joins() {
        let s = parse_select(
            "SELECT o.o_totalprice FROM orders o \
             JOIN customer c ON o.o_custkey = c.c_custkey \
             WHERE c.c_mktsegment = 'BUILDING' LIMIT 10",
        )
        .unwrap();
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table, "customer");
        assert_eq!(s.joins[0].alias.as_deref(), Some("c"));
        assert_eq!(s.limit, Some(10));
    }

    #[test]
    fn parses_between_and_like() {
        let s = parse_select(
            "SELECT c1 FROM t WHERE c1 BETWEEN 1 AND 2 AND tag LIKE 'PROMO%' OR NOT c2 > 3",
        )
        .unwrap();
        assert!(s.where_.is_some());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_select("SELECT FROM t").is_err());
        assert!(parse_select("SELECT a FROM t WHERE").is_err());
        assert!(parse_select("SELECT a FROM t extra junk").is_err());
        assert!(parse_select("SELECT 'unterminated FROM t").is_err());
    }

    #[test]
    fn parses_case_when() {
        let s = parse_select(
            "SELECT SUM(CASE WHEN p_type LIKE 'PROMO%' THEN price ELSE 0 END) FROM t",
        )
        .unwrap();
        let SqlExpr::Agg(AggFunc::Sum, inner) = &s.items[0].0 else { panic!() };
        let SqlExpr::Case { branches, else_ } = &**inner else { panic!("{inner:?}") };
        assert_eq!(branches.len(), 1);
        assert!(else_.is_some());
        // Multiple branches without ELSE.
        let s2 = parse_select(
            "SELECT CASE WHEN a = 1 THEN 10 WHEN a = 2 THEN 20 END FROM t",
        )
        .unwrap();
        let SqlExpr::Case { branches, else_ } = &s2.items[0].0 else { panic!() };
        assert_eq!(branches.len(), 2);
        assert!(else_.is_none());
        assert!(parse_select("SELECT CASE END FROM t").is_err());
    }

    #[test]
    fn parses_count_distinct_and_having() {
        let s = parse_select(
            "SELECT g, COUNT(DISTINCT v) AS n FROM t GROUP BY g HAVING n > 3 ORDER BY g",
        )
        .unwrap();
        assert!(matches!(s.items[1].0, SqlExpr::Agg(AggFunc::CountDistinct, _)));
        assert!(s.having.is_some());
    }

    #[test]
    fn parses_cast() {
        let s = parse_select("SELECT CAST(a + b AS DECIMAL(20, 4)) FROM t").unwrap();
        let SqlExpr::Cast(inner, 20, 4) = &s.items[0].0 else { panic!("{:?}", s.items[0].0) };
        assert!(matches!(**inner, SqlExpr::Bin(BinOp::Add, _, _)));
    }

    #[test]
    fn numeric_literals_keep_text() {
        let s = parse_select("SELECT 0.25 * c1 FROM t").unwrap();
        let SqlExpr::Bin(BinOp::Mul, l, _) = &s.items[0].0 else { panic!() };
        assert_eq!(**l, SqlExpr::Num("0.25".into()));
    }
}
