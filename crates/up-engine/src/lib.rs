#![warn(missing_docs)]
//! # up-engine — the database substrate
//!
//! A column-store SQL engine hosting the UltraPrecise framework, modeled
//! on the role RateupDB plays in the paper: compact decimal column
//! storage ([`storage`]), a SQL subset front end ([`sql`]), name
//! resolution and expression binding ([`plan`]), per-system execution
//! profiles ([`profiles`]), and an executor that routes DECIMAL
//! arithmetic through JIT-compiled GPU kernels, thread-group aggregation,
//! or the comparator backends ([`exec`]). [`Database`] ties it together.

pub mod engine;
pub mod exec;
pub mod persist;
pub mod plan;
pub mod profiles;
pub mod sql;
pub mod storage;

pub use engine::Database;
pub use exec::{ArenaCtx, FleetReport, ModeledTime, QueryError, QueryResult};
pub use profiles::Profile;
pub use storage::{Catalog, ColumnData, ColumnType, PartitionSpec, Schema, Table, Value};
